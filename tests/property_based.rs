//! Property-based tests over random graphs, ID assignments and parameters:
//! validity invariants that must hold on *every* input, not just the
//! benchmark instances.
//!
//! The offline build environment has no `proptest`, so cases are generated
//! by a deterministic seed loop: every test derives its inputs from a fixed
//! per-case seed, which keeps failures reproducible (the failing seed is in
//! the assertion message) while still sweeping a spread of sizes, densities
//! and ID assignments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symbreak::classic::{coloring, mis};
use symbreak::congest::SyncConfig;
use symbreak::core::{alg1_coloring, alg2_coloring, alg3_mis, Alg1Config, Alg2Config, Alg3Config};
use symbreak::danner::Danner;
use symbreak::graphs::{generators, properties, Graph, IdAssignment, IdSpace, NodeId};
use symbreak::ktrand::{KWiseFamily, SharedRandomness};
use symbreak::lowerbounds::crossed::{CrossedFamily, Crossing};

const CASES: u64 = 12;

/// Derives a well-mixed seed for case `i` of the test labelled `salt`.
fn case_seed(salt: u64, i: u64) -> u64 {
    let mut z = salt ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Random connected graph with `4 <= n < max_n` and density in `[0.05, 0.9)`.
fn arb_connected_graph(max_n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(4..max_n);
    let p = rng.gen_range(0.05f64..0.9);
    generators::connected_gnp(n, p, &mut rng)
}

#[test]
fn alg1_always_produces_a_proper_coloring() {
    for i in 0..CASES {
        let seed = case_seed(0xa5a5, i);
        let graph = arb_connected_graph(40, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5);
        let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
        let out = alg1_coloring::run(&graph, &ids, Alg1Config::default(), &mut rng).unwrap();
        assert!(
            coloring::verify::is_proper_coloring(&graph, &out.colors),
            "improper coloring for seed {seed}"
        );
        assert!(
            coloring::verify::uses_colors_below(&out.colors, graph.max_degree() as u64 + 1),
            "palette overflow for seed {seed}"
        );
    }
}

#[test]
fn alg2_respects_its_palette() {
    for i in 0..CASES {
        let seed = case_seed(0x1111, i);
        let graph = arb_connected_graph(40, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1111);
        let eps = rng.gen_range(0.1f64..2.0);
        let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
        let config = Alg2Config {
            epsilon: eps,
            ..Alg2Config::default()
        };
        let out = alg2_coloring::run(&graph, &ids, config, &mut rng).unwrap();
        assert!(
            coloring::verify::is_proper_coloring(&graph, &out.colors),
            "improper coloring for seed {seed} (eps {eps})"
        );
        assert!(
            coloring::verify::uses_colors_below(&out.colors, out.palette_size),
            "palette overflow for seed {seed} (eps {eps})"
        );
    }
}

#[test]
fn alg3_always_produces_an_mis() {
    for i in 0..CASES {
        let seed = case_seed(0x3333, i);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2usize..50);
        let p = rng.gen_range(0.0f64..1.0);
        let graph = generators::gnp(n, p, &mut rng);
        let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
        let out = alg3_mis::run(&graph, &ids, Alg3Config::default(), &mut rng).unwrap();
        assert!(
            mis::verify::is_mis(&graph, &out.in_mis),
            "invalid MIS for seed {seed} (n {n}, p {p})"
        );
    }
}

#[test]
fn luby_and_parallel_greedy_are_valid_on_arbitrary_graphs() {
    for i in 0..CASES {
        let seed = case_seed(0x4444, i);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1usize..40);
        let p = rng.gen_range(0.0f64..1.0);
        let graph = generators::gnp(n, p, &mut rng);
        let ids = IdAssignment::identity(n);
        let (luby, _) = mis::luby::run(&graph, &ids, seed, SyncConfig::default());
        assert!(
            mis::verify::is_mis(&graph, &luby),
            "luby failed for seed {seed}"
        );
        let ranks: Vec<u64> = (0..n as u64).map(|i| i * 2654435761 % 10007).collect();
        let (pg, _) =
            mis::parallel_greedy::run_on_whole_graph(&graph, &ids, &ranks, SyncConfig::default());
        assert!(
            mis::verify::is_mis(&graph, &pg),
            "parallel greedy failed for seed {seed}"
        );
        assert_eq!(
            pg,
            mis::greedy::greedy_mis_by_rank(&graph, &ranks),
            "parallel greedy disagrees with sequential greedy for seed {seed}"
        );
    }
}

#[test]
fn danner_invariants_hold() {
    for i in 0..CASES {
        let seed = case_seed(0x7777, i);
        let graph = arb_connected_graph(50, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7777);
        let delta = rng.gen_range(0.0f64..1.0);
        let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
        let danner = Danner::build(&graph, &ids, delta).unwrap();
        assert!(
            properties::is_connected(danner.subgraph()),
            "danner disconnected for seed {seed}"
        );
        assert!(
            danner.num_edges() <= danner.edge_bound(),
            "edge bound for seed {seed}"
        );
        assert!(
            danner.num_edges() <= graph.num_edges(),
            "edge count for seed {seed}"
        );
        if let (Some(dh), Some(dg)) = (
            properties::diameter(danner.subgraph()),
            properties::diameter(&graph),
        ) {
            assert!(
                dh <= 2 * dg.max(1),
                "diameter bound for seed {seed}: {dh} > 2*{dg}"
            );
        }
    }
}

#[test]
fn kwise_hash_outputs_stay_in_range() {
    for i in 0..CASES {
        let seed = case_seed(0x8888, i);
        let mut rng = StdRng::seed_from_u64(seed);
        let k = rng.gen_range(1usize..16);
        let range = rng.gen_range(1u64..1000);
        let x = rng.gen::<u64>();
        let h = KWiseFamily::new(k, range).sample(&mut rng);
        assert!(
            h.eval(x) < range,
            "out of range for seed {seed} (k {k}, range {range})"
        );
    }
}

#[test]
fn shared_randomness_clones_agree() {
    const LABELS: [&str; 4] = ["a", "bz", "qrs", "wxyzabcd"];
    for i in 0..CASES {
        let seed = case_seed(0x9999, i);
        let mut rng = StdRng::seed_from_u64(seed);
        let label = LABELS[rng.gen_range(0usize..LABELS.len())];
        let x = rng.gen::<u64>();
        let a = SharedRandomness::from_seed(seed, 1024);
        let b = a.clone();
        let ha = a.hash_fn(label, 4, 97);
        let hb = b.hash_fn(label, 4, 97);
        assert_eq!(ha.eval(x), hb.eval(x), "clones disagree for seed {seed}");
    }
}

#[test]
fn crossed_family_preserves_degrees_for_every_crossing() {
    for i in 0..CASES {
        let seed = case_seed(0xcccc, i);
        let mut rng = StdRng::seed_from_u64(seed);
        let t = rng.gen_range(2usize..7);
        let crossing = Crossing {
            x: rng.gen_range(0usize..6) % t,
            y: rng.gen_range(0usize..6) % t,
            z: rng.gen_range(0usize..6) % t,
        };
        let family = CrossedFamily::new(t);
        let base = family.base_graph();
        let crossed = family.crossed_graph(crossing);
        assert_eq!(
            base.num_edges(),
            crossed.num_edges(),
            "edge count for seed {seed}"
        );
        for v in base.nodes() {
            assert_eq!(
                base.degree(v),
                crossed.degree(v),
                "degree of {v} for seed {seed}"
            );
        }
        // The ψ assignment keeps the primed copy order-isomorphic to the
        // unprimed copy (observation (iii) of Section 2.2).
        let psi = family.psi(crossing);
        for a in 0..3 * t {
            for b in 0..3 * t {
                let unprimed = psi.id_of(NodeId(a as u32)) < psi.id_of(NodeId(b as u32));
                let primed =
                    psi.id_of(NodeId((a + 3 * t) as u32)) < psi.id_of(NodeId((b + 3 * t) as u32));
                assert_eq!(unprimed, primed, "order isomorphism for seed {seed}");
            }
        }
    }
}

#[test]
fn churn_repair_survives_random_streams() {
    // Random insert/delete streams against full recompute: after every
    // batch the repaired colouring and MIS must be valid on a graph built
    // from scratch on the mutated edge list.
    use symbreak::core::repair::{ChurnSession, ColoringRepairDriver, MisRepairDriver};
    use symbreak::graphs::generators::ChurnStream;
    for i in 0..CASES {
        let seed = case_seed(0xc4c4, i);
        let graph = arb_connected_graph(30, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc4c4);
        let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
        let mut session = ChurnSession::new(graph.clone(), ids, SyncConfig::default());
        let (mut colors, _) = session.recompute_coloring(seed ^ 1);
        let (mut in_set, _) = session.recompute_mis(seed ^ 2);
        let mut stream = ChurnStream::new(&graph, seed ^ 3);
        for step in 0..8u64 {
            let deletes = rng.gen_range(0..4);
            let inserts = rng.gen_range(0..4);
            let batch = stream.next_batch(deletes, inserts);
            session.apply(&batch);
            let coloring_driver = if step % 2 == 0 {
                ColoringRepairDriver::Johansson
            } else {
                ColoringRepairDriver::QueryStage
            };
            let mis_driver = if step % 2 == 0 {
                MisRepairDriver::Luby
            } else {
                MisRepairDriver::Greedy
            };
            session.repair_coloring(&batch, &mut colors, coloring_driver, seed ^ (step << 8));
            session.repair_mis(&batch, &mut in_set, mis_driver, seed ^ (step << 16));
            let current = session.overlay().materialize();
            assert!(
                coloring::verify::is_proper_coloring(&current, &colors),
                "improper colouring for seed {seed} step {step}"
            );
            assert!(
                mis::verify::is_mis(&current, &in_set),
                "broken MIS for seed {seed} step {step}"
            );
        }
    }
}

#[test]
fn churn_repair_handles_degenerate_batches() {
    // The degenerate churn cases: duplicate inserts in one batch, deleting
    // absent edges, isolating a node, and deleting + re-inserting the same
    // edge in one batch. All must leave the overlay bit-identical to a
    // fresh build and the repaired outputs valid.
    use symbreak::core::repair::{ChurnSession, ColoringRepairDriver, MisRepairDriver};
    use symbreak::graphs::{ChurnBatch, GraphBuilder};
    for i in 0..CASES {
        let seed = case_seed(0xde6e, i);
        let graph = arb_connected_graph(24, seed);
        let n = graph.num_nodes();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xde6e);
        let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
        let mut session = ChurnSession::new(graph.clone(), ids, SyncConfig::default());
        let (mut colors, _) = session.recompute_coloring(seed ^ 1);
        let (mut in_set, _) = session.recompute_mis(seed ^ 2);

        // A non-edge (u, v) to insert twice in the same batch, plus an
        // absent edge to delete.
        let non_edge = (0..n as u32)
            .flat_map(|u| (u + 1..n as u32).map(move |v| (NodeId(u), NodeId(v))))
            .find(|&(u, v)| !graph.has_edge(u, v));
        // The victim node to isolate, and an existing edge to delete and
        // re-insert within one batch.
        let victim = NodeId(rng.gen_range(0..n as u32));
        let (_, eu, ev) = graph.edges().next().expect("connected graph has edges");

        let mut batches = vec![ChurnBatch {
            deletes: vec![(eu, ev)],
            inserts: vec![(eu, ev)], // net no-op: deleted then re-inserted
        }];
        if let Some((u, v)) = non_edge {
            batches.push(ChurnBatch {
                inserts: vec![(u, v), (u, v), (v, u)], // duplicates collapse
                deletes: vec![(u, v)],                 // applied first: absent, no-op
            });
        }
        // The isolation batch severs whatever the victim's *current* edges
        // are at application time, so it goes last and is built lazily.
        batches.push(ChurnBatch::default());

        let last = batches.len() - 1;
        for (k, batch) in batches.iter_mut().enumerate() {
            if k == last {
                batch.deletes = session
                    .overlay()
                    .neighbor_vec(victim)
                    .into_iter()
                    .map(|u| (victim, u))
                    .collect();
            }
            let batch = &*batch;
            session.apply(batch);
            session.repair_coloring(
                batch,
                &mut colors,
                ColoringRepairDriver::Johansson,
                seed ^ (k as u64) << 8,
            );
            session.repair_mis(
                batch,
                &mut in_set,
                MisRepairDriver::Luby,
                seed ^ (k as u64) << 16,
            );
            let mut builder = GraphBuilder::new(n);
            builder.add_edges(session.overlay().edge_list());
            let fresh = builder.build();
            for v in fresh.nodes() {
                assert_eq!(
                    session.overlay().neighbor_vec(v),
                    fresh.neighbor_vec(v),
                    "overlay row {v} drifted for seed {seed} batch {k}"
                );
            }
            assert!(
                coloring::verify::is_proper_coloring(&fresh, &colors),
                "improper colouring for seed {seed} batch {k}"
            );
            assert!(
                mis::verify::is_mis(&fresh, &in_set),
                "broken MIS for seed {seed} batch {k}"
            );
        }
        // The isolated node has no neighbours left, so maximality forces it
        // into the repaired set.
        assert!(
            in_set[victim.index()],
            "isolated node outside the MIS for seed {seed}"
        );
    }
}
