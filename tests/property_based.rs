//! Property-based tests (proptest) over random graphs, ID assignments and
//! parameters: validity invariants that must hold on *every* input, not just
//! the benchmark instances.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak::classic::{coloring, mis};
use symbreak::congest::SyncConfig;
use symbreak::core::{alg1_coloring, alg2_coloring, alg3_mis, Alg1Config, Alg2Config, Alg3Config};
use symbreak::danner::Danner;
use symbreak::graphs::{generators, properties, Graph, IdAssignment, IdSpace};
use symbreak::ktrand::{KWiseFamily, SharedRandomness};
use symbreak::lowerbounds::crossed::{CrossedFamily, Crossing};

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = (Graph, u64)> {
    (4usize..max_n, 0.05f64..0.9, any::<u64>()).prop_map(|(n, p, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        (generators::connected_gnp(n, p, &mut rng), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn alg1_always_produces_a_proper_coloring((graph, seed) in arb_connected_graph(40)) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5);
        let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
        let out = alg1_coloring::run(&graph, &ids, Alg1Config::default(), &mut rng).unwrap();
        prop_assert!(coloring::verify::is_proper_coloring(&graph, &out.colors));
        prop_assert!(coloring::verify::uses_colors_below(
            &out.colors,
            graph.max_degree() as u64 + 1
        ));
    }

    #[test]
    fn alg2_respects_its_palette((graph, seed) in arb_connected_graph(40), eps in 0.1f64..2.0) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1111);
        let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
        let config = Alg2Config { epsilon: eps, ..Alg2Config::default() };
        let out = alg2_coloring::run(&graph, &ids, config, &mut rng).unwrap();
        prop_assert!(coloring::verify::is_proper_coloring(&graph, &out.colors));
        prop_assert!(coloring::verify::uses_colors_below(&out.colors, out.palette_size));
    }

    #[test]
    fn alg3_always_produces_an_mis(n in 2usize..50, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::gnp(n, p, &mut rng);
        let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
        let out = alg3_mis::run(&graph, &ids, Alg3Config::default(), &mut rng).unwrap();
        prop_assert!(mis::verify::is_mis(&graph, &out.in_mis));
    }

    #[test]
    fn luby_and_parallel_greedy_are_valid_on_arbitrary_graphs(
        n in 1usize..40, p in 0.0f64..1.0, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::gnp(n, p, &mut rng);
        let ids = IdAssignment::identity(n);
        let (luby, _) = mis::luby::run(&graph, &ids, seed, SyncConfig::default());
        prop_assert!(mis::verify::is_mis(&graph, &luby));
        let ranks: Vec<u64> = (0..n as u64).map(|i| i * 2654435761 % 10007).collect();
        let (pg, _) = mis::parallel_greedy::run_on_whole_graph(
            &graph, &ids, &ranks, SyncConfig::default());
        prop_assert!(mis::verify::is_mis(&graph, &pg));
        prop_assert_eq!(pg, mis::greedy::greedy_mis_by_rank(&graph, &ranks));
    }

    #[test]
    fn danner_invariants_hold((graph, seed) in arb_connected_graph(50), delta in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7777);
        let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
        let danner = Danner::build(&graph, &ids, delta).unwrap();
        prop_assert!(properties::is_connected(danner.subgraph()));
        prop_assert!(danner.num_edges() <= danner.edge_bound());
        prop_assert!(danner.num_edges() <= graph.num_edges());
        if let (Some(dh), Some(dg)) = (
            properties::diameter(danner.subgraph()),
            properties::diameter(&graph),
        ) {
            prop_assert!(dh <= 2 * dg.max(1));
        }
    }

    #[test]
    fn kwise_hash_outputs_stay_in_range(k in 1usize..16, range in 1u64..1000, seed in any::<u64>(), x in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = KWiseFamily::new(k, range).sample(&mut rng);
        prop_assert!(h.eval(x) < range);
    }

    #[test]
    fn shared_randomness_clones_agree(seed in any::<u64>(), label in "[a-z]{1,8}", x in any::<u64>()) {
        let a = SharedRandomness::from_seed(seed, 1024);
        let b = a.clone();
        let ha = a.hash_fn(&label, 4, 97);
        let hb = b.hash_fn(&label, 4, 97);
        prop_assert_eq!(ha.eval(x), hb.eval(x));
    }

    #[test]
    fn crossed_family_preserves_degrees_for_every_crossing(t in 2usize..7, x in 0usize..6, y in 0usize..6, z in 0usize..6) {
        let family = CrossedFamily::new(t);
        let crossing = Crossing { x: x % t, y: y % t, z: z % t };
        let base = family.base_graph();
        let crossed = family.crossed_graph(crossing);
        prop_assert_eq!(base.num_edges(), crossed.num_edges());
        for v in base.nodes() {
            prop_assert_eq!(base.degree(v), crossed.degree(v));
        }
        // The ψ assignment keeps the primed copy order-isomorphic to the
        // unprimed copy (observation (iii) of Section 2.2).
        let psi = family.psi(crossing);
        for a in 0..3 * t {
            for b in 0..3 * t {
                let unprimed = psi.id_of(symbreak::graphs::NodeId(a as u32))
                    < psi.id_of(symbreak::graphs::NodeId(b as u32));
                let primed = psi.id_of(symbreak::graphs::NodeId((a + 3 * t) as u32))
                    < psi.id_of(symbreak::graphs::NodeId((b + 3 * t) as u32));
                prop_assert_eq!(unprimed, primed);
            }
        }
    }
}
