//! Cross-crate integration tests: the full pipelines of the paper's
//! algorithms, run end to end through the facade crate.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak::classic::{coloring, mis};
use symbreak::congest::SyncConfig;
use symbreak::core::{alg1_coloring, alg2_coloring, alg3_mis};
use symbreak::core::{Alg1Config, Alg2Config, Alg3Config};
use symbreak::graphs::{generators, Graph, IdAssignment, IdSpace};

fn instance(n: usize, p: f64, seed: u64) -> (Graph, IdAssignment) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = generators::connected_gnp(n, p, &mut rng);
    let ids = IdAssignment::random(&g, IdSpace::CUBIC, &mut rng);
    (g, ids)
}

#[test]
fn algorithm1_beats_the_coloring_baseline_on_a_dense_instance() {
    let (g, ids) = instance(140, 0.8, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let out = alg1_coloring::run(&g, &ids, Alg1Config::default(), &mut rng).unwrap();
    assert!(coloring::verify::is_proper_coloring(&g, &out.colors));
    assert!(coloring::verify::uses_colors_below(
        &out.colors,
        g.max_degree() as u64 + 1
    ));

    let (baseline_colors, baseline_report) =
        coloring::baseline::run(&g, &ids, 3, SyncConfig::default());
    assert!(coloring::verify::is_proper_coloring(&g, &baseline_colors));
    assert!(
        out.costs.total_messages() < baseline_report.messages,
        "Algorithm 1 ({}) should use fewer messages than the baseline ({})",
        out.costs.total_messages(),
        baseline_report.messages
    );
}

#[test]
fn algorithm2_message_cost_grows_with_one_over_epsilon() {
    let (g, ids) = instance(90, 0.6, 5);
    let run_with = |eps: f64| {
        let mut rng = StdRng::seed_from_u64(6);
        let out = alg2_coloring::run(
            &g,
            &ids,
            Alg2Config {
                epsilon: eps,
                ..Alg2Config::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(coloring::verify::is_proper_coloring(&g, &out.colors));
        assert!(coloring::verify::uses_colors_below(
            &out.colors,
            out.palette_size
        ));
        out.costs.total_messages()
    };
    let loose = run_with(1.0);
    let tight = run_with(0.1);
    // A smaller ε means a smaller palette and therefore more collisions,
    // retries and messages (the Õ(n/ε²) dependence).
    assert!(
        tight > loose,
        "ε = 0.1 should cost more messages ({tight}) than ε = 1.0 ({loose})"
    );
}

#[test]
fn algorithm3_matches_luby_correctness_but_with_fewer_messages() {
    let (g, ids) = instance(160, 0.7, 9);
    let mut rng = StdRng::seed_from_u64(10);
    let out = alg3_mis::run(&g, &ids, Alg3Config::default(), &mut rng).unwrap();
    assert!(mis::verify::is_mis(&g, &out.in_mis));

    let (luby_mis, luby_report) = mis::luby::run(&g, &ids, 11, SyncConfig::default());
    assert!(mis::verify::is_mis(&g, &luby_mis));
    assert!(
        out.costs.total_messages() < luby_report.messages,
        "Algorithm 3 ({}) should use fewer messages than Luby ({})",
        out.costs.total_messages(),
        luby_report.messages
    );
    // The remnant graph handed to Luby inside Algorithm 3 is sparse.
    let n = g.num_nodes() as f64;
    assert!((out.remnant_max_degree as f64) < 4.0 * n.sqrt() * n.ln());
}

#[test]
fn all_three_algorithms_are_robust_across_densities_and_seeds() {
    for (n, p) in [(30usize, 0.1), (60, 0.4), (40, 0.95)] {
        for seed in 0..3u64 {
            let (g, ids) = instance(n, p, seed * 31 + 7);
            let mut rng = StdRng::seed_from_u64(seed);
            let c1 = alg1_coloring::run(&g, &ids, Alg1Config::default(), &mut rng).unwrap();
            assert!(
                coloring::verify::is_proper_coloring(&g, &c1.colors),
                "alg1 n={n} p={p} seed={seed}"
            );
            let c2 = alg2_coloring::run(&g, &ids, Alg2Config::default(), &mut rng).unwrap();
            assert!(
                coloring::verify::is_proper_coloring(&g, &c2.colors),
                "alg2 n={n} p={p} seed={seed}"
            );
            let m3 = alg3_mis::run(&g, &ids, Alg3Config::default(), &mut rng).unwrap();
            assert!(
                mis::verify::is_mis(&g, &m3.in_mis),
                "alg3 n={n} p={p} seed={seed}"
            );
        }
    }
}

#[test]
fn asynchronous_algorithm1_is_correct_and_costs_more() {
    let (g, ids) = instance(60, 0.5, 21);
    let mut rng = StdRng::seed_from_u64(22);
    let sync = alg1_coloring::run(&g, &ids, Alg1Config::default(), &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(22);
    let asynchronous = alg1_coloring::run_async(&g, &ids, Alg1Config::default(), &mut rng).unwrap();
    assert!(coloring::verify::is_proper_coloring(
        &g,
        &asynchronous.colors
    ));
    assert!(asynchronous.costs.total_messages() >= sync.costs.simulated_messages());
}
