//! Small-scale checks of the Figure-1 claims: the paper's algorithms stay
//! well below the Ω(m) baselines on dense graphs and their costs scale like
//! the claimed Õ(·) bounds (up to generous polylog slack).

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak::core::experiments;
use symbreak::graphs::{generators, Graph, IdAssignment, IdSpace};

fn dense_instance(n: usize, seed: u64) -> (Graph, IdAssignment) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = generators::connected_gnp(n, 0.8, &mut rng);
    let ids = IdAssignment::random(&g, IdSpace::CUBIC, &mut rng);
    (g, ids)
}

#[test]
fn figure1_upper_bound_rows_are_valid_and_sublinear_in_m() {
    let (g, ids) = dense_instance(150, 3);
    let alg1 = experiments::measure_alg1(&g, &ids, 1);
    let alg2 = experiments::measure_alg2(&g, &ids, 0.5, 2);
    let alg3 = experiments::measure_alg3(&g, &ids, 3);
    let luby = experiments::measure_luby_baseline(&g, &ids, 4);
    let base = experiments::measure_coloring_baseline(&g, &ids, 5);

    for row in [&alg1, &alg2, &alg3, &luby, &base] {
        assert!(row.valid, "{} invalid", row.algorithm);
    }
    // The o(m) upper bounds beat the Ω(m) baselines.
    assert!(alg1.total_messages() < base.total_messages());
    assert!(alg3.total_messages() < luby.total_messages());
    // Algorithm 2 (the Õ(n)-message algorithm) is the cheapest of all in its
    // simulated (non-charged) traffic.
    assert!(alg2.simulated_messages < alg1.simulated_messages);
    // The baselines really are Ω(m).
    assert!(luby.total_messages() >= luby.m as u64);
    assert!(base.total_messages() >= base.m as u64);
}

#[test]
fn message_scaling_with_n_has_the_right_shape() {
    // Measured exponents: baseline messages grow like m ≈ n² on dense
    // G(n, p); Algorithm 3's messages grow markedly slower. With only two
    // sizes this is a sanity check of the trend, not a fit — the benches do
    // the multi-point fits.
    let (g1, ids1) = dense_instance(80, 11);
    let (g2, ids2) = dense_instance(160, 12);

    let a3_small = experiments::measure_alg3(&g1, &ids1, 1).total_messages() as f64;
    let a3_large = experiments::measure_alg3(&g2, &ids2, 2).total_messages() as f64;
    let luby_small = experiments::measure_luby_baseline(&g1, &ids1, 3).total_messages() as f64;
    let luby_large = experiments::measure_luby_baseline(&g2, &ids2, 4).total_messages() as f64;

    let a3_growth = a3_large / a3_small;
    let luby_growth = luby_large / luby_small;
    assert!(
        a3_growth < luby_growth,
        "Algorithm 3 growth {a3_growth:.2}x should be below the baseline's {luby_growth:.2}x"
    );
}

#[test]
fn lower_bound_family_rows() {
    use symbreak::lowerbounds::experiments::{
        crossed_utilization_experiment, cycle_message_experiment, Problem,
    };
    let mut rng = StdRng::seed_from_u64(17);
    let stats = crossed_utilization_experiment(Problem::Coloring, 5, 5, &mut rng);
    assert!(stats.utilized_fraction() > 0.5);
    assert_eq!(stats.pair_utilized, stats.samples);

    let cycles = cycle_message_experiment(Problem::Coloring, 10, 8, &mut rng);
    assert!(cycles.messages as usize >= cycles.n);
    assert_eq!(cycles.mute_cycles, 0);
}
