//! Offline vendored stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) subset of the `rand 0.8` API that the `symbreak` workspace
//! uses, with compatible signatures:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator seeded via
//!   SplitMix64 (the stream differs from upstream `StdRng`, which is fine:
//!   the workspace only relies on determinism for a fixed seed, never on a
//!   specific stream),
//! * `gen`, `gen_range` (over integer and float ranges) and `gen_bool`.
//!
//! Swapping this crate for the real `rand` is a one-line change in the
//! workspace `Cargo.toml` once a registry is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A low-level source of 32/64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that [`Rng::gen`] can produce uniformly at random.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Lemire's widening-multiply mapping; bias is < 2^-64 per draw, far below
    // anything the workspace's statistical tests can resolve.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_range_impls!(u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience sampling methods layered on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*
    /// seeded by SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Returns the generator's internal xoshiro256\*\* state, for
        /// checkpointing. [`StdRng::from_state`] rebuilds a generator that
        /// continues the exact same stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which xoshiro256\*\* cannot leave
        /// (and which [`StdRng::state`] therefore never returns).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "the all-zero state is not a valid xoshiro256** state"
            );
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn all_zero_state_is_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=3);
            assert!(y <= 3);
            let z = rng.gen_range(-0.5f64 + 0.5..1.0);
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_rng<R: super::Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = takes_rng(&mut rng);
        let _ = rng.gen::<u64>();
    }
}
