//! Offline vendored stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io. The workspace only uses
//! `#[derive(Serialize, Deserialize)]` as forward-looking annotations — no
//! code path serializes anything yet — so these derives expand to nothing.
//! Swapping in the real `serde`/`serde_derive` later requires no source
//! changes outside the workspace `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
