//! Offline vendored stand-in for the `rayon` crate.
//!
//! The symbreak workspace builds with no registry access, so this crate
//! provides the *API subset of rayon the workspace actually uses* — the
//! scoped fork-join surface — with the same signatures, backed by
//! [`std::thread::scope`]:
//!
//! * [`ThreadPoolBuilder`] / [`ThreadPool`] — carries a thread-count budget
//!   and exposes [`ThreadPool::scope`] / [`ThreadPool::install`].
//! * [`scope`] / [`Scope::spawn`] — structured parallelism over borrowed
//!   data; every spawned task joins before `scope` returns.
//! * [`ThreadPool::par_chunks_mut`] — the chunked `par_for` used by the
//!   round engine's sharded stepping: splits a mutable slice into up to
//!   `4 × num_threads` contiguous chunks **claimed dynamically** by
//!   `num_threads` workers through one shared [`AtomicUsize`] cursor. The
//!   oversubscription gives the coarse-grained work stealing real rayon's
//!   deques provide: a worker that drew a heavy chunk keeps crunching it
//!   while the others drain the remaining chunks, so skewed per-chunk work
//!   (power-law inboxes, bucket coloring) load-balances instead of stalling
//!   the round on the slowest static shard. Chunk boundaries and indices
//!   depend only on the input length and the thread budget — never on
//!   execution order — so callers that merge per-chunk outputs by chunk
//!   index (e.g. `DeliveryBuffer::flip_shards`) stay deterministic.
//!
//! Differences from real rayon, by design of a minimal stand-in:
//!
//! * Tasks are executed on freshly spawned scoped OS threads rather than a
//!   persistent work-stealing deque: **every `scope` call pays one OS-thread
//!   spawn per task** (tens of microseconds each). Callers must make scopes
//!   coarse — the round engine spawns one worker per thread per *round* and
//!   runs small rounds single-sharded inline, skipping `scope` entirely —
//!   and stealing is at chunk granularity only.
//! * A pool built with `num_threads(1)` — and any scope handed exactly one
//!   task — runs inline on the caller thread with no spawn at all.
//!
//! Point the `[workspace.dependencies]` entry at crates.io rayon to swap in
//! the real pool — no source changes required in calling crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Chunk-count multiplier of [`ThreadPool::par_chunks_mut`]: the slice is
/// split into up to this many chunks per worker so dynamic claiming can
/// rebalance skewed per-chunk work without shrinking chunks so far that the
/// claim cursor becomes a contention point.
const CHUNK_OVERSUBSCRIPTION: usize = 4;

/// Error type returned by [`ThreadPoolBuilder::build`].
///
/// The vendored pool cannot actually fail to build; the type exists for
/// signature compatibility with rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default configuration (automatic thread count).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads; `0` (the default) means one per
    /// available CPU.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. The vendored implementation never fails.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A fork-join execution context with a fixed thread budget.
///
/// Unlike real rayon no worker threads are parked in the background: each
/// [`ThreadPool::scope`] call spawns (at most `num_threads`) scoped threads
/// and joins them before returning.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread budget.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with access to a [`Scope`] on which tasks borrowing local
    /// data can be spawned; returns once every spawned task has finished.
    pub fn scope<'env, F, R>(&self, op: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
        R: Send,
    {
        scope(op)
    }

    /// Runs `op` "inside" the pool. The vendored pool has no registry of
    /// worker threads, so this simply invokes `op` on the caller thread; it
    /// exists so code written against rayon's `pool.install(|| ...)` idiom
    /// compiles unchanged.
    pub fn install<F, R>(&self, op: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        op()
    }

    /// Chunked `par_for` with atomic chunk claiming: splits `items` into up
    /// to `4 × num_threads` contiguous chunks of near-equal length and runs
    /// `f(chunk_index, chunk)` for each, with `num_threads` workers claiming
    /// chunk indices from one shared [`AtomicUsize`] cursor.
    ///
    /// Chunk `k` covers `items[k*chunk_len .. (k+1)*chunk_len]` for a
    /// `chunk_len` of `ceil(items.len() / (4·num_threads))`, so chunk
    /// boundaries and indices are deterministic regardless of which worker
    /// claims which chunk — only the *assignment* of chunks to workers is
    /// dynamic, which is what load-balances skewed per-chunk work. With one
    /// thread (or one chunk) everything runs inline on the caller, in chunk
    /// order.
    pub fn par_chunks_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if items.is_empty() {
            return;
        }
        if self.num_threads == 1 {
            // One worker: no claiming to rebalance, the whole slice is one
            // inline chunk.
            f(0, items);
            return;
        }
        let target_chunks = self.num_threads * CHUNK_OVERSUBSCRIPTION;
        let chunk_len = items.len().div_ceil(target_chunks).max(1);
        let num_chunks = items.len().div_ceil(chunk_len);
        if num_chunks == 1 {
            f(0, items);
            return;
        }
        // Pre-split into claimable slots. The cursor hands each index to
        // exactly one worker; the per-slot mutex only transfers ownership of
        // the `&mut` chunk (each is locked exactly once, uncontended).
        type Slot<'c, T> = Mutex<Option<(usize, &'c mut [T])>>;
        let slots: Vec<Slot<'_, T>> = items
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(k, chunk)| Mutex::new(Some((k, chunk))))
            .collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.num_threads.min(num_chunks);
        self.scope(|s| {
            for _ in 0..workers {
                let slots = &slots;
                let cursor = &cursor;
                let f = &f;
                s.spawn(move |_| loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= slots.len() {
                        break;
                    }
                    let (idx, chunk) = slots[k]
                        .lock()
                        .expect("chunk mutex poisoned")
                        .take()
                        .expect("each chunk is claimed exactly once");
                    f(idx, chunk);
                });
            }
        });
    }
}

/// A scope for spawning tasks that may borrow non-`'static` data, mirroring
/// `rayon::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task; it runs concurrently with the caller and is joined
    /// before the enclosing [`scope`] call returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }));
    }
}

impl fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

/// Free-standing scope, mirroring `rayon::scope`: tasks spawned on the
/// [`Scope`] may borrow from the enclosing stack frame and are all joined
/// before this function returns.
pub fn scope<'env, F, R>(op: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| op(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_from_task() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn scope_tasks_borrow_locals() {
        let mut parts = vec![0u64; 4];
        let input = 10u64;
        scope(|s| {
            for (i, p) in parts.iter_mut().enumerate() {
                let input = &input;
                s.spawn(move |_| *p = *input + i as u64);
            }
        });
        assert_eq!(parts, vec![10, 11, 12, 13]);
    }

    #[test]
    fn pool_builder_resolves_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let auto = ThreadPoolBuilder::new().build().unwrap();
        assert!(auto.current_num_threads() >= 1);
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn par_chunks_mut_covers_every_item_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut data = vec![0u32; 103];
        pool.par_chunks_mut(&mut data, |k, chunk| {
            for x in chunk.iter_mut() {
                *x += 1 + k as u32;
            }
        });
        // Chunk length is ceil(103/16) = 7, so chunk ids are 0..=14 and
        // item i belongs to chunk i/7 regardless of claim order.
        let expected: u32 = (0..103).map(|i| 1 + (i / 7) as u32).sum();
        assert_eq!(data.iter().sum::<u32>(), expected);
        assert!(data
            .iter()
            .enumerate()
            .all(|(i, &x)| x == 1 + (i / 7) as u32));
        // Empty inputs are a no-op.
        pool.par_chunks_mut(&mut [] as &mut [u32], |_, _| panic!("no chunks"));
        // One thread runs inline, still in chunk order.
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let mut tiny = vec![5u32; 3];
        single.par_chunks_mut(&mut tiny, |k, chunk| {
            assert_eq!(k, 0);
            chunk[0] = 9;
        });
        assert_eq!(tiny, vec![9, 5, 5]);
    }

    #[test]
    fn par_chunks_mut_chunk_indices_are_deterministic_under_skew() {
        // A heavy first chunk must not change which indices the other
        // chunks see, and every chunk must be processed exactly once even
        // though claiming is dynamic.
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let n = 60usize; // 12 chunks of 5 at 3 threads
        let mut data: Vec<(usize, usize)> = (0..n).map(|i| (i, usize::MAX)).collect();
        pool.par_chunks_mut(&mut data, |k, chunk| {
            if k == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            for item in chunk.iter_mut() {
                item.1 = k;
            }
        });
        for (i, &(orig, k)) in data.iter().enumerate() {
            assert_eq!(orig, i);
            assert_eq!(k, i / 5, "item {i} saw chunk index {k}");
        }
    }
}
