//! Offline vendored stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! The build environment has no access to crates.io, so this crate provides
//! the API subset the workspace's benches use (`Criterion::default()`,
//! builder knobs, `bench_function`, `Bencher::iter`, the `criterion_group!`
//! and `criterion_main!` macros and `black_box`) backed by a simple
//! wall-clock sampling loop: per sample the routine runs in a batch sized to
//! fill `measurement_time / sample_size`, and the mean, min and max
//! nanoseconds per iteration are printed.
//!
//! Results are also appended to the `CRITERION_JSON` file (one JSON object
//! per line) when that environment variable is set, which is how the
//! workspace's `BENCH_*.json` artifacts are produced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sampled {
    /// Mean ns/iter over all samples.
    pub mean_ns: f64,
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Slowest sample, ns/iter.
    pub max_ns: f64,
    /// Total iterations executed while measuring.
    pub iterations: u64,
}

/// The benchmark driver. A compatible subset of `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget of the measurement phase.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the wall-clock budget of the warm-up phase.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: self.clone(),
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(s) => {
                println!(
                    "{id:<40} time: [{} {} {}]  ({} iters)",
                    fmt_ns(s.min_ns),
                    fmt_ns(s.mean_ns),
                    fmt_ns(s.max_ns),
                    s.iterations
                );
                if let Ok(path) = std::env::var("CRITERION_JSON") {
                    append_json(&path, id, s);
                }
            }
            None => println!("{id:<40} (no measurement — Bencher::iter never called)"),
        }
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

fn append_json(path: &str, id: &str, s: Sampled) {
    use std::io::Write;
    let line = format!(
        "{{\"bench\":\"{}\",\"mean_ns\":{:.2},\"min_ns\":{:.2},\"max_ns\":{:.2},\"iterations\":{}}}\n",
        id.replace('"', "'"),
        s.mean_ns,
        s.min_ns,
        s.max_ns,
        s.iterations
    );
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Per-benchmark measurement handle. A compatible subset of
/// `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    config: Criterion,
    result: Option<Sampled>,
}

impl Bencher {
    /// Measures `routine` and records the statistics.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up budget is spent, measuring the
        // rough per-iteration cost to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        // Measurement: `sample_size` samples, each a batch sized so all
        // samples together roughly fill the measurement budget.
        let samples = self.config.sample_size;
        let budget_ns = self.config.measurement_time.as_nanos() as f64;
        let batch = ((budget_ns / samples as f64 / per_iter.max(1.0)).ceil() as u64).max(1);

        let mut total_ns = 0.0;
        let mut min_ns = f64::INFINITY;
        let mut max_ns: f64 = 0.0;
        let mut iterations = 0u64;
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            total_ns += ns;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            iterations += batch;
        }
        self.result = Some(Sampled {
            mean_ns: total_ns / samples as f64,
            min_ns,
            max_ns,
            iterations,
        });
    }
}

/// Declares a group of benchmark targets. Compatible with both the simple
/// and the `name = ...; config = ...; targets = ...` forms of
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary entry point. Compatible with
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn macros_expand() {
        fn target(c: &mut Criterion) {
            c.bench_function("t", |b| b.iter(|| 0));
        }
        criterion_group! {
            name = group;
            config = Criterion::default()
                .sample_size(2)
                .measurement_time(Duration::from_millis(5))
                .warm_up_time(Duration::from_millis(1));
            targets = target
        }
        group();
    }
}
