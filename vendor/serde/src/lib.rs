//! Offline vendored stand-in for [`serde`](https://docs.rs/serde).
//!
//! The build environment has no access to crates.io. The workspace uses
//! serde only as `#[derive(Serialize, Deserialize)]` annotations; this crate
//! re-exports no-op derive macros so those annotations compile without
//! generating any code. Swap the workspace `Cargo.toml` entry for the real
//! crate to turn serialization on — no source changes needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
