//! The Section 2 lower bounds, made tangible.
//!
//! Builds the crossed-graph family of Figure 2, shows that the shifted ID
//! assignment hides the crossing from comparison-based algorithms, and
//! measures how many edges a *correct* comparison-based algorithm utilizes
//! (Definition 2.3) — the quantity the Ω(n²) bound is really about. Also
//! runs the disjoint-cycle experiment behind the Ω(n) KT-ρ bound.
//!
//! Run with: `cargo run --release --example lower_bound_demo`

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak::lowerbounds::crossed::{CrossedFamily, Crossing};
use symbreak::lowerbounds::cycles::{find_failing_assignment, rank_mod3_rule, CycleFamily};
use symbreak::lowerbounds::experiments::{
    crossed_utilization_experiment, cycle_message_experiment, Problem,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(2021);

    println!("== Crossed-graph family (Figure 2, Theorems 2.10–2.16) ==");
    let family = CrossedFamily::new(6);
    let crossing = Crossing { x: 1, y: 2, z: 3 };
    let base = family.base_graph();
    let crossed = family.crossed_graph(crossing);
    let psi = family.psi(crossing);
    println!(
        "base graph: n = {}, m = {}; crossed graph has the same degrees ({} edges)",
        base.num_nodes(),
        base.num_edges(),
        crossed.num_edges()
    );
    let ((y, z), (xp, yp)) = family.crossed_pair(crossing);
    println!(
        "crossed pair: e = {{{y}, {z}}}, e' = {{{xp}, {yp}}}; ψ(x') = {} = ψ(y)+1 = {}+1",
        psi.id_of(xp),
        psi.id_of(y)
    );

    for (problem, label) in [(Problem::Coloring, "(Δ+1)-coloring"), (Problem::Mis, "MIS")] {
        for t in [4usize, 6, 8] {
            let stats = crossed_utilization_experiment(problem, t, 6, &mut rng);
            println!(
                "{label:>16}, t = {t:2} (n = {:3}): utilized {:7.1} of {:5} edges ({:.0}%), crossed pair hit in {}/{} runs",
                6 * t,
                stats.avg_utilized_edges,
                stats.base_edges,
                100.0 * stats.utilized_fraction(),
                stats.pair_utilized,
                stats.samples
            );
        }
    }

    println!("\n== Disjoint-cycle family (Theorem 2.17) ==");
    for count in [8usize, 16, 32] {
        let stats = cycle_message_experiment(Problem::Mis, count, 8, &mut rng);
        println!(
            "{count:3} cycles (n = {:4}): {:6} messages ({:.1} per node), {} mute cycles",
            stats.n,
            stats.messages,
            stats.messages as f64 / stats.n as f64,
            stats.mute_cycles
        );
    }
    let family = CycleFamily::new(4, 9);
    match find_failing_assignment(&family, 1, rank_mod3_rule, 500, &mut rng) {
        Some(tries) => println!(
            "a radius-1 silent rule was defeated by a random ID assignment after {tries} tries \
             — silent cycles cannot colour themselves, so Ω(n) messages are unavoidable"
        ),
        None => println!("no failing assignment found in 500 tries (increase the search budget)"),
    }
}
