//! Frequency assignment on a dense "social overlay" network.
//!
//! The paper's motivation for o(m)-message algorithms is networks (peer to
//! peer overlays, dense data-centre fabrics) where the number of connections
//! m is enormous compared to the number of machines n, and where every node
//! already knows its neighbours' identifiers (KT-1). This example builds a
//! dense overlay with a few hub machines, assigns "frequencies" (colours)
//! with both Algorithm 1 and Algorithm 2, and reports how far below m the
//! communication stayed, plus the ε trade-off of Theorem 3.8.
//!
//! Run with: `cargo run --release --example social_network_coloring`

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak::classic::coloring::verify;
use symbreak::core::{alg2_coloring, experiments, Alg2Config, MeasurementTable};
use symbreak::graphs::{GraphBuilder, IdAssignment, IdSpace, NodeId};

/// A dense overlay: a core of hubs all connected to each other and to most
/// members, plus a sparser periphery.
fn overlay(n: usize, hubs: usize, rng: &mut StdRng) -> symbreak::graphs::Graph {
    use rand::Rng;
    let mut b = GraphBuilder::new(n);
    for h in 0..hubs {
        for j in (h + 1)..n {
            if j < hubs || rng.gen_bool(0.8) {
                b.add_edge(NodeId(h as u32), NodeId(j as u32));
            }
        }
    }
    for i in hubs..n {
        for j in (i + 1)..n {
            if rng.gen_bool(0.15) {
                b.add_edge(NodeId(i as u32), NodeId(j as u32));
            }
        }
    }
    b.build()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let graph = overlay(150, 20, &mut rng);
    let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
    println!(
        "overlay network: n = {}, m = {}, Δ = {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );

    let mut table = MeasurementTable::new();
    table.push(experiments::measure_alg1(&graph, &ids, 11));
    for eps in [0.25, 0.5, 1.0] {
        table.push(experiments::measure_alg2(&graph, &ids, eps, 12));
    }
    table.push(experiments::measure_coloring_baseline(&graph, &ids, 13));
    println!("{table}");

    // Show the (1+ε)Δ palette trade-off explicitly.
    for eps in [0.25, 0.5, 1.0] {
        let config = Alg2Config {
            epsilon: eps,
            ..Alg2Config::default()
        };
        let out = alg2_coloring::run(&graph, &ids, config, &mut rng).expect("Algorithm 2 runs");
        assert!(verify::is_proper_coloring(&graph, &out.colors));
        println!(
            "ε = {eps:4}: palette size {} (Δ = {}), total messages {}",
            out.palette_size,
            out.max_degree,
            out.costs.total_messages()
        );
    }
}
