//! Quickstart: colour a dense random graph with Algorithm 1 and compare its
//! message cost against the Θ(m)-message baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak::classic::coloring::verify;
use symbreak::core::{alg1_coloring, experiments, Alg1Config, MeasurementTable};
use symbreak::graphs::{generators, IdAssignment, IdSpace};

fn main() {
    let n = 120;
    let mut rng = StdRng::seed_from_u64(42);
    let graph = generators::connected_gnp(n, 0.7, &mut rng);
    let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
    println!(
        "graph: n = {}, m = {}, Δ = {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );

    // Run the paper's KT-1 (Δ+1)-coloring (Algorithm 1, Theorem 3.3).
    let outcome = alg1_coloring::run(&graph, &ids, Alg1Config::default(), &mut rng)
        .expect("Algorithm 1 should succeed on a connected graph");
    assert!(verify::is_proper_coloring(&graph, &outcome.colors));
    println!(
        "\nAlgorithm 1 cost breakdown (simulated vs charged):\n{}",
        outcome.costs
    );

    // Compare against the Θ(m)-message baseline and against Algorithm 3 /
    // Luby for MIS.
    let mut table = MeasurementTable::new();
    table.push(experiments::measure_alg1(&graph, &ids, 1));
    table.push(experiments::measure_coloring_baseline(&graph, &ids, 2));
    table.push(experiments::measure_alg3(&graph, &ids, 3));
    table.push(experiments::measure_luby_baseline(&graph, &ids, 4));
    println!("{table}");
    println!("`msg/m` below 1.0 means the algorithm broke the Ω(m) barrier on this instance.");
}
