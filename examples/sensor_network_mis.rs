//! Cluster-head election (MIS) in a dense sensor deployment using KT-2
//! knowledge (Algorithm 3, Theorem 4.1).
//!
//! Sensor networks routinely know their two-hop neighbourhood from the
//! neighbour-discovery phase, which is exactly the KT-2 assumption of
//! Section 4. This example elects cluster heads (a maximal independent set)
//! with Algorithm 3 and with Luby's Θ(m)-message algorithm, and shows the
//! sampled-set / remnant-degree mechanics the proof of Theorem 4.1 relies on.
//!
//! Run with: `cargo run --release --example sensor_network_mis`

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak::classic::mis::verify;
use symbreak::core::{alg3_mis, experiments, Alg3Config, MeasurementTable};
use symbreak::graphs::{generators, IdAssignment, IdSpace};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    // A dense random deployment: n sensors, most pairs within radio range.
    let graph = generators::gnp(200, 0.5, &mut rng);
    let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
    println!(
        "sensor deployment: n = {}, m = {}, Δ = {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );

    let out = alg3_mis::run(&graph, &ids, Alg3Config::default(), &mut rng)
        .expect("Algorithm 3 runs on any graph");
    assert!(verify::is_mis(&graph, &out.in_mis));
    let heads = out.in_mis.iter().filter(|&&b| b).count();
    println!(
        "\nAlgorithm 3: {} cluster heads, |S| = {}, remnant Δ = {} (√n ≈ {:.1})",
        heads,
        out.sampled,
        out.remnant_max_degree,
        (graph.num_nodes() as f64).sqrt()
    );
    println!("\ncost breakdown:\n{}", out.costs);

    let mut table = MeasurementTable::new();
    table.push(experiments::measure_alg3(&graph, &ids, 1));
    table.push(experiments::measure_luby_baseline(&graph, &ids, 2));
    println!("{table}");
}
