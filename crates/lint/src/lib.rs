//! `congest-lint`: a standalone invariant linter for the symbreak workspace.
//!
//! The workspace's two central promises — *determinism* (reports are
//! bit-identical at every thread × shard × lane combination) and *model
//! fidelity* (the CONGEST rules the reproduced theorems assume) — are
//! re-asserted by differential test suites, but nothing catches the hazards
//! at their *source*: an order-dependent `HashMap` iteration, a wall-clock
//! read on a report path, an environment knob that silently drifts out of
//! the README. This crate closes that gap with a small, fully offline
//! static-analysis pass:
//!
//! * a hand-rolled, comment/string-aware Rust **tokenizer** (no `syn`; the
//!   build environment has no registry access) that understands line and
//!   nested block comments, ordinary/raw/byte string literals, character
//!   literals vs. lifetimes, and raw identifiers;
//! * a catalogue of **deny-by-default diagnostics** (see [`catalogue`]):
//!   determinism lints (`hash-iter`, `wall-clock`, `thread-id`), hygiene
//!   lints (`forbid-unsafe`, `missing-docs`, `dbg-residue`) and doc-sync
//!   lints (`env-knob-doc`, `bench-schema`);
//! * an explicit, checked-in **allowlist** (`lint.allow` at the workspace
//!   root) for the handful of justified exceptions, each carrying a
//!   one-line reason — with a `stale-allow` diagnostic so dead entries
//!   cannot linger;
//! * a machine-readable **report** ([`report_json`], emitted as
//!   `lint_report.json` by CI) carrying the lint catalogue and the registry
//!   of every `CONGEST_*`/`*_SMOKE` environment knob found in source, so
//!   future PRs can diff coverage instead of rediscovering it.
//!
//! The binary (`congest-lint`, `cargo run -p lint`) exits non-zero on any
//! non-allowlisted diagnostic and is wired up as a CI gate. The runtime
//! complement to this static pass is `symbreak_congest::audit`, which
//! checks the CONGEST model rules on live runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

/// Kind of one lexical token.
///
/// Only the shapes the lints inspect are distinguished; numeric literals and
/// lifetimes are kept as opaque markers so token-sequence matching stays
/// positionally honest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (raw identifiers are stored without `r#`).
    Ident(String),
    /// A string literal (ordinary, raw or byte), with simple escapes decoded.
    Str(String),
    /// A single punctuation character.
    Punct(char),
    /// A numeric literal (value not retained).
    Num,
    /// A lifetime such as `'a` (name not retained).
    Lifetime,
    /// A character or byte literal (value not retained).
    CharLit,
}

/// One token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// Tokenizes Rust source, skipping comments and decoding string escapes.
///
/// The lexer is intentionally forgiving: malformed input never panics, it
/// just degrades into punctuation tokens. That is the right trade for a
/// linter — it must survive every file in the tree, including fixtures that
/// exist to be wrong.
pub fn lex(src: &str) -> Vec<Token> {
    let c: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    // Consumes a quoted run starting at the opening `"` (index `i`),
    // decoding the simple escapes; returns (content, next index).
    let scan_string = |start: usize, line: &mut u32| -> (String, usize) {
        let mut s = String::new();
        let mut j = start + 1;
        while j < c.len() {
            match c[j] {
                '"' => return (s, j + 1),
                '\\' if j + 1 < c.len() => {
                    match c[j + 1] {
                        'n' => s.push('\n'),
                        't' => s.push('\t'),
                        'r' => s.push('\r'),
                        '0' => s.push('\0'),
                        '\\' => s.push('\\'),
                        '"' => s.push('"'),
                        '\'' => s.push('\''),
                        '\n' => *line += 1, // line-continuation escape
                        other => {
                            // \x.., \u{..}: keep the raw spelling; no lint
                            // matches on exotic escapes.
                            s.push('\\');
                            s.push(other);
                        }
                    }
                    j += 2;
                }
                ch => {
                    if ch == '\n' {
                        *line += 1;
                    }
                    s.push(ch);
                    j += 1;
                }
            }
        }
        (s, j)
    };

    // Consumes a raw string whose `r` sits just before `start`; `start`
    // points at the first `#` or the opening quote. Returns (content, next).
    let scan_raw_string = |start: usize, line: &mut u32| -> (String, usize) {
        let mut hashes = 0usize;
        let mut j = start;
        while j < c.len() && c[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j >= c.len() || c[j] != '"' {
            return (String::new(), start); // not actually a raw string
        }
        j += 1;
        let mut s = String::new();
        while j < c.len() {
            if c[j] == '"' {
                let mut k = 0;
                while k < hashes && j + 1 + k < c.len() && c[j + 1 + k] == '#' {
                    k += 1;
                }
                if k == hashes {
                    return (s, j + 1 + hashes);
                }
            }
            if c[j] == '\n' {
                *line += 1;
            }
            s.push(c[j]);
            j += 1;
        }
        (s, j)
    };

    let is_ident_start = |ch: char| ch.is_alphabetic() || ch == '_';
    let is_ident_cont = |ch: char| ch.is_alphanumeric() || ch == '_';

    while i < c.len() {
        let ch = c[i];
        match ch {
            '\n' => {
                line += 1;
                i += 1;
            }
            ch if ch.is_whitespace() => i += 1,
            '/' if i + 1 < c.len() && c[i + 1] == '/' => {
                while i < c.len() && c[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < c.len() && c[i + 1] == '*' => {
                let mut depth = 1usize;
                i += 2;
                while i < c.len() && depth > 0 {
                    if c[i] == '/' && i + 1 < c.len() && c[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if c[i] == '*' && i + 1 < c.len() && c[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if c[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let (s, next) = scan_string(i, &mut line);
                toks.push(Token {
                    tok: Tok::Str(s),
                    line: start_line,
                });
                i = next;
            }
            '\'' => {
                // Char literal vs lifetime. An escape or a
                // single-scalar-then-quote shape is a char literal;
                // anything else is a lifetime.
                if i + 1 < c.len() && c[i + 1] == '\\' {
                    let mut j = i + 2;
                    while j < c.len() && c[j] != '\'' && c[j] != '\n' {
                        j += 1;
                    }
                    toks.push(Token {
                        tok: Tok::CharLit,
                        line,
                    });
                    i = (j + 1).min(c.len());
                } else if i + 2 < c.len() && c[i + 2] == '\'' && c[i + 1] != '\'' {
                    toks.push(Token {
                        tok: Tok::CharLit,
                        line,
                    });
                    i += 3;
                } else {
                    let mut j = i + 1;
                    while j < c.len() && is_ident_cont(c[j]) {
                        j += 1;
                    }
                    toks.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                    i = j.max(i + 1);
                }
            }
            'r' if i + 1 < c.len() && (c[i + 1] == '"' || c[i + 1] == '#') => {
                // Raw string r"…" / r#"…"#, or raw identifier r#ident.
                if c[i + 1] == '#' && i + 2 < c.len() && is_ident_start(c[i + 2]) {
                    let mut j = i + 2;
                    while j < c.len() && is_ident_cont(c[j]) {
                        j += 1;
                    }
                    toks.push(Token {
                        tok: Tok::Ident(c[i + 2..j].iter().collect()),
                        line,
                    });
                    i = j;
                } else {
                    let start_line = line;
                    let (s, next) = scan_raw_string(i + 1, &mut line);
                    if next == i + 1 {
                        // `r#` that was neither raw string nor raw ident.
                        toks.push(Token {
                            tok: Tok::Ident("r".into()),
                            line,
                        });
                        i += 1;
                    } else {
                        toks.push(Token {
                            tok: Tok::Str(s),
                            line: start_line,
                        });
                        i = next;
                    }
                }
            }
            'b' if i + 1 < c.len() && (c[i + 1] == '"' || c[i + 1] == '\'' || c[i + 1] == 'r') => {
                if c[i + 1] == '"' {
                    let start_line = line;
                    let (s, next) = scan_string(i + 1, &mut line);
                    toks.push(Token {
                        tok: Tok::Str(s),
                        line: start_line,
                    });
                    i = next;
                } else if c[i + 1] == '\'' {
                    let mut j = i + 2;
                    if j < c.len() && c[j] == '\\' {
                        j += 1;
                    }
                    while j < c.len() && c[j] != '\'' && c[j] != '\n' {
                        j += 1;
                    }
                    toks.push(Token {
                        tok: Tok::CharLit,
                        line,
                    });
                    i = (j + 1).min(c.len());
                } else if i + 2 < c.len() && (c[i + 2] == '"' || c[i + 2] == '#') {
                    let start_line = line;
                    let (s, next) = scan_raw_string(i + 2, &mut line);
                    if next == i + 2 {
                        toks.push(Token {
                            tok: Tok::Ident("br".into()),
                            line,
                        });
                        i += 2;
                    } else {
                        toks.push(Token {
                            tok: Tok::Str(s),
                            line: start_line,
                        });
                        i = next;
                    }
                } else {
                    // plain identifier starting with `b`
                    let mut j = i;
                    while j < c.len() && is_ident_cont(c[j]) {
                        j += 1;
                    }
                    toks.push(Token {
                        tok: Tok::Ident(c[i..j].iter().collect()),
                        line,
                    });
                    i = j;
                }
            }
            ch if is_ident_start(ch) => {
                let mut j = i;
                while j < c.len() && is_ident_cont(c[j]) {
                    j += 1;
                }
                toks.push(Token {
                    tok: Tok::Ident(c[i..j].iter().collect()),
                    line,
                });
                i = j;
            }
            ch if ch.is_ascii_digit() => {
                let mut j = i + 1;
                while j < c.len() {
                    if is_ident_cont(c[j]) {
                        j += 1;
                    } else if c[j] == '.'
                        && j + 1 < c.len()
                        && c[j + 1].is_ascii_digit()
                        && (j == 0 || c[j - 1] != '.')
                    {
                        j += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Token { tok: Tok::Num, line });
                i = j;
            }
            other => {
                toks.push(Token {
                    tok: Tok::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

// ---------------------------------------------------------------------------
// Diagnostics and catalogue
// ---------------------------------------------------------------------------

/// One lint finding, keyed by lint id and source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path relative to the linted root, with forward slashes.
    pub path: String,
    /// 1-based line number (0 for file-level findings).
    pub line: u32,
    /// Lint id from [`catalogue`].
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// The lint catalogue: `(id, what it denies and why)`.
///
/// Every id here is deny-by-default; exceptions go in `lint.allow` with a
/// one-line reason.
pub fn catalogue() -> &'static [(&'static str, &'static str)] {
    &[
        (
            "hash-iter",
            "HashMap/HashSet in simulator or report crates: iteration order is \
             nondeterministic and can leak into reports; use BTreeMap/BTreeSet or \
             sorted vectors, or allowlist a lookup-only use with a reason",
        ),
        (
            "wall-clock",
            "Instant/SystemTime outside crates/bench: wall-clock reads are \
             nondeterministic inputs to report-producing code; timing belongs in \
             the bench layer",
        ),
        (
            "thread-id",
            "thread::current (thread identity) must not influence simulator \
             output: reports are bit-identical at every thread count",
        ),
        (
            "forbid-unsafe",
            "every crate root must carry #![forbid(unsafe_code)]",
        ),
        (
            "missing-docs",
            "every crate root must carry #![warn(missing_docs)]",
        ),
        (
            "dbg-residue",
            "dbg!/todo!/unimplemented! must not ship in the workspace",
        ),
        (
            "env-knob-doc",
            "every CONGEST_*/ *_SMOKE environment knob named in source must have \
             a matching `VAR` row in the README env-knob tables",
        ),
        (
            "bench-schema",
            "every committed BENCH_*.json artifact must be traceable to a bench \
             source that names it, and every key the artifact carries must appear \
             in that bench's emitted schema",
        ),
        (
            "stale-allow",
            "lint.allow entries that no longer suppress any diagnostic must be \
             removed",
        ),
    ]
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

/// One parsed `lint.allow` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Lint id the entry suppresses.
    pub lint: String,
    /// Root-relative path the entry applies to.
    pub path: String,
    /// Mandatory one-line justification.
    pub reason: String,
    /// 1-based line in `lint.allow`.
    pub line: u32,
}

/// Parses `lint.allow`: one `lint-id path # reason` entry per line; blank
/// lines and lines starting with `#` are comments. Returns entries or a
/// parse error naming the offending line.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (head, reason) = trimmed
            .split_once('#')
            .ok_or_else(|| format!("lint.allow:{lineno}: entry is missing a `# reason`"))?;
        let reason = reason.trim();
        if reason.is_empty() {
            return Err(format!("lint.allow:{lineno}: empty reason"));
        }
        let mut parts = head.split_whitespace();
        let (Some(lint), Some(path), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "lint.allow:{lineno}: expected `lint-id path # reason`"
            ));
        };
        if !catalogue().iter().any(|(id, _)| *id == lint) {
            return Err(format!("lint.allow:{lineno}: unknown lint id `{lint}`"));
        }
        entries.push(AllowEntry {
            lint: lint.to_string(),
            path: path.to_string(),
            reason: reason.to_string(),
            line: lineno,
        });
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

/// Directory names never descended into: build output, lint fixtures (they
/// exist to be wrong), VCS metadata.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git", ".github"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !SKIP_DIRS.contains(&name) {
                collect_rs_files(&path, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|comp| comp.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

struct SourceFile {
    rel: String,
    tokens: Vec<Token>,
}

impl SourceFile {
    /// Whether this file is a crate root (gets the hygiene-header lints).
    fn is_crate_root(&self) -> bool {
        self.rel == "src/lib.rs"
            || self.rel == "src/main.rs"
            || self.rel.ends_with("/src/lib.rs")
            || self.rel.ends_with("/src/main.rs")
    }

    /// Whether the token stream contains the inner attribute
    /// `#![outer(inner)]` — e.g. `forbid(unsafe_code)`.
    fn has_inner_attr(&self, outer: &str, inner: &str) -> bool {
        let t = &self.tokens;
        (0..t.len().saturating_sub(7)).any(|k| {
            matches!(&t[k].tok, Tok::Punct('#'))
                && matches!(&t[k + 1].tok, Tok::Punct('!'))
                && matches!(&t[k + 2].tok, Tok::Punct('['))
                && matches!(&t[k + 3].tok, Tok::Ident(id) if id == outer)
                && matches!(&t[k + 4].tok, Tok::Punct('('))
                && matches!(&t[k + 5].tok, Tok::Ident(id) if id == inner)
                && matches!(&t[k + 6].tok, Tok::Punct(')'))
                && matches!(&t[k + 7].tok, Tok::Punct(']'))
        })
    }
}

// ---------------------------------------------------------------------------
// Lint passes
// ---------------------------------------------------------------------------

/// Whether a string literal names an environment knob the README must
/// document: `CONGEST_<X>` or `<X>_SMOKE`, all `[A-Z0-9_]`.
fn is_env_knob(s: &str) -> bool {
    if s.is_empty() || !s.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
    {
        return false;
    }
    let congest = s.strip_prefix("CONGEST_").is_some_and(|rest| !rest.is_empty());
    let smoke = s.strip_suffix("_SMOKE").is_some_and(|rest| {
        rest.chars().next().is_some_and(|c| c.is_ascii_uppercase())
    });
    congest || smoke
}

/// Extracts `"key":`-shaped object keys from one JSON-lines artifact.
fn json_line_keys(text: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == '"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != '"' {
                if bytes[j] == '\\' {
                    j += 1;
                }
                j += 1;
            }
            let content: String = bytes[start..j.min(bytes.len())].iter().collect();
            let mut k = j + 1;
            while k < bytes.len() && bytes[k].is_whitespace() {
                k += 1;
            }
            if k < bytes.len() && bytes[k] == ':' {
                keys.insert(content);
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    keys
}

/// Everything one lint run learned, beyond pass/fail.
#[derive(Debug)]
pub struct LintOutcome {
    /// Findings that survived the allowlist, sorted by (path, line, lint).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by `lint.allow`.
    pub suppressed: Vec<(Diagnostic, u32)>,
    /// Parsed allowlist entries.
    pub allowlist: Vec<AllowEntry>,
    /// Env-knob registry: knob name → (documented in README, first site).
    pub knobs: BTreeMap<String, (bool, String)>,
    /// Number of `.rs` files tokenized.
    pub files_scanned: usize,
}

impl LintOutcome {
    /// True when nothing non-allowlisted fired.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs every lint over the workspace rooted at `root`.
///
/// The walk covers `crates/`, `vendor/` and the root `src/`; README.md,
/// `BENCH_*.json` and `lint.allow` are read from `root` itself. Fixture
/// trees (any directory named `fixtures`) and build output are skipped, so
/// the linter can host its own self-test corpus without flagging it.
pub fn run_lints(root: &Path) -> Result<LintOutcome, String> {
    let mut files = Vec::new();
    for sub in ["crates", "vendor", "src"] {
        collect_rs_files(&root.join(sub), &mut files);
    }
    if files.is_empty() {
        return Err(format!(
            "no .rs files under {} — is this a workspace root?",
            root.display()
        ));
    }
    let sources: Vec<SourceFile> = files
        .iter()
        .map(|path| {
            let text = fs::read_to_string(path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            Ok(SourceFile {
                rel: rel_path(root, path),
                tokens: lex(&text),
            })
        })
        .collect::<Result<_, String>>()?;

    let readme = fs::read_to_string(root.join("README.md")).unwrap_or_default();
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut knobs: BTreeMap<String, (bool, String)> = BTreeMap::new();
    let mut knob_seen: BTreeSet<(String, String)> = BTreeSet::new();

    for file in &sources {
        lint_tokens(file, &mut raw);
        lint_crate_root(file, &mut raw);
        for t in &file.tokens {
            if let Tok::Str(s) = &t.tok {
                if is_env_knob(s) {
                    let documented = readme.contains(&format!("`{s}`"));
                    knobs
                        .entry(s.clone())
                        .or_insert_with(|| (documented, format!("{}:{}", file.rel, t.line)));
                    // One finding per (knob, file): repeated mentions in the
                    // same file add noise, not information.
                    if !documented && knob_seen.insert((file.rel.clone(), s.clone())) {
                        raw.push(Diagnostic {
                            path: file.rel.clone(),
                            line: t.line,
                            lint: "env-knob-doc",
                            message: format!(
                                "environment knob `{s}` has no `{s}` row in README.md"
                            ),
                        });
                    }
                }
            }
        }
    }
    lint_bench_schemas(root, &sources, &mut raw);
    raw.sort();
    raw.dedup(); // two tokens on one line are one finding

    // Apply the allowlist.
    let allow_text = fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
    let allowlist = parse_allowlist(&allow_text)?;
    let mut used = vec![false; allowlist.len()];
    let mut diagnostics = Vec::new();
    let mut suppressed = Vec::new();
    for d in raw {
        match allowlist
            .iter()
            .position(|e| e.lint == d.lint && e.path == d.path)
        {
            Some(k) => {
                used[k] = true;
                let entry_line = allowlist[k].line;
                suppressed.push((d, entry_line));
            }
            None => diagnostics.push(d),
        }
    }
    for (k, entry) in allowlist.iter().enumerate() {
        if !used[k] {
            diagnostics.push(Diagnostic {
                path: "lint.allow".into(),
                line: entry.line,
                lint: "stale-allow",
                message: format!(
                    "entry `{} {}` suppresses nothing — remove it",
                    entry.lint, entry.path
                ),
            });
        }
    }
    diagnostics.sort();

    Ok(LintOutcome {
        diagnostics,
        suppressed,
        allowlist,
        knobs,
        files_scanned: sources.len(),
    })
}

/// Token-stream lints: `hash-iter`, `wall-clock`, `thread-id`,
/// `dbg-residue`.
fn lint_tokens(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let in_bench_layer = file.rel.starts_with("crates/bench/");
    let t = &file.tokens;
    for (k, tok) in t.iter().enumerate() {
        let Tok::Ident(id) = &tok.tok else { continue };
        match id.as_str() {
            "HashMap" | "HashSet" => out.push(Diagnostic {
                path: file.rel.clone(),
                line: tok.line,
                lint: "hash-iter",
                message: format!("`{id}` has nondeterministic iteration order"),
            }),
            "Instant" | "SystemTime" if !in_bench_layer => out.push(Diagnostic {
                path: file.rel.clone(),
                line: tok.line,
                lint: "wall-clock",
                message: format!("`{id}` wall-clock read outside crates/bench"),
            }),
            "thread"
                if matches!(t.get(k + 1).map(|x| &x.tok), Some(Tok::Punct(':')))
                    && matches!(t.get(k + 2).map(|x| &x.tok), Some(Tok::Punct(':')))
                    && matches!(
                        t.get(k + 3).map(|x| &x.tok),
                        Some(Tok::Ident(next)) if next == "current"
                    ) =>
            {
                out.push(Diagnostic {
                    path: file.rel.clone(),
                    line: tok.line,
                    lint: "thread-id",
                    message: "`thread::current` must not influence outputs".into(),
                });
            }
            "dbg" | "todo" | "unimplemented"
                if matches!(t.get(k + 1).map(|x| &x.tok), Some(Tok::Punct('!'))) =>
            {
                out.push(Diagnostic {
                    path: file.rel.clone(),
                    line: tok.line,
                    lint: "dbg-residue",
                    message: format!("`{id}!` must not ship"),
                });
            }
            _ => {}
        }
    }
}

/// Hygiene-header lints on crate roots.
fn lint_crate_root(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_crate_root() {
        return;
    }
    if !file.has_inner_attr("forbid", "unsafe_code") {
        out.push(Diagnostic {
            path: file.rel.clone(),
            line: 1,
            lint: "forbid-unsafe",
            message: "crate root lacks #![forbid(unsafe_code)]".into(),
        });
    }
    if !file.has_inner_attr("warn", "missing_docs") {
        out.push(Diagnostic {
            path: file.rel.clone(),
            line: 1,
            lint: "missing-docs",
            message: "crate root lacks #![warn(missing_docs)]".into(),
        });
    }
}

/// `bench-schema`: every committed `BENCH_*.json` must be named by a bench
/// source whose emitted schema covers all of the artifact's keys.
fn lint_bench_schemas(root: &Path, sources: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let Ok(entries) = fs::read_dir(root) else {
        return;
    };
    let mut artifacts: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    artifacts.sort();
    for artifact in artifacts {
        let name = artifact
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        // Benches that emit this artifact: any source whose string literals
        // mention the file name (the emit site is a path literal).
        let emitters: Vec<&SourceFile> = sources
            .iter()
            .filter(|f| {
                f.tokens
                    .iter()
                    .any(|t| matches!(&t.tok, Tok::Str(s) if s.contains(&name)))
            })
            .collect();
        if emitters.is_empty() {
            out.push(Diagnostic {
                path: name.clone(),
                line: 0,
                lint: "bench-schema",
                message: "artifact is not named by any bench source — orphaned?".into(),
            });
            continue;
        }
        // The schema pool is every string literal in the emitting *crates*,
        // not just the naming files: benches routinely split the path
        // literal (a thin `benches/*.rs` driver) from the row formatting
        // (a `src/` module).
        let crate_prefixes: BTreeSet<String> = emitters
            .iter()
            .map(|f| {
                let parts: Vec<&str> = f.rel.split('/').collect();
                if parts.len() >= 2 {
                    format!("{}/{}/", parts[0], parts[1])
                } else {
                    f.rel.clone()
                }
            })
            .collect();
        let schema: String = sources
            .iter()
            .filter(|f| crate_prefixes.iter().any(|p| f.rel.starts_with(p.as_str())))
            .flat_map(|f| f.tokens.iter())
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect::<Vec<_>>()
            .join("\n");
        let text = fs::read_to_string(&artifact).unwrap_or_default();
        for key in json_line_keys(&text) {
            if !schema.contains(&format!("\"{key}\"")) {
                out.push(Diagnostic {
                    path: name.clone(),
                    line: 0,
                    lint: "bench-schema",
                    message: format!(
                        "artifact key \"{key}\" does not appear in the emitting bench's \
                         schema ({})",
                        emitters
                            .iter()
                            .map(|f| f.rel.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Machine-readable report
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable `lint_report.json`: the lint catalogue, the
/// env-knob registry, the allowlist in force and the diagnostic count.
/// Deterministic (sorted, no timestamps) so CI can diff it across PRs.
pub fn report_json(outcome: &LintOutcome) -> String {
    let mut s = String::from("{\n  \"catalogue\": [\n");
    let cat = catalogue();
    for (k, (id, desc)) in cat.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"description\": \"{}\"}}{}\n",
            json_escape(id),
            json_escape(desc),
            if k + 1 < cat.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"knobs\": [\n");
    let knobs: Vec<_> = outcome.knobs.iter().collect();
    for (k, (var, (documented, site))) in knobs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"var\": \"{}\", \"documented\": {}, \"first_site\": \"{}\"}}{}\n",
            json_escape(var),
            documented,
            json_escape(site),
            if k + 1 < knobs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"allowlist\": [\n");
    for (k, e) in outcome.allowlist.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"lint\": \"{}\", \"path\": \"{}\", \"reason\": \"{}\"}}{}\n",
            json_escape(&e.lint),
            json_escape(&e.path),
            json_escape(&e.reason),
            if k + 1 < outcome.allowlist.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"diagnostics\": {}\n}}\n",
        outcome.files_scanned,
        outcome.suppressed.len(),
        outcome.diagnostics.len()
    ));
    s
}
