//! `congest-lint` CLI: lint the workspace, print findings, exit non-zero on
//! any non-allowlisted diagnostic.
//!
//! ```text
//! congest-lint [--root <dir>] [--report <path>] [--quiet]
//! ```
//!
//! `--root` defaults to the nearest ancestor of the current directory that
//! looks like the workspace root (has a `crates/` directory), so both
//! `cargo run -p lint` from anywhere inside the tree and a bare binary in CI
//! do the right thing. `--report` writes the machine-readable
//! `lint_report.json` (catalogue + knob registry) used as a CI artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        if dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--report" => report = args.next().map(PathBuf::from),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("congest-lint [--root <dir>] [--report <path>] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("congest-lint: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = match root.or_else(|| find_root(std::env::current_dir().unwrap_or_default())) {
        Some(r) => r,
        None => {
            eprintln!("congest-lint: no workspace root found (pass --root)");
            return ExitCode::FAILURE;
        }
    };

    let outcome = match lint::run_lints(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("congest-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = report {
        if let Err(e) = std::fs::write(&path, lint::report_json(&outcome)) {
            eprintln!("congest-lint: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    for d in &outcome.diagnostics {
        eprintln!("{d}");
    }
    if !quiet {
        eprintln!(
            "congest-lint: {} file(s), {} diagnostic(s), {} suppressed by lint.allow, \
             {} env knob(s) registered",
            outcome.files_scanned,
            outcome.diagnostics.len(),
            outcome.suppressed.len(),
            outcome.knobs.len()
        );
    }
    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
