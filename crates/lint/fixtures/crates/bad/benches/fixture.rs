// Fixture bench: names the BENCH_fixture.json artifact and emits a schema
// containing only the "bench" key. The committed artifact also carries
// "extra_key", so `bench-schema` must fire exactly once (for that key).
// Not a crate root, so the missing-header lints do not apply here.

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fixture.json");
    let row = "{\"bench\":\"fixture\"}";
    let _ = std::fs::write(path, row);
}
