// Fixture crate root: every determinism/hygiene diagnostic must fire here
// exactly once. It has NO inner attributes, so `forbid-unsafe` and
// `missing-docs` each fire once on this file.
//
// Decoys the tokenizer must NOT flag — these live in comments and strings:
// HashMap HashSet Instant SystemTime thread::current dbg! todo!
/* nested /* block comment decoy: HashSet SystemTime */ still a comment */

/// A string decoy: lint identifiers inside literals are not identifiers.
pub const DECOY: &str = "HashMap Instant thread::current dbg!(x)";

/// A raw-string decoy with a fake terminator inside.
pub const RAW_DECOY: &str = r#"SystemTime "quoted" HashSet"#;

/// Exercises char-literal vs lifetime disambiguation around the decoys.
pub fn lifetimes<'a>(s: &'a str) -> (char, &'a str) {
    ('\'', s)
}

/// The one real `wall-clock` finding.
pub fn wall() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}

/// The one real `thread-id` finding.
pub fn who() -> std::thread::Thread {
    std::thread::current()
}

/// The one real `hash-iter` and the one real `dbg-residue` finding.
pub fn noisy(map: &std::collections::HashMap<u32, u32>) -> usize {
    dbg!(map.len())
}

/// `CONGEST_DOCUMENTED` has a README row (no finding);
/// `CONGEST_UNDOCUMENTED` does not — the one real `env-knob-doc` finding.
pub fn knobs() -> (bool, bool) {
    (
        std::env::var("CONGEST_DOCUMENTED").is_ok(),
        std::env::var("CONGEST_UNDOCUMENTED").is_ok(),
    )
}
