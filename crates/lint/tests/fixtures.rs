//! Self-tests for `congest-lint`: every diagnostic in the catalogue must
//! fire exactly once against the fixture workspace, the tokenizer must not
//! be fooled by comments/strings, and the real workspace must lint clean.

use std::collections::BTreeMap;
use std::path::Path;

fn fixtures_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures"))
}

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Each of the ≥ 8 catalogue diagnostics fires exactly once on the fixture
/// tree — no more (the comment/string decoys must not count), no less.
#[test]
fn every_diagnostic_fires_exactly_once_on_fixtures() {
    let outcome = lint::run_lints(fixtures_root()).expect("fixture lint run");
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for d in &outcome.diagnostics {
        *counts.entry(d.lint).or_default() += 1;
    }
    let expected: Vec<&str> = lint::catalogue().iter().map(|(id, _)| *id).collect();
    assert!(expected.len() >= 8, "catalogue shrank below the contract");
    for id in &expected {
        assert_eq!(
            counts.get(id).copied().unwrap_or(0),
            1,
            "diagnostic `{id}` should fire exactly once on fixtures; all: {:#?}",
            outcome.diagnostics
        );
    }
    assert_eq!(
        outcome.diagnostics.len(),
        expected.len(),
        "unexpected extra findings: {:#?}",
        outcome.diagnostics
    );
}

/// The fixture findings carry the right locations.
#[test]
fn fixture_findings_have_correct_provenance() {
    let outcome = lint::run_lints(fixtures_root()).expect("fixture lint run");
    let find = |id: &str| {
        outcome
            .diagnostics
            .iter()
            .find(|d| d.lint == id)
            .unwrap_or_else(|| panic!("`{id}` missing"))
    };
    assert_eq!(find("hash-iter").path, "crates/bad/src/lib.rs");
    assert_eq!(find("wall-clock").path, "crates/bad/src/lib.rs");
    assert_eq!(find("thread-id").path, "crates/bad/src/lib.rs");
    assert_eq!(find("dbg-residue").path, "crates/bad/src/lib.rs");
    assert_eq!(find("forbid-unsafe").path, "crates/bad/src/lib.rs");
    assert_eq!(find("missing-docs").path, "crates/bad/src/lib.rs");
    // Knob names are spelled split here so this test file does not itself
    // register them as knob read sites in the real-workspace walk.
    let undocumented = format!("CONGEST_{}", "UNDOCUMENTED");
    let documented = format!("CONGEST_{}", "DOCUMENTED");
    let knob = find("env-knob-doc");
    assert_eq!(knob.path, "crates/bad/src/lib.rs");
    assert!(knob.message.contains(&undocumented), "{knob}");
    let schema = find("bench-schema");
    assert_eq!(schema.path, "BENCH_fixture.json");
    assert!(schema.message.contains("extra_key"), "{schema}");
    let stale = find("stale-allow");
    assert_eq!(stale.path, "lint.allow");
    // The documented knob must be registered but not flagged.
    assert_eq!(outcome.knobs.get(&documented).map(|(doc, _)| *doc), Some(true));
    assert_eq!(
        outcome.knobs.get(&undocumented).map(|(doc, _)| *doc),
        Some(false)
    );
}

/// The real workspace stays lint-clean: this makes `cargo test` itself a
/// lint gate in addition to the dedicated CI job.
#[test]
fn real_workspace_is_clean() {
    let outcome = lint::run_lints(workspace_root()).expect("workspace lint run");
    assert!(
        outcome.clean(),
        "workspace has lint findings:\n{}",
        outcome
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every allowlist entry must pull its weight (no stale entries — that
    // would show up as a diagnostic above — and at least one suppression).
    assert!(!outcome.suppressed.is_empty());
}

/// The machine-readable report is deterministic and carries the catalogue
/// and knob registry.
#[test]
fn report_is_deterministic_and_complete() {
    let a = lint::report_json(&lint::run_lints(fixtures_root()).expect("run"));
    let b = lint::report_json(&lint::run_lints(fixtures_root()).expect("run"));
    assert_eq!(a, b, "report must be byte-stable across runs");
    for (id, _) in lint::catalogue() {
        assert!(a.contains(&format!("\"id\": \"{id}\"")), "{id} missing");
    }
    assert!(a.contains(&format!("CONGEST_{}", "UNDOCUMENTED")));
}

/// Tokenizer unit coverage: the cases a regex-based scanner gets wrong.
#[test]
fn tokenizer_handles_comments_strings_and_lifetimes() {
    use lint::Tok;
    let src = r###"
// line comment HashMap
/* block /* nested HashSet */ still out */
const S: &str = "Instant \"quoted\" \\";
const R: &str = r#"SystemTime "raw" end"#;
fn f<'a>(x: &'a str) -> char { 'x' }
let esc = '\n';
let real = HashMap::new();
"###;
    let toks = lint::lex(src);
    let idents: Vec<&str> = toks
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    // Exactly one HashMap (the real one), zero HashSet/Instant/SystemTime.
    assert_eq!(idents.iter().filter(|s| **s == "HashMap").count(), 1);
    assert_eq!(idents.iter().filter(|s| **s == "HashSet").count(), 0);
    assert_eq!(idents.iter().filter(|s| **s == "Instant").count(), 0);
    assert_eq!(idents.iter().filter(|s| **s == "SystemTime").count(), 0);
    // String contents are decoded (escaped quote and backslash).
    let strs: Vec<&str> = toks
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    assert!(strs.contains(&"Instant \"quoted\" \\"));
    assert!(strs.contains(&"SystemTime \"raw\" end"));
    // Lifetimes vs char literals: 'a twice (decl + use), two char literals.
    let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
    let chars = toks.iter().filter(|t| t.tok == Tok::CharLit).count();
    assert_eq!(lifetimes, 2, "{toks:?}");
    assert_eq!(chars, 2, "{toks:?}");
}
