//! F1-KT1-COL-UB / F1-KT1-COL-ASYNC: Figure 1, KT-1 coloring upper bounds.
//!
//! Reproduces the Õ(n^1.5)-message claim of Theorem 3.3 (and the async
//! variant of Theorem 3.4): message counts of Algorithm 1 across an `n`
//! sweep on dense `G(n, p)` graphs, compared against `m` and against the
//! Θ(m)-message baseline, plus a fitted growth exponent.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use symbreak_bench::workloads::{fit_exponent, gnp_instance, standard_n_sweep};
use symbreak_core::{experiments, MeasurementTable};

fn print_table() {
    let mut table = MeasurementTable::new();
    let mut points = Vec::new();
    let mut baseline_points = Vec::new();
    for (i, n) in standard_n_sweep().into_iter().enumerate() {
        let inst = gnp_instance(n, 0.5, 100 + i as u64);
        let row = experiments::measure_alg1(&inst.graph, &inst.ids, i as u64);
        points.push((n as f64, row.total_messages() as f64));
        table.push(row);
        let row = experiments::measure_coloring_baseline(&inst.graph, &inst.ids, i as u64);
        baseline_points.push((n as f64, row.total_messages() as f64));
        table.push(row);
        let row = experiments::measure_alg1_async(&inst.graph, &inst.ids, i as u64);
        table.push(row);
    }
    println!("\n=== F1-KT1-COL-UB: Algorithm 1 vs the Θ(m) baseline, G(n, 0.5) ===");
    println!("{table}");
    println!(
        "fitted message-growth exponent: Alg1 ≈ n^{:.2} (paper: Õ(n^1.5)), baseline ≈ n^{:.2} (≈ m = Θ(n²))\n",
        fit_exponent(&points),
        fit_exponent(&baseline_points)
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let inst = gnp_instance(64, 0.5, 7);
    c.bench_function("alg1_kt1_coloring_n64_p0.5", |b| {
        b.iter(|| experiments::measure_alg1(&inst.graph, &inst.ids, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
