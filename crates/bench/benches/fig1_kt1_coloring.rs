//! F1-KT1-COL-UB / F1-KT1-COL-ASYNC: Figure 1, KT-1 coloring upper bounds.
//!
//! Reproduces the Õ(n^1.5)-message claim of Theorem 3.3 (and the async
//! variant of Theorem 3.4): message counts of Algorithm 1 across an `n`
//! sweep on dense `G(n, p)` graphs, compared against `m` and against the
//! Θ(m)-message baseline, plus a fitted growth exponent.
//!
//! The grid is the declarative [`sweeps::fig1_kt1_sweep`] spec, executed
//! batched (all seeds in lockstep lanes over each instance's one CSR) with
//! the sequential runs as differential oracle; the printed table is the
//! lane-0 slice, which matches the historical single-seed rows exactly.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use symbreak_bench::sweeps;
use symbreak_bench::workloads::{fit_exponent, gnp_instance};
use symbreak_core::experiments;

fn print_table() {
    let cells = sweeps::run_sweep(&sweeps::fig1_kt1_sweep(sweeps::default_lanes()));
    let points: Vec<(f64, f64)> = cells
        .iter()
        .filter(|c| c.algorithm == "alg1")
        .map(|c| (c.n as f64, c.rows[0].total_messages() as f64))
        .collect();
    let baseline_points: Vec<(f64, f64)> = cells
        .iter()
        .filter(|c| c.algorithm == "coloring_baseline")
        .map(|c| (c.n as f64, c.rows[0].total_messages() as f64))
        .collect();
    println!("\n=== F1-KT1-COL-UB: Algorithm 1 vs the Θ(m) baseline, G(n, 0.5) ===");
    println!("{}", sweeps::lane0_table(&cells));
    println!(
        "fitted message-growth exponent: Alg1 ≈ n^{:.2} (paper: Õ(n^1.5)), baseline ≈ n^{:.2} (≈ m = Θ(n²))",
        fit_exponent(&points),
        fit_exponent(&baseline_points)
    );
    sweeps::print_speedup_summary(&cells);
}

fn bench(c: &mut Criterion) {
    print_table();
    let inst = gnp_instance(64, 0.5, 7);
    c.bench_function("alg1_kt1_coloring_n64_p0.5", |b| {
        b.iter(|| experiments::measure_alg1(&inst.graph, &inst.ids, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
