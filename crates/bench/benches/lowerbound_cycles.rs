//! F1-KTRHO-LB: the Ω(n) lower bound in KT-ρ (Theorem 2.17).
//!
//! On the disjoint-cycle family, measures the messages sent by correct
//! algorithms (they scale linearly with n and leave no cycle mute) and shows
//! that a radius-ρ "silent rule" is defeated by some ID assignment.
//!
//! The grid is the declarative [`sweeps::lowerbound_cycles_sweep`] spec with
//! per-cell derived RNGs (see the crossed-family bench for the rationale).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_bench::sweeps;
use symbreak_bench::workloads::fit_exponent;
use symbreak_lowerbounds::cycles::{find_failing_assignment, rank_mod3_rule, CycleFamily};
use symbreak_lowerbounds::experiments::{cycle_message_experiment, Problem};

fn print_table() {
    println!("\n=== F1-KTRHO-LB: messages on the disjoint-cycle family (cycles of length 8) ===");
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>12}",
        "problem", "n", "messages", "msgs/node", "mute cycles"
    );
    let spec = sweeps::lowerbound_cycles_sweep();
    let cells = sweeps::run_cycle_sweep(&spec);
    for &problem in &spec.problems {
        let mut points = Vec::new();
        for cell in cells.iter().filter(|c| c.problem == problem) {
            let stats = &cell.stats;
            points.push((stats.n as f64, stats.messages as f64));
            println!(
                "{:<10} {:>8} {:>10} {:>12.2} {:>12}",
                format!("{problem:?}"),
                stats.n,
                stats.messages,
                stats.messages as f64 / stats.n as f64,
                stats.mute_cycles
            );
        }
        println!(
            "fitted message exponent for {problem:?}: ≈ n^{:.2} (lower bound: Ω(n))\n",
            fit_exponent(&points)
        );
    }
    let mut rng = StdRng::seed_from_u64(4);
    let family = CycleFamily::new(4, 9);
    let tries = find_failing_assignment(&family, 1, rank_mod3_rule, 500, &mut rng);
    println!("silent radius-1 rule defeated after {tries:?} random ID assignments\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    c.bench_function("cycle_messages_16x8_mis", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            cycle_message_experiment(Problem::Mis, 16, 8, &mut rng)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
