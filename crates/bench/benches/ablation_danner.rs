//! ABL-DANNER: the δ trade-off of Theorem 1.1.
//!
//! Sweeps the danner parameter δ and reports the size of the constructed
//! danner, its diameter, and the charged construction cost — the
//! message/time trade-off that Algorithm 1 (δ = ½) and Algorithm 2 (δ = 0)
//! sit at opposite ends of.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use symbreak_bench::workloads::gnp_instance;
use symbreak_danner::Danner;
use symbreak_graphs::properties;

fn print_table() {
    println!("\n=== ABL-DANNER: danner size/diameter/charged cost vs δ (n = 256, p = 0.3) ===");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>14} {:>12}",
        "δ", "|E(G)|", "|E(H)|", "diam(H)", "charged msgs", "charged rds"
    );
    let inst = gnp_instance(256, 0.3, 700);
    for delta in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let danner = Danner::build(&inst.graph, &inst.ids, delta).expect("connected instance");
        let cost = danner.construction_cost();
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>14} {:>12}",
            delta,
            inst.graph.num_edges(),
            danner.num_edges(),
            properties::diameter(danner.subgraph()).unwrap_or(0),
            cost.charged_messages,
            cost.charged_rounds
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let inst = gnp_instance(128, 0.3, 701);
    c.bench_function("danner_build_n128_delta0.5", |b| {
        b.iter(|| Danner::build(&inst.graph, &inst.ids, 0.5).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
