//! ALG-COLORING: the paper's algorithm layer on the flat stage pipeline vs.
//! the retained nested-`Vec` pipeline.
//!
//! This is the first bench row that measures the *algorithms* of
//! conf_podc_PaiPP021 — alg1 (Δ+1)-coloring, alg2 (1+ε)Δ-coloring, alg3
//! MIS and the classic Johansson Δ+1 baseline — rather than raw engine
//! message traffic (`sim_engine`). Every row times the flat arena/bitset
//! pipeline against the nested baseline, **interleaved** so clock drift hits
//! both sides equally; outputs are bit-identical by construction (asserted
//! by `crates/core/tests/stage_flat_equivalence.rs`), so the comparison is
//! pure setup/runtime overhead.
//!
//! Rows:
//!
//! * `alg1` / `alg2` / `mis` / `classic` — end-to-end wall time of each
//!   algorithm on both pipelines (speedups here are diluted by the shared
//!   simulation cost; they must simply not regress below ~1×);
//! * `stage_setup` — the isolated stage-construction cost on the
//!   `random_d8_100000` final-stage spec: nested `Vec<Vec<u64>>` palettes +
//!   `Vec<Vec<NodeId>>` active lists + colour-vector clone vs. one bitset
//!   blit + one CSR arena pass. The harness **asserts** flat ≥ 1.5× nested
//!   at full size (≥ 1× in smoke mode) — this is the regression gate for
//!   the flat pipeline.
//!
//! Graph families: cycle (Δ = 2, pure final stage), clique (dense, bucket
//! levels engage), random d8 (the paper's sparse near-regular shape) and
//! preferential-attachment power law (skewed buckets — the shape the
//! work-stealing shard claiming exists for), at n up to 10⁵.
//!
//! Results are printed and written to `BENCH_alg_coloring.json` (one JSON
//! object per line; regenerated, not appended). Set `ALG_BENCH_SMOKE=1` for
//! the reduced-n CI smoke (same rows and asserts at a fraction of the size,
//! no JSON artifact).

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_classic::coloring::baseline;
use symbreak_congest::SyncConfig;
use symbreak_core::query_coloring::QueryPlan;
use symbreak_core::stage_flat::FlatStageSpec;
use symbreak_core::{
    alg1_coloring, alg2_coloring, alg3_mis, Alg1Config, Alg2Config, Alg3Config, StagePipeline,
};
use symbreak_graphs::{generators, properties, Graph, IdAssignment, IdSpace};

/// Whether this run is the reduced-size CI smoke.
fn smoke() -> bool {
    std::env::var("ALG_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

struct Family {
    name: &'static str,
    graph: Graph,
    ids: IdAssignment,
    /// Best-of iterations per pipeline for the algorithm rows.
    iters: u32,
    /// alg1/alg2 need a connected graph.
    connected: bool,
}

fn families() -> Vec<Family> {
    let shrink = if smoke() { 16 } else { 1 };
    let mut rng = StdRng::seed_from_u64(0xa19);
    let mut out = Vec::new();
    let mut push = |name: &'static str, graph: Graph, iters: u32| {
        let mut rng = StdRng::seed_from_u64(0x1d5 ^ graph.num_nodes() as u64);
        let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
        let connected = properties::is_connected(&graph);
        out.push(Family {
            name,
            graph,
            ids,
            iters,
            connected,
        });
    };
    push("cycle_100000", generators::cycle(100_000 / shrink), 2);
    push("clique_512", generators::clique(512 / shrink.min(4)), 2);
    // Scan for a connected near-regular instance (d = 8 keeps it connected
    // for every seed tried; the scan just makes that deterministic).
    let d8 = (42..)
        .map(|seed| {
            generators::random_near_regular(100_000 / shrink, 8, &mut StdRng::seed_from_u64(seed))
        })
        .find(properties::is_connected)
        .expect("a connected random_d8 instance exists");
    push("random_d8_100000", d8, 2);
    push(
        "power_law_100000",
        generators::power_law(100_000 / shrink, 4, &mut rng),
        2,
    );
    out
}

/// Best-of wall-clock nanoseconds of `run` over `iters` iterations,
/// returning the payload of the last iteration too.
fn best_of<T>(iters: u32, mut run: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters {
        let t = Instant::now();
        let out = run();
        best = best.min(t.elapsed().as_nanos() as f64);
        last = Some(out);
    }
    (best, last.expect("at least one iteration"))
}

struct Row {
    row: &'static str,
    graph_name: String,
    n: usize,
    m: usize,
    messages: u64,
    flat_ns: f64,
    nested_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.nested_ns / self.flat_ns
    }

    fn print(&self) {
        println!(
            "{:<12} {:<18} {:>12} {:>12.2}ms {:>12.2}ms {:>8.2}x",
            self.row,
            self.graph_name,
            self.messages,
            self.flat_ns / 1e6,
            self.nested_ns / 1e6,
            self.speedup()
        );
    }

    fn json(&self) -> String {
        format!(
            "{{\"bench\":\"alg_coloring\",\"row\":\"{}\",\"graph\":\"{}\",\"n\":{},\"m\":{},\"messages\":{},\"flat_ns\":{:.0},\"nested_ns\":{:.0},\"speedup\":{:.3}}}",
            self.row,
            self.graph_name,
            self.n,
            self.m,
            self.messages,
            self.flat_ns,
            self.nested_ns,
            self.speedup()
        )
    }
}

/// One interleaved flat/nested measurement: an untimed warm-up pair (page
/// cache, branch predictors — whichever side runs first otherwise eats a
/// 1.5–2× cold-start penalty), then alternating single iterations so slow
/// clock drift (thermal throttling, noisy neighbours) hits both pipelines
/// equally.
fn measure_pair(
    iters: u32,
    mut flat: impl FnMut() -> u64,
    mut nested: impl FnMut() -> u64,
) -> (f64, f64, u64) {
    let messages = flat();
    assert_eq!(messages, nested(), "pipelines must do identical work");
    let (mut flat_best, mut nested_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..iters {
        let (f_ns, _) = best_of(1, &mut flat);
        let (n_ns, _) = best_of(1, &mut nested);
        flat_best = flat_best.min(f_ns);
        nested_best = nested_best.min(n_ns);
    }
    (flat_best, nested_best, messages)
}

fn alg_rows(fam: &Family) -> Vec<Row> {
    let n = fam.graph.num_nodes();
    let m = fam.graph.num_edges();
    let mut rows = Vec::new();
    let mut push = |row: &'static str, (flat_ns, nested_ns, messages): (f64, f64, u64)| {
        let r = Row {
            row,
            graph_name: fam.name.to_string(),
            n,
            m,
            messages,
            flat_ns,
            nested_ns,
        };
        r.print();
        rows.push(r);
    };

    if fam.connected {
        let alg1 = |pipeline| {
            let config = Alg1Config {
                pipeline,
                threads: 1,
                ..Alg1Config::default()
            };
            let mut rng = StdRng::seed_from_u64(0xc01);
            alg1_coloring::run(&fam.graph, &fam.ids, config, &mut rng)
                .expect("alg1 succeeds")
                .costs
                .total_messages()
        };
        push(
            "alg1",
            measure_pair(
                fam.iters,
                || alg1(StagePipeline::Flat),
                || alg1(StagePipeline::Nested),
            ),
        );

        let alg2 = |pipeline| {
            let config = Alg2Config {
                pipeline,
                threads: 1,
                ..Alg2Config::default()
            };
            let mut rng = StdRng::seed_from_u64(0xc02);
            alg2_coloring::run(&fam.graph, &fam.ids, config, &mut rng)
                .expect("alg2 succeeds")
                .costs
                .total_messages()
        };
        push(
            "alg2",
            measure_pair(
                fam.iters,
                || alg2(StagePipeline::Flat),
                || alg2(StagePipeline::Nested),
            ),
        );
    }

    let mis = |pipeline| {
        let config = Alg3Config {
            pipeline,
            threads: 1,
            ..Alg3Config::default()
        };
        let mut rng = StdRng::seed_from_u64(0xc03);
        alg3_mis::run(&fam.graph, &fam.ids, config, &mut rng)
            .expect("alg3 succeeds")
            .costs
            .total_messages()
    };
    push(
        "mis",
        measure_pair(
            fam.iters,
            || mis(StagePipeline::Flat),
            || mis(StagePipeline::Nested),
        ),
    );

    let config = SyncConfig::default().with_threads(1);
    push(
        "classic",
        measure_pair(
            fam.iters,
            || {
                baseline::run(&fam.graph, &fam.ids, 0xc1a, config)
                    .1
                    .messages
            },
            || {
                baseline::run_nested(&fam.graph, &fam.ids, 0xc1a, config)
                    .1
                    .messages
            },
        ),
    );

    rows
}

/// The regression gate: isolated stage-*setup* cost of the final-stage spec
/// on the random d8 instance — the exact builder Algorithm 1 runs before a
/// single round executes.
fn stage_setup_row(fam: &Family) -> Row {
    let graph = &fam.graph;
    let ids = &fam.ids;
    let n = graph.num_nodes();
    let palette_size = graph.max_degree() as u64 + 1;
    let colors: Vec<Option<u64>> = vec![None; n];
    let plan = Arc::new(QueryPlan::new(graph, ids, Vec::new()));
    let iters = 7;
    let (mut flat_best, mut nested_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..iters {
        let (f_ns, flat_spec) = best_of(1, || {
            FlatStageSpec::for_final_stage(graph, &colors, palette_size, Arc::clone(&plan), 100)
        });
        let (n_ns, nested_spec) = best_of(1, || {
            alg1_coloring::nested_final_spec(graph, &colors, palette_size, Arc::clone(&plan), 100)
        });
        // Keep both specs alive through the timing window and sanity-check
        // they describe the same stage.
        assert_eq!(flat_spec.active().total_len(), {
            nested_spec.active.iter().map(Vec::len).sum::<usize>()
        });
        flat_best = flat_best.min(f_ns);
        nested_best = nested_best.min(n_ns);
    }
    Row {
        row: "stage_setup",
        graph_name: fam.name.to_string(),
        n,
        m: graph.num_edges(),
        messages: 0,
        flat_ns: flat_best,
        nested_ns: nested_best,
    }
}

fn compare_pipelines() {
    use std::io::Write;

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_alg_coloring.json");
    let mut json = (!smoke())
        .then(|| {
            std::fs::OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(json_path)
                .ok()
        })
        .flatten();
    println!(
        "\n=== alg_coloring: flat stage pipeline vs nested-Vec baseline{} ===",
        if smoke() { " (smoke)" } else { "" }
    );
    println!(
        "{:<12} {:<18} {:>12} {:>14} {:>14} {:>9}",
        "row", "graph", "messages", "flat", "nested", "speedup"
    );
    let families = families();
    let mut setup_speedup = None;
    for fam in &families {
        let mut rows = alg_rows(fam);
        if fam.name == "random_d8_100000" {
            let row = stage_setup_row(fam);
            row.print();
            setup_speedup = Some(row.speedup());
            rows.push(row);
        }
        if let Some(f) = json.as_mut() {
            for row in &rows {
                let _ = writeln!(f, "{}", row.json());
            }
        }
    }
    let setup_speedup = setup_speedup.expect("random_d8 stage_setup row must have run");
    // The regression gate. At smoke scale constant overheads dominate, so
    // the bar is only "flat must not lose"; at full size the flat builder
    // must clear 1.5x (the acceptance threshold of the flat-pipeline PR).
    let bar = if smoke() { 1.0 } else { 1.5 };
    assert!(
        setup_speedup >= bar,
        "flat stage setup regressed: {setup_speedup:.2}x < {bar}x on random_d8 final-stage spec"
    );
    println!("stage_setup speedup {setup_speedup:.2}x (gate: ≥ {bar}x)\n");
}

fn bench(c: &mut Criterion) {
    compare_pipelines();
    // Criterion samples a mid-size alg1 run so per-iteration regressions in
    // the full pipeline show up without the comparison table's long tail.
    let graph = generators::random_near_regular(10_000, 8, &mut StdRng::seed_from_u64(48));
    let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut StdRng::seed_from_u64(49));
    if properties::is_connected(&graph) {
        c.bench_function("alg1_flat_random_d8_10000", |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(50);
                alg1_coloring::run(&graph, &ids, Alg1Config::default(), &mut rng).unwrap()
            })
        });
    }
    c.bench_function("classic_flat_random_d8_10000", |b| {
        b.iter(|| baseline::run(&graph, &ids, 51, SyncConfig::default().with_threads(1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
