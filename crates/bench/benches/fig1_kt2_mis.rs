//! F1-KT2-MIS-UB: Figure 1 / Theorem 4.1 — MIS in KT-2 with Õ(n^1.5)
//! messages and Õ(√n) rounds.
//!
//! Prints Algorithm 3's message counts across an `n` sweep on dense graphs
//! next to Luby's Θ(m)-message baseline, with fitted growth exponents.
//!
//! The grid is the declarative [`sweeps::fig1_kt2_sweep`] spec executed
//! batched (lockstep lanes, sequential differential oracle); the printed
//! table is the lane-0 slice, matching the historical single-seed rows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use symbreak_bench::sweeps;
use symbreak_bench::workloads::{fit_exponent, gnp_instance};
use symbreak_core::experiments;

fn print_table() {
    let cells = sweeps::run_sweep(&sweeps::fig1_kt2_sweep(sweeps::default_lanes()));
    let alg3_points: Vec<(f64, f64)> = cells
        .iter()
        .filter(|c| c.algorithm == "alg3")
        .map(|c| (c.n as f64, c.rows[0].total_messages() as f64))
        .collect();
    let luby_points: Vec<(f64, f64)> = cells
        .iter()
        .filter(|c| c.algorithm == "luby_baseline")
        .map(|c| (c.n as f64, c.rows[0].total_messages() as f64))
        .collect();
    println!("\n=== F1-KT2-MIS-UB: Algorithm 3 (KT-2) vs Luby (KT-1, Θ(m)), G(n, 0.5) ===");
    println!("{}", sweeps::lane0_table(&cells));
    println!(
        "fitted exponents: Alg3 ≈ n^{:.2} (paper: Õ(n^1.5)), Luby ≈ n^{:.2} (≈ m = Θ(n²))",
        fit_exponent(&alg3_points),
        fit_exponent(&luby_points)
    );
    sweeps::print_speedup_summary(&cells);
}

fn bench(c: &mut Criterion) {
    print_table();
    let inst = gnp_instance(96, 0.5, 5);
    c.bench_function("alg3_kt2_mis_n96_p0.5", |b| {
        b.iter(|| experiments::measure_alg3(&inst.graph, &inst.ids, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
