//! F1-KT2-MIS-UB: Figure 1 / Theorem 4.1 — MIS in KT-2 with Õ(n^1.5)
//! messages and Õ(√n) rounds.
//!
//! Prints Algorithm 3's message counts across an `n` sweep on dense graphs
//! next to Luby's Θ(m)-message baseline, with fitted growth exponents.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use symbreak_bench::workloads::{fit_exponent, gnp_instance, standard_n_sweep};
use symbreak_core::{experiments, MeasurementTable};

fn print_table() {
    let mut table = MeasurementTable::new();
    let mut alg3_points = Vec::new();
    let mut luby_points = Vec::new();
    for (i, n) in standard_n_sweep().into_iter().enumerate() {
        let inst = gnp_instance(n, 0.5, 400 + i as u64);
        let row = experiments::measure_alg3(&inst.graph, &inst.ids, i as u64);
        alg3_points.push((n as f64, row.total_messages() as f64));
        table.push(row);
        let row = experiments::measure_luby_baseline(&inst.graph, &inst.ids, i as u64);
        luby_points.push((n as f64, row.total_messages() as f64));
        table.push(row);
    }
    println!("\n=== F1-KT2-MIS-UB: Algorithm 3 (KT-2) vs Luby (KT-1, Θ(m)), G(n, 0.5) ===");
    println!("{table}");
    println!(
        "fitted exponents: Alg3 ≈ n^{:.2} (paper: Õ(n^1.5)), Luby ≈ n^{:.2} (≈ m = Θ(n²))\n",
        fit_exponent(&alg3_points),
        fit_exponent(&luby_points)
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let inst = gnp_instance(96, 0.5, 5);
    c.bench_function("alg3_kt2_mis_n96_p0.5", |b| {
        b.iter(|| experiments::measure_alg3(&inst.graph, &inst.ids, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
