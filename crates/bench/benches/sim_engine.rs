//! SIM-ENGINE: throughput of the arena-based round engine vs. the naive
//! nested-`Vec` reference loop.
//!
//! Two simulator-bound workloads (algorithm work is intentionally trivial so
//! the measurement isolates the engine):
//!
//! * **flood** — a token spreads from node 0; every node broadcasts once.
//!   Message traffic is `2m` spread over ~diameter rounds.
//! * **announce** — every node broadcasts its ID in round 0. All `2m`
//!   messages land in a single round, stressing peak arena throughput.
//!
//! Graph families: cycle (long thin rounds), clique (one hot round),
//! near-regular random graphs up to n = 10⁵. Each pair is measured for both
//! engines; the speedups are printed and appended to
//! `BENCH_sim_engine.json` (one JSON object per line).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_congest::reference::NaiveSyncSimulator;
use symbreak_congest::{
    ExecutionReport, KtLevel, Message, NodeAlgorithm, NodeInit, RoundContext, SyncConfig,
    SyncSimulator,
};
use symbreak_graphs::{generators, Graph, IdAssignment, NodeId};

/// Token flood from node 0: broadcast once on first contact.
///
/// The automaton is purely *reactive* — it permanently reports done and
/// relies on the `NodeAlgorithm::is_done` contract (a done node is invoked
/// whenever messages arrive). This is the shape event-driven flooding takes
/// on the arena engine: nodes the token has not reached yet cost nothing.
struct Flood {
    have: bool,
}

impl Flood {
    fn new() -> Self {
        Flood { have: false }
    }
}

impl NodeAlgorithm for Flood {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        let newly =
            (ctx.round() == 0 && ctx.node() == NodeId(0)) || (!self.have && !inbox.is_empty());
        if newly {
            self.have = true;
            ctx.broadcast(&Message::tagged(1));
        }
    }
    fn is_done(&self) -> bool {
        true
    }
    fn output(&self) -> Option<u64> {
        Some(u64::from(self.have))
    }
}

/// Every node announces its own ID to all neighbours in round 0.
struct Announce {
    id: u64,
    done: bool,
}

impl NodeAlgorithm for Announce {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, _inbox: &[Message]) {
        if ctx.round() == 0 {
            ctx.broadcast(&Message::tagged(0).with_id(self.id));
        }
        self.done = true;
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

#[derive(Clone, Copy)]
enum Workload {
    Flood,
    Announce,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Flood => "flood",
            Workload::Announce => "announce",
        }
    }
}

struct Case {
    graph_name: &'static str,
    workload: Workload,
    graph: Graph,
    ids: IdAssignment,
    /// Timing iterations for the naive engine. The event-driven arena
    /// engine only touches the flood frontier, but the naive loop sweeps
    /// all n nodes every one of the ~n/2 rounds of a 100k-cycle flood —
    /// tens of seconds — so the huge high-diameter case gets one naive
    /// iteration instead of five.
    naive_iters: u32,
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();
    let families: Vec<(&'static str, Graph)> = vec![
        ("cycle_4096", generators::cycle(4096)),
        ("cycle_100000", generators::cycle(100_000)),
        ("clique_512", generators::clique(512)),
        (
            "random_d8_100000",
            generators::random_near_regular(100_000, 8, &mut StdRng::seed_from_u64(42)),
        ),
    ];
    for (graph_name, graph) in families {
        let n = graph.num_nodes();
        for workload in [Workload::Flood, Workload::Announce] {
            let slow_naive = matches!(workload, Workload::Flood) && graph_name == "cycle_100000";
            out.push(Case {
                graph_name,
                workload,
                graph: graph.clone(),
                ids: IdAssignment::identity(n),
                naive_iters: if slow_naive { 1 } else { 5 },
            });
        }
    }
    out
}

fn run_case(case: &Case, naive: bool) -> ExecutionReport {
    let sim = SyncSimulator::new(&case.graph, &case.ids, KtLevel::KT1);
    let config = SyncConfig::default();
    match (case.workload, naive) {
        (Workload::Flood, false) => sim.run(config, |_| Flood::new()),
        (Workload::Flood, true) => NaiveSyncSimulator::new(sim).run(config, |_| Flood::new()),
        (Workload::Announce, false) => sim.run(config, |init: NodeInit<'_>| Announce {
            id: init.knowledge.own_id(),
            done: false,
        }),
        (Workload::Announce, true) => {
            NaiveSyncSimulator::new(sim).run(config, |init: NodeInit<'_>| Announce {
                id: init.knowledge.own_id(),
                done: false,
            })
        }
    }
}

/// Best-of-`iters` wall-clock nanoseconds for one case.
fn measure(case: &Case, naive: bool, iters: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        let report = run_case(case, naive);
        let ns = t.elapsed().as_nanos() as f64;
        assert!(report.completed, "workload must terminate");
        best = best.min(ns);
    }
    best
}

fn compare_engines() {
    use std::io::Write;

    // Benches run with the package directory as CWD; anchor the artifact at
    // the workspace root where the other BENCH_*.json files live.
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_engine.json");
    let mut json = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(json_path)
        .ok();
    println!("\n=== sim_engine: arena engine vs naive nested-Vec loop ===");
    println!(
        "{:<22} {:<9} {:>12} {:>14} {:>14} {:>9}",
        "graph", "workload", "messages", "engine", "naive", "speedup"
    );
    for case in cases() {
        let messages = run_case(&case, false).messages;
        let engine_ns = measure(&case, false, 5);
        let naive_ns = measure(&case, true, case.naive_iters);
        let speedup = naive_ns / engine_ns;
        println!(
            "{:<22} {:<9} {:>12} {:>12.2}ms {:>12.2}ms {:>8.2}x",
            case.graph_name,
            case.workload.name(),
            messages,
            engine_ns / 1e6,
            naive_ns / 1e6,
            speedup
        );
        if let Some(f) = json.as_mut() {
            let _ = writeln!(
                f,
                "{{\"bench\":\"sim_engine\",\"graph\":\"{}\",\"workload\":\"{}\",\"n\":{},\"m\":{},\"messages\":{},\"engine_ns\":{:.0},\"naive_ns\":{:.0},\"speedup\":{:.3}}}",
                case.graph_name,
                case.workload.name(),
                case.graph.num_nodes(),
                case.graph.num_edges(),
                messages,
                engine_ns,
                naive_ns,
                speedup
            );
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    compare_engines();
    // Criterion samples on a mid-size instance so regressions show up in
    // per-iteration time without the comparison table's long tail.
    let graph = generators::random_near_regular(10_000, 8, &mut StdRng::seed_from_u64(7));
    let n = graph.num_nodes();
    let ids = IdAssignment::identity(n);
    let flood_case = Case {
        graph_name: "random_d8_10000",
        workload: Workload::Flood,
        graph: graph.clone(),
        ids: ids.clone(),
        naive_iters: 5,
    };
    let announce_case = Case {
        graph_name: "random_d8_10000",
        workload: Workload::Announce,
        graph,
        ids,
        naive_iters: 5,
    };
    c.bench_function("sim_engine_flood_random_d8_10000", |b| {
        b.iter(|| run_case(&flood_case, false))
    });
    c.bench_function("sim_engine_announce_random_d8_10000", |b| {
        b.iter(|| run_case(&announce_case, false))
    });
    c.bench_function("sim_naive_flood_random_d8_10000", |b| {
        b.iter(|| run_case(&flood_case, true))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
