//! SIM-ENGINE: throughput of the arena-based round engine vs. the naive
//! nested-`Vec` reference loop.
//!
//! Three simulator-bound workloads (algorithm work is intentionally trivial
//! so the measurement isolates the engine):
//!
//! * **flood** — a token spreads from node 0; every node broadcasts once.
//!   Message traffic is `2m` spread over ~diameter rounds.
//! * **announce** — every node broadcasts its ID in round 0. All `2m`
//!   messages land in a single round, stressing peak arena throughput.
//! * **dense_rounds** — every node broadcasts every round for
//!   [`DENSE_ROUNDS`] rounds: sustained all-to-all traffic, the shape that
//!   historically lost to the naive loop (see the receiver-major delivery
//!   path in `congest::engine`). The harness *asserts* the engine is at
//!   least as fast as the naive loop on these rows.
//!
//! Graph families: cycle (long thin rounds), clique (one hot round),
//! near-regular random graphs up to n = 10⁵. Each pair is measured for both
//! engines — single-threaded, plus a multi-threaded engine pass when the
//! host has more than one CPU (asserting ≥ 2× on the flood@random_d8 row
//! when ≥ 4 cores are present), plus **sharded** engine rows
//! (`SyncConfig::shards`, `shards` JSON field): shards = 1 resolves to the
//! identity partition — asserted ≥ 0.95× the unsharded engine at full size,
//! guarding that merely *enabling* sharding costs nothing — while
//! shards = 4 exercises the real shard-slice/ghost-frontier machinery
//! (reported, not gated: row translation is the price of frontier
//! isolation). The speedups are printed and written to
//! `BENCH_sim_engine.json` (one JSON object per line, `threads`/`shards`
//! fields per row; the file is regenerated, not appended).
//!
//! A **trace-recording row** (`flood_trace`) runs the cycle flood at
//! n = 10⁵ with the full message trace captured twice — once into the
//! in-RAM `Trace` and once spilled through
//! [`symbreak_congest::trace_store::MmapTraceObserver`] — asserts the
//! reloaded `StoredTrace` equals the in-RAM trace, and reports both
//! recording times plus the on-disk size. Before the spill layer this row
//! was the scale at which full-trace recording stopped being viable.
//!
//! Two **checkpoint rows** run the flood with an engine checkpoint every 8
//! rounds: `flood_ckpt8` on the n = 10⁵ near-regular random graph gates
//! the checkpointed loop at ≥ 0.8× of the plain engine (report asserted
//! bit-identical), and `flood_ckpt8_cycle` reports — without gating — the
//! adversarial ~n/2-round cycle flood, where thousands of boundaries land
//! on near-zero per-round work. A **fault-seam row** (`async_fault0`)
//! gates the identity-plan fault path at ≥ 0.9× of the plain asynchronous
//! executor. An **audit row** (`flood_audit0`) gates the audit-off engine
//! at ≥ 0.95× of the direct observer path — the const-`AUDIT`
//! monomorphization must stay free — and reports the collect-mode
//! audit-on cost with the report asserted bit-identical and violation-free.
//!
//! Set `SIM_ENGINE_SMOKE=1` to run a reduced-n regression smoke (used by
//! CI): the same workloads and asserts at a fraction of the size, with no
//! JSON artifact.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_congest::async_sim::{AsyncConfig, AsyncSimulator};
use symbreak_congest::reference::NaiveSyncSimulator;
use symbreak_congest::trace_store::MmapTraceObserver;
use symbreak_congest::{
    AuditConfig, CheckpointChain, CheckpointConfig, ExecutionReport, FaultPlan, KtLevel, Message,
    NodeAlgorithm, NodeInit, NoopObserver, PersistState, RoundContext, SyncConfig, SyncSimulator,
};
use symbreak_graphs::{generators, Graph, IdAssignment, NodeId};

/// Rounds of all-to-all traffic in the `dense_rounds` workload.
const DENSE_ROUNDS: u32 = 8;

/// Token flood from node 0: broadcast once on first contact.
///
/// The automaton is purely *reactive* — it permanently reports done and
/// relies on the `NodeAlgorithm::is_done` contract (a done node is invoked
/// whenever messages arrive). This is the shape event-driven flooding takes
/// on the arena engine: nodes the token has not reached yet cost nothing.
struct Flood {
    have: bool,
}

impl Flood {
    fn new() -> Self {
        Flood { have: false }
    }
}

impl NodeAlgorithm for Flood {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        let newly =
            (ctx.round() == 0 && ctx.node() == NodeId(0)) || (!self.have && !inbox.is_empty());
        if newly {
            self.have = true;
            ctx.broadcast(&Message::tagged(1));
        }
    }
    fn is_done(&self) -> bool {
        true
    }
    fn output(&self) -> Option<u64> {
        Some(u64::from(self.have))
    }
}

impl PersistState for Flood {
    fn encode_state(&self, out: &mut Vec<u64>) {
        out.push(u64::from(self.have));
    }
    fn decode_state(&mut self, words: &[u64]) -> bool {
        let &[have] = words else { return false };
        if have > 1 {
            return false;
        }
        self.have = have == 1;
        true
    }
}

/// Every node announces its own ID to all neighbours in round 0.
struct Announce {
    id: u64,
    done: bool,
}

impl NodeAlgorithm for Announce {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, _inbox: &[Message]) {
        if ctx.round() == 0 {
            ctx.broadcast(&Message::tagged(0).with_id(self.id));
        }
        self.done = true;
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

/// Every node broadcasts every round until its budget runs out: sustained
/// all-to-all rounds at full density.
struct DenseChatter {
    left: u32,
}

impl NodeAlgorithm for DenseChatter {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, _inbox: &[Message]) {
        if self.left > 0 {
            self.left -= 1;
            ctx.broadcast(&Message::tagged(3).with_value(self.left as u64));
        }
    }
    fn is_done(&self) -> bool {
        self.left == 0
    }
}

#[derive(Clone, Copy)]
enum Workload {
    Flood,
    Announce,
    DenseRounds,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Flood => "flood",
            Workload::Announce => "announce",
            Workload::DenseRounds => "dense_rounds",
        }
    }
}

struct Case {
    graph_name: &'static str,
    workload: Workload,
    graph: Graph,
    ids: IdAssignment,
    /// Timing iterations for the naive engine. The event-driven arena
    /// engine only touches the flood frontier, but the naive loop sweeps
    /// all n nodes every one of the ~n/2 rounds of a 100k-cycle flood —
    /// tens of seconds — so the huge high-diameter case gets one naive
    /// iteration instead of five.
    naive_iters: u32,
}

/// Whether this run is the reduced-size CI smoke.
fn smoke() -> bool {
    std::env::var("SIM_ENGINE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn cases() -> Vec<Case> {
    let shrink = if smoke() { 16 } else { 1 };
    let mut out = Vec::new();
    let families: Vec<(&'static str, Graph)> = vec![
        ("cycle_4096", generators::cycle(4096 / shrink)),
        ("cycle_100000", generators::cycle(100_000 / shrink)),
        ("clique_512", generators::clique(512 / (shrink.min(4)))),
        (
            "random_d8_100000",
            generators::random_near_regular(100_000 / shrink, 8, &mut StdRng::seed_from_u64(42)),
        ),
    ];
    for (graph_name, graph) in families {
        let n = graph.num_nodes();
        for workload in [Workload::Flood, Workload::Announce, Workload::DenseRounds] {
            // `dense_rounds` is measured on the high-m families, where an
            // all-to-all round actually carries ~m messages. On cycles
            // (m = n) sustained broadcast is 2 messages per node and round —
            // the naive loop's best case, already covered by the announce
            // rows; the engine's event-driven machinery costs a few percent
            // there and pays for itself the moment rounds are sparse.
            if matches!(workload, Workload::DenseRounds) && graph_name.starts_with("cycle") {
                continue;
            }
            let slow_naive = matches!(workload, Workload::Flood) && graph_name == "cycle_100000";
            out.push(Case {
                graph_name,
                workload,
                graph: graph.clone(),
                ids: IdAssignment::identity(n),
                naive_iters: if slow_naive { 1 } else { 5 },
            });
        }
    }
    out
}

fn run_case(case: &Case, naive: bool, threads: usize, shards: usize) -> ExecutionReport {
    let sim = SyncSimulator::new(&case.graph, &case.ids, KtLevel::KT1);
    let config = SyncConfig::default()
        .with_threads(threads)
        .with_shards(shards);
    match (case.workload, naive) {
        (Workload::Flood, false) => sim.run(config, |_| Flood::new()),
        (Workload::Flood, true) => NaiveSyncSimulator::new(sim).run(config, |_| Flood::new()),
        (Workload::Announce, false) => sim.run(config, |init: NodeInit<'_>| Announce {
            id: init.knowledge.own_id(),
            done: false,
        }),
        (Workload::Announce, true) => {
            NaiveSyncSimulator::new(sim).run(config, |init: NodeInit<'_>| Announce {
                id: init.knowledge.own_id(),
                done: false,
            })
        }
        (Workload::DenseRounds, false) => sim.run(config, |_| DenseChatter { left: DENSE_ROUNDS }),
        (Workload::DenseRounds, true) => {
            NaiveSyncSimulator::new(sim).run(config, |_| DenseChatter { left: DENSE_ROUNDS })
        }
    }
}

/// Best-of-`iters` wall-clock nanoseconds for one case.
fn measure(case: &Case, naive: bool, threads: usize, shards: usize, iters: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        let report = run_case(case, naive, threads, shards);
        let ns = t.elapsed().as_nanos() as f64;
        assert!(report.completed, "workload must terminate");
        best = best.min(ns);
    }
    best
}

/// Best-of measurements for engine and naive, *interleaved* so slow clock
/// drift (thermal throttling, noisy-neighbour VMs) hits both loops equally
/// instead of skewing whichever happened to run second.
fn measure_pair(case: &Case, engine_iters: u32, naive_iters: u32) -> (f64, f64) {
    let (mut engine_best, mut naive_best) = (f64::INFINITY, f64::INFINITY);
    for k in 0..engine_iters.max(naive_iters) {
        if k < engine_iters {
            engine_best = engine_best.min(measure(case, false, 1, 0, 1));
        }
        if k < naive_iters {
            naive_best = naive_best.min(measure(case, true, 1, 0, 1));
        }
    }
    (engine_best, naive_best)
}

struct Row<'c> {
    case: &'c Case,
    threads: usize,
    /// Graph shard count of the sharded stepping path; `0` = unsharded.
    shards: usize,
    messages: u64,
    engine_ns: f64,
    naive_ns: f64,
}

impl Row<'_> {
    fn print(&self) {
        println!(
            "{:<22} {:<13} {:>3} {:>3} {:>12} {:>12.2}ms {:>12.2}ms {:>8.2}x",
            self.case.graph_name,
            self.case.workload.name(),
            self.threads,
            self.shards,
            self.messages,
            self.engine_ns / 1e6,
            self.naive_ns / 1e6,
            self.naive_ns / self.engine_ns
        );
    }

    fn json(&self) -> String {
        format!(
            "{{\"bench\":\"sim_engine\",\"graph\":\"{}\",\"workload\":\"{}\",\"n\":{},\"m\":{},\"threads\":{},\"shards\":{},\"messages\":{},\"engine_ns\":{:.0},\"naive_ns\":{:.0},\"speedup\":{:.3}}}",
            self.case.graph_name,
            self.case.workload.name(),
            self.case.graph.num_nodes(),
            self.case.graph.num_edges(),
            self.threads,
            self.shards,
            self.messages,
            self.engine_ns,
            self.naive_ns,
            self.naive_ns / self.engine_ns
        )
    }
}

fn compare_engines() {
    use std::io::Write;

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mt_threads = cores.min(8);
    // Benches run with the package directory as CWD; anchor the artifact at
    // the workspace root where the other BENCH_*.json files live. The file
    // is regenerated wholesale (smoke runs write no artifact).
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_engine.json");
    let mut json = (!smoke())
        .then(|| {
            std::fs::OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(json_path)
                .ok()
        })
        .flatten();
    println!(
        "\n=== sim_engine: arena engine vs naive nested-Vec loop ({} core(s){}) ===",
        cores,
        if smoke() { ", smoke" } else { "" }
    );
    println!(
        "{:<22} {:<13} {:>3} {:>3} {:>12} {:>14} {:>14} {:>9}",
        "graph", "workload", "thr", "shd", "messages", "engine", "naive", "speedup"
    );
    let cases = cases();
    let mut mt_flood_ratio: Option<f64> = None;
    for case in &cases {
        let messages = run_case(case, false, 1, 0).messages;
        let (engine_ns, naive_ns) = measure_pair(case, 7, case.naive_iters);
        let row = Row {
            case,
            threads: 1,
            shards: 0,
            messages,
            engine_ns,
            naive_ns,
        };
        row.print();
        if let Some(f) = json.as_mut() {
            let _ = writeln!(f, "{}", row.json());
        }
        if matches!(case.workload, Workload::DenseRounds) {
            assert!(
                engine_ns <= naive_ns,
                "dense-round regression on {}: engine {:.2}ms > naive {:.2}ms",
                case.graph_name,
                engine_ns / 1e6,
                naive_ns / 1e6
            );
        }
        // Sharded stepping rows: shards = 1 is the identity partition
        // (must cost nothing — the ≥ 0.95× gate below), shards = 4 the
        // shard-slice/ghost-frontier machinery. Both single-threaded,
        // against the same naive baseline. The gate's two measurements are
        // *interleaved* (fresh unsharded pass vs shards = 1) so slow clock
        // drift cannot fail a ratio between code paths that are identical
        // modulo one O(n) plan computation.
        let (engine_again_ns, sharded1_ns) = {
            let (mut a, mut b) = (f64::INFINITY, f64::INFINITY);
            for _ in 0..7 {
                a = a.min(measure(case, false, 1, 0, 1));
                b = b.min(measure(case, false, 1, 1, 1));
            }
            (a, b)
        };
        let sharded4_ns = measure(case, false, 1, 4, 7);
        for (shard_count, sharded_ns) in [(1usize, sharded1_ns), (4, sharded4_ns)] {
            let sharded_row = Row {
                case,
                threads: 1,
                shards: shard_count,
                messages,
                engine_ns: sharded_ns,
                naive_ns,
            };
            sharded_row.print();
            if let Some(f) = json.as_mut() {
                let _ = writeln!(f, "{}", sharded_row.json());
            }
        }
        let ratio = engine_again_ns / sharded1_ns;
        if smoke() {
            if ratio < 0.95 {
                println!(
                    "smoke: sharded@1 on {}/{} only {ratio:.2}x of the unsharded \
                     engine (informational only at reduced n)",
                    case.graph_name,
                    case.workload.name()
                );
            }
        } else {
            assert!(
                ratio >= 0.95,
                "sharded indirection regression on {}/{}: shards=1 is {ratio:.2}x \
                 the unsharded engine (sharded {:.2}ms vs {:.2}ms)",
                case.graph_name,
                case.workload.name(),
                sharded1_ns / 1e6,
                engine_again_ns / 1e6
            );
        }
        if mt_threads > 1 {
            let mt_ns = measure(case, false, mt_threads, 0, 5);
            let mt_row = Row {
                case,
                threads: mt_threads,
                shards: 0,
                messages,
                engine_ns: mt_ns,
                naive_ns,
            };
            mt_row.print();
            if let Some(f) = json.as_mut() {
                let _ = writeln!(f, "{}", mt_row.json());
            }
            if matches!(case.workload, Workload::Flood) && case.graph_name == "random_d8_100000" {
                mt_flood_ratio = Some(engine_ns / mt_ns);
            }
            // The parallel ghost-frontier path: one worker per shard.
            let mt_sharded_ns = measure(case, false, mt_threads, mt_threads.max(2), 5);
            let mt_sharded_row = Row {
                case,
                threads: mt_threads,
                shards: mt_threads.max(2),
                messages,
                engine_ns: mt_sharded_ns,
                naive_ns,
            };
            mt_sharded_row.print();
            if let Some(f) = json.as_mut() {
                let _ = writeln!(f, "{}", mt_sharded_row.json());
            }
        }
    }
    trace_row(&mut json);
    fault_seam_row(&mut json);
    checkpoint_row(&mut json);
    audit_row(&mut json, mt_threads);
    if cores >= 4 {
        let ratio = mt_flood_ratio.expect("flood@random_d8_100000 must have run multi-threaded");
        // Only the full-size run is a fair test of parallel stepping: at
        // smoke scale the per-round fork-join overhead dominates the tiny
        // shards, and shared CI runners add noisy-neighbour variance.
        if smoke() {
            println!(
                "smoke: {mt_threads}-thread flood@random_d8 ratio {ratio:.2}x \
                 (informational only at reduced n)"
            );
        } else {
            assert!(
                ratio >= 2.0,
                "parallel stepping too slow: {mt_threads}-thread flood@random_d8_100000 \
                 only {ratio:.2}x over single-threaded on {cores} cores"
            );
        }
    }
    println!();
}

/// The trace-recording row: one flood over the 10⁵-node cycle with the
/// complete message trace captured through both recording paths. The
/// in-RAM `Trace` is the reference; the spilled `StoredTrace` must reload
/// equal to it (round counts, per-round messages, byte-for-byte payloads)
/// — the acceptance check of the spill layer at the scale that motivated
/// it. Runs single-threaded: active observers pin runs to the sequential
/// loop anyway.
fn trace_row(json: &mut Option<std::fs::File>) {
    use std::io::Write;

    let shrink = if smoke() { 16 } else { 1 };
    let n = 100_000 / shrink;
    let graph = generators::cycle(n);
    let ids = IdAssignment::identity(n);
    let sim = SyncSimulator::new(&graph, &ids, KtLevel::KT1);

    // In-RAM reference: the built-in `record_trace` instrumentation.
    let t = Instant::now();
    let ram_report = sim.run(
        SyncConfig {
            record_trace: true,
            threads: 1,
            ..SyncConfig::default()
        },
        |_| Flood::new(),
    );
    let ram_ns = t.elapsed().as_nanos() as f64;
    let ram_trace = ram_report.trace.expect("trace requested");

    // Spilled: the same (deterministic) run through the observer seam.
    let mut obs = MmapTraceObserver::create_temp().expect("create spill file");
    let t = Instant::now();
    let spill_report = sim.run_observed(
        SyncConfig::default().with_threads(1),
        |_| Flood::new(),
        &mut obs,
    );
    let stored = obs.finish().expect("seal spill file");
    let spill_ns = t.elapsed().as_nanos() as f64;

    assert_eq!(spill_report.messages, ram_report.messages);
    assert_eq!(stored.num_messages(), ram_report.messages);
    assert!(
        stored.same_as(&ram_trace).expect("read stored trace"),
        "stored trace diverged from the in-RAM trace"
    );
    let bytes = std::fs::metadata(stored.path()).map_or(0, |m| m.len());
    println!(
        "{:<22} {:<13} {:>3} {:>3} {:>12} {:>12.2}ms {:>12.2}ms {:>7.1}MiB",
        format!("cycle_{n}"),
        "flood_trace",
        1,
        0,
        ram_report.messages,
        spill_ns / 1e6,
        ram_ns / 1e6,
        bytes as f64 / (1024.0 * 1024.0),
    );
    if let Some(f) = json.as_mut() {
        let _ = writeln!(
            f,
            "{{\"bench\":\"sim_engine\",\"graph\":\"cycle_{n}\",\"workload\":\"flood_trace\",\
             \"n\":{n},\"m\":{},\"threads\":1,\"shards\":0,\"messages\":{},\
             \"spill_ns\":{spill_ns:.0},\"ram_ns\":{ram_ns:.0},\"spill_bytes\":{bytes}}}",
            graph.num_edges(),
            ram_report.messages,
        );
    }
    stored.remove().expect("spill hygiene");
}

/// The fault-seam row: the asynchronous flood at n = 10⁵ through `run`
/// (the historical entry point) and through `run_with_faults` with an
/// identity [`FaultPlan`]. The identity plan dispatches to the same
/// `FAULTS = false` monomorphization, so enabling the fault seam must cost
/// nothing — gated at ≥ 0.9× of the plain path on full-size runs
/// (informational at smoke scale). The two measurements are interleaved,
/// like the shards = 1 gate, so clock drift cannot fail the ratio.
fn fault_seam_row(json: &mut Option<std::fs::File>) {
    use std::io::Write;

    let shrink = if smoke() { 16 } else { 1 };
    let n = 100_000 / shrink;
    let graph = generators::random_near_regular(n, 8, &mut StdRng::seed_from_u64(42));
    let ids = IdAssignment::identity(n);
    let sim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
    let config = AsyncConfig::default();
    let plan = FaultPlan::default();
    assert!(plan.is_identity());

    let (mut plain_ns, mut seam_ns) = (f64::INFINITY, f64::INFINITY);
    let mut messages = 0;
    for k in 0..7u64 {
        let t = Instant::now();
        let plain = sim.run(config, &mut StdRng::seed_from_u64(k), |_| Flood::new());
        plain_ns = plain_ns.min(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        let seam = sim.run_with_faults(config, &plan, &mut StdRng::seed_from_u64(k), |_| {
            Flood::new()
        });
        seam_ns = seam_ns.min(t.elapsed().as_nanos() as f64);
        assert!(plain.completed && seam.completed);
        assert_eq!(plain, seam, "identity plan must be bit-identical to run()");
        messages = plain.messages;
    }
    let ratio = plain_ns / seam_ns;
    println!(
        "{:<22} {:<13} {:>3} {:>3} {:>12} {:>12.2}ms {:>12.2}ms {:>8.2}x",
        format!("random_d8_{n}"),
        "async_fault0",
        1,
        0,
        messages,
        seam_ns / 1e6,
        plain_ns / 1e6,
        ratio,
    );
    if let Some(f) = json.as_mut() {
        let _ = writeln!(
            f,
            "{{\"bench\":\"sim_engine\",\"graph\":\"random_d8_{n}\",\"workload\":\"async_fault0\",\
             \"n\":{n},\"m\":{},\"threads\":1,\"shards\":0,\"messages\":{messages},\
             \"seam_ns\":{seam_ns:.0},\"plain_ns\":{plain_ns:.0},\"ratio\":{ratio:.3}}}",
            graph.num_edges(),
        );
    }
    if smoke() {
        if ratio < 0.9 {
            println!(
                "smoke: fault seam at {ratio:.2}x of the plain async path \
                 (informational only at reduced n)"
            );
        }
    } else {
        assert!(
            ratio >= 0.9,
            "fault-seam regression: run_with_faults(identity) is {ratio:.2}x the plain \
             async path (seam {:.2}ms vs {:.2}ms)",
            seam_ns / 1e6,
            plain_ns / 1e6
        );
    }
}

/// The audit row (`flood_audit0`): the flood on the n = 10⁵ near-regular
/// random graph through the three faces of the audit seam, multi-threaded
/// so the const-`AUDIT` plumbing in the parallel loop is what's priced:
///
/// * **audit-off** — `run()` with `CONGEST_AUDIT` unset: the production
///   path, whose round loop is the `AUDIT = false` monomorphization (the
///   pre-audit engine, bit for bit, plus one env read per run);
/// * **direct** — `run_observed` with a [`NoopObserver`]: the same
///   `AUDIT = false` loop entered without the audit-enable check. Gated:
///   audit-off must stay ≥ 0.95× of this at full size (informational at
///   smoke scale) — the monomorphized seam must stay free. Interleaved,
///   like the shards = 1 gate, so clock drift cannot fail a ratio between
///   near-identical code paths;
/// * **audit-on** — `run_audited` in collect mode: the `AUDIT = true`
///   loop, workers logging every send for deterministic replay through the
///   bandwidth/adjacency/multiplicity/race checks. Reported, not gated —
///   per-message replay has a real price — with the report asserted
///   bit-identical to the plain run and zero violations.
fn audit_row(json: &mut Option<std::fs::File>, mt_threads: usize) {
    use std::io::Write;

    let shrink = if smoke() { 16 } else { 1 };
    let n = 100_000 / shrink;
    let graph = generators::random_near_regular(n, 8, &mut StdRng::seed_from_u64(42));
    let ids = IdAssignment::identity(n);
    let sim = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
    let config = SyncConfig::default().with_threads(mt_threads);
    let audit = AuditConfig::collect(42);

    let (mut off_ns, mut direct_ns, mut on_ns) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut messages = 0;
    for _ in 0..7 {
        let t = Instant::now();
        let off = sim.run(config, |_| Flood::new());
        off_ns = off_ns.min(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        let direct = sim.run_observed(config, |_| Flood::new(), &mut NoopObserver);
        direct_ns = direct_ns.min(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        let (audited, violations) = sim.run_audited(config, &audit, |_| Flood::new());
        on_ns = on_ns.min(t.elapsed().as_nanos() as f64);
        assert!(off.completed);
        assert_eq!(off, direct);
        assert_eq!(off, audited, "audited report must be bit-identical");
        assert!(violations.is_empty(), "the flood is model-compliant");
        messages = off.messages;
    }
    let seam_ratio = direct_ns / off_ns;
    let audit_on_ratio = off_ns / on_ns;
    println!(
        "{:<22} {:<13} {:>3} {:>3} {:>12} {:>12.2}ms {:>12.2}ms {:>8.2}x",
        format!("random_d8_{n}"),
        "flood_audit0",
        mt_threads,
        0,
        messages,
        off_ns / 1e6,
        on_ns / 1e6,
        audit_on_ratio,
    );
    if let Some(f) = json.as_mut() {
        let _ = writeln!(
            f,
            "{{\"bench\":\"sim_engine\",\"graph\":\"random_d8_{n}\",\"workload\":\"flood_audit0\",\
             \"n\":{n},\"m\":{},\"threads\":{mt_threads},\"shards\":0,\"messages\":{messages},\
             \"off_ns\":{off_ns:.0},\"direct_ns\":{direct_ns:.0},\"on_ns\":{on_ns:.0},\
             \"seam_ratio\":{seam_ratio:.3},\"audit_on_ratio\":{audit_on_ratio:.3}}}",
            graph.num_edges(),
        );
    }
    if smoke() {
        if seam_ratio < 0.95 {
            println!(
                "smoke: audit-off engine at {seam_ratio:.2}x of the direct observer path \
                 (informational only at reduced n)"
            );
        }
    } else {
        assert!(
            seam_ratio >= 0.95,
            "audit-seam regression: the audit-off run() path is {seam_ratio:.2}x the direct \
             observer path (off {:.2}ms vs {:.2}ms) — the monomorphized seam must stay free",
            off_ns / 1e6,
            direct_ns / 1e6
        );
    }
}

/// The checkpoint rows: [`SyncSimulator::run_checkpointed`] with a
/// boundary every 8 rounds against the plain engine, interleaved best-of-5
/// with the reports asserted bit-identical.
///
/// * **`flood_ckpt8`** (gated) — the flood on the near-regular random
///   graph at n = 10⁵, the same row the engine-speedup gate measures. The
///   ~9-round run crosses one boundary, so the row prices a full-state
///   dump plus the in-flight capture against real per-round work: ≥ 0.8×
///   of the uncheckpointed engine at full size (informational at smoke
///   scale), with a non-vacuity check that the log really holds a
///   checkpoint record.
/// * **`flood_ckpt8_cycle`** (informational) — the ~n/2-round cycle
///   flood: thousands of boundaries over near-zero per-round work, the
///   adversarial stress for the boundary path itself. A plain cycle round
///   is a few skip-list probes, so no boundary encoder can stay within
///   0.8× here; the row is reported to track the trend, not gated.
fn checkpoint_row(json: &mut Option<std::fs::File>) {
    use std::io::Write;

    let shrink = if smoke() { 16 } else { 1 };
    let n = 100_000 / shrink;
    let config = SyncConfig::default().with_threads(1);
    let log = std::env::temp_dir().join(format!("sbck-bench-{}.sbck", std::process::id()));
    let ckpt = CheckpointConfig::new(&log).with_every(8);

    let mut measure = |graph_name: String, workload: &str, graph: &Graph| {
        let ids = IdAssignment::identity(graph.num_nodes());
        let sim = SyncSimulator::new(graph, &ids, KtLevel::KT1);
        let (mut plain_ns, mut ckpt_ns) = (f64::INFINITY, f64::INFINITY);
        let mut messages = 0;
        for _ in 0..5 {
            let t = Instant::now();
            let plain = sim.run(config, |_| Flood::new());
            plain_ns = plain_ns.min(t.elapsed().as_nanos() as f64);
            let t = Instant::now();
            let checkpointed = sim
                .run_checkpointed(config, &ckpt, |_| Flood::new())
                .expect("checkpointed flood");
            ckpt_ns = ckpt_ns.min(t.elapsed().as_nanos() as f64);
            assert!(plain.completed && checkpointed.completed);
            assert_eq!(
                plain, checkpointed,
                "checkpointing must not change the report"
            );
            messages = plain.messages;
        }
        let records = CheckpointChain::load(&log).map_or(0, |c| c.records().len());
        let log_bytes = std::fs::metadata(&log).map_or(0, |m| m.len());
        let _ = std::fs::remove_file(&log);
        let ratio = plain_ns / ckpt_ns;
        println!(
            "{:<22} {:<13} {:>3} {:>3} {:>12} {:>12.2}ms {:>12.2}ms {:>8.2}x",
            graph_name,
            workload,
            1,
            0,
            messages,
            ckpt_ns / 1e6,
            plain_ns / 1e6,
            ratio,
        );
        if let Some(f) = json.as_mut() {
            let _ = writeln!(
                f,
                "{{\"bench\":\"sim_engine\",\"graph\":\"{graph_name}\",\"workload\":\"{workload}\",\
                 \"n\":{},\"m\":{},\"threads\":1,\"shards\":0,\"messages\":{messages},\
                 \"ckpt_ns\":{ckpt_ns:.0},\"plain_ns\":{plain_ns:.0},\"ratio\":{ratio:.3},\
                 \"log_bytes\":{log_bytes}}}",
                graph.num_nodes(),
                graph.num_edges(),
            );
        }
        (ratio, records)
    };

    let graph = generators::random_near_regular(n, 8, &mut StdRng::seed_from_u64(42));
    let (ratio, records) = measure(format!("random_d8_{n}"), "flood_ckpt8", &graph);
    if smoke() {
        if ratio < 0.8 {
            println!(
                "smoke: checkpointing every 8 rounds at {ratio:.2}x of the plain engine \
                 (informational only at reduced n)"
            );
        }
    } else {
        assert!(
            records >= 1,
            "checkpoint gate is vacuous: the run never crossed a boundary"
        );
        assert!(
            ratio >= 0.8,
            "checkpoint overhead regression: every-8-rounds checkpointing is {ratio:.2}x \
             the plain engine on random_d8_{n}"
        );
    }

    let graph = generators::cycle(n);
    measure(format!("cycle_{n}"), "flood_ckpt8_cycle", &graph);
}

fn bench(c: &mut Criterion) {
    compare_engines();
    // Criterion samples on a mid-size instance so regressions show up in
    // per-iteration time without the comparison table's long tail.
    let graph = generators::random_near_regular(10_000, 8, &mut StdRng::seed_from_u64(7));
    let n = graph.num_nodes();
    let ids = IdAssignment::identity(n);
    let flood_case = Case {
        graph_name: "random_d8_10000",
        workload: Workload::Flood,
        graph: graph.clone(),
        ids: ids.clone(),
        naive_iters: 5,
    };
    let announce_case = Case {
        graph_name: "random_d8_10000",
        workload: Workload::Announce,
        graph,
        ids,
        naive_iters: 5,
    };
    c.bench_function("sim_engine_flood_random_d8_10000", |b| {
        b.iter(|| run_case(&flood_case, false, 1, 0))
    });
    c.bench_function("sim_engine_announce_random_d8_10000", |b| {
        b.iter(|| run_case(&announce_case, false, 1, 0))
    });
    c.bench_function("sim_naive_flood_random_d8_10000", |b| {
        b.iter(|| run_case(&flood_case, true, 1, 0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
