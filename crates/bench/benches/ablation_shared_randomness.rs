//! ABL-SHARED-RAND: what shared randomness + KT-1 buys (Section 1.3).
//!
//! The paper's key device is that the Chang et al. partition can be
//! evaluated locally on neighbours' IDs once a short seed is shared, instead
//! of exchanging state over every edge. This ablation compares:
//!
//! * the *hash-derived* partition (zero messages beyond the seed broadcast),
//!   versus
//! * an *explicit state exchange* in which every node sends its part to
//!   every neighbour — the Θ(m) cost the MPC-style algorithm would pay if
//!   simulated naively in CONGEST.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use symbreak_bench::sweeps;
use symbreak_bench::workloads::gnp_instance;
use symbreak_core::partition::ChangPartition;
use symbreak_ktrand::SharedRandomness;

fn print_table() {
    println!("\n=== ABL-SHARED-RAND: learning the partition of your neighbours ===");
    println!(
        "{:<8} {:>10} {:>24} {:>24}",
        "n", "m", "hash-derived (messages)", "state exchange (messages)"
    );
    // The graph grid comes from the declarative sweep registry; this
    // ablation is pure counting (no simulation runs to batch).
    for graph_spec in sweeps::ablation_shared_rand_graphs() {
        let n = graph_spec.n;
        let inst = graph_spec.build();
        // Hash-derived: a node evaluates the shared hash functions on its
        // neighbours' IDs (KT-1) — zero messages beyond the seed broadcast,
        // which costs n − 1 messages per 64-bit word over the danner tree.
        let seed_words = 2u64;
        let hash_messages = seed_words * (n as u64 - 1);
        // Explicit exchange: every node tells every neighbour its part.
        let exchange_messages = 2 * inst.graph.num_edges() as u64;
        println!(
            "{:<8} {:>10} {:>24} {:>24}",
            n,
            inst.graph.num_edges(),
            hash_messages,
            exchange_messages
        );
    }
    println!("(both variants produce the identical partition; only the communication differs)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let inst = gnp_instance(192, 0.5, 801);
    let shared = SharedRandomness::from_seed(42, 4096);
    c.bench_function("chang_partition_eval_n192", |b| {
        b.iter(|| {
            let partition = ChangPartition::compute(&shared, 0, 192, inst.graph.max_degree());
            partition.parts_for(&inst.ids)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
