//! F1-EPS-COL-UB: Theorem 3.8 — (1+ε)Δ-coloring with Õ(n/ε²) messages.
//!
//! Sweeps both `n` (message growth ≈ linear in n) and `ε` (cost grows as ε
//! shrinks) and prints the Figure-1-style rows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use symbreak_bench::workloads::{fit_exponent, gnp_instance, standard_n_sweep};
use symbreak_core::{experiments, MeasurementTable};

fn print_table() {
    let mut table = MeasurementTable::new();
    let mut points = Vec::new();
    for (i, n) in standard_n_sweep().into_iter().enumerate() {
        let inst = gnp_instance(n, 0.5, 200 + i as u64);
        let row = experiments::measure_alg2(&inst.graph, &inst.ids, 0.5, i as u64);
        points.push((n as f64, row.total_messages() as f64));
        table.push(row);
    }
    println!("\n=== F1-EPS-COL-UB: Algorithm 2 across n (ε = 0.5), G(n, 0.5) ===");
    println!("{table}");
    println!(
        "fitted message-growth exponent ≈ n^{:.2} (paper: Õ(n/ε²), i.e. ≈ 1 in n)\n",
        fit_exponent(&points)
    );

    let inst = gnp_instance(192, 0.5, 300);
    let mut table = MeasurementTable::new();
    for eps in [0.1, 0.2, 0.5, 1.0] {
        table.push(experiments::measure_alg2(&inst.graph, &inst.ids, eps, 9));
    }
    println!("=== F1-EPS-COL-UB: ε sweep at n = 192 (smaller ε ⇒ more messages) ===");
    println!("{table}");
}

fn bench(c: &mut Criterion) {
    print_table();
    let inst = gnp_instance(64, 0.5, 8);
    c.bench_function("alg2_eps_coloring_n64_eps0.5", |b| {
        b.iter(|| experiments::measure_alg2(&inst.graph, &inst.ids, 0.5, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
