//! F1-EPS-COL-UB: Theorem 3.8 — (1+ε)Δ-coloring with Õ(n/ε²) messages.
//!
//! Sweeps both `n` (message growth ≈ linear in n) and `ε` (cost grows as ε
//! shrinks) and prints the Figure-1-style rows.
//!
//! Both grids are declarative [`sweeps`] specs executed batched (lockstep
//! lanes, sequential differential oracle); the printed tables are the
//! lane-0 slices, matching the historical single-seed rows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use symbreak_bench::sweeps;
use symbreak_bench::workloads::{fit_exponent, gnp_instance};
use symbreak_core::experiments;

fn print_table() {
    let lanes = sweeps::default_lanes();
    let cells = sweeps::run_sweep(&sweeps::fig1_eps_n_sweep(lanes));
    let points: Vec<(f64, f64)> = cells
        .iter()
        .map(|c| (c.n as f64, c.rows[0].total_messages() as f64))
        .collect();
    println!("\n=== F1-EPS-COL-UB: Algorithm 2 across n (ε = 0.5), G(n, 0.5) ===");
    println!("{}", sweeps::lane0_table(&cells));
    println!(
        "fitted message-growth exponent ≈ n^{:.2} (paper: Õ(n/ε²), i.e. ≈ 1 in n)",
        fit_exponent(&points)
    );
    sweeps::print_speedup_summary(&cells);

    let cells = sweeps::run_sweep(&sweeps::fig1_eps_eps_sweep(lanes));
    println!("=== F1-EPS-COL-UB: ε sweep on one instance (smaller ε ⇒ more messages) ===");
    println!("{}", sweeps::lane0_table(&cells));
    sweeps::print_speedup_summary(&cells);
}

fn bench(c: &mut Criterion) {
    print_table();
    let inst = gnp_instance(64, 0.5, 8);
    c.bench_function("alg2_eps_coloring_n64_eps0.5", |b| {
        b.iter(|| experiments::measure_alg2(&inst.graph, &inst.ids, 0.5, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
