//! ABL-KT2: why Algorithm 3 needs KT-2 knowledge in Step 3 (Section 4).
//!
//! When an MIS node informs its two-hop neighbourhood, KT-2 lets each 1-hop
//! neighbour forward the announcement only if it is the minimum-ID common
//! neighbour — so each 2-hop node hears the news O(1) times. Without KT-2
//! the natural alternative is flooding: every 1-hop neighbour forwards to
//! all of its neighbours, costing one message per 2-path. This ablation
//! measures both.
//!
//! The grid is the declarative [`sweeps::ablation_kt2_sweep`] spec and every
//! algorithm seed comes from its per-cell seed grid (previously the loop
//! reseeded each instance with its bare index, disconnected from the
//! instance seed). All seeds of a cell run as lockstep lanes over the
//! instance's one CSR via [`alg3_mis::run_batch`]; the flood-bound table
//! uses lane 0, whose seed equals the historical single-run seed.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use symbreak_bench::sweeps;
use symbreak_bench::workloads::gnp_instance;
use symbreak_core::{alg3_mis, Alg3Config};

fn print_table() {
    println!("\n=== ABL-KT2: informing 2-hop neighbourhoods, KT-2 BFS trees vs naive flooding ===");
    println!(
        "{:<8} {:>10} {:>22} {:>22}",
        "n", "m", "Alg3 total (KT-2)", "naive 2-hop flood bound"
    );
    let spec = sweeps::ablation_kt2_sweep(sweeps::default_lanes());
    for (g, graph_spec) in spec.graphs.iter().enumerate() {
        let inst = graph_spec.build();
        let seeds = sweeps::seed_grid(spec.alg_seed_base + g as u64, spec.lanes);
        let outs = alg3_mis::run_batch(&inst.graph, &inst.ids, Alg3Config::default(), &seeds)
            .expect("Algorithm 3 failed on an ablation instance");
        let out = &outs[0];
        // Naive flooding forwards every announcement over every incident
        // edge of every 1-hop neighbour: ≈ Σ_{u in MIS∩S} Σ_{v ∈ N(u)} deg(v)
        // messages. We bound it by |MIS∩S| · Δ² which is what a KT-1-only
        // implementation would risk paying.
        let mis_s = out.sampled.min(out.in_mis.iter().filter(|&&b| b).count());
        let flood_bound = mis_s as u64 * (inst.graph.max_degree() as u64).pow(2);
        println!(
            "{:<8} {:>10} {:>22} {:>22}",
            graph_spec.n,
            inst.graph.num_edges(),
            out.costs.total_messages(),
            flood_bound
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let inst = gnp_instance(96, 0.5, 901);
    let seeds = sweeps::seed_grid(7, sweeps::default_lanes());
    c.bench_function("alg3_batched_run_n96", |b| {
        b.iter(|| {
            alg3_mis::run_batch(&inst.graph, &inst.ids, Alg3Config::default(), &seeds).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
