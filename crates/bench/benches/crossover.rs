//! CROSSOVER: the headline question — when does o(m) communication pay off?
//!
//! At fixed n, sweeps the density p of `G(n, p)`. The Θ(m) baselines grow
//! linearly with density while Algorithm 1 / Algorithm 3 stay roughly flat,
//! so the paper's algorithms win exactly on the dense instances the
//! introduction motivates.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use symbreak_bench::workloads::gnp_instance;
use symbreak_core::{experiments, MeasurementTable};

fn print_table() {
    println!("\n=== CROSSOVER: density sweep at n = 192, G(n, p) ===");
    let mut table = MeasurementTable::new();
    for (i, p) in [0.05f64, 0.15, 0.4, 0.8].into_iter().enumerate() {
        let inst = gnp_instance(192, p, 600 + i as u64);
        table.push(experiments::measure_alg1(&inst.graph, &inst.ids, i as u64));
        table.push(experiments::measure_coloring_baseline(
            &inst.graph,
            &inst.ids,
            i as u64,
        ));
        table.push(experiments::measure_alg3(&inst.graph, &inst.ids, i as u64));
        table.push(experiments::measure_luby_baseline(
            &inst.graph,
            &inst.ids,
            i as u64,
        ));
    }
    println!("{table}");
    println!(
        "(rows are grouped in blocks of four per density: Alg1, coloring baseline, Alg3, Luby)\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let inst = gnp_instance(96, 0.8, 9);
    c.bench_function("alg1_dense_n96_p0.8", |b| {
        b.iter(|| experiments::measure_alg1(&inst.graph, &inst.ids, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
