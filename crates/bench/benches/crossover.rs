//! CROSSOVER: the headline question — when does o(m) communication pay off?
//!
//! At fixed n, sweeps the density p of `G(n, p)`. The Θ(m) baselines grow
//! linearly with density while Algorithm 1 / Algorithm 3 stay roughly flat,
//! so the paper's algorithms win exactly on the dense instances the
//! introduction motivates.
//!
//! The grid is the declarative [`sweeps::crossover_sweep`] spec executed
//! batched (lockstep lanes, sequential differential oracle); the printed
//! table is the lane-0 slice, matching the historical single-seed rows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use symbreak_bench::sweeps;
use symbreak_bench::workloads::gnp_instance;
use symbreak_core::experiments;

fn print_table() {
    let cells = sweeps::run_sweep(&sweeps::crossover_sweep(sweeps::default_lanes()));
    println!("\n=== CROSSOVER: density sweep at fixed n, G(n, p) ===");
    println!("{}", sweeps::lane0_table(&cells));
    println!(
        "(rows are grouped in blocks of four per density: Alg1, coloring baseline, Alg3, Luby)"
    );
    sweeps::print_speedup_summary(&cells);
}

fn bench(c: &mut Criterion) {
    print_table();
    let inst = gnp_instance(96, 0.8, 9);
    c.bench_function("alg1_dense_n96_p0.8", |b| {
        b.iter(|| experiments::measure_alg1(&inst.graph, &inst.ids, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
