//! F1-KT1-LB: the Ω(n²) comparison-based lower bound (Theorems 2.10–2.16).
//!
//! Measures, on the crossed-graph family of Figure 2, how many edges a
//! *correct* comparison-based algorithm utilizes (Definition 2.3) and how
//! often the crossed pair `(e, e′)` is utilized — the empirical mechanism of
//! the Ω(n²) bound.
//!
//! The grid is the declarative [`sweeps::lowerbound_crossed_sweep`] spec:
//! every cell derives its own RNG from the spec seed and the cell
//! coordinates, so rows are reproducible independently (the old loop
//! threaded one RNG through every cell, entangling them).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_bench::sweeps;
use symbreak_bench::workloads::fit_exponent;
use symbreak_lowerbounds::experiments::{crossed_utilization_experiment, Problem};

fn print_table() {
    println!(
        "\n=== F1-KT1-LB: utilized edges of correct comparison-based algorithms on G ∪ G′ ==="
    );
    println!(
        "{:<14} {:>4} {:>6} {:>10} {:>12} {:>16} {:>14}",
        "problem", "t", "n", "edges", "utilized", "utilized frac", "pair hit"
    );
    let spec = sweeps::lowerbound_crossed_sweep();
    let cells = sweeps::run_crossed_sweep(&spec);
    for &problem in &spec.problems {
        let mut points = Vec::new();
        for cell in cells.iter().filter(|c| c.problem == problem) {
            let stats = &cell.stats;
            points.push((6.0 * stats.t as f64, stats.avg_utilized_edges));
            println!(
                "{:<14} {:>4} {:>6} {:>10} {:>12.1} {:>15.0}% {:>11}/{}",
                format!("{problem:?}"),
                stats.t,
                6 * stats.t,
                stats.base_edges,
                stats.avg_utilized_edges,
                100.0 * stats.utilized_fraction(),
                stats.pair_utilized,
                stats.samples
            );
        }
        println!(
            "fitted utilized-edge exponent for {problem:?}: ≈ n^{:.2} (lower bound: Ω(n²))\n",
            fit_exponent(&points)
        );
    }
}

fn bench(c: &mut Criterion) {
    print_table();
    c.bench_function("crossed_utilization_t6_coloring", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            crossed_utilization_experiment(Problem::Coloring, 6, 2, &mut rng)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
