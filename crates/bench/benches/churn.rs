//! CHURN — incremental repair vs. full recompute on low-churn streams.
//!
//! Each row opens a [`ChurnSession`] over one graph family, computes an
//! initial colouring and MIS, then drives a seed-reproducible
//! [`ChurnStream`] whose batches touch **≤ 1% of the edges** (half deletes,
//! half inserts). After every batch both restoration strategies run on the
//! *same* post-batch graph, interleaved so clock drift hits both sides
//! equally:
//!
//! * **repair** — dirty-frontier extraction + frontier-subgraph stages
//!   (`core::repair`, Johansson / Luby drivers);
//! * **recompute** — the from-scratch oracle on a materialized CSR
//!   (`recompute_coloring` / `recompute_mis`).
//!
//! Both sides' outputs are validity-checked each batch. The harness
//! **asserts** repair beats full recompute (wall-clock speedup ≥ 1×) on
//! every row — that is the point of incremental repair, and it holds with
//! a wide margin because frontier subgraphs are delta-sized while the
//! recompute pays Θ(n + m) per batch.
//!
//! Results are printed and written to `BENCH_churn.json` (one JSON object
//! per line; regenerated, not appended). Set `CHURN_SMOKE=1` for the
//! reduced-size CI smoke (same rows and asserts, no JSON artifact).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_classic::coloring::verify::is_proper_coloring;
use symbreak_classic::mis::verify::is_mis;
use symbreak_congest::SyncConfig;
use symbreak_core::repair::{ChurnSession, ColoringRepairDriver, MisRepairDriver};
use symbreak_graphs::generators::{self, ChurnStream};
use symbreak_graphs::{properties, Graph, IdAssignment, IdSpace};

/// Whether this run is the reduced-size CI smoke.
fn smoke() -> bool {
    std::env::var("CHURN_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

struct Family {
    name: &'static str,
    graph: Graph,
    ids: IdAssignment,
}

fn families() -> Vec<Family> {
    let shrink = if smoke() { 16 } else { 1 };
    let mut out = Vec::new();
    let mut push = |name: &'static str, graph: Graph| {
        let mut rng = StdRng::seed_from_u64(0x1d5 ^ graph.num_nodes() as u64);
        let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
        out.push(Family { name, graph, ids });
    };
    let d8 = (42..)
        .map(|seed| {
            generators::random_near_regular(20_000 / shrink, 8, &mut StdRng::seed_from_u64(seed))
        })
        .find(properties::is_connected)
        .expect("a connected random_d8 instance exists");
    push("random_d8_20000", d8);
    push(
        "power_law_20000",
        generators::power_law(20_000 / shrink, 4, &mut StdRng::seed_from_u64(0xbeef)),
    );
    push(
        "gnp_2000",
        generators::connected_gnp(2_000 / shrink.min(8), 0.01, &mut StdRng::seed_from_u64(7)),
    );
    out
}

struct Row {
    row: &'static str,
    graph_name: &'static str,
    n: usize,
    m: usize,
    batches: usize,
    churn_per_batch: usize,
    total_frontier: usize,
    repair_ns: f64,
    recompute_ns: f64,
    repair_messages: u64,
    recompute_messages: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.recompute_ns / self.repair_ns
    }

    fn print(&self) {
        println!(
            "{:<9} {:<18} {:>7}n {:>8}m {:>4}ops/b {:>7}fr {:>10.2}ms {:>10.2}ms {:>8.1}x",
            self.row,
            self.graph_name,
            self.n,
            self.m,
            self.churn_per_batch,
            self.total_frontier,
            self.repair_ns / 1e6,
            self.recompute_ns / 1e6,
            self.speedup()
        );
    }

    fn json(&self) -> String {
        format!(
            "{{\"bench\":\"churn\",\"row\":\"{}\",\"graph\":\"{}\",\"n\":{},\"m\":{},\"batches\":{},\"churn_per_batch\":{},\"total_frontier\":{},\"repair_ns\":{:.0},\"recompute_ns\":{:.0},\"repair_messages\":{},\"recompute_messages\":{},\"speedup\":{:.3}}}",
            self.row,
            self.graph_name,
            self.n,
            self.m,
            self.batches,
            self.churn_per_batch,
            self.total_frontier,
            self.repair_ns,
            self.recompute_ns,
            self.repair_messages,
            self.recompute_messages,
            self.speedup()
        )
    }
}

/// Runs one family's coloring and MIS rows: `batches` low-churn batches,
/// repair and recompute interleaved per batch on identical post-batch
/// graphs, validity asserted on both sides.
fn family_rows(fam: &Family, batches: usize) -> Vec<Row> {
    let n = fam.graph.num_nodes();
    let m = fam.graph.num_edges();
    // ≤ 1% of the edges per batch: 0.5% deletes + 0.5% inserts, at least
    // one of each so the tiny smoke graphs still churn.
    let half = (m / 200).max(1);
    let config = SyncConfig::default();
    let mut session = ChurnSession::new(fam.graph.clone(), fam.ids.clone(), config);
    let (mut colors, _) = session.recompute_coloring(0xC01);
    let (mut in_set, _) = session.recompute_mis(0x3A5);
    let mut stream = ChurnStream::new(&fam.graph, 0x5EED);

    let mut coloring = Row {
        row: "coloring",
        graph_name: fam.name,
        n,
        m,
        batches,
        churn_per_batch: 2 * half,
        total_frontier: 0,
        repair_ns: 0.0,
        recompute_ns: 0.0,
        repair_messages: 0,
        recompute_messages: 0,
    };
    let mut mis = Row {
        row: "mis",
        graph_name: fam.name,
        ..coloring
    };

    // Untimed warm-up pair (page cache, allocator, branch predictors).
    let _ = session.recompute_coloring(1);
    let _ = session.recompute_mis(2);

    for step in 0..batches as u64 {
        let batch = stream.next_batch(half, half);
        session.apply(&batch);

        let t = Instant::now();
        let report =
            session.repair_coloring(&batch, &mut colors, ColoringRepairDriver::Johansson, step);
        coloring.repair_ns += t.elapsed().as_nanos() as f64;
        coloring.total_frontier += report.total_frontier();
        coloring.repair_messages += report.messages;

        let t = Instant::now();
        let (scratch_colors, exec) = session.recompute_coloring(step ^ 0xFF);
        coloring.recompute_ns += t.elapsed().as_nanos() as f64;
        coloring.recompute_messages += exec.messages;

        let t = Instant::now();
        let report = session.repair_mis(&batch, &mut in_set, MisRepairDriver::Luby, step);
        mis.repair_ns += t.elapsed().as_nanos() as f64;
        mis.total_frontier += report.total_frontier();
        mis.repair_messages += report.messages;

        let t = Instant::now();
        let (scratch_set, exec) = session.recompute_mis(step ^ 0xFF);
        mis.recompute_ns += t.elapsed().as_nanos() as f64;
        mis.recompute_messages += exec.messages;

        let current = session.overlay().materialize();
        assert!(
            is_proper_coloring(&current, &colors) && is_proper_coloring(&current, &scratch_colors),
            "{}: invalid colouring at batch {step}",
            fam.name
        );
        assert!(
            is_mis(&current, &in_set) && is_mis(&current, &scratch_set),
            "{}: invalid MIS at batch {step}",
            fam.name
        );
    }
    vec![coloring, mis]
}

fn run_grid() {
    use std::io::Write;

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_churn.json");
    let mut json = (!smoke())
        .then(|| {
            std::fs::OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(json_path)
                .ok()
        })
        .flatten();
    println!(
        "\n=== churn: incremental repair vs full recompute, ≤1% edges per batch{} ===",
        if smoke() { " (smoke)" } else { "" }
    );
    println!(
        "{:<9} {:<18} {:>8} {:>9} {:>6} {:>9} {:>12} {:>12} {:>9}",
        "row", "graph", "n", "m", "churn", "frontier", "repair", "recompute", "speedup"
    );
    let batches = if smoke() { 4 } else { 6 };
    for fam in families() {
        for row in family_rows(&fam, batches) {
            row.print();
            // The repair-faster gate: incremental repair must beat the
            // from-scratch oracle on every low-churn row.
            assert!(
                row.speedup() >= 1.0,
                "{}/{}: repair did not beat full recompute ({:.2}x)",
                row.row,
                row.graph_name,
                row.speedup()
            );
            assert!(
                row.repair_messages < row.recompute_messages,
                "{}/{}: repair sent more messages than recompute",
                row.row,
                row.graph_name
            );
            if let Some(f) = json.as_mut() {
                let _ = writeln!(f, "{}", row.json());
            }
        }
    }
}

fn bench(c: &mut Criterion) {
    run_grid();
    // Criterion samples one small repair cell so frontier-pipeline
    // regressions show up as per-iteration time: one batch of churn on a
    // gnp instance, coloring repair only (state is reset every iteration
    // by cloning the session's colours).
    let graph = generators::connected_gnp(600, 0.02, &mut StdRng::seed_from_u64(3));
    let mut rng = StdRng::seed_from_u64(0x1d5);
    let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
    let mut session = ChurnSession::new(graph.clone(), ids, SyncConfig::default());
    let (mut colors, _) = session.recompute_coloring(1);
    let mut stream = ChurnStream::new(&graph, 9);
    // Advance the stream until a batch actually dirties the colouring, so
    // the sampled cell measures a real frontier repair rather than just the
    // conflict scan. Accepted batches fold into `colors` to keep it valid.
    let mut batch = stream.next_batch(4, 4);
    session.apply(&batch);
    let mut probe = colors.clone();
    while session
        .repair_coloring(&batch, &mut probe, ColoringRepairDriver::Johansson, 5)
        .iterations
        == 0
    {
        colors = probe;
        batch = stream.next_batch(4, 4);
        session.apply(&batch);
        probe = colors.clone();
    }
    c.bench_function("churn_coloring_repair_one_batch", |b| {
        b.iter(|| {
            let mut fresh = colors.clone();
            session.repair_coloring(&batch, &mut fresh, ColoringRepairDriver::Johansson, 5)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
