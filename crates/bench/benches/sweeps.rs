//! SWEEPS — the batched sweep registry, executed end to end.
//!
//! Runs every [`symbreak_bench::sweeps`] spec (the declarative form of the
//! Figure-1 / crossover / ablation grids): each cell advances all of its
//! seeds in **lockstep lanes** over one shared CSR, then re-runs them
//! sequentially as the wall-clock baseline and differential oracle (the
//! driver asserts batched rows ≡ sequential rows). The lower-bound
//! experiment grids run afterwards as declarative, instrumented sweeps with
//! no speedup claim.
//!
//! Full runs rewrite `BENCH_sweeps.json` at the workspace root (one JSON
//! object per line). The run *gates* on amortization: at least one batched
//! cell must reach ≥ 1.0× over sequential (≥ 0.9× under `SWEEP_SMOKE=1`,
//! where graphs are tiny and per-run overhead dominates).
//!
//! Run with `cargo bench --bench sweeps`; set `SWEEP_SMOKE=1` for the
//! reduced CI grid (no artifact is written).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use symbreak_bench::sweeps;
use symbreak_core::experiments;

fn run_registry() {
    use std::io::Write;

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweeps.json");
    let mut json = (!sweeps::smoke())
        .then(|| {
            std::fs::OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(json_path)
                .ok()
        })
        .flatten();
    println!(
        "\n=== sweeps: {} lockstep lanes vs seed-by-seed sequential{} ===",
        sweeps::default_lanes(),
        if sweeps::smoke() { " (smoke)" } else { "" }
    );
    println!(
        "{:<16} {:<18} {:<22} {:>3} {:>14} {:>14} {:>8}",
        "sweep", "graph", "algorithm", "B", "batched", "sequential", "speedup"
    );
    let mut best_speedup = f64::MIN;
    let mut best_cell = String::new();
    for spec in sweeps::standard_sweeps() {
        for cell in sweeps::run_sweep(&spec) {
            cell.print();
            assert!(
                cell.rows.iter().all(|r| r.valid),
                "sweep {}/{}/{}: invalid output",
                cell.sweep,
                cell.graph,
                cell.algorithm
            );
            if let Some(f) = json.as_mut() {
                let _ = writeln!(f, "{}", cell.json());
            }
            if cell.batched && cell.speedup() > best_speedup {
                best_speedup = cell.speedup();
                best_cell = format!("{}/{}/{}", cell.sweep, cell.graph, cell.algorithm);
            }
        }
    }
    println!("\n--- lower-bound grids (instrumented; no speedup claim) ---");
    for cell in sweeps::run_crossed_sweep(&sweeps::lowerbound_crossed_sweep()) {
        println!(
            "{:<20} {:?} t={:<3} utilized {:>8.1}/{} edges",
            cell.sweep,
            cell.problem,
            cell.stats.t,
            cell.stats.avg_utilized_edges,
            cell.stats.base_edges
        );
        if let Some(f) = json.as_mut() {
            let _ = writeln!(f, "{}", cell.json());
        }
    }
    for cell in sweeps::run_cycle_sweep(&sweeps::lowerbound_cycles_sweep()) {
        println!(
            "{:<20} {:?} cycles={:<3} messages {:>8} mute {}",
            cell.sweep, cell.problem, cell.count, cell.stats.messages, cell.stats.mute_cycles
        );
        if let Some(f) = json.as_mut() {
            let _ = writeln!(f, "{}", cell.json());
        }
    }
    // The amortization gate. Tiny smoke graphs leave little shared work to
    // amortize, so CI only requires near-parity there; full-size runs must
    // show a real win somewhere in the registry.
    let floor = if sweeps::smoke() { 0.9 } else { 1.0 };
    assert!(
        best_speedup >= floor,
        "no batched sweep cell reached {floor:.1}x over sequential (best: {best_speedup:.2}x \
         at {best_cell})"
    );
    println!("\nbest batched speedup: {best_speedup:.2}x ({best_cell})");
}

fn bench(c: &mut Criterion) {
    run_registry();
    // Criterion samples one batched cell so lane-engine regressions show up
    // as per-iteration time: the crossover instance under the Θ(m) coloring
    // baseline, all lanes in lockstep.
    let spec = sweeps::GraphSpec {
        n: if sweeps::smoke() { 48 } else { 192 },
        p: 0.4,
        instance_seed: 600,
    };
    let inst = spec.build();
    let seeds = sweeps::seed_grid(0, sweeps::default_lanes());
    c.bench_function("sweeps_coloring_baseline_batched", |b| {
        b.iter(|| experiments::measure_coloring_baseline_batch(&inst.graph, &inst.ids, &seeds))
    });
    c.bench_function("sweeps_alg3_batched", |b| {
        b.iter(|| experiments::measure_alg3_batch(&inst.graph, &inst.ids, &seeds))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
