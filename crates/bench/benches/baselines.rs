//! F1-KT1-MIS-BASE / F1-COL-BASE: the Ω(m)/Õ(m) baseline rows of Figure 1.
//!
//! Luby's MIS (the KT-1 Õ(m) upper bound cited in Figure 1 from [12, 26])
//! and the naive distributed (Δ+1)-coloring both send Θ(m) messages — these
//! are the reference points the o(m) algorithms are measured against.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use symbreak_bench::workloads::{fit_exponent, gnp_instance, standard_n_sweep};
use symbreak_core::{experiments, MeasurementTable};

fn print_table() {
    let mut table = MeasurementTable::new();
    let mut luby = Vec::new();
    let mut col = Vec::new();
    for (i, n) in standard_n_sweep().into_iter().enumerate() {
        let inst = gnp_instance(n, 0.5, 500 + i as u64);
        let row = experiments::measure_luby_baseline(&inst.graph, &inst.ids, i as u64);
        luby.push((inst.graph.num_edges() as f64, row.total_messages() as f64));
        table.push(row);
        let row = experiments::measure_coloring_baseline(&inst.graph, &inst.ids, i as u64);
        col.push((inst.graph.num_edges() as f64, row.total_messages() as f64));
        table.push(row);
    }
    println!("\n=== F1 baselines: Θ(m)-message MIS and coloring, G(n, 0.5) ===");
    println!("{table}");
    println!(
        "fitted exponents in m: Luby ≈ m^{:.2}, coloring baseline ≈ m^{:.2} (both ≈ linear in m)\n",
        fit_exponent(&luby),
        fit_exponent(&col)
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let inst = gnp_instance(96, 0.5, 6);
    c.bench_function("luby_baseline_n96", |b| {
        b.iter(|| experiments::measure_luby_baseline(&inst.graph, &inst.ids, 1))
    });
    c.bench_function("coloring_baseline_n96", |b| {
        b.iter(|| experiments::measure_coloring_baseline(&inst.graph, &inst.ids, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
