//! Benchmark support library for the `symbreak` workspace.
//!
//! The actual benchmark harnesses live in `benches/`; this library holds the
//! shared helpers they use (workload construction, exponent fitting and row
//! printing) so that every figure/table of the paper is regenerated through
//! the same code path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sweeps;
pub mod workloads;
