//! Shared workload builders for the benchmark harnesses.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_graphs::{generators, Graph, IdAssignment, IdSpace};

/// A reproducible benchmark instance: a connected graph plus an ID
/// assignment drawn from the cubic polynomial ID space.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The communication graph.
    pub graph: Graph,
    /// The ID assignment.
    pub ids: IdAssignment,
}

/// Builds a dense connected `G(n, p)` instance with a fixed seed.
pub fn gnp_instance(n: usize, p: f64, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::connected_gnp(n, p, &mut rng);
    let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
    Instance { graph, ids }
}

/// The standard `n` sweep used by the Figure-1 benches.
pub fn standard_n_sweep() -> Vec<usize> {
    vec![64, 128, 256, 384]
}

/// Fits an exponent `b` such that `y ≈ a·x^b` by least squares in log-log
/// space. Used to report how measured message counts scale with `n`.
pub fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points to fit");
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_is_connected_and_sized() {
        let inst = gnp_instance(50, 0.2, 1);
        assert_eq!(inst.graph.num_nodes(), 50);
        assert_eq!(inst.ids.len(), 50);
        assert!(symbreak_graphs::properties::is_connected(&inst.graph));
    }

    #[test]
    fn exponent_fit_recovers_power_laws() {
        let quadratic: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((fit_exponent(&quadratic) - 2.0).abs() < 1e-9);
        let linear: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((fit_exponent(&linear) - 1.0).abs() < 1e-9);
    }
}
