//! The declarative sweep driver: a sweep is a *seed × algorithm × graph*
//! grid, executed **batched** — every cell builds its instance graph once
//! and advances all of its seeds in lockstep over that one shared CSR
//! (`BatchSimulator` lanes) — and then re-executed sequentially, seed by
//! seed, as both the wall-clock baseline and the **differential oracle**:
//! [`run_sweep`] asserts the batched rows are identical to the sequential
//! rows before reporting a speedup.
//!
//! The figure/ablation benches declare their tables as [`SweepSpec`]s (see
//! [`standard_sweeps`]) instead of hand-rolled loops; the `sweeps` bench
//! harness executes the registry and writes one JSON object per cell to
//! `BENCH_sweeps.json`. The lower-bound experiment loops have their own
//! declarative grids ([`CrossedSweepSpec`], [`CycleSweepSpec`]) — they run
//! instrumented simulations (utilization/per-edge tracking), which the batch
//! engine deliberately serialises, so their cells carry no speedup claim.
//!
//! Set `SWEEP_SMOKE=1` for the reduced grid (smaller graphs, 3 lanes) used
//! by CI.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_core::{experiments, MeasurementRow, MeasurementTable};
use symbreak_lowerbounds::experiments::{
    crossed_utilization_experiment, cycle_message_experiment, CrossedStats, CycleStats, Problem,
};

use crate::workloads::{gnp_instance, Instance};

/// Whether this run is the reduced-grid CI smoke (`SWEEP_SMOKE=1`).
pub fn smoke() -> bool {
    std::env::var("SWEEP_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The default lane count of a sweep cell: 8 at full size, 3 in smoke mode.
pub fn default_lanes() -> usize {
    if smoke() {
        3
    } else {
        8
    }
}

/// The seed grid of one sweep cell: `lanes` consecutive seeds from `base`.
/// Every seed that reaches an algorithm goes through this one function, so a
/// cell's lane `k` is reproducible as the sequential run with `base + k`.
pub fn seed_grid(base: u64, lanes: usize) -> Vec<u64> {
    (0..lanes as u64).map(|k| base + k).collect()
}

/// Which measurement an algorithm cell runs (always through
/// [`symbreak_core::experiments`], so rows match the sequential drivers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SweepAlgorithm {
    /// Algorithm 1, (Δ+1)-coloring in KT-1.
    Alg1,
    /// The asynchronous variant of Algorithm 1. Its cost model re-charges
    /// the synchronous run, which has no batched runtime of its own — cells
    /// run per-lane sequentially on both sides (speedup ≈ 1 by design).
    Alg1Async,
    /// Algorithm 2, (1+ε)Δ-coloring in KT-1.
    Alg2 {
        /// The palette slack ε.
        epsilon: f64,
    },
    /// Algorithm 3, MIS in KT-2.
    Alg3,
    /// Luby's Θ(m)-message MIS baseline.
    LubyBaseline,
    /// Johansson's Θ(m)-message coloring baseline.
    ColoringBaseline,
}

impl SweepAlgorithm {
    /// Short machine-readable key used in JSON rows.
    pub fn key(self) -> String {
        match self {
            SweepAlgorithm::Alg1 => "alg1".into(),
            SweepAlgorithm::Alg1Async => "alg1_async".into(),
            SweepAlgorithm::Alg2 { epsilon } => format!("alg2_eps{epsilon}"),
            SweepAlgorithm::Alg3 => "alg3".into(),
            SweepAlgorithm::LubyBaseline => "luby_baseline".into(),
            SweepAlgorithm::ColoringBaseline => "coloring_baseline".into(),
        }
    }

    /// Whether the algorithm has a true lockstep-lane runtime (everything
    /// but the async re-charge wrapper does).
    pub fn is_batched(self) -> bool {
        !matches!(self, SweepAlgorithm::Alg1Async)
    }

    fn measure_batch(self, inst: &Instance, seeds: &[u64]) -> Vec<MeasurementRow> {
        let (g, ids) = (&inst.graph, &inst.ids);
        match self {
            SweepAlgorithm::Alg1 => experiments::measure_alg1_batch(g, ids, seeds),
            SweepAlgorithm::Alg1Async => seeds
                .iter()
                .map(|&s| experiments::measure_alg1_async(g, ids, s))
                .collect(),
            SweepAlgorithm::Alg2 { epsilon } => {
                experiments::measure_alg2_batch(g, ids, epsilon, seeds)
            }
            SweepAlgorithm::Alg3 => experiments::measure_alg3_batch(g, ids, seeds),
            SweepAlgorithm::LubyBaseline => experiments::measure_luby_baseline_batch(g, ids, seeds),
            SweepAlgorithm::ColoringBaseline => {
                experiments::measure_coloring_baseline_batch(g, ids, seeds)
            }
        }
    }

    fn measure_sequential(self, inst: &Instance, seeds: &[u64]) -> Vec<MeasurementRow> {
        let (g, ids) = (&inst.graph, &inst.ids);
        seeds
            .iter()
            .map(|&s| match self {
                SweepAlgorithm::Alg1 => experiments::measure_alg1(g, ids, s),
                SweepAlgorithm::Alg1Async => experiments::measure_alg1_async(g, ids, s),
                SweepAlgorithm::Alg2 { epsilon } => experiments::measure_alg2(g, ids, epsilon, s),
                SweepAlgorithm::Alg3 => experiments::measure_alg3(g, ids, s),
                SweepAlgorithm::LubyBaseline => experiments::measure_luby_baseline(g, ids, s),
                SweepAlgorithm::ColoringBaseline => {
                    experiments::measure_coloring_baseline(g, ids, s)
                }
            })
            .collect()
    }
}

/// One graph point of a sweep grid: a connected `G(n, p)` instance with a
/// fixed construction seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphSpec {
    /// Number of nodes.
    pub n: usize,
    /// Edge probability.
    pub p: f64,
    /// Seed of the instance construction (graph + ID assignment).
    pub instance_seed: u64,
}

impl GraphSpec {
    /// Label used in tables and JSON rows.
    pub fn label(&self) -> String {
        format!("gnp_n{}_p{}", self.n, self.p)
    }

    /// Builds the instance (the cell's one shared CSR).
    pub fn build(&self) -> Instance {
        gnp_instance(self.n, self.p, self.instance_seed)
    }
}

/// A declarative sweep: every `(graph, algorithm)` pair becomes one batched
/// cell whose seed grid is `seed_grid(alg_seed_base + graph_index, lanes)`.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name (JSON `sweep` field).
    pub name: &'static str,
    /// The graph grid; each instance is built once and shared by all of the
    /// sweep's algorithm cells on it.
    pub graphs: Vec<GraphSpec>,
    /// The algorithms to run on every graph.
    pub algorithms: Vec<SweepAlgorithm>,
    /// Base of the per-cell seed grids (graph `g` gets base
    /// `alg_seed_base + g`).
    pub alg_seed_base: u64,
    /// Lanes per cell (= seeds per cell).
    pub lanes: usize,
}

/// One executed sweep cell: the batched rows (one per seed) plus the
/// batched/sequential wall-clock pair.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Sweep name.
    pub sweep: &'static str,
    /// Graph label.
    pub graph: String,
    /// Nodes of the instance.
    pub n: usize,
    /// Edges of the instance.
    pub m: usize,
    /// Algorithm key.
    pub algorithm: String,
    /// Whether the algorithm ran on the true lockstep-lane runtime.
    pub batched: bool,
    /// The cell's seed grid.
    pub seeds: Vec<u64>,
    /// One measurement row per seed (batched execution; asserted identical
    /// to the sequential rows).
    pub rows: Vec<MeasurementRow>,
    /// Wall-clock nanoseconds of the batched execution of all seeds.
    pub batched_ns: f64,
    /// Wall-clock nanoseconds of the seed-by-seed sequential execution.
    pub sequential_ns: f64,
}

impl SweepCell {
    /// Amortized batched-over-sequential speedup.
    pub fn speedup(&self) -> f64 {
        self.sequential_ns / self.batched_ns
    }

    /// One JSON object (a line of `BENCH_sweeps.json`).
    pub fn json(&self) -> String {
        let messages: Vec<String> = self
            .rows
            .iter()
            .map(|r| r.total_messages().to_string())
            .collect();
        format!(
            "{{\"bench\":\"sweeps\",\"sweep\":\"{}\",\"graph\":\"{}\",\"n\":{},\"m\":{},\
             \"algorithm\":\"{}\",\"batched\":{},\"lanes\":{},\"batched_ns\":{:.0},\
             \"sequential_ns\":{:.0},\"speedup\":{:.3},\"total_messages\":[{}],\"valid\":{}}}",
            self.sweep,
            self.graph,
            self.n,
            self.m,
            self.algorithm,
            self.batched,
            self.rows.len(),
            self.batched_ns,
            self.sequential_ns,
            self.speedup(),
            messages.join(","),
            self.rows.iter().all(|r| r.valid),
        )
    }

    /// Human-readable one-liner.
    pub fn print(&self) {
        println!(
            "{:<16} {:<18} {:<22} {:>3} {:>12.2}ms {:>12.2}ms {:>7.2}x",
            self.sweep,
            self.graph,
            self.algorithm,
            self.rows.len(),
            self.batched_ns / 1e6,
            self.sequential_ns / 1e6,
            self.speedup(),
        );
    }
}

/// The lane-0 rows of a cell list as a printable table. Lane 0 of graph `g`
/// runs seed `alg_seed_base + g`, which is exactly the seed the historical
/// single-run tables used — so this table reproduces the pre-sweep figures
/// row for row.
pub fn lane0_table(cells: &[SweepCell]) -> MeasurementTable {
    let mut table = MeasurementTable::new();
    for cell in cells {
        table.push(cell.rows[0].clone());
    }
    table
}

/// Prints the amortization footer for a cell list: lanes per cell and the
/// best batched-over-sequential speedup.
pub fn print_speedup_summary(cells: &[SweepCell]) {
    if let Some(best) = cells
        .iter()
        .filter(|c| c.batched)
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
    {
        println!(
            "batched lanes: {} seeds/cell in lockstep; best amortized speedup {:.2}x \
             ({}/{} vs seed-by-seed sequential)\n",
            best.rows.len(),
            best.speedup(),
            best.graph,
            best.algorithm,
        );
    }
}

/// Executes a sweep: per cell, the batched run (timed), the sequential
/// oracle run (timed), and the bit-identity assertion between the two.
///
/// # Panics
///
/// Panics if any cell's batched rows differ from its sequential rows — that
/// would be a lane-isolation bug in the batch engine, not measurement noise.
pub fn run_sweep(spec: &SweepSpec) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for (g, graph_spec) in spec.graphs.iter().enumerate() {
        let inst = graph_spec.build();
        for &alg in &spec.algorithms {
            let seeds = seed_grid(spec.alg_seed_base + g as u64, spec.lanes);
            let t = Instant::now();
            let rows = alg.measure_batch(&inst, &seeds);
            let batched_ns = t.elapsed().as_nanos() as f64;
            let t = Instant::now();
            let sequential_rows = alg.measure_sequential(&inst, &seeds);
            let sequential_ns = t.elapsed().as_nanos() as f64;
            assert_eq!(
                rows,
                sequential_rows,
                "sweep {} cell ({}, {}): batched rows diverged from the sequential oracle",
                spec.name,
                graph_spec.label(),
                alg.key(),
            );
            cells.push(SweepCell {
                sweep: spec.name,
                graph: graph_spec.label(),
                n: inst.graph.num_nodes(),
                m: inst.graph.num_edges(),
                algorithm: alg.key(),
                batched: alg.is_batched(),
                seeds,
                rows,
                batched_ns,
                sequential_ns,
            });
        }
    }
    cells
}

/// The Figure-1 `n` grid at the current scale.
fn n_grid() -> Vec<usize> {
    if smoke() {
        vec![48, 64]
    } else {
        vec![64, 128, 256, 384]
    }
}

/// F1-KT1-COL-UB: Algorithm 1 (and its async variant) vs the Θ(m) coloring
/// baseline across the `n` grid on dense `G(n, 0.5)`.
pub fn fig1_kt1_sweep(lanes: usize) -> SweepSpec {
    SweepSpec {
        name: "fig1_kt1",
        graphs: n_grid()
            .into_iter()
            .enumerate()
            .map(|(i, n)| GraphSpec {
                n,
                p: 0.5,
                instance_seed: 100 + i as u64,
            })
            .collect(),
        algorithms: vec![
            SweepAlgorithm::Alg1,
            SweepAlgorithm::ColoringBaseline,
            SweepAlgorithm::Alg1Async,
        ],
        alg_seed_base: 0,
        lanes,
    }
}

/// F1-EPS-COL-UB, part 1: Algorithm 2 across the `n` grid at ε = 0.5.
pub fn fig1_eps_n_sweep(lanes: usize) -> SweepSpec {
    SweepSpec {
        name: "fig1_eps_n",
        graphs: n_grid()
            .into_iter()
            .enumerate()
            .map(|(i, n)| GraphSpec {
                n,
                p: 0.5,
                instance_seed: 200 + i as u64,
            })
            .collect(),
        algorithms: vec![SweepAlgorithm::Alg2 { epsilon: 0.5 }],
        alg_seed_base: 0,
        lanes,
    }
}

/// F1-EPS-COL-UB, part 2: the ε sweep on one fixed instance.
pub fn fig1_eps_eps_sweep(lanes: usize) -> SweepSpec {
    let n = if smoke() { 64 } else { 192 };
    SweepSpec {
        name: "fig1_eps_eps",
        graphs: vec![GraphSpec {
            n,
            p: 0.5,
            instance_seed: 300,
        }],
        algorithms: [0.1, 0.2, 0.5, 1.0]
            .into_iter()
            .map(|epsilon| SweepAlgorithm::Alg2 { epsilon })
            .collect(),
        alg_seed_base: 9,
        lanes,
    }
}

/// F1-KT2-MIS-UB: Algorithm 3 vs Luby's Θ(m) baseline across the `n` grid.
pub fn fig1_kt2_sweep(lanes: usize) -> SweepSpec {
    SweepSpec {
        name: "fig1_kt2",
        graphs: n_grid()
            .into_iter()
            .enumerate()
            .map(|(i, n)| GraphSpec {
                n,
                p: 0.5,
                instance_seed: 400 + i as u64,
            })
            .collect(),
        algorithms: vec![SweepAlgorithm::Alg3, SweepAlgorithm::LubyBaseline],
        alg_seed_base: 0,
        lanes,
    }
}

/// CROSSOVER: the density sweep at fixed `n` — all four headline algorithms
/// per density.
pub fn crossover_sweep(lanes: usize) -> SweepSpec {
    let (n, densities): (usize, Vec<f64>) = if smoke() {
        (64, vec![0.15, 0.4])
    } else {
        (192, vec![0.05, 0.15, 0.4, 0.8])
    };
    SweepSpec {
        name: "crossover",
        graphs: densities
            .into_iter()
            .enumerate()
            .map(|(i, p)| GraphSpec {
                n,
                p,
                instance_seed: 600 + i as u64,
            })
            .collect(),
        algorithms: vec![
            SweepAlgorithm::Alg1,
            SweepAlgorithm::ColoringBaseline,
            SweepAlgorithm::Alg3,
            SweepAlgorithm::LubyBaseline,
        ],
        alg_seed_base: 0,
        lanes,
    }
}

/// SPARSE: Algorithm 1 vs the Θ(m) coloring baseline on near-threshold
/// `G(n, p)` with `p ≈ c·ln n / n`. This is the regime the KT-1 message
/// bounds are about — `m` is barely superlinear, so the danner setup and
/// seed distribution are a large, *lane-invariant* share of every run, and
/// the batched engine amortizes them across the whole seed grid. These are
/// the cells where the lockstep lanes show their largest wall-clock wins.
pub fn sparse_sweep(lanes: usize) -> SweepSpec {
    let grid: Vec<(usize, f64, u64)> = if smoke() {
        vec![(48, 0.08, 701), (64, 0.06, 702)]
    } else {
        vec![
            (256, 0.02, 701),
            (320, 0.02, 702),
            (384, 0.015, 703),
            (448, 0.015, 705),
            (512, 0.012, 706),
        ]
    };
    SweepSpec {
        name: "sparse",
        graphs: grid
            .into_iter()
            .map(|(n, p, instance_seed)| GraphSpec {
                n,
                p,
                instance_seed,
            })
            .collect(),
        algorithms: vec![SweepAlgorithm::Alg1, SweepAlgorithm::ColoringBaseline],
        alg_seed_base: 0,
        lanes,
    }
}

/// ABL-KT2: the Algorithm 3 grid of the KT-2 ablation. The algorithm seeds
/// come from the cell's seed grid — previously the ablation reseeded every
/// instance with its bare loop index, so changing the instance seed silently
/// reused the old private coins.
pub fn ablation_kt2_sweep(lanes: usize) -> SweepSpec {
    let ns: Vec<usize> = if smoke() {
        vec![48, 64]
    } else {
        vec![96, 192, 288]
    };
    SweepSpec {
        name: "ablation_kt2",
        graphs: ns
            .into_iter()
            .enumerate()
            .map(|(i, n)| GraphSpec {
                n,
                p: 0.5,
                instance_seed: 900 + i as u64,
            })
            .collect(),
        algorithms: vec![SweepAlgorithm::Alg3],
        alg_seed_base: 0,
        lanes,
    }
}

/// The graph grid of the shared-randomness ablation (no simulation runs —
/// the ablation only needs the instances, declared here so its loop shares
/// the sweep grid types).
pub fn ablation_shared_rand_graphs() -> Vec<GraphSpec> {
    let ns: Vec<usize> = if smoke() {
        vec![48, 64]
    } else {
        vec![96, 192, 384]
    };
    ns.into_iter()
        .enumerate()
        .map(|(i, n)| GraphSpec {
            n,
            p: 0.5,
            instance_seed: 800 + i as u64,
        })
        .collect()
}

/// Every algorithm sweep of the registry, at the default lane count.
pub fn standard_sweeps() -> Vec<SweepSpec> {
    let lanes = default_lanes();
    vec![
        fig1_kt1_sweep(lanes),
        fig1_eps_n_sweep(lanes),
        fig1_eps_eps_sweep(lanes),
        fig1_kt2_sweep(lanes),
        crossover_sweep(lanes),
        sparse_sweep(lanes),
        ablation_kt2_sweep(lanes),
    ]
}

/// Declarative grid of the crossed-family utilization experiment
/// (F1-KT1-LB). Cells are instrumented runs — no batch speedup is claimed.
#[derive(Debug, Clone)]
pub struct CrossedSweepSpec {
    /// Sweep name.
    pub name: &'static str,
    /// The problems to measure.
    pub problems: Vec<Problem>,
    /// The part sizes `t` (n = 6t).
    pub ts: Vec<usize>,
    /// Sampled crossings per cell.
    pub samples: usize,
    /// Base seed; each cell derives its RNG from it and its coordinates.
    pub seed: u64,
}

/// One crossed-family cell result.
#[derive(Debug, Clone)]
pub struct CrossedCell {
    /// Sweep name.
    pub sweep: &'static str,
    /// The measured problem.
    pub problem: Problem,
    /// The cell's statistics.
    pub stats: CrossedStats,
}

impl CrossedCell {
    /// One JSON object (a line of `BENCH_sweeps.json`).
    pub fn json(&self) -> String {
        format!(
            "{{\"bench\":\"sweeps\",\"sweep\":\"{}\",\"problem\":\"{:?}\",\"t\":{},\"n\":{},\
             \"base_edges\":{},\"avg_utilized_edges\":{:.1},\"pair_utilized\":{},\"samples\":{}}}",
            self.sweep,
            self.problem,
            self.stats.t,
            6 * self.stats.t,
            self.stats.base_edges,
            self.stats.avg_utilized_edges,
            self.stats.pair_utilized,
            self.stats.samples,
        )
    }
}

/// The standard crossed-family grid.
pub fn lowerbound_crossed_sweep() -> CrossedSweepSpec {
    CrossedSweepSpec {
        name: "lowerbound_crossed",
        problems: vec![Problem::Coloring, Problem::Mis],
        ts: if smoke() {
            vec![4, 6]
        } else {
            vec![4, 6, 8, 12]
        },
        samples: if smoke() { 2 } else { 5 },
        seed: 2,
    }
}

/// Executes a crossed-family sweep; each cell gets a deterministic RNG
/// derived from the spec seed and the cell coordinates, so grid rows are
/// reproducible independently of one another (the old loop threaded one RNG
/// through every cell, entangling them).
pub fn run_crossed_sweep(spec: &CrossedSweepSpec) -> Vec<CrossedCell> {
    let mut cells = Vec::new();
    for (pi, &problem) in spec.problems.iter().enumerate() {
        for &t in &spec.ts {
            let mut rng =
                StdRng::seed_from_u64(spec.seed ^ (0x9e37 * (pi as u64 + 1)) ^ (t as u64) << 16);
            let stats = crossed_utilization_experiment(problem, t, spec.samples, &mut rng);
            cells.push(CrossedCell {
                sweep: spec.name,
                problem,
                stats,
            });
        }
    }
    cells
}

/// Declarative grid of the disjoint-cycle message experiment (F1-KTRHO-LB).
#[derive(Debug, Clone)]
pub struct CycleSweepSpec {
    /// Sweep name.
    pub name: &'static str,
    /// The problems to measure.
    pub problems: Vec<Problem>,
    /// The cycle counts of the grid.
    pub counts: Vec<usize>,
    /// Length of each cycle.
    pub len: usize,
    /// Base seed (same per-cell derivation as [`run_crossed_sweep`]).
    pub seed: u64,
}

/// One disjoint-cycle cell result.
#[derive(Debug, Clone)]
pub struct CycleCell {
    /// Sweep name.
    pub sweep: &'static str,
    /// The measured problem.
    pub problem: Problem,
    /// Cycle count of the cell.
    pub count: usize,
    /// The cell's statistics.
    pub stats: CycleStats,
}

impl CycleCell {
    /// One JSON object (a line of `BENCH_sweeps.json`).
    pub fn json(&self) -> String {
        format!(
            "{{\"bench\":\"sweeps\",\"sweep\":\"{}\",\"problem\":\"{:?}\",\"cycles\":{},\
             \"n\":{},\"messages\":{},\"mute_cycles\":{}}}",
            self.sweep,
            self.problem,
            self.count,
            self.stats.n,
            self.stats.messages,
            self.stats.mute_cycles,
        )
    }
}

/// The standard disjoint-cycle grid.
pub fn lowerbound_cycles_sweep() -> CycleSweepSpec {
    CycleSweepSpec {
        name: "lowerbound_cycles",
        problems: vec![Problem::Coloring, Problem::Mis],
        counts: if smoke() {
            vec![8, 16]
        } else {
            vec![8, 16, 32, 64]
        },
        len: 8,
        seed: 4,
    }
}

/// Executes a disjoint-cycle sweep (see [`run_crossed_sweep`] for the
/// per-cell RNG discipline).
pub fn run_cycle_sweep(spec: &CycleSweepSpec) -> Vec<CycleCell> {
    let mut cells = Vec::new();
    for (pi, &problem) in spec.problems.iter().enumerate() {
        for &count in &spec.counts {
            let mut rng = StdRng::seed_from_u64(
                spec.seed ^ (0x9e37 * (pi as u64 + 1)) ^ (count as u64) << 16,
            );
            let stats = cycle_message_experiment(problem, count, spec.len, &mut rng);
            cells.push(CycleCell {
                sweep: spec.name,
                problem,
                count,
                stats,
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_grids_are_consecutive() {
        assert_eq!(seed_grid(5, 3), vec![5, 6, 7]);
        assert!(seed_grid(0, 0).is_empty());
    }

    #[test]
    fn sweep_cells_match_their_grid_and_pass_the_oracle() {
        // A tiny sweep: run_sweep itself asserts batched ≡ sequential rows.
        let spec = SweepSpec {
            name: "test",
            graphs: vec![GraphSpec {
                n: 36,
                p: 0.3,
                instance_seed: 1,
            }],
            algorithms: vec![SweepAlgorithm::ColoringBaseline, SweepAlgorithm::Alg3],
            alg_seed_base: 10,
            lanes: 2,
        };
        let cells = run_sweep(&spec);
        assert_eq!(cells.len(), 2);
        for cell in &cells {
            assert_eq!(cell.rows.len(), 2);
            assert_eq!(cell.seeds, vec![10, 11]);
            assert!(cell.rows.iter().all(|r| r.valid));
            assert!(cell.json().contains("\"sweep\":\"test\""));
        }
    }

    #[test]
    fn lowerbound_grids_are_reproducible_cell_by_cell() {
        let spec = CycleSweepSpec {
            name: "test_cycles",
            problems: vec![Problem::Mis],
            counts: vec![4],
            len: 6,
            seed: 9,
        };
        let a = run_cycle_sweep(&spec);
        let b = run_cycle_sweep(&spec);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].stats, b[0].stats);
        assert!(a[0].stats.messages > 0);
    }
}
