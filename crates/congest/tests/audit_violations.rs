//! Negative-path tests for the CONGEST compliance auditor: each injected
//! violation must be caught with full `(round, edge, lane, shard)`
//! provenance and the caller's replay seed, and audited runs must stay
//! bit-identical to unaudited ones with zero violations.

use symbreak_congest::{
    AuditConfig, Auditor, KtLevel, Message, NodeAlgorithm, NodeInit, RoundContext, SyncConfig,
    SyncSimulator, Violation, ViolationKind,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_graphs::{generators, IdAssignment, NodeId};

/// The doc-example flood: node 0 floods a token, everyone terminates.
struct Flood {
    have: bool,
    done: bool,
}

impl NodeAlgorithm for Flood {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        let newly = (ctx.round() == 0 && ctx.node().0 == 0) || (!self.have && !inbox.is_empty());
        if newly {
            self.have = true;
            ctx.broadcast(&Message::tagged(1).with_id(7).with_value(3));
        } else if self.have {
            self.done = true;
        }
    }
    fn is_done(&self) -> bool {
        self.done
    }
    fn output(&self) -> Option<u64> {
        Some(u64::from(self.have))
    }
}

fn flood() -> impl FnMut(NodeInit<'_>) -> Flood {
    |_init| Flood {
        have: false,
        done: false,
    }
}

const SEED: u64 = 0xfeed_f00d;

/// A seeded oversized payload: with the budget multiplier crushed to 1 the
/// flood's `tag + id + value` message (16 + 2w model bits) exceeds `1·w`
/// bits on every send, and each violation carries the message's real edge,
/// round and the replay seed.
#[test]
fn oversized_payload_is_caught_with_provenance() {
    let graph = generators::cycle(8);
    let ids = IdAssignment::identity(8);
    let sim = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
    let audit = AuditConfig::collect(SEED).with_budget(1);
    let (report, violations) = sim.run_audited(SyncConfig::default(), &audit, flood());
    assert!(report.completed);
    assert!(!violations.is_empty(), "crushed budget must flag every send");
    // Round 0: node 0 broadcasts to its two cycle neighbours — the first
    // finding is its lower-indexed send, on the real graph edge.
    let v = &violations[0];
    match v.kind {
        ViolationKind::Bandwidth { bits, budget } => {
            // w = ⌈log₂ 8⌉ = 3: 16 + 2·3 = 22 model bits against a 3-bit budget.
            assert_eq!(bits, 22);
            assert_eq!(budget, 3);
        }
        other => panic!("expected a bandwidth violation, got {other:?}"),
    }
    assert_eq!(v.round, 0);
    assert_eq!(v.from, Some(NodeId(0)));
    assert_eq!(
        v.edge,
        graph.edge_between(NodeId(0), v.to.expect("message violations carry a receiver"))
    );
    assert_eq!(v.seed, SEED);
    assert_eq!(v.lane, 0);
    // Every send of the run is over budget: one violation per message.
    assert_eq!(violations.len() as u64, report.messages);
}

/// An off-adjacency send: nodes 0 and 5 are not neighbours on an 8-cycle,
/// so the auditor reports an adjacency violation with no edge (there is
/// none) and the sender/receiver pair.
#[test]
fn off_adjacency_send_is_caught_with_provenance() {
    let graph = generators::cycle(8);
    let mut auditor = Auditor::new(&graph, AuditConfig::collect(SEED).with_lane(2));
    auditor.end_round(); // advance to round 1
    auditor.on_send(NodeId(0), NodeId(5), &Message::tagged(9));
    let violations = auditor.finish();
    assert_eq!(violations.len(), 1);
    let v = &violations[0];
    assert_eq!(v.kind, ViolationKind::Adjacency);
    assert_eq!(v.round, 1);
    assert_eq!(v.from, Some(NodeId(0)));
    assert_eq!(v.to, Some(NodeId(5)));
    assert_eq!(v.edge, None, "a non-edge has no edge id");
    assert_eq!(v.lane, 2);
    assert_eq!(v.seed, SEED);
}

/// A duplicate send on one edge direction within a round violates the
/// one-message-per-edge-per-direction CONGEST discipline; the same edge in
/// the *other* direction, or in the next round, is fine.
#[test]
fn per_direction_multiplicity_is_enforced_per_round() {
    let graph = generators::cycle(8);
    let mut auditor = Auditor::new(&graph, AuditConfig::collect(SEED));
    let m = Message::tagged(1);
    auditor.on_send(NodeId(0), NodeId(1), &m);
    auditor.on_send(NodeId(1), NodeId(0), &m); // reverse direction: legal
    auditor.on_send(NodeId(0), NodeId(1), &m); // duplicate: violation
    assert_eq!(auditor.violations().len(), 1);
    let v = auditor.violations()[0];
    assert_eq!(v.kind, ViolationKind::Multiplicity { count: 2 });
    assert_eq!(v.round, 0);
    assert_eq!(v.from, Some(NodeId(0)));
    assert_eq!(v.to, Some(NodeId(1)));
    assert_eq!(v.edge, graph.edge_between(NodeId(0), NodeId(1)));
    // A new round resets the counters: the same send is legal again.
    auditor.end_round();
    auditor.on_send(NodeId(0), NodeId(1), &m);
    assert_eq!(auditor.finish().len(), 1);
}

/// Overlapping per-worker write windows within one round are the shard-race
/// signature; the finding names both shards and both windows. Disjoint
/// windows — and the same window in a later round — are fine.
#[test]
fn overlapping_shard_windows_are_caught_with_provenance() {
    let graph = generators::cycle(8);
    let mut auditor = Auditor::new(&graph, AuditConfig::collect(SEED));
    auditor.end_round();
    auditor.end_round(); // round 2
    auditor.set_shard(Some(0));
    auditor.record_window(0, 0, 4);
    auditor.set_shard(Some(1));
    auditor.record_window(1, 4, 8); // disjoint: legal
    auditor.set_shard(Some(2));
    auditor.record_window(2, 3, 4); // overlaps shard 0's window (only)
    let violations: Vec<Violation> = auditor.finish();
    assert_eq!(violations.len(), 1);
    let v = &violations[0];
    assert_eq!(
        v.kind,
        ViolationKind::WindowOverlap {
            other_shard: 0,
            other_window: (0, 4),
            window: (3, 4),
        }
    );
    assert_eq!(v.round, 2);
    assert_eq!(v.shard, Some(2), "provenance names the offending shard");
    assert_eq!(v.seed, SEED);
}

/// Deny mode panics at the first violation with the full provenance string.
#[test]
#[should_panic(expected = "CONGEST audit violation")]
fn deny_mode_panics_with_provenance() {
    let graph = generators::cycle(8);
    let mut auditor = Auditor::new(&graph, AuditConfig::deny(SEED));
    auditor.on_send(NodeId(0), NodeId(5), &Message::tagged(9));
}

/// Audited runs are bit-identical to plain runs — with zero violations —
/// at every thread × shard combination, including the parallel and sharded
/// loops' replayed audit seams.
#[test]
fn audited_runs_match_plain_runs_with_zero_violations() {
    let mut rng = StdRng::seed_from_u64(0xc0ffee);
    let graph = generators::connected_gnp(120, 0.06, &mut rng);
    let ids = IdAssignment::random(
        &graph,
        symbreak_graphs::IdSpace::CUBIC,
        &mut StdRng::seed_from_u64(42),
    );
    let sim = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
    let base = sim.run(
        SyncConfig {
            threads: 1,
            ..SyncConfig::default()
        },
        flood(),
    );
    for (threads, shards) in [(1, 0), (1, 3), (4, 0), (4, 3)] {
        let config = SyncConfig {
            threads,
            shards,
            ..SyncConfig::default()
        };
        let (report, violations) =
            sim.run_audited(config, &AuditConfig::collect(SEED), flood());
        assert!(
            violations.is_empty(),
            "threads={threads} shards={shards}: {violations:?}"
        );
        assert_eq!(
            report, base,
            "audited report drifted at threads={threads} shards={shards}"
        );
    }
}
