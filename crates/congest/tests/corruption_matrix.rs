//! Corruption matrix over every on-disk format of the crash-recovery
//! subsystem: checkpoint logs (`SBCKLOG1`), trace stores (`SBTRACE2`) and
//! graph shards + manifest (`SBSHARD2` / `SBSGDIR2`).
//!
//! For each artifact the matrix applies
//!
//! * **truncation at every byte length** `0..len` (covering every field
//!   boundary of every record), and
//! * **a bit flip at every byte offset**,
//!
//! and requires the loader to either recover (a valid prefix for
//! append-only logs, a checksum-verified full read otherwise) or fail with
//! a clean [`io::Error`] — `InvalidData` for detected corruption,
//! `UnexpectedEof` only for cuts inside the fixed header. Panics and
//! wrong-but-accepted data are the failures this matrix exists to catch:
//! every successfully loaded artifact is re-validated against the pristine
//! original.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_classic::mis::luby;
use symbreak_congest::checkpoint::checkpoint_dir;
use symbreak_congest::trace_store::{trace_dir, MmapTraceObserver, StoredTrace};
use symbreak_congest::{CheckpointChain, CheckpointConfig, SyncConfig};
use symbreak_graphs::sharded::ShardedGraph;
use symbreak_graphs::storage::{read_shard_file, save_sharded, shard_file_name, ShardStore};
use symbreak_graphs::{generators, IdAssignment};

/// A scratch directory under `base`, which each test picks via
/// [`checkpoint_dir`] / [`trace_dir`] (the system temp dir for shard
/// stores) so the CI chaos-recovery job's tmpdir-hygiene check covers
/// this suite's artifacts too.
fn scratch_dir(base: PathBuf, name: &str) -> PathBuf {
    let dir = base.join(format!("sb-corrupt-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Asserts a loader outcome is acceptable for a damaged file: clean
/// recovery or a clean error, never a panic (panics abort the test on
/// their own) and never an exotic error kind.
fn acceptable_error(err: &io::Error, what: &str, detail: &str) {
    assert!(
        matches!(
            err.kind(),
            io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
        ),
        "{what} ({detail}): unexpected error kind {:?}",
        err.kind()
    );
}

/// Runs `check` on a copy of `bytes` truncated to every length and with a
/// bit flipped at every byte offset. `check` loads the artifact from the
/// scratch path and validates whatever it managed to read.
fn sweep(bytes: &[u8], path: &Path, mut check: impl FnMut(&str)) {
    for len in 0..bytes.len() {
        fs::write(path, &bytes[..len]).expect("write truncated copy");
        check(&format!("truncated to {len}"));
    }
    let mut copy = bytes.to_vec();
    for i in 0..copy.len() {
        copy[i] ^= 0x40;
        fs::write(path, &copy).expect("write flipped copy");
        check(&format!("bit flip at byte {i}"));
        copy[i] ^= 0x40;
    }
    fs::write(path, bytes).expect("restore pristine copy");
}

#[test]
fn checkpoint_log_survives_truncation_and_bit_flips() {
    let dir = scratch_dir(checkpoint_dir(), "ckpt");
    let graph = generators::connected_gnp(16, 0.25, &mut StdRng::seed_from_u64(3));
    let ids = IdAssignment::identity(16);
    let log = dir.join("luby.sbck");
    let ckpt = CheckpointConfig::new(&log).with_every(2);
    let report = luby::run_checkpointed(&graph, &ids, 5, SyncConfig::default(), &ckpt)
        .expect("checkpointed run");
    assert!(report.completed);

    let bytes = fs::read(&log).expect("read log");
    let pristine = CheckpointChain::load(&log).expect("pristine log loads");
    assert!(!pristine.records().is_empty(), "log must hold checkpoints");
    let damaged = dir.join("damaged.sbck");
    sweep(&bytes, &damaged, |detail| {
        match CheckpointChain::load(&damaged) {
            // The valid prefix contract: whatever loads is a prefix of the
            // pristine chain, field for field.
            Ok(chain) => {
                assert!(chain.records().len() <= pristine.records().len());
                for (got, want) in chain.records().iter().zip(pristine.records()) {
                    assert_eq!(got.round, want.round, "checkpoint log ({detail})");
                }
            }
            Err(e) => acceptable_error(&e, "checkpoint log", detail),
        }
    });
    fs::remove_dir_all(&dir).expect("drop scratch");
}

#[test]
fn trace_store_survives_truncation_and_bit_flips() {
    let dir = scratch_dir(trace_dir(), "trace");
    let graph = generators::cycle(12);
    let ids = IdAssignment::identity(12);
    let log = dir.join("trace.sbck");
    let path = dir.join("run.sbtrace");
    let mut obs = MmapTraceObserver::create(&path).expect("create trace");
    let ckpt = CheckpointConfig::new(&log).with_every(4);
    luby::run_checkpointed_observed(&graph, &ids, 7, SyncConfig::default(), &ckpt, &mut obs)
        .expect("recorded run");
    let stored = obs.finish().expect("seal");
    let pristine = stored.to_trace().expect("read pristine trace");
    let rounds = pristine.num_rounds();

    let bytes = fs::read(&path).expect("read trace");
    let damaged = dir.join("damaged.sbtrace");
    sweep(&bytes, &damaged, |detail| {
        // The sealed-open path: all-or-nothing per round, detected on read.
        match StoredTrace::open(&damaged) {
            Ok(t) => {
                for i in 0..t.num_rounds() {
                    match t.round(i) {
                        Ok(msgs) => {
                            assert!(
                                i < pristine.num_rounds(),
                                "stored trace ({detail}) fabricated round {i}"
                            );
                            assert_eq!(
                                msgs,
                                pristine.round(i),
                                "stored trace round {i} ({detail})"
                            );
                        }
                        Err(e) => acceptable_error(&e, "stored trace read", detail),
                    }
                }
            }
            Err(e) => acceptable_error(&e, "stored trace open", detail),
        }
        // The crash-recovery path: longest valid round prefix.
        match MmapTraceObserver::recover(&damaged) {
            Ok((recovered, got)) => {
                assert!(got <= rounds as u64, "recover grew the trace ({detail})");
                drop(recovered);
            }
            Err(e) => acceptable_error(&e, "trace recover", detail),
        }
    });
    fs::remove_dir_all(&dir).expect("drop scratch");
}

#[test]
fn shard_store_survives_truncation_and_bit_flips() {
    let dir = scratch_dir(std::env::temp_dir(), "shards");
    let graph = generators::small_world(40, 4, 0.1, &mut StdRng::seed_from_u64(9));
    let sharded = ShardedGraph::build(&graph, 3);
    let store_dir = dir.join("store");
    fs::create_dir_all(&store_dir).expect("store dir");
    save_sharded(&sharded, &store_dir).expect("save shards");
    let pristine = ShardStore::open(&store_dir)
        .and_then(|s| s.load())
        .expect("pristine store loads");
    let shard0 = read_shard_file(&store_dir.join(shard_file_name(0))).expect("pristine shard");

    // Damage the manifest: open/load must reject or reproduce the graph.
    let manifest = store_dir.join("manifest.sbsg");
    let bytes = fs::read(&manifest).expect("read manifest");
    sweep(&bytes, &manifest, |detail| {
        match ShardStore::open(&store_dir).and_then(|s| s.load()) {
            Ok(loaded) => assert_eq!(
                loaded.plan(),
                pristine.plan(),
                "manifest ({detail}) changed the plan"
            ),
            Err(e) => acceptable_error(&e, "shard manifest", detail),
        }
    });

    // Damage one shard file: the per-shard read and the full load must
    // both reject or reproduce it.
    let shard_path = store_dir.join(shard_file_name(0));
    let bytes = fs::read(&shard_path).expect("read shard");
    sweep(&bytes, &shard_path, |detail| {
        match read_shard_file(&shard_path) {
            Ok(s) => assert_eq!(s, shard0, "shard 0 ({detail}) silently changed"),
            Err(e) => acceptable_error(&e, "shard file", detail),
        }
        match ShardStore::open(&store_dir).and_then(|s| s.load()) {
            Ok(loaded) => assert_eq!(loaded.plan(), pristine.plan()),
            Err(e) => acceptable_error(&e, "shard store load", detail),
        }
    });
    fs::remove_dir_all(&dir).expect("drop scratch");
}
