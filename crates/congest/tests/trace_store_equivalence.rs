//! Differential suite for the spill-to-disk trace store: a
//! [`StoredTrace`] written by [`MmapTraceObserver`] through the
//! `RoundObserver` seam must equal the in-RAM [`Trace`] the built-in
//! instrumentation records for the *same seeded run* — same round count,
//! same per-round message counts, every payload byte for byte — across
//! graph families, workloads and ID seeds, under random round access as
//! well as streaming comparison.
//!
//! Spill files are placed via the `CONGEST_TRACE_DIR` knob (the CI
//! trace-store leg forces it to a scratch directory and asserts the suite
//! leaves no files behind — every test here removes what it wrote).

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_congest::trace::Trace;
use symbreak_congest::trace_store::{MmapTraceObserver, StoredTrace, TRACE_DIR_ENV};
use symbreak_congest::{KtLevel, Message, NodeAlgorithm, RoundContext, SyncConfig, SyncSimulator};
use symbreak_graphs::{generators, Graph, IdAssignment, IdSpace, NodeId};

/// Token flood from node 0; floods carry the sender's ID so ID fields are
/// exercised alongside tags.
struct Flood {
    have: bool,
}

impl NodeAlgorithm for Flood {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        let newly =
            (ctx.round() == 0 && ctx.node() == NodeId(0)) || (!self.have && !inbox.is_empty());
        if newly {
            self.have = true;
            let id = ctx.own_id();
            ctx.broadcast(&Message::tagged(1).with_id(id));
        }
    }
    fn is_done(&self) -> bool {
        true
    }
}

/// Three rounds of gossip with mixed ID and value payloads.
struct Gossip {
    left: u32,
}

impl NodeAlgorithm for Gossip {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, _inbox: &[Message]) {
        if self.left > 0 {
            self.left -= 1;
            let id = ctx.own_id();
            let msg = Message::tagged(2)
                .with_id(id)
                .with_value(ctx.round())
                .with_value(u64::from(self.left));
            ctx.broadcast(&msg);
        }
    }
    fn is_done(&self) -> bool {
        self.left == 0
    }
}

#[derive(Clone, Copy)]
enum Workload {
    Flood,
    Gossip,
}

fn instances(seed: u64) -> Vec<(String, Graph, IdAssignment)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cycle = generators::cycle(240);
    let clique = generators::clique(24);
    let pl = generators::power_law(160, 3, &mut rng);
    let cycle_ids = IdAssignment::random(&cycle, IdSpace::CUBIC, &mut rng);
    let clique_ids = IdAssignment::random(&clique, IdSpace::CUBIC, &mut rng);
    let pl_ids = IdAssignment::random(&pl, IdSpace::CUBIC, &mut rng);
    vec![
        (format!("cycle@{seed}"), cycle, cycle_ids),
        (format!("clique@{seed}"), clique, clique_ids),
        (format!("power_law@{seed}"), pl, pl_ids),
    ]
}

fn run_in_ram(graph: &Graph, ids: &IdAssignment, workload: Workload) -> Trace {
    let sim = SyncSimulator::new(graph, ids, KtLevel::KT1);
    let config = SyncConfig {
        record_trace: true,
        ..SyncConfig::default()
    };
    let report = match workload {
        Workload::Flood => sim.run(config, |_| Flood { have: false }),
        Workload::Gossip => sim.run(config, |_| Gossip { left: 3 }),
    };
    assert!(report.completed);
    report.trace.expect("trace requested")
}

fn run_spilled(graph: &Graph, ids: &IdAssignment, workload: Workload) -> StoredTrace {
    let sim = SyncSimulator::new(graph, ids, KtLevel::KT1);
    let mut obs = MmapTraceObserver::create_temp().expect("create spill file");
    let report = match workload {
        Workload::Flood => {
            sim.run_observed(SyncConfig::default(), |_| Flood { have: false }, &mut obs)
        }
        Workload::Gossip => {
            sim.run_observed(SyncConfig::default(), |_| Gossip { left: 3 }, &mut obs)
        }
    };
    assert!(report.completed);
    obs.finish().expect("seal spill file")
}

/// The full differential check for one `(graph, workload)` pair.
fn check(label: &str, graph: &Graph, ids: &IdAssignment, workload: Workload) {
    let in_ram = run_in_ram(graph, ids, workload);
    let stored = run_spilled(graph, ids, workload);

    assert_eq!(stored.num_rounds(), in_ram.num_rounds(), "{label}: rounds");
    assert_eq!(
        stored.num_messages(),
        in_ram.num_messages() as u64,
        "{label}: messages"
    );
    assert!(stored.num_messages() > 0, "{label}: workload was silent");

    // Random access, deliberately out of order: every round, every message,
    // byte-for-byte payloads (TraceMessage equality covers every field).
    for i in (0..stored.num_rounds()).rev() {
        assert_eq!(
            stored.round_len(i) as usize,
            in_ram.round(i).len(),
            "{label}: round {i} length"
        );
        assert_eq!(
            stored.round(i).unwrap(),
            in_ram.round(i),
            "{label}: round {i} contents"
        );
    }

    // The streaming whole-trace comparison and full rehydration agree.
    assert!(stored.same_as(&in_ram).unwrap(), "{label}: same_as");
    assert_eq!(stored.to_trace().unwrap(), in_ram, "{label}: to_trace");

    stored.remove().expect("spill hygiene");
}

#[test]
fn flood_traces_are_identical_on_disk_and_in_ram() {
    for seed in [1u64, 42] {
        for (label, graph, ids) in instances(seed) {
            check(&format!("flood/{label}"), &graph, &ids, Workload::Flood);
        }
    }
}

#[test]
fn gossip_traces_are_identical_on_disk_and_in_ram() {
    for seed in [7u64, 1234] {
        for (label, graph, ids) in instances(seed) {
            check(&format!("gossip/{label}"), &graph, &ids, Workload::Gossip);
        }
    }
}

#[test]
fn decoded_representations_survive_the_spill() {
    // Definition 2.2 equality through the store: the decoded representation
    // of a reloaded trace must equal the in-RAM one's.
    let (_, graph, ids) = instances(9).remove(2);
    let in_ram = run_in_ram(&graph, &ids, Workload::Gossip);
    let stored = run_spilled(&graph, &ids, Workload::Gossip);
    let rehydrated = stored.to_trace().unwrap();
    assert!(in_ram.decode(&ids).similar_to(&rehydrated.decode(&ids)));
    stored.remove().unwrap();
}

#[test]
fn spill_files_honor_the_trace_dir_knob() {
    // `create_temp` must place files in the directory `CONGEST_TRACE_DIR`
    // names (the CI leg forces it and audits the directory afterwards).
    let dir = symbreak_congest::trace_store::trace_dir();
    let obs = MmapTraceObserver::create_temp().unwrap();
    assert_eq!(obs.path().parent(), Some(dir.as_path()));
    let path = obs.path().to_path_buf();
    assert!(path.exists());
    // Unsealed files are not loadable — and get cleaned up like sealed ones.
    drop(obs);
    assert!(StoredTrace::open(&path).is_err());
    std::fs::remove_file(&path).unwrap();
    // The knob itself: when the variable is set (CI), it wins over the
    // system temp dir.
    if let Ok(forced) = std::env::var(TRACE_DIR_ENV) {
        if !forced.trim().is_empty() {
            assert_eq!(dir, std::path::PathBuf::from(forced));
        }
    }
}

#[test]
fn empty_runs_store_empty_traces() {
    struct Silent;
    impl NodeAlgorithm for Silent {
        fn on_round(&mut self, _ctx: &mut RoundContext<'_>, _inbox: &[Message]) {}
        fn is_done(&self) -> bool {
            true
        }
    }
    let g = generators::path(3);
    let ids = IdAssignment::identity(3);
    let sim = SyncSimulator::new(&g, &ids, KtLevel::KT1);
    let mut obs = MmapTraceObserver::create_temp().unwrap();
    let report = sim.run_observed(SyncConfig::default(), |_| Silent, &mut obs);
    assert!(report.completed);
    let stored = obs.finish().unwrap();
    // One executed round, zero messages — exactly what the in-RAM trace of
    // the same run records.
    let in_ram = SyncSimulator::new(&g, &ids, KtLevel::KT1)
        .run(
            SyncConfig {
                record_trace: true,
                ..SyncConfig::default()
            },
            |_| Silent,
        )
        .trace
        .unwrap();
    assert!(stored.same_as(&in_ram).unwrap());
    assert_eq!(stored.num_messages(), 0);
    stored.remove().unwrap();
}
