//! Differential tests: the arena-based round engine must produce
//! bit-identical [`ExecutionReport`]s to the naive nested-`Vec` reference
//! implementation — including message counts, per-round inbox ordering
//! (observable through traces), per-edge counters and utilized-edge flags.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_congest::reference::NaiveSyncSimulator;
use symbreak_congest::{
    ExecutionReport, KtLevel, Message, NodeAlgorithm, NodeInit, RoundContext, SyncConfig,
    SyncSimulator,
};
use symbreak_graphs::{generators, Graph, IdAssignment, NodeId};

/// Floods a token from node 0; every node forwards it once.
struct Flood {
    have: bool,
    done: bool,
}

impl NodeAlgorithm for Flood {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        let newly =
            (ctx.round() == 0 && ctx.node() == NodeId(0)) || (!self.have && !inbox.is_empty());
        if newly {
            self.have = true;
            ctx.broadcast(&Message::tagged(1));
        } else if self.have {
            self.done = true;
        }
    }
    fn is_done(&self) -> bool {
        self.done
    }
    fn output(&self) -> Option<u64> {
        Some(u64::from(self.have))
    }
}

/// Every node gossips the smallest ID it has heard of, for a few rounds.
/// Exercises ID fields (utilized-edge tracking) and multi-round traffic.
struct MinGossip {
    best: u64,
    rounds_left: u32,
}

impl NodeAlgorithm for MinGossip {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        for m in inbox {
            if let Some(id) = m.id() {
                self.best = self.best.min(id);
            }
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            ctx.broadcast(&Message::tagged(2).with_id(self.best));
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
    fn output(&self) -> Option<u64> {
        Some(self.best)
    }
}

fn assert_reports_identical(engine: &ExecutionReport, naive: &ExecutionReport, label: &str) {
    assert_eq!(engine.completed, naive.completed, "{label}: completed");
    assert_eq!(engine.rounds, naive.rounds, "{label}: rounds");
    assert_eq!(engine.messages, naive.messages, "{label}: messages");
    assert_eq!(
        engine.max_message_bits, naive.max_message_bits,
        "{label}: max_message_bits"
    );
    assert_eq!(engine.outputs, naive.outputs, "{label}: outputs");
    assert_eq!(
        engine.per_edge_messages, naive.per_edge_messages,
        "{label}: per-edge counters"
    );
    assert_eq!(
        engine.utilized_edges, naive.utilized_edges,
        "{label}: utilized edges"
    );
    assert_eq!(engine.trace, naive.trace, "{label}: trace");
}

fn check_all_configs(graph: &Graph, ids: &IdAssignment, level: KtLevel, label: &str) {
    let sim = SyncSimulator::new(graph, ids, level);
    let naive = NaiveSyncSimulator::new(sim);
    for config in [
        SyncConfig::default(),
        SyncConfig::instrumented(),
        SyncConfig {
            record_trace: true,
            ..SyncConfig::default()
        },
    ] {
        let fast = sim.run(config, |_| Flood {
            have: false,
            done: false,
        });
        let slow = naive.run(config, |_| Flood {
            have: false,
            done: false,
        });
        assert_reports_identical(&fast, &slow, &format!("{label}/flood"));

        let fast = sim.run(config, |init: NodeInit<'_>| MinGossip {
            best: init.knowledge.own_id(),
            rounds_left: 4,
        });
        let slow = naive.run(config, |init: NodeInit<'_>| MinGossip {
            best: init.knowledge.own_id(),
            rounds_left: 4,
        });
        assert_reports_identical(&fast, &slow, &format!("{label}/gossip"));
    }
}

#[test]
fn engine_matches_reference_on_structured_graphs() {
    for (label, graph) in [
        ("path", generators::path(12)),
        ("cycle", generators::cycle(9)),
        ("clique", generators::clique(8)),
        ("star", generators::star(10)),
        ("tripartite", generators::layered_tripartite(3)),
        ("disconnected", generators::disjoint_cycles(3, 4)),
    ] {
        let ids = IdAssignment::identity(graph.num_nodes());
        check_all_configs(&graph, &ids, KtLevel::KT1, label);
    }
}

#[test]
fn engine_matches_reference_on_random_graphs() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::connected_gnp(30, 0.15, &mut rng);
        let ids = IdAssignment::random(
            &graph,
            symbreak_graphs::IdSpace::CUBIC,
            &mut StdRng::seed_from_u64(seed ^ 0xff),
        );
        check_all_configs(&graph, &ids, KtLevel::KT1, &format!("gnp-{seed}"));
    }
}

/// The parallel loop must be a pure throughput knob: identical `Report`s
/// (rounds, message counts, max bits, per-node outputs) at every thread
/// count, across workloads and graph shapes — including graphs dense enough
/// to trigger the sequential loop's receiver-major delivery path.
#[test]
fn parallel_engine_is_deterministic_across_thread_counts() {
    let graphs: Vec<(&str, Graph)> = vec![
        ("cycle", generators::cycle(1000)),
        ("clique", generators::clique(96)),
        (
            "random_d8",
            generators::random_near_regular(1000, 8, &mut StdRng::seed_from_u64(11)),
        ),
    ];
    for (label, graph) in graphs {
        let n = graph.num_nodes();
        let ids = IdAssignment::identity(n);
        let sim = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let sequential = SyncConfig::default().with_threads(1);

        let flood_base = sim.run(sequential, |_| Flood {
            have: false,
            done: false,
        });
        let announce_base = sim.run(sequential, |init: NodeInit<'_>| MinGossip {
            best: init.knowledge.own_id(),
            rounds_left: 4,
        });
        assert!(flood_base.completed && announce_base.completed);

        for threads in [2, 4, 8] {
            let config = SyncConfig::default().with_threads(threads);
            let flood = sim.run(config, |_| Flood {
                have: false,
                done: false,
            });
            assert_reports_identical(
                &flood,
                &flood_base,
                &format!("{label}/flood @{threads} threads"),
            );
            let announce = sim.run(config, |init: NodeInit<'_>| MinGossip {
                best: init.knowledge.own_id(),
                rounds_left: 4,
            });
            assert_reports_identical(
                &announce,
                &announce_base,
                &format!("{label}/gossip @{threads} threads"),
            );
        }
    }
}

/// Parallel runs must also match the naive oracle, and an active observer
/// (instrumentation) must yield the same report regardless of the requested
/// thread count (it pins the run to the sequential loop).
#[test]
fn parallel_engine_matches_naive_and_instrumented_runs() {
    let graph = generators::random_near_regular(600, 8, &mut StdRng::seed_from_u64(3));
    let ids = IdAssignment::identity(graph.num_nodes());
    let sim = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
    let naive = NaiveSyncSimulator::new(sim).run(SyncConfig::default(), |_| Flood {
        have: false,
        done: false,
    });
    for threads in [2, 8] {
        let fast = sim.run(SyncConfig::default().with_threads(threads), |_| Flood {
            have: false,
            done: false,
        });
        assert_reports_identical(&fast, &naive, &format!("naive-vs-{threads}-threads"));

        let instrumented = sim.run(SyncConfig::instrumented().with_threads(threads), |_| {
            Flood {
                have: false,
                done: false,
            }
        });
        let instrumented_seq = sim.run(SyncConfig::instrumented().with_threads(1), |_| Flood {
            have: false,
            done: false,
        });
        assert_reports_identical(
            &instrumented,
            &instrumented_seq,
            &format!("instrumented-vs-{threads}-threads"),
        );
    }
}

/// The sharded stepping path must also be a pure throughput/placement knob:
/// for every shard count (including shard counts that do not divide the
/// node count) and thread count, reports must be bit-identical to the
/// unsharded sequential engine — across graph shapes with very different
/// ghost-table profiles (a cycle has at most two ghosts per shard, a clique
/// ghosts every non-local node, a power-law graph ghosts its hubs).
#[test]
fn sharded_engine_matches_unsharded_across_shard_and_thread_matrix() {
    let graphs: Vec<(&str, Graph)> = vec![
        ("cycle", generators::cycle(600)),
        ("clique", generators::clique(72)),
        (
            "power_law",
            generators::power_law(500, 4, &mut StdRng::seed_from_u64(21)),
        ),
    ];
    for (label, graph) in graphs {
        let n = graph.num_nodes();
        let ids = IdAssignment::identity(n);
        let sim = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let sequential = SyncConfig::default().with_threads(1);

        let flood_base = sim.run(sequential, |_| Flood {
            have: false,
            done: false,
        });
        let gossip_base = sim.run(sequential, |init: NodeInit<'_>| MinGossip {
            best: init.knowledge.own_id(),
            rounds_left: 4,
        });
        assert!(flood_base.completed && gossip_base.completed);

        for shards in [1, 2, 4, 7] {
            for threads in [1, 4] {
                let config = SyncConfig::default()
                    .with_threads(threads)
                    .with_shards(shards);
                let label = format!("{label} @{shards} shards/{threads} threads");
                let flood = sim.run(config, |_| Flood {
                    have: false,
                    done: false,
                });
                assert_reports_identical(&flood, &flood_base, &format!("{label}/flood"));
                let gossip = sim.run(config, |init: NodeInit<'_>| MinGossip {
                    best: init.knowledge.own_id(),
                    rounds_left: 4,
                });
                assert_reports_identical(&gossip, &gossip_base, &format!("{label}/gossip"));
            }
        }
    }
}

/// Instrumented sharded runs execute on the sequential loop but still step
/// through the shard-local CSR slices; traces, per-edge counters and
/// utilized edges must match an unsharded instrumented run bit for bit.
#[test]
fn sharded_instrumented_runs_match_unsharded_instrumentation() {
    let graph = generators::random_near_regular(400, 8, &mut StdRng::seed_from_u64(5));
    let ids = IdAssignment::identity(graph.num_nodes());
    let sim = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
    let base = sim.run(
        SyncConfig::instrumented().with_threads(1),
        |init: NodeInit<'_>| MinGossip {
            best: init.knowledge.own_id(),
            rounds_left: 3,
        },
    );
    for shards in [1, 3, 5] {
        let config = SyncConfig::instrumented()
            .with_threads(1)
            .with_shards(shards);
        let sharded = sim.run(config, |init: NodeInit<'_>| MinGossip {
            best: init.knowledge.own_id(),
            rounds_left: 3,
        });
        assert_reports_identical(&sharded, &base, &format!("instrumented @{shards} shards"));
    }
}

/// Sharded runs must also agree with the naive nested-`Vec` oracle (not just
/// with the arena engine they share code with).
#[test]
fn sharded_engine_matches_naive_oracle() {
    let graph = generators::random_near_regular(500, 8, &mut StdRng::seed_from_u64(9));
    let ids = IdAssignment::identity(graph.num_nodes());
    let sim = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
    let naive = NaiveSyncSimulator::new(sim).run(SyncConfig::default(), |_| Flood {
        have: false,
        done: false,
    });
    for (shards, threads) in [(2, 1), (4, 4)] {
        let fast = sim.run(
            SyncConfig::default()
                .with_threads(threads)
                .with_shards(shards),
            |_| Flood {
                have: false,
                done: false,
            },
        );
        assert_reports_identical(&fast, &naive, &format!("naive-vs-{shards}x{threads}"));
    }
}

#[test]
fn engine_matches_reference_at_round_limit() {
    struct Chatter;
    impl NodeAlgorithm for Chatter {
        fn on_round(&mut self, ctx: &mut RoundContext<'_>, _inbox: &[Message]) {
            ctx.broadcast(&Message::tagged(0));
        }
        fn is_done(&self) -> bool {
            false
        }
    }
    let graph = generators::cycle(6);
    let ids = IdAssignment::identity(6);
    let sim = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
    let config = SyncConfig::instrumented().with_max_rounds(7);
    let fast = sim.run(config, |_| Chatter);
    let slow = NaiveSyncSimulator::new(sim).run(config, |_| Chatter);
    assert!(!fast.completed);
    assert_reports_identical(&fast, &slow, "chatter");
}
