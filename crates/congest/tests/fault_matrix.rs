//! Scenario matrix: algorithms × fault classes, with asserted outcomes.
//!
//! Six algorithm columns — raw asynchronous flooding (phase-free control),
//! Luby's MIS and rank-based parallel greedy MIS (the Step-2 core of
//! Algorithm 3), Luby again on a bounded-arboricity sparse graph, an
//! Algorithm 1 query-coloring stage and the Algorithm 2 colour-trial
//! phases — run on the asynchronous executor under eight fault classes:
//! benign, oblivious adversarial delay, adaptive adversarial delay, message
//! loss (global + one always-dropping edge), duplication + reordering,
//! crash, crash-with-reset-recovery, and crash-with-retained-recovery. The
//! synchronous algorithms run through the α-synchronizer lockstep wrapper
//! (`congest::lockstep`), which turns the paper's Theorem A.5 claim into
//! checkable per-cell outcomes:
//!
//! * **benign / delay-only / duplication+reordering** — the run completes
//!   and its outputs are *bit-identical* to the synchronous run (proper
//!   colourings stay proper, MIS stays an MIS);
//! * **crash with retained recovery** — the revived node re-joins through
//!   the lockstep replay protocol (bounded replay buffers), and the run
//!   *completes* with outputs bit-identical to the synchronous run — the
//!   cell that used to stall before re-join existed;
//! * **loss / crash / crash-with-reset** — the run **stalls** (no node
//!   ever executes a round on a partial inbox), and every node that did
//!   decide agrees with the synchronous run — safety survives, liveness is
//!   what faults take away.
//!
//! Every cell is run twice from the same seed and must reproduce its report
//! bit-exactly. Env knobs: `CONGEST_FAULT_SEED` replays the whole matrix
//! under a different randomness universe, `CONGEST_FAULT_SCENARIOS`
//! restricts the fault classes (comma list), and `FAULT_MATRIX_SMOKE=1`
//! reduces the grid for CI (benign, loss, crash only).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use symbreak_classic::mis::{luby, parallel_greedy, verify};
use symbreak_congest::async_sim::{
    alpha_synchronizer_overhead, AsyncConfig, AsyncReport, AsyncSimulator,
};
use symbreak_congest::{
    fault_seed_from_env, scenario_enabled, CrashFault, DelayLaw, EdgeProb, FaultPlan, KtLevel,
    Message, NodeAlgorithm, Recovery, RoundContext, SyncConfig,
};
use symbreak_core::alg2_coloring;
use symbreak_core::query_coloring::{self, QueryPlan, StageSpec};
use symbreak_graphs::{generators, Graph, IdAssignment, NodeId};
use symbreak_ktrand::SharedRandomness;

fn smoke() -> bool {
    std::env::var("FAULT_MATRIX_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn async_config() -> AsyncConfig {
    AsyncConfig {
        max_delay: 5,
        max_time: 20_000,
        message_bit_limit: 512,
    }
}

/// The fault classes of the matrix. Names double as
/// `CONGEST_FAULT_SCENARIOS` keys.
#[derive(Clone, Copy, PartialEq)]
enum Class {
    Benign,
    Oblivious,
    Adaptive,
    Loss,
    DupReorder,
    Crash,
    CrashRecovery,
    CrashRetain,
}

impl Class {
    fn name(self) -> &'static str {
        match self {
            Class::Benign => "benign",
            Class::Oblivious => "oblivious",
            Class::Adaptive => "adaptive",
            Class::Loss => "loss",
            Class::DupReorder => "dup-reorder",
            Class::Crash => "crash",
            Class::CrashRecovery => "crash-recovery",
            Class::CrashRetain => "crash-retain",
        }
    }

    /// Whether the lockstep safety argument guarantees completion under
    /// this class (faithful delivery of at least one copy of everything).
    fn lossless(self) -> bool {
        matches!(
            self,
            Class::Benign | Class::Oblivious | Class::Adaptive | Class::DupReorder
        )
    }

    /// Whether the class crashes a node but hands it back with retained
    /// state, so the lockstep re-join protocol must drive the run to
    /// completion (the cell that stalled before re-join existed).
    fn rejoins(self) -> bool {
        matches!(self, Class::CrashRetain)
    }

    fn plan(self, graph: &Graph, seed: u64) -> FaultPlan {
        let crash_node = max_degree_node(graph);
        match self {
            Class::Benign => FaultPlan::default(),
            Class::Oblivious => FaultPlan::default().with_delay(DelayLaw::Oblivious { seed }),
            Class::Adaptive => FaultPlan::default().with_delay(DelayLaw::Adaptive),
            Class::Loss => {
                // Global background loss plus one edge that never delivers —
                // the "one cut link" adversary on a real edge of the graph.
                let (_, u, v) = graph.edges().next().expect("matrix graphs have edges");
                FaultPlan::default().with_drop(EdgeProb::uniform(0.1).with_edge(u, v, 1.0))
            }
            Class::DupReorder => FaultPlan::default()
                .with_duplicate(EdgeProb::uniform(0.3))
                .with_reorder(0.3),
            Class::Crash => FaultPlan::default().with_crash(CrashFault {
                node: crash_node,
                at: 2,
                recovery: None,
            }),
            Class::CrashRecovery => FaultPlan::default().with_crash(CrashFault {
                node: crash_node,
                at: 2,
                recovery: Some((30, Recovery::Reset)),
            }),
            // Recovery is scheduled deep into quiescence (the executor jumps
            // idle time, so this costs nothing): the revived node wakes on an
            // empty inbox, broadcasts REJOIN, and neighbours replay from
            // their bounded buffers.
            Class::CrashRetain => FaultPlan::default().with_crash(CrashFault {
                node: crash_node,
                at: 2,
                recovery: Some((1_000, Recovery::Retain)),
            }),
        }
    }
}

fn max_degree_node(graph: &Graph) -> NodeId {
    graph
        .nodes()
        .max_by_key(|&v| graph.degree(v))
        .expect("non-empty graph")
}

fn coloring_is_proper(graph: &Graph, colors: &[Option<u64>]) -> bool {
    graph.edges().all(
        |(_, u, v)| !matches!((colors[u.index()], colors[v.index()]), (Some(a), Some(b)) if a == b),
    )
}

fn independent_decided(graph: &Graph, outputs: &[Option<u64>]) -> bool {
    graph
        .edges()
        .all(|(_, u, v)| !(outputs[u.index()] == Some(1) && outputs[v.index()] == Some(1)))
}

/// Every node that decided in the faulty run agrees with the synchronous
/// run — the prefix-safety property of the lockstep wrapper.
fn agrees_where_decided(actual: &[Option<u64>], sync: &[Option<u64>]) -> bool {
    actual.iter().zip(sync).all(|(a, s)| a.is_none() || a == s)
}

struct CellOutcome {
    algorithm: &'static str,
    class: &'static str,
    completed: bool,
    time: u64,
    messages: u64,
    decided: usize,
    report: AsyncReport,
}

/// Runs one `(algorithm, class)` cell: the closure maps a fault plan and a
/// run seed to `(synchronous ground-truth outputs, asynchronous report)`.
/// Asserts seed-reproducibility (two runs, bit-identical reports) and the
/// class outcome contract for lockstep algorithms, then returns the row.
fn run_cell<F>(
    algorithm: &'static str,
    lockstep: bool,
    graph: &Graph,
    class: Class,
    seed: u64,
    mut run: F,
) -> CellOutcome
where
    F: FnMut(&FaultPlan, u64) -> (Vec<Option<u64>>, AsyncReport),
{
    let plan = class.plan(graph, seed ^ 0xad5e);
    let (sync_outputs, report) = run(&plan, seed);
    let (_, replay) = run(&plan, seed);
    assert_eq!(
        report,
        replay,
        "{algorithm}/{}: same seed and plan must reproduce the report bit-exactly",
        class.name()
    );

    if lockstep {
        if class.lossless() || class.rejoins() {
            assert!(
                report.completed,
                "{algorithm}/{}: lossless/re-joining schedules must terminate",
                class.name()
            );
            assert_eq!(
                report.outputs,
                sync_outputs,
                "{algorithm}/{}: lossless lockstep must replay the synchronous outputs",
                class.name()
            );
            if class.rejoins() {
                assert!(
                    report.faults.rejoin_pulses > 0,
                    "{algorithm}/{}: a retained crash must trigger REJOIN pulses",
                    class.name()
                );
                assert!(
                    report.faults.replayed > 0,
                    "{algorithm}/{}: neighbours must replay retained rounds",
                    class.name()
                );
            }
        } else {
            assert!(
                !report.completed,
                "{algorithm}/{}: lossy/crashy lockstep must stall, not fabricate outputs",
                class.name()
            );
            assert_eq!(report.time, async_config().max_time);
            assert!(
                agrees_where_decided(&report.outputs, &sync_outputs),
                "{algorithm}/{}: decided nodes must agree with the synchronous run",
                class.name()
            );
        }
    }
    match class {
        Class::Loss => assert!(report.faults.dropped > 0, "{algorithm}: loss must drop"),
        Class::DupReorder => assert!(report.faults.duplicated > 0),
        Class::Crash => assert_eq!(report.faults.crashes, 1),
        Class::CrashRecovery | Class::CrashRetain => {
            assert_eq!(report.faults.crashes, 1);
            assert_eq!(report.faults.recoveries, 1);
        }
        _ => assert_eq!(report.faults.dropped + report.faults.duplicated, 0),
    }

    CellOutcome {
        algorithm,
        class: class.name(),
        completed: report.completed,
        time: report.time,
        messages: report.messages,
        decided: report.outputs.iter().filter(|o| o.is_some()).count(),
        report,
    }
}

/// Matrix flooding control: forwards the token on first receipt; output 1
/// once the token arrived. Runs raw on the asynchronous executor (no
/// lockstep), so it measures which faults a phase-free gossip algorithm
/// absorbs without any synchronizer.
struct Flood {
    have: bool,
}

impl NodeAlgorithm for Flood {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        let start = ctx.node() == NodeId(0) && !self.have && ctx.round() == 0;
        if (start || !inbox.is_empty()) && !self.have {
            self.have = true;
            ctx.broadcast(&Message::tagged(1));
        }
    }
    fn is_done(&self) -> bool {
        true
    }
    fn output(&self) -> Option<u64> {
        Some(u64::from(self.have))
    }
}

#[test]
fn scenario_matrix() {
    let base_seed = fault_seed_from_env(0xC0FF_EE42);
    let all_classes = [
        Class::Benign,
        Class::Oblivious,
        Class::Adaptive,
        Class::Loss,
        Class::DupReorder,
        Class::Crash,
        Class::CrashRecovery,
        Class::CrashRetain,
    ];
    let classes: Vec<Class> = all_classes
        .into_iter()
        .filter(|c| !smoke() || matches!(c, Class::Benign | Class::Loss | Class::Crash))
        .filter(|c| scenario_enabled(c.name()))
        .collect();
    let mut rows: Vec<CellOutcome> = Vec::new();

    // --- flood: raw async control on a random connected graph ------------
    {
        let graph = generators::connected_gnp(24, 0.15, &mut StdRng::seed_from_u64(11));
        let ids = IdAssignment::identity(24);
        let sim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
        for (ci, &class) in classes.iter().enumerate() {
            let seed = base_seed ^ (ci as u64) << 8;
            let row = run_cell("flood", false, &graph, class, seed, |plan, seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let report =
                    sim.run_with_faults(async_config(), plan, &mut rng, |_| Flood { have: false });
                (vec![Some(1); 24], report)
            });
            // A phase-free flood absorbs any fault that still delivers
            // *some* copy of everything; with faithful channels it covers
            // the whole graph.
            if class.lossless() {
                assert!(row.report.completed);
                assert!(row.report.outputs.iter().all(|o| *o == Some(1)));
            } else {
                // The origin always has the token; beyond that, coverage is
                // whatever the recorded (deterministic) outcome says.
                assert_eq!(row.report.outputs[0], Some(1));
            }
            rows.push(row);
        }
    }

    // --- Luby's MIS (lockstep) on a small-world graph ---------------------
    {
        let graph = generators::small_world(24, 4, 0.2, &mut StdRng::seed_from_u64(7));
        let ids = IdAssignment::identity(24);
        let m = graph.num_edges() as u64;
        for (ci, &class) in classes.iter().enumerate() {
            let seed = base_seed ^ 0x1_0000 ^ (ci as u64) << 8;
            let row = run_cell("luby", true, &graph, class, seed, |plan, seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let (sync_report, report) = luby::run_async(
                    &graph,
                    &ids,
                    0xD1CE ^ seed,
                    SyncConfig::default(),
                    async_config(),
                    plan,
                    &mut rng,
                );
                if class == Class::Benign {
                    // Theorem A.5: synchronizer overhead within 2(T + 1)m'.
                    let overhead = report.messages - sync_report.messages;
                    assert_eq!(overhead, (sync_report.rounds - 1) * 2 * m);
                    assert!(overhead <= alpha_synchronizer_overhead(sync_report.rounds, m));
                }
                (sync_report.outputs, report)
            });
            if class.lossless() || class.rejoins() {
                let mis: Vec<bool> = row.report.outputs.iter().map(|o| *o == Some(1)).collect();
                assert!(
                    verify::is_mis(&graph, &mis),
                    "luby/{}: not an MIS",
                    row.class
                );
            } else {
                assert!(independent_decided(&graph, &row.report.outputs));
            }
            rows.push(row);
        }
    }

    // --- Luby's MIS (lockstep) on a bounded-arboricity sparse graph -------
    // The paper's upper bounds are parameterised by sparsity; this column
    // checks that the outcome contract is graph-family independent by
    // rerunning the lockstep MIS on an arboricity-≤3 (hence 3-degenerate)
    // graph, where replay buffers stay small because degrees do.
    {
        let graph = generators::bounded_arboricity(24, 3, &mut StdRng::seed_from_u64(17));
        let ids = IdAssignment::identity(24);
        for (ci, &class) in classes.iter().enumerate() {
            let seed = base_seed ^ 0x5_0000 ^ (ci as u64) << 8;
            let row = run_cell("luby-sparse", true, &graph, class, seed, |plan, seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let (sync_report, report) = luby::run_async(
                    &graph,
                    &ids,
                    0x5AB0 ^ seed,
                    SyncConfig::default(),
                    async_config(),
                    plan,
                    &mut rng,
                );
                (sync_report.outputs, report)
            });
            if class.lossless() || class.rejoins() {
                let mis: Vec<bool> = row.report.outputs.iter().map(|o| *o == Some(1)).collect();
                assert!(
                    verify::is_mis(&graph, &mis),
                    "luby-sparse/{}: not an MIS",
                    row.class
                );
            } else {
                assert!(independent_decided(&graph, &row.report.outputs));
            }
            rows.push(row);
        }
    }

    // --- parallel greedy MIS (lockstep) on a community graph --------------
    {
        let graph = generators::stochastic_block(24, 3, 0.5, 0.05, &mut StdRng::seed_from_u64(9));
        let ids = IdAssignment::identity(24);
        let ranks: Vec<u64> = (0..24u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        for (ci, &class) in classes.iter().enumerate() {
            let seed = base_seed ^ 0x2_0000 ^ (ci as u64) << 8;
            let row = run_cell("greedy-mis", true, &graph, class, seed, |plan, seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let (sync_report, report) = parallel_greedy::run_async(
                    &graph,
                    &ids,
                    &ranks,
                    SyncConfig::default(),
                    async_config(),
                    plan,
                    &mut rng,
                );
                (sync_report.outputs, report)
            });
            if class.lossless() || class.rejoins() {
                let mis: Vec<bool> = row.report.outputs.iter().map(|o| *o == Some(1)).collect();
                assert!(verify::is_mis(&graph, &mis));
            } else {
                assert!(independent_decided(&graph, &row.report.outputs));
            }
            rows.push(row);
        }
    }

    // --- Algorithm 1 query-coloring stage (lockstep) ----------------------
    {
        let graph = generators::connected_gnp(24, 0.2, &mut StdRng::seed_from_u64(13));
        let ids = IdAssignment::identity(24);
        let palette: Vec<u64> = (0..2 * graph.max_degree() as u64 + 2).collect();
        let spec = StageSpec {
            participating: vec![true; 24],
            palettes: vec![palette; 24],
            active: graph.nodes().map(|v| graph.neighbor_vec(v)).collect(),
            existing_colors: vec![None; 24],
            plan: Arc::new(QueryPlan::new(&graph, &ids, Vec::new())),
            phase_limit: 200,
        };
        for (ci, &class) in classes.iter().enumerate() {
            let seed = base_seed ^ 0x3_0000 ^ (ci as u64) << 8;
            let row = run_cell("alg1-stage", true, &graph, class, seed, |plan, seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let (colors, _, report) = query_coloring::run_stage_async(
                    &graph,
                    &ids,
                    &spec,
                    0xA1C0 ^ seed,
                    SyncConfig::default(),
                    async_config(),
                    plan,
                    &mut rng,
                );
                (colors, report)
            });
            assert!(
                coloring_is_proper(&graph, &row.report.outputs),
                "alg1-stage/{}: conflicting colours",
                row.class
            );
            rows.push(row);
        }
    }

    // --- Algorithm 2 colour-trial phases (lockstep) -----------------------
    {
        let graph = generators::small_world(24, 3, 0.15, &mut StdRng::seed_from_u64(21));
        let ids = IdAssignment::identity(24);
        let palette_size = graph.max_degree() as u64 * 3 / 2 + 1;
        for (ci, &class) in classes.iter().enumerate() {
            let seed = base_seed ^ 0x4_0000 ^ (ci as u64) << 8;
            let row = run_cell("alg2-phases", true, &graph, class, seed, |plan, seed| {
                let shared = SharedRandomness::from_seed(0x5EED ^ seed, 1 << 14);
                let mut rng = StdRng::seed_from_u64(seed);
                let (colors, _, report) = alg2_coloring::run_phases_async(
                    &graph,
                    &ids,
                    &shared,
                    palette_size,
                    64,
                    async_config(),
                    plan,
                    &mut rng,
                );
                (colors, report)
            });
            assert!(
                coloring_is_proper(&graph, &row.report.outputs),
                "alg2-phases/{}: conflicting colours",
                row.class
            );
            rows.push(row);
        }
    }

    // Outcome table (visible with `--nocapture`); the assertions above are
    // the contract, this is the record.
    println!("algorithm    | class          | done | time   | messages | decided | drop/dup/crash");
    for r in &rows {
        println!(
            "{:<12} | {:<14} | {:<4} | {:<6} | {:<8} | {:>2}/{:<4} | {}/{}/{}",
            r.algorithm,
            r.class,
            r.completed,
            r.time,
            r.messages,
            r.decided,
            r.report.outputs.len(),
            r.report.faults.dropped,
            r.report.faults.duplicated,
            r.report.faults.crashes,
        );
    }
    let expected = 6 * classes.len();
    assert_eq!(rows.len(), expected, "matrix must cover every cell");
}
