//! Kill-and-resume differential: for two algorithms, three graph families
//! and two thread settings, the checkpointed loop is killed at **every**
//! round boundary and resumed from the surviving log. Every resumed run
//! must reproduce the uninterrupted run bit-exactly — the full
//! [`ExecutionReport`] (outputs, messages, rounds, per-edge metering) *and*
//! the recorded message trace, continued at the checkpoint boundary via
//! [`MmapTraceObserver::recover_to`].
//!
//! The kill is simulated the way a real crash looks on disk: the partial
//! run's trace observer is dropped unsealed and the checkpoint log is left
//! wherever the round budget cut it off (including *before the first
//! boundary*, where the chain is empty and recovery restarts from round 0).

use std::io;
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_classic::mis::{luby, parallel_greedy};
use symbreak_congest::checkpoint::checkpoint_dir;
use symbreak_congest::trace_store::{trace_dir, MmapTraceObserver};
use symbreak_congest::{CheckpointChain, CheckpointConfig, ExecutionReport, SyncConfig};
use symbreak_graphs::{generators, Graph, IdAssignment};

/// A scratch directory under `base`, which callers pick via
/// [`checkpoint_dir`] / [`trace_dir`] so the artifacts land where
/// `CONGEST_CHECKPOINT_DIR` / `CONGEST_TRACE_DIR` point — the CI
/// chaos-recovery job routes both into `mktemp` dirs and fails on
/// leftovers.
fn scratch_dir(base: PathBuf, kind: &str) -> PathBuf {
    let dir = base.join(format!("sbck-resume-{kind}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Runs the full kill matrix for one `(algorithm, graph, threads)` cell:
/// records the uninterrupted baseline (report + trace), then for every
/// kill round `1..rounds` replays kill → recover → resume and checks both
/// artifacts against the baseline. Returns the baseline report so callers
/// can also assert thread-invariance across cells.
#[allow(clippy::too_many_arguments)]
fn kill_everywhere<RunC, Res>(
    label: &str,
    log_dir: &Path,
    traces: &Path,
    threads: usize,
    every: u64,
    plain: &ExecutionReport,
    run_ckpt: RunC,
    resume: Res,
) -> ExecutionReport
where
    RunC: Fn(SyncConfig, &CheckpointConfig, &mut MmapTraceObserver) -> io::Result<ExecutionReport>,
    Res: Fn(SyncConfig, &CheckpointConfig, &mut MmapTraceObserver) -> io::Result<ExecutionReport>,
{
    let config = SyncConfig::default().with_threads(threads);
    let log = log_dir.join(format!("{label}-t{threads}.sbck"));
    let trace_path = traces.join(format!("{label}-t{threads}.sbtrace"));
    let ckpt = CheckpointConfig::new(&log).with_every(every);

    // Uninterrupted baseline, trace attached.
    let mut obs = MmapTraceObserver::create(&trace_path).expect("create baseline trace");
    let baseline = run_ckpt(config, &ckpt, &mut obs).expect("baseline run");
    assert!(baseline.completed, "{label}: baseline must terminate");
    assert!(
        baseline.rounds > every,
        "{label}: run too short ({} rounds) to cross a checkpoint boundary",
        baseline.rounds
    );
    assert_eq!(
        &baseline, plain,
        "{label}: checkpointing must not change the report"
    );
    let stored = obs.finish().expect("seal baseline trace");
    let baseline_trace = stored.to_trace().expect("read baseline trace");
    stored.remove().expect("drop baseline trace");

    for kill in 1..baseline.rounds {
        // The "kill": round budget runs out mid-run, the trace observer is
        // dropped unsealed, the log keeps whatever boundaries were hit.
        let mut obs = MmapTraceObserver::create(&trace_path).expect("create trace");
        let partial = run_ckpt(config.with_max_rounds(kill), &ckpt, &mut obs).expect("partial run");
        drop(obs);
        assert!(!partial.completed, "{label}: kill at {kill} must interrupt");
        assert_eq!(partial.rounds, kill);

        // Recover: trace truncated to the boundary the log resumes at
        // (round 0 when the kill predates the first checkpoint).
        let chain = CheckpointChain::load(&log).expect("load killed log");
        let boundary = chain.latest().map_or(0, |r| r.round);
        assert!(boundary <= kill);
        let mut obs = MmapTraceObserver::recover_to(&trace_path, boundary).expect("recover trace");
        let resumed = resume(config, &ckpt, &mut obs).expect("resume");
        assert_eq!(
            resumed, baseline,
            "{label}: resume after kill at {kill} must be bit-identical"
        );
        let stored = obs.finish().expect("seal resumed trace");
        assert!(
            stored.same_as(&baseline_trace).expect("compare traces"),
            "{label}: resumed trace after kill at {kill} diverged"
        );
        stored.remove().expect("drop resumed trace");
    }
    std::fs::remove_file(&log).expect("drop log");
    baseline
}

fn ranks(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect()
}

#[test]
fn kill_at_every_boundary_resumes_bit_identically() {
    let logs = scratch_dir(checkpoint_dir(), "logs");
    let traces = scratch_dir(trace_dir(), "traces");
    let graphs: Vec<(&str, Graph)> = vec![
        (
            "gnp",
            generators::connected_gnp(26, 0.15, &mut StdRng::seed_from_u64(3)),
        ),
        (
            "sparse",
            generators::bounded_arboricity(26, 3, &mut StdRng::seed_from_u64(5)),
        ),
        (
            "smallworld",
            generators::small_world(24, 4, 0.2, &mut StdRng::seed_from_u64(7)),
        ),
    ];

    for (gname, graph) in &graphs {
        let n = graph.num_nodes();
        let ids = IdAssignment::identity(n);
        let ranks = ranks(n);
        let mut luby_reports = Vec::new();
        let mut greedy_reports = Vec::new();
        for threads in [1usize, 4] {
            let config = SyncConfig::default().with_threads(threads);
            let (_, luby_plain) = luby::run(graph, &ids, 0xAB, config);
            let label = format!("luby-{gname}");
            luby_reports.push(kill_everywhere(
                &label,
                &logs,
                &traces,
                threads,
                2,
                &luby_plain,
                |cfg, ck, obs| luby::run_checkpointed_observed(graph, &ids, 0xAB, cfg, ck, obs),
                |cfg, ck, obs| luby::resume_observed(graph, &ids, 0xAB, cfg, ck, obs),
            ));

            let (_, greedy_plain) =
                parallel_greedy::run_on_whole_graph(graph, &ids, &ranks, config);
            let label = format!("greedy-{gname}");
            greedy_reports.push(kill_everywhere(
                &label,
                &logs,
                &traces,
                threads,
                3,
                &greedy_plain,
                |cfg, ck, obs| {
                    parallel_greedy::run_checkpointed_observed(graph, &ids, &ranks, cfg, ck, obs)
                },
                |cfg, ck, obs| parallel_greedy::resume_observed(graph, &ids, &ranks, cfg, ck, obs),
            ));
        }
        // Thread-invariance: the same cell at 1 and 4 workers is the same
        // execution, so the whole kill matrix above checked one contract.
        assert_eq!(luby_reports[0], luby_reports[1], "{gname}: luby threads");
        assert_eq!(
            greedy_reports[0], greedy_reports[1],
            "{gname}: greedy threads"
        );
    }
    std::fs::remove_dir_all(&logs).expect("drop log scratch dir");
    std::fs::remove_dir_all(&traces).expect("drop trace scratch dir");
}
