//! Differential tests for the asynchronous executor: the slot-indexed delay
//! wheel must produce bit-identical [`AsyncReport`]s to the historical
//! full-scan loop (`reference::NaiveAsyncSimulator`) under a fixed RNG seed
//! — same completion, time, message counts, max bits, per-node outputs, and
//! (implicitly) the same order of random delay draws.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_congest::async_sim::{AsyncConfig, AsyncReport, AsyncSimulator};
use symbreak_congest::reference::NaiveAsyncSimulator;
use symbreak_congest::{
    CrashFault, DelayLaw, EdgeProb, FaultPlan, KtLevel, Message, NodeAlgorithm, Recovery,
    RoundContext,
};
use symbreak_graphs::{generators, Graph, IdAssignment, NodeId};

/// Asynchronous flooding: forward the token the first time it arrives.
struct Flood {
    have: bool,
}

impl NodeAlgorithm for Flood {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        let start = ctx.node() == NodeId(0) && !self.have && ctx.round() == 0;
        if (start || !inbox.is_empty()) && !self.have {
            self.have = true;
            ctx.broadcast(&Message::tagged(1));
        }
    }
    fn is_done(&self) -> bool {
        true
    }
    fn output(&self) -> Option<u64> {
        Some(u64::from(self.have))
    }
}

/// Echoes every received batch back to all neighbours a bounded number of
/// times — keeps many messages in flight across several wheel slots.
struct Echo {
    budget: u32,
}

impl NodeAlgorithm for Echo {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        let trigger = ctx.round() == 0 || !inbox.is_empty();
        if trigger && self.budget > 0 {
            self.budget -= 1;
            ctx.broadcast(&Message::tagged(2).with_value(self.budget as u64));
        }
    }
    fn is_done(&self) -> bool {
        self.budget == 0
    }
    fn output(&self) -> Option<u64> {
        Some(self.budget as u64)
    }
}

/// Never terminates, never sends — exercises the stuck-execution path where
/// the naive loop idle-ticks to the time limit.
struct Mute;

impl NodeAlgorithm for Mute {
    fn on_round(&mut self, _ctx: &mut RoundContext<'_>, _inbox: &[Message]) {}
    fn is_done(&self) -> bool {
        false
    }
}

fn assert_async_identical(wheel: &AsyncReport, naive: &AsyncReport, label: &str) {
    assert_eq!(wheel.completed, naive.completed, "{label}: completed");
    assert_eq!(wheel.time, naive.time, "{label}: time");
    assert_eq!(wheel.messages, naive.messages, "{label}: messages");
    assert_eq!(
        wheel.max_message_bits, naive.max_message_bits,
        "{label}: max_message_bits"
    );
    assert_eq!(wheel.outputs, naive.outputs, "{label}: outputs");
    assert_eq!(wheel.faults, naive.faults, "{label}: fault stats");
}

fn check_graph(graph: &Graph, label: &str) {
    let ids = IdAssignment::identity(graph.num_nodes());
    let sim = AsyncSimulator::new(graph, &ids, KtLevel::KT1);
    let naive = NaiveAsyncSimulator::new(sim);
    for seed in 0..6u64 {
        for config in [
            AsyncConfig::default(),
            AsyncConfig {
                max_delay: 1,
                ..AsyncConfig::default()
            },
            AsyncConfig {
                max_delay: 9,
                max_time: 200,
                ..AsyncConfig::default()
            },
        ] {
            let wheel = sim.run(config, &mut StdRng::seed_from_u64(seed), |_| Flood {
                have: false,
            });
            let slow = naive.run(config, &mut StdRng::seed_from_u64(seed), |_| Flood {
                have: false,
            });
            assert_async_identical(&wheel, &slow, &format!("{label}/flood seed {seed}"));

            let wheel = sim.run(config, &mut StdRng::seed_from_u64(seed ^ 0xA5), |_| Echo {
                budget: 3,
            });
            let slow = naive.run(config, &mut StdRng::seed_from_u64(seed ^ 0xA5), |_| Echo {
                budget: 3,
            });
            assert_async_identical(&wheel, &slow, &format!("{label}/echo seed {seed}"));
        }
    }
}

#[test]
fn wheel_matches_full_scan_on_structured_graphs() {
    for (label, graph) in [
        ("path", generators::path(14)),
        ("cycle", generators::cycle(11)),
        ("clique", generators::clique(9)),
        ("star", generators::star(12)),
    ] {
        check_graph(&graph, label);
    }
}

#[test]
fn wheel_matches_full_scan_on_random_graphs() {
    for seed in 0..4u64 {
        let graph = generators::connected_gnp(40, 0.12, &mut StdRng::seed_from_u64(seed));
        check_graph(&graph, &format!("gnp-{seed}"));
    }
}

#[test]
fn wheel_matches_full_scan_when_stuck_or_truncated() {
    let graph = generators::cycle(6);
    let ids = IdAssignment::identity(6);
    let sim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
    let naive = NaiveAsyncSimulator::new(sim);
    let config = AsyncConfig {
        max_time: 300,
        ..AsyncConfig::default()
    };
    // Stuck: no messages, nodes never done → both report time = max_time.
    let wheel = sim.run(config, &mut StdRng::seed_from_u64(1), |_| Mute);
    let slow = naive.run(config, &mut StdRng::seed_from_u64(1), |_| Mute);
    assert_async_identical(&wheel, &slow, "mute");
    assert!(!wheel.completed);
    assert_eq!(wheel.time, 300);

    // Truncated mid-traffic: echoes outlive a tiny time limit.
    let tiny = AsyncConfig {
        max_time: 3,
        ..AsyncConfig::default()
    };
    let wheel = sim.run(tiny, &mut StdRng::seed_from_u64(2), |_| Echo { budget: 50 });
    let slow = naive.run(tiny, &mut StdRng::seed_from_u64(2), |_| Echo { budget: 50 });
    assert_async_identical(&wheel, &slow, "echo-truncated");
    assert!(!wheel.completed);
}

/// FNV-1a over the per-node outputs (None ↦ 0, Some(x) ↦ x + 1) — a compact
/// fingerprint for the golden-value regressions below.
fn output_digest(outputs: &[Option<u64>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for o in outputs {
        h ^= o.map(|x| x + 1).unwrap_or(0);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Golden-value regression: the fault-free executor must keep producing the
/// exact schedules it produced before the fault layer existed. The constants
/// below were captured from the pre-fault-layer HEAD; if this test fails,
/// the `FAULTS = false` monomorphization changed observable behaviour.
#[test]
fn identity_plans_preserve_prefault_schedules() {
    let gnp = generators::connected_gnp(24, 0.15, &mut StdRng::seed_from_u64(11));
    let ids = IdAssignment::identity(24);
    let sim = AsyncSimulator::new(&gnp, &ids, KtLevel::KT1);

    let report = sim.run(
        AsyncConfig::default(),
        &mut StdRng::seed_from_u64(42),
        |_| Flood { have: false },
    );
    assert!(report.completed);
    assert_eq!(report.time, 17);
    assert_eq!(report.messages, 106);
    assert_eq!(report.max_message_bits, 16);
    assert_eq!(output_digest(&report.outputs), 0xd0f3_e3ad_2246_b925);

    let report = sim.run(
        AsyncConfig::default(),
        &mut StdRng::seed_from_u64(43),
        |_| Echo { budget: 4 },
    );
    assert!(report.completed);
    assert_eq!(report.time, 11);
    assert_eq!(report.messages, 424);
    assert_eq!(report.max_message_bits, 80);
    assert_eq!(output_digest(&report.outputs), 0x43b1_03a3_07f3_ee9d);

    let cycle = generators::cycle(17);
    let ids = IdAssignment::identity(17);
    let sim = AsyncSimulator::new(&cycle, &ids, KtLevel::KT1);
    let config = AsyncConfig {
        max_delay: 3,
        ..AsyncConfig::default()
    };
    let report = sim.run(config, &mut StdRng::seed_from_u64(7), |_| Flood {
        have: false,
    });
    assert!(report.completed);
    assert_eq!(report.time, 20);
    assert_eq!(report.messages, 34);
    assert_eq!(report.max_message_bits, 16);
    assert_eq!(output_digest(&report.outputs), 0x80c2_1354_e980_e745);
}

/// `run_with_faults` with an identity plan must be bit-identical to `run` —
/// the identity dispatch routes to the same `FAULTS = false` machine, so
/// the fault seam costs nothing in behaviour.
#[test]
fn identity_fault_plan_is_bit_identical_to_fault_free_run() {
    let graph = generators::connected_gnp(30, 0.12, &mut StdRng::seed_from_u64(3));
    let ids = IdAssignment::identity(30);
    let sim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
    let plan = FaultPlan::default();
    assert!(plan.is_identity());
    for seed in 0..8u64 {
        let plain = sim.run(
            AsyncConfig::default(),
            &mut StdRng::seed_from_u64(seed),
            |_| Echo { budget: 3 },
        );
        let faulted = sim.run_with_faults(
            AsyncConfig::default(),
            &plan,
            &mut StdRng::seed_from_u64(seed),
            |_| Echo { budget: 3 },
        );
        assert_async_identical(&plain, &faulted, &format!("identity-plan seed {seed}"));
    }
}

fn fault_plans(graph: &Graph) -> Vec<(&'static str, FaultPlan)> {
    let (_, u, v) = graph.edges().next().expect("graphs have edges");
    let crash = graph
        .nodes()
        .max_by_key(|&w| graph.degree(w))
        .expect("non-empty");
    vec![
        (
            "uniform-delay",
            FaultPlan::default().with_delay(DelayLaw::Uniform),
        ),
        (
            "fixed-delay",
            FaultPlan::default().with_delay(DelayLaw::Fixed(4)),
        ),
        (
            "oblivious-delay",
            FaultPlan::default().with_delay(DelayLaw::Oblivious { seed: 0xFACE }),
        ),
        (
            "adaptive-delay",
            FaultPlan::default().with_delay(DelayLaw::Adaptive),
        ),
        (
            "loss",
            FaultPlan::default().with_drop(EdgeProb::uniform(0.15).with_edge(u, v, 1.0)),
        ),
        (
            "dup-reorder",
            FaultPlan::default()
                .with_duplicate(EdgeProb::uniform(0.4))
                .with_reorder(0.4),
        ),
        (
            "crash",
            FaultPlan::default().with_crash(CrashFault {
                node: crash,
                at: 2,
                recovery: None,
            }),
        ),
        (
            "crash-reset",
            FaultPlan::default().with_crash(CrashFault {
                node: crash,
                at: 2,
                recovery: Some((12, Recovery::Reset)),
            }),
        ),
        (
            "crash-retain",
            FaultPlan::default().with_crash(CrashFault {
                node: crash,
                at: 3,
                recovery: Some((9, Recovery::Retain)),
            }),
        ),
    ]
}

/// The faulty wheel and the faulty full-scan reference must agree on every
/// fault class: same RNG decision sequence, same delivery schedule, same
/// crash/recovery handling — and the wheel's time-jumping through quiet
/// stretches must be unobservable.
#[test]
fn faulty_wheel_matches_faulty_full_scan() {
    for (glabel, graph) in [
        (
            "gnp",
            generators::connected_gnp(26, 0.14, &mut StdRng::seed_from_u64(17)),
        ),
        ("cycle", generators::cycle(13)),
        ("star", generators::star(10)),
    ] {
        let ids = IdAssignment::identity(graph.num_nodes());
        let sim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let naive = NaiveAsyncSimulator::new(sim);
        let config = AsyncConfig {
            max_time: 400,
            ..AsyncConfig::default()
        };
        for (flabel, plan) in fault_plans(&graph) {
            for seed in 0..4u64 {
                let label = format!("{glabel}/{flabel} seed {seed}");
                let wheel =
                    sim.run_with_faults(config, &plan, &mut StdRng::seed_from_u64(seed), |_| {
                        Echo { budget: 3 }
                    });
                let slow =
                    naive.run_with_faults(config, &plan, &mut StdRng::seed_from_u64(seed), |_| {
                        Echo { budget: 3 }
                    });
                assert_async_identical(&wheel, &slow, &label);
                // Same seed, same plan → the whole faulty run reproduces.
                let again =
                    sim.run_with_faults(config, &plan, &mut StdRng::seed_from_u64(seed), |_| {
                        Echo { budget: 3 }
                    });
                assert_eq!(wheel, again, "{label}: determinism");
            }
        }
    }
}
