//! Differential tests for the asynchronous executor: the slot-indexed delay
//! wheel must produce bit-identical [`AsyncReport`]s to the historical
//! full-scan loop (`reference::NaiveAsyncSimulator`) under a fixed RNG seed
//! — same completion, time, message counts, max bits, per-node outputs, and
//! (implicitly) the same order of random delay draws.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_congest::async_sim::{AsyncConfig, AsyncReport, AsyncSimulator};
use symbreak_congest::reference::NaiveAsyncSimulator;
use symbreak_congest::{KtLevel, Message, NodeAlgorithm, RoundContext};
use symbreak_graphs::{generators, Graph, IdAssignment, NodeId};

/// Asynchronous flooding: forward the token the first time it arrives.
struct Flood {
    have: bool,
}

impl NodeAlgorithm for Flood {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        let start = ctx.node() == NodeId(0) && !self.have && ctx.round() == 0;
        if (start || !inbox.is_empty()) && !self.have {
            self.have = true;
            ctx.broadcast(&Message::tagged(1));
        }
    }
    fn is_done(&self) -> bool {
        true
    }
    fn output(&self) -> Option<u64> {
        Some(u64::from(self.have))
    }
}

/// Echoes every received batch back to all neighbours a bounded number of
/// times — keeps many messages in flight across several wheel slots.
struct Echo {
    budget: u32,
}

impl NodeAlgorithm for Echo {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        let trigger = ctx.round() == 0 || !inbox.is_empty();
        if trigger && self.budget > 0 {
            self.budget -= 1;
            ctx.broadcast(&Message::tagged(2).with_value(self.budget as u64));
        }
    }
    fn is_done(&self) -> bool {
        self.budget == 0
    }
    fn output(&self) -> Option<u64> {
        Some(self.budget as u64)
    }
}

/// Never terminates, never sends — exercises the stuck-execution path where
/// the naive loop idle-ticks to the time limit.
struct Mute;

impl NodeAlgorithm for Mute {
    fn on_round(&mut self, _ctx: &mut RoundContext<'_>, _inbox: &[Message]) {}
    fn is_done(&self) -> bool {
        false
    }
}

fn assert_async_identical(wheel: &AsyncReport, naive: &AsyncReport, label: &str) {
    assert_eq!(wheel.completed, naive.completed, "{label}: completed");
    assert_eq!(wheel.time, naive.time, "{label}: time");
    assert_eq!(wheel.messages, naive.messages, "{label}: messages");
    assert_eq!(
        wheel.max_message_bits, naive.max_message_bits,
        "{label}: max_message_bits"
    );
    assert_eq!(wheel.outputs, naive.outputs, "{label}: outputs");
}

fn check_graph(graph: &Graph, label: &str) {
    let ids = IdAssignment::identity(graph.num_nodes());
    let sim = AsyncSimulator::new(graph, &ids, KtLevel::KT1);
    let naive = NaiveAsyncSimulator::new(sim);
    for seed in 0..6u64 {
        for config in [
            AsyncConfig::default(),
            AsyncConfig {
                max_delay: 1,
                ..AsyncConfig::default()
            },
            AsyncConfig {
                max_delay: 9,
                max_time: 200,
                ..AsyncConfig::default()
            },
        ] {
            let wheel = sim.run(config, &mut StdRng::seed_from_u64(seed), |_| Flood {
                have: false,
            });
            let slow = naive.run(config, &mut StdRng::seed_from_u64(seed), |_| Flood {
                have: false,
            });
            assert_async_identical(&wheel, &slow, &format!("{label}/flood seed {seed}"));

            let wheel = sim.run(config, &mut StdRng::seed_from_u64(seed ^ 0xA5), |_| Echo {
                budget: 3,
            });
            let slow = naive.run(config, &mut StdRng::seed_from_u64(seed ^ 0xA5), |_| Echo {
                budget: 3,
            });
            assert_async_identical(&wheel, &slow, &format!("{label}/echo seed {seed}"));
        }
    }
}

#[test]
fn wheel_matches_full_scan_on_structured_graphs() {
    for (label, graph) in [
        ("path", generators::path(14)),
        ("cycle", generators::cycle(11)),
        ("clique", generators::clique(9)),
        ("star", generators::star(12)),
    ] {
        check_graph(&graph, label);
    }
}

#[test]
fn wheel_matches_full_scan_on_random_graphs() {
    for seed in 0..4u64 {
        let graph = generators::connected_gnp(40, 0.12, &mut StdRng::seed_from_u64(seed));
        check_graph(&graph, &format!("gnp-{seed}"));
    }
}

#[test]
fn wheel_matches_full_scan_when_stuck_or_truncated() {
    let graph = generators::cycle(6);
    let ids = IdAssignment::identity(6);
    let sim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
    let naive = NaiveAsyncSimulator::new(sim);
    let config = AsyncConfig {
        max_time: 300,
        ..AsyncConfig::default()
    };
    // Stuck: no messages, nodes never done → both report time = max_time.
    let wheel = sim.run(config, &mut StdRng::seed_from_u64(1), |_| Mute);
    let slow = naive.run(config, &mut StdRng::seed_from_u64(1), |_| Mute);
    assert_async_identical(&wheel, &slow, "mute");
    assert!(!wheel.completed);
    assert_eq!(wheel.time, 300);

    // Truncated mid-traffic: echoes outlive a tiny time limit.
    let tiny = AsyncConfig {
        max_time: 3,
        ..AsyncConfig::default()
    };
    let wheel = sim.run(tiny, &mut StdRng::seed_from_u64(2), |_| Echo { budget: 50 });
    let slow = naive.run(tiny, &mut StdRng::seed_from_u64(2), |_| Echo { budget: 50 });
    assert_async_identical(&wheel, &slow, "echo-truncated");
    assert!(!wheel.completed);
}
