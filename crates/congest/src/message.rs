//! CONGEST messages with separate ID-type and ordinary fields.

use serde::{Deserialize, Serialize};

/// Maximum number of ID-type fields per message.
///
/// Comparison-based algorithms (Section 1.4.2) may send ID-type variables in
/// messages, but a `O(log n)`-bit message can only contain a constant number
/// of them. Two is enough for every algorithm in the paper (e.g. "node with
/// ID `x` joined the MIS, forward towards ID `y`").
pub const MAX_ID_FIELDS: usize = 2;

/// Maximum number of ordinary `u64` value fields per message.
pub const MAX_VALUE_FIELDS: usize = 3;

/// A single `O(log n)`-bit CONGEST message.
///
/// A message consists of a small algorithm-defined `tag`, up to
/// [`MAX_ID_FIELDS`] *ID-type* fields and up to [`MAX_VALUE_FIELDS`]
/// *ordinary* fields. The distinction mirrors the comparison-based framework
/// of Awerbuch et al. used in Section 2: ID fields participate in the
/// decoded representation of an execution and in utilized-edge tracking,
/// ordinary fields do not.
///
/// # Example
///
/// ```
/// use symbreak_congest::Message;
///
/// let m = Message::tagged(7).with_id(12345).with_value(3);
/// assert_eq!(m.tag(), 7);
/// assert_eq!(m.ids(), &[12345]);
/// assert_eq!(m.values(), &[3]);
/// ```
/// Because the field counts are hard-capped ([`MAX_ID_FIELDS`],
/// [`MAX_VALUE_FIELDS`]), the payload is stored in fixed inline arrays: a
/// `Message` is a flat 48-byte `Copy`-able value with no heap allocation,
/// so the simulator's hot loop clones, moves and drops messages as plain
/// memory copies. Unused slots are always zero, which keeps the derived
/// `Eq`/`Hash` consistent with the visible fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Message {
    tag: u16,
    num_ids: u8,
    num_values: u8,
    ids: [u64; MAX_ID_FIELDS],
    values: [u64; MAX_VALUE_FIELDS],
}

impl Message {
    /// Creates an empty message with the given algorithm-defined tag.
    pub fn tagged(tag: u16) -> Self {
        Message {
            tag,
            num_ids: 0,
            num_values: 0,
            ids: [0; MAX_ID_FIELDS],
            values: [0; MAX_VALUE_FIELDS],
        }
    }

    /// Adds an ID-type field.
    ///
    /// # Panics
    ///
    /// Panics if the message already carries [`MAX_ID_FIELDS`] IDs — that
    /// would exceed the `O(log n)`-bit budget of the CONGEST model.
    pub fn with_id(mut self, id: u64) -> Self {
        assert!(
            (self.num_ids as usize) < MAX_ID_FIELDS,
            "a CONGEST message may carry at most {MAX_ID_FIELDS} ID fields"
        );
        self.ids[self.num_ids as usize] = id;
        self.num_ids += 1;
        self
    }

    /// Adds an ordinary value field.
    ///
    /// # Panics
    ///
    /// Panics if the message already carries [`MAX_VALUE_FIELDS`] values.
    pub fn with_value(mut self, value: u64) -> Self {
        assert!(
            (self.num_values as usize) < MAX_VALUE_FIELDS,
            "a CONGEST message may carry at most {MAX_VALUE_FIELDS} value fields"
        );
        self.values[self.num_values as usize] = value;
        self.num_values += 1;
        self
    }

    /// The algorithm-defined tag.
    #[inline]
    pub fn tag(&self) -> u16 {
        self.tag
    }

    /// The ID-type fields.
    #[inline]
    pub fn ids(&self) -> &[u64] {
        &self.ids[..self.num_ids as usize]
    }

    /// The ordinary value fields.
    #[inline]
    pub fn values(&self) -> &[u64] {
        &self.values[..self.num_values as usize]
    }

    /// First ID field, if present.
    pub fn id(&self) -> Option<u64> {
        self.ids().first().copied()
    }

    /// First value field, if present.
    pub fn value(&self) -> Option<u64> {
        self.values().first().copied()
    }

    /// Size of the message in bits, assuming IDs and values are `O(log n)`
    /// quantities encoded in 64-bit words plus the 16-bit tag. Used by the
    /// simulator to enforce the per-message budget.
    pub fn size_bits(&self) -> u32 {
        16 + 64 * (u32::from(self.num_ids) + u32::from(self.num_values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_fields() {
        let m = Message::tagged(3)
            .with_id(10)
            .with_id(20)
            .with_value(1)
            .with_value(2);
        assert_eq!(m.tag(), 3);
        assert_eq!(m.ids(), &[10, 20]);
        assert_eq!(m.values(), &[1, 2]);
        assert_eq!(m.id(), Some(10));
        assert_eq!(m.value(), Some(1));
    }

    #[test]
    fn empty_message_accessors() {
        let m = Message::tagged(0);
        assert_eq!(m.id(), None);
        assert_eq!(m.value(), None);
        assert_eq!(m.size_bits(), 16);
    }

    #[test]
    #[should_panic(expected = "ID fields")]
    fn too_many_ids_rejected() {
        let _ = Message::tagged(0).with_id(1).with_id(2).with_id(3);
    }

    #[test]
    #[should_panic(expected = "value fields")]
    fn too_many_values_rejected() {
        let _ = Message::tagged(0)
            .with_value(1)
            .with_value(2)
            .with_value(3)
            .with_value(4);
    }

    #[test]
    fn size_accounting() {
        let m = Message::tagged(9).with_id(5).with_value(6);
        assert_eq!(m.size_bits(), 16 + 128);
    }
}
