//! Query-time enforcement of KT-ρ initial knowledge.

use symbreak_graphs::{Graph, IdAssignment, NodeId};

use crate::KtLevel;

/// A node's view of its initial knowledge under a KT-ρ model.
///
/// Rather than materialising every node's knowledge up front (which would be
/// Θ(n·Δ²) memory in KT-2), the view answers queries lazily against the
/// underlying graph and *checks the permitted radius on every query*: asking
/// for information outside the KT-ρ radius is a bug in the algorithm and
/// panics with a descriptive message. This keeps the simulated algorithms
/// honest about what they are allowed to read "for free".
#[derive(Debug, Clone, Copy)]
pub struct KnowledgeView<'a> {
    graph: &'a Graph,
    ids: &'a IdAssignment,
    level: KtLevel,
    me: NodeId,
}

impl<'a> KnowledgeView<'a> {
    /// Creates the knowledge view of node `me`.
    pub fn new(graph: &'a Graph, ids: &'a IdAssignment, level: KtLevel, me: NodeId) -> Self {
        KnowledgeView {
            graph,
            ids,
            level,
            me,
        }
    }

    /// The node whose knowledge this is.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The knowledge level ρ.
    pub fn level(&self) -> KtLevel {
        self.level
    }

    /// Total number of nodes `n` (all algorithms in the paper may assume
    /// knowledge of `n`; see e.g. Theorem 2.10 "even if the vertices know the
    /// size of the network").
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// This node's own ID (always known).
    pub fn own_id(&self) -> u64 {
        self.ids.id_of(self.me)
    }

    /// This node's degree (always known — ports are visible even in KT-0).
    pub fn degree(&self) -> usize {
        self.graph.degree(self.me)
    }

    /// The neighbours of this node as simulator addresses (ports). Knowing
    /// which *ports* exist is permitted in every KT level; knowing the IDs
    /// behind them requires KT-1 (see [`Self::neighbor_ids`]).
    pub fn neighbors(&self) -> Vec<NodeId> {
        self.graph.neighbor_vec(self.me)
    }

    /// Distance from `me` to `v` if it is at most `cap`, computed by a
    /// truncated BFS.
    fn bounded_distance(&self, v: NodeId, cap: u32) -> Option<u32> {
        if v == self.me {
            return Some(0);
        }
        if cap == 0 {
            return None;
        }
        let mut dist = vec![u32::MAX; self.graph.num_nodes()];
        dist[self.me.index()] = 0;
        let mut frontier = vec![self.me];
        for d in 1..=cap {
            let mut next = Vec::new();
            for &u in &frontier {
                for w in self.graph.neighbors(u) {
                    if dist[w.index()] == u32::MAX {
                        dist[w.index()] = d;
                        if w == v {
                            return Some(d);
                        }
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        None
    }

    /// The ID of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is farther than ρ hops from this node — KT-ρ does not
    /// permit knowing that ID initially.
    pub fn id_of(&self, v: NodeId) -> u64 {
        let within = self.bounded_distance(v, self.level.radius()).is_some();
        assert!(
            within,
            "{} violation: node {} may not initially know the ID of {}",
            self.level, self.me, v
        );
        self.ids.id_of(v)
    }

    /// The IDs of this node's neighbours, paired with their addresses.
    ///
    /// # Panics
    ///
    /// Panics in KT-0, where neighbour IDs are not part of the initial
    /// knowledge.
    pub fn neighbor_ids(&self) -> Vec<(NodeId, u64)> {
        assert!(
            self.level.radius() >= 1,
            "{} violation: neighbour IDs are not known initially",
            self.level
        );
        self.graph
            .neighbors(self.me)
            .map(|v| (v, self.ids.id_of(v)))
            .collect()
    }

    /// The neighbours (addresses) of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is farther than ρ − 1 hops from this node; KT-ρ only
    /// reveals the neighbourhood of nodes within radius ρ − 1.
    pub fn neighbors_of(&self, v: NodeId) -> Vec<NodeId> {
        let r = self.level.radius();
        let ok = r >= 1 && self.bounded_distance(v, r - 1).is_some();
        assert!(
            ok,
            "{} violation: node {} may not initially know the neighbourhood of {}",
            self.level, self.me, v
        );
        self.graph.neighbor_vec(v)
    }

    /// The IDs of the neighbours of node `v` (requires `v` within ρ − 1).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::neighbors_of`].
    pub fn neighbor_ids_of(&self, v: NodeId) -> Vec<(NodeId, u64)> {
        self.neighbors_of(v)
            .into_iter()
            .map(|w| (w, self.ids.id_of(w)))
            .collect()
    }

    /// Whether the edge `{a, b}` is visible in this node's initial knowledge,
    /// i.e. at least one endpoint lies within radius ρ − 1 of this node and
    /// the edge exists.
    pub fn knows_edge(&self, a: NodeId, b: NodeId) -> bool {
        let r = self.level.radius();
        if r == 0 {
            return false;
        }
        let sees = |x: NodeId| self.bounded_distance(x, r - 1).is_some();
        (sees(a) || sees(b)) && self.graph.has_edge(a, b)
    }

    /// Nodes at distance exactly two, visible in KT-2 and above.
    ///
    /// # Panics
    ///
    /// Panics if ρ < 2.
    pub fn two_hop_neighbors(&self) -> Vec<NodeId> {
        assert!(
            self.level.radius() >= 2,
            "{} violation: the two-hop neighbourhood is not known initially",
            self.level
        );
        self.graph.two_hop_neighbors(self.me)
    }

    /// Looks up a node by ID among the nodes whose IDs this node knows
    /// initially (those within radius ρ). Returns `None` for unknown IDs.
    pub fn known_node_with_id(&self, id: u64) -> Option<NodeId> {
        let v = self.ids.node_with_id(id)?;
        self.bounded_distance(v, self.level.radius()).map(|_| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbreak_graphs::generators;

    fn setup(level: KtLevel) -> (Graph, IdAssignment, KtLevel) {
        let g = generators::path(4); // 0 - 1 - 2 - 3
        let ids = IdAssignment::from_vec(vec![100, 200, 300, 400]);
        (g, ids, level)
    }

    #[test]
    fn kt1_knows_neighbor_ids() {
        let (g, ids, level) = setup(KtLevel::KT1);
        let k = KnowledgeView::new(&g, &ids, level, NodeId(1));
        assert_eq!(k.own_id(), 200);
        let nbrs = k.neighbor_ids();
        assert_eq!(nbrs, vec![(NodeId(0), 100), (NodeId(2), 300)]);
        assert_eq!(k.id_of(NodeId(2)), 300);
        assert_eq!(k.degree(), 2);
        assert_eq!(k.num_nodes(), 4);
    }

    #[test]
    #[should_panic(expected = "KT-1 violation")]
    fn kt1_does_not_know_two_hop_ids() {
        let (g, ids, level) = setup(KtLevel::KT1);
        let k = KnowledgeView::new(&g, &ids, level, NodeId(0));
        let _ = k.id_of(NodeId(2));
    }

    #[test]
    #[should_panic(expected = "KT-0 violation")]
    fn kt0_does_not_know_neighbor_ids() {
        let (g, ids, level) = setup(KtLevel::KT0);
        let k = KnowledgeView::new(&g, &ids, level, NodeId(0));
        let _ = k.neighbor_ids();
    }

    #[test]
    fn kt2_knows_two_hop_ids_and_neighbor_adjacency() {
        let (g, ids, level) = setup(KtLevel::KT2);
        let k = KnowledgeView::new(&g, &ids, level, NodeId(0));
        assert_eq!(k.id_of(NodeId(2)), 300);
        assert_eq!(k.two_hop_neighbors(), vec![NodeId(2)]);
        assert_eq!(k.neighbors_of(NodeId(1)), vec![NodeId(0), NodeId(2)]);
        assert!(k.knows_edge(NodeId(1), NodeId(2)));
        assert!(!k.knows_edge(NodeId(2), NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "KT-2 violation")]
    fn kt2_does_not_know_three_hop_ids() {
        let (g, ids, level) = setup(KtLevel::KT2);
        let k = KnowledgeView::new(&g, &ids, level, NodeId(0));
        let _ = k.id_of(NodeId(3));
    }

    #[test]
    #[should_panic(expected = "violation")]
    fn kt1_does_not_know_neighbor_adjacency() {
        let (g, ids, level) = setup(KtLevel::KT1);
        let k = KnowledgeView::new(&g, &ids, level, NodeId(0));
        let _ = k.neighbors_of(NodeId(1));
    }

    #[test]
    fn known_node_with_id_respects_radius() {
        let (g, ids, _) = setup(KtLevel::KT1);
        let k = KnowledgeView::new(&g, &ids, KtLevel::KT1, NodeId(0));
        assert_eq!(k.known_node_with_id(200), Some(NodeId(1)));
        assert_eq!(k.known_node_with_id(300), None);
        assert_eq!(k.known_node_with_id(123), None);
    }

    #[test]
    fn ports_visible_even_in_kt0() {
        let (g, ids, _) = setup(KtLevel::KT0);
        let k = KnowledgeView::new(&g, &ids, KtLevel::KT0, NodeId(1));
        assert_eq!(k.neighbors(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(k.own_id(), 200);
    }
}
