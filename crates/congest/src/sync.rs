//! The synchronous round-driven CONGEST simulator.
//!
//! The round loop itself lives in the [`crate::engine`] primitives: a
//! [`NodeRuntime`] steps the automata, a [`DeliveryBuffer`]/[`MessageArena`]
//! pair double-buffers messages through one flat allocation per round, and
//! all instrumentation (traces, per-edge counters, utilized edges) hangs off
//! the [`RoundObserver`] trait so the uninstrumented path pays nothing for
//! it. A bit-identical naive implementation is kept in [`crate::reference`]
//! for differential tests and throughput baselines.
//!
//! Two round loops share those primitives:
//!
//! * the **sequential loop** — used whenever instrumentation is active or
//!   the resolved thread count is 1. It additionally switches the delivery
//!   buffer into its receiver-major dense layout on rounds the engine
//!   predicts to be all-to-all ([`NodeRuntime::dense_round`]).
//! * the **parallel loop** — splits each round's active list into
//!   contiguous, degree-balanced shards, steps every shard on its own thread
//!   into a thread-local staging buffer, and merges the buffers with one
//!   deterministic counting sort ([`DeliveryBuffer::flip_shards`]).
//!
//! Both produce **bit-identical** [`ExecutionReport`]s: shards are
//! contiguous slices of the ascending active list, so concatenating their
//! staging buffers in shard order reproduces the sequential staging order
//! exactly, for any thread count.
//!
//! On top of both sits **graph sharding** ([`SyncConfig::shards`] /
//! `CONGEST_SHARDS`): the CSR adjacency arrays are partitioned into
//! degree-balanced contiguous shards, each a self-contained local slice
//! with a ghost table for cross-shard references
//! ([`symbreak_graphs::sharded::ShardedGraph`]). Stepping then touches the
//! graph only through per-shard slices — single-threaded runs walk the
//! shards in order through the sequential loop, and multi-threaded runs
//! step one shard per worker, routing messages through per-(source-shard,
//! destination-shard) **frontier buffers** merged by the same deterministic
//! counting sort. Reports stay bit-identical at any shard *and* thread
//! count: shards are contiguous ranges of the node space, so walking the
//! frontier matrix in source-shard-major order reproduces the sequential
//! staging order exactly.

use serde::{Deserialize, Serialize};
use symbreak_graphs::sharded::{balanced_cuts, ShardPlan, ShardedGraph};
use symbreak_graphs::{EdgeId, Graph, IdAssignment, NodeId};

use crate::audit::{audit_enabled, AuditConfig, Auditor, Violation};
use crate::engine::{
    split_ranges_mut, DeliveryBuffer, MessageArena, NodeRuntime, NoopObserver, RoundObserver,
    ShardSliceView, ShardView,
};
use crate::model::DEFAULT_MESSAGE_BITS;
use crate::trace::{Trace, TraceMessage};
use crate::{KnowledgeView, KtLevel, Message, NodeAlgorithm, NodeInit, SimError};

/// Environment variable overriding the automatic thread count of
/// [`SyncConfig::threads`]` = 0` (used by CI to exercise both the sequential
/// and the parallel loop with one test suite).
pub const THREADS_ENV: &str = "CONGEST_THREADS";

/// Environment variable overriding the graph shard count of
/// [`SyncConfig::shards`]` = 0` (used by CI to run whole test suites through
/// the sharded stepping path).
pub const SHARDS_ENV: &str = "CONGEST_SHARDS";

/// Environment variable overriding the lane count of
/// [`SyncConfig::lanes`]` = 0` — the default batch width of
/// [`crate::BatchSimulator`] runs (used by CI to push whole test suites
/// through the lockstep batch loop).
pub const LANES_ENV: &str = "CONGEST_LANES";

/// Rounds with fewer active nodes than this per shard run single-sharded
/// (inline, no cross-thread dispatch) — fork-join overhead would dwarf the
/// work. Exceeding it does not force parallelism; it only permits it.
pub(crate) const MIN_ACTIVE_PER_SHARD: usize = 32;

/// Shards per worker thread: the active list is cut into up to this many
/// shards per thread, claimed dynamically (see the vendored
/// `rayon::ThreadPool::par_chunks_mut`), so one skewed shard — a bucket
/// whose coloring traffic dwarfs its degree-balanced share, a power-law
/// hub's inbox — keeps one worker busy while the others drain the rest.
/// Shard boundaries stay deterministic, so the `flip_shards` merge order
/// (and therefore the report) is bit-identical at any thread count.
pub(crate) const SHARD_OVERSUBSCRIPTION: usize = 4;

/// Configuration of a synchronous run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncConfig {
    /// Abort (with `completed = false`) after this many rounds.
    pub max_rounds: u64,
    /// Per-message size budget in bits (see [`crate::Message::size_bits`]).
    pub message_bit_limit: u32,
    /// Record the full message trace (needed by the lower-bound experiments;
    /// costs memory proportional to the number of messages).
    pub record_trace: bool,
    /// Track which edges are *utilized* in the sense of Definition 2.3.
    pub track_utilization: bool,
    /// Track per-edge message counts.
    pub track_per_edge: bool,
    /// Worker threads for round stepping. `0` (the default) resolves to the
    /// `CONGEST_THREADS` environment variable if set, else to the available
    /// CPU count. Reports are bit-identical at every thread count;
    /// instrumented runs (trace/utilization/per-edge or a custom observer)
    /// always execute sequentially.
    pub threads: usize,
    /// Graph shards for sharded stepping. `0` (the default) resolves to the
    /// `CONGEST_SHARDS` environment variable if set, else disables sharding.
    /// When ≥ 1, the CSR adjacency is partitioned into that many
    /// degree-balanced contiguous shards
    /// ([`symbreak_graphs::sharded::ShardedGraph`]; clamped to the node
    /// count) and every activation resolves its neighbour list from its
    /// shard's local slice. With more than one thread, workers step one
    /// shard each and cross-shard messages travel through per-(src-shard,
    /// dst-shard) frontier buffers; parallelism is then capped by the shard
    /// count. A plan that resolves to a single shard is the identity
    /// partition and runs on the unsharded fast path at zero extra cost.
    /// Reports are bit-identical to the unsharded engine at any
    /// shard/thread combination.
    pub shards: usize,
    /// Execution lanes for batched multi-execution runs
    /// ([`crate::BatchSimulator`]). `0` (the default) resolves to the
    /// `CONGEST_LANES` environment variable if set, else to `1` (a single
    /// lane). Plain [`SyncSimulator`] runs ignore this knob; batch runs step
    /// this many statistically independent executions in lockstep over one
    /// shared CSR, and lane `k` of a batched run is bit-identical to a
    /// sequential run with that lane's seed.
    pub lanes: usize,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            max_rounds: 1_000_000,
            message_bit_limit: DEFAULT_MESSAGE_BITS,
            record_trace: false,
            track_utilization: false,
            track_per_edge: false,
            threads: 0,
            shards: 0,
            lanes: 0,
        }
    }
}

impl SyncConfig {
    /// Configuration with full instrumentation (trace + utilization +
    /// per-edge counters); used by the lower-bound experiments.
    pub fn instrumented() -> Self {
        SyncConfig {
            record_trace: true,
            track_utilization: true,
            track_per_edge: true,
            ..SyncConfig::default()
        }
    }

    /// Sets the round limit.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the stepping thread count (`0` = automatic; see
    /// [`SyncConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the graph shard count (`0` = disabled; see
    /// [`SyncConfig::shards`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the batch lane count (`0` = automatic; see
    /// [`SyncConfig::lanes`]).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// The effective lane count: an explicit setting wins, then the
    /// `CONGEST_LANES` environment variable, then `1` (a single lane).
    pub fn resolved_lanes(&self) -> usize {
        if self.lanes > 0 {
            return self.lanes;
        }
        if let Ok(raw) = std::env::var(LANES_ENV) {
            if let Ok(v) = raw.trim().parse::<usize>() {
                if v > 0 {
                    return v;
                }
            }
        }
        1
    }

    /// The effective shard count: an explicit setting wins, then the
    /// `CONGEST_SHARDS` environment variable, then `0` (sharding disabled).
    pub fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        if let Ok(raw) = std::env::var(SHARDS_ENV) {
            if let Ok(v) = raw.trim().parse::<usize>() {
                return v;
            }
        }
        0
    }

    /// Builds the [`ShardedGraph`] this configuration's runs would otherwise
    /// construct **per call** — the caching seam for multi-stage algorithm
    /// runs. Returns `Some` exactly when sharded stepping would engage (the
    /// resolved shard count is nonzero and the degree-balanced plan has more
    /// than one shard; single-shard plans are the identity partition and run
    /// unsharded). Attach the result once via
    /// [`SyncSimulator::with_sharded_graph`] and every subsequent `run` on
    /// that simulator reuses it instead of rebuilding ghost tables.
    pub fn prebuild_sharded(&self, graph: &Graph) -> Option<ShardedGraph> {
        let shards = self.resolved_shards();
        if shards == 0 {
            return None;
        }
        let plan = ShardPlan::degree_balanced(graph, shards);
        (plan.num_shards() > 1).then(|| ShardedGraph::with_plan(graph, plan))
    }

    /// The effective thread count: an explicit setting wins, then the
    /// `CONGEST_THREADS` environment variable, then the CPU count.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Ok(raw) = std::env::var(THREADS_ENV) {
            if let Ok(v) = raw.trim().parse::<usize>() {
                if v > 0 {
                    return v;
                }
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Outcome of a synchronous run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Whether every node terminated before the round limit.
    pub completed: bool,
    /// Number of executed rounds.
    pub rounds: u64,
    /// Total number of messages sent.
    pub messages: u64,
    /// The largest message observed, in bits.
    pub max_message_bits: u32,
    /// Final per-node outputs.
    pub outputs: Vec<Option<u64>>,
    /// Per-edge message counts (if requested).
    pub per_edge_messages: Option<Vec<u64>>,
    /// Utilized-edge flags (if requested), indexed by [`EdgeId`].
    pub utilized_edges: Option<Vec<bool>>,
    /// The full message trace (if requested).
    pub trace: Option<Trace>,
}

impl ExecutionReport {
    /// Number of utilized edges (Definition 2.3), if tracked.
    pub fn utilized_edge_count(&self) -> Option<usize> {
        self.utilized_edges
            .as_ref()
            .map(|u| u.iter().filter(|&&b| b).count())
    }

    /// Whether a particular edge was utilized, if tracked.
    pub fn is_utilized(&self, e: EdgeId) -> Option<bool> {
        self.utilized_edges.as_ref().map(|u| u[e.index()])
    }
}

/// The synchronous simulator: a graph, an ID assignment and a KT level.
///
/// See the crate-level documentation for a full example.
#[derive(Debug, Clone, Copy)]
pub struct SyncSimulator<'g> {
    graph: &'g Graph,
    ids: &'g IdAssignment,
    level: KtLevel,
    /// A caller-prebuilt sharded view of `graph`, reused across `run` calls
    /// instead of rebuilding the ghost tables per call (see
    /// [`SyncSimulator::with_sharded_graph`]).
    sharded: Option<&'g ShardedGraph>,
}

impl<'g> SyncSimulator<'g> {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the ID assignment does not cover exactly the graph's nodes;
    /// use [`SyncSimulator::try_new`] for a fallible constructor.
    pub fn new(graph: &'g Graph, ids: &'g IdAssignment, level: KtLevel) -> Self {
        Self::try_new(graph, ids, level).expect("ID assignment does not match the graph")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::IdAssignmentMismatch`] if the assignment does not
    /// cover exactly the graph's nodes.
    pub fn try_new(
        graph: &'g Graph,
        ids: &'g IdAssignment,
        level: KtLevel,
    ) -> Result<Self, SimError> {
        if ids.len() != graph.num_nodes() {
            return Err(SimError::IdAssignmentMismatch {
                graph_nodes: graph.num_nodes(),
                id_nodes: ids.len(),
            });
        }
        Ok(SyncSimulator {
            graph,
            ids,
            level,
            sharded: None,
        })
    }

    /// Attaches a prebuilt [`ShardedGraph`] of this simulator's graph.
    ///
    /// Every `run` whose configuration engages sharded stepping then reuses
    /// it instead of rebuilding the shard slices and ghost tables per call —
    /// the fix for multi-stage algorithm runs (e.g. Algorithm 1's per-level
    /// stages), which previously paid ghost-table construction once *per
    /// stage*. Build the graph once with [`SyncConfig::prebuild_sharded`]
    /// (which also encodes the "more than one shard" engagement rule) and
    /// attach it here. The configuration stays the gate: a run whose
    /// resolved shard count is `0` ignores the attachment and steps
    /// unsharded, and an attached graph with a single shard is the identity
    /// partition and keeps the unsharded fast path. When sharding does
    /// engage, the attached graph's own shard count wins over the
    /// configured one (they were planned from the same rule, but the
    /// attachment is authoritative).
    ///
    /// Results are unaffected either way: reports are bit-identical at any
    /// shard count, prebuilt or not.
    ///
    /// # Panics
    ///
    /// Panics if `sharded` does not cover exactly this simulator's graph
    /// (node count and half-edge count are checked — two different graphs
    /// of the same shape would still step identically, but a mismatched
    /// adjacency is caught).
    pub fn with_sharded_graph(mut self, sharded: &'g ShardedGraph) -> Self {
        assert_eq!(
            sharded.num_nodes(),
            self.graph.num_nodes(),
            "prebuilt sharded graph covers a different node count"
        );
        assert_eq!(
            sharded.num_half_edges(),
            self.graph.degree_sum(),
            "prebuilt sharded graph covers a different adjacency"
        );
        self.sharded = Some(sharded);
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The ID assignment.
    pub fn ids(&self) -> &'g IdAssignment {
        self.ids
    }

    /// The KT level.
    pub fn level(&self) -> KtLevel {
        self.level
    }

    /// The knowledge view of a single node (useful for centrally-coordinated
    /// orchestration code that still wants to respect KT-ρ limits).
    pub fn knowledge_of(&self, v: NodeId) -> KnowledgeView<'g> {
        KnowledgeView::new(self.graph, self.ids, self.level, v)
    }

    /// Runs the algorithm produced per node by `make` until every node is
    /// done and no messages are in flight, or until the round limit.
    ///
    /// When `config` requests no instrumentation, the run uses the
    /// branch-free fast path ([`NoopObserver`]) — parallel across
    /// [`SyncConfig::threads`] workers when more than one resolves;
    /// otherwise the built-in `Instrumentation` observer collects whatever
    /// the config asked for on the sequential loop.
    ///
    /// Automata must be [`Send`] so the round loop *may* shard them across
    /// threads (the bound is required even for runs that resolve to one
    /// thread — monomorphization cannot depend on the runtime thread
    /// count). A `!Send` automaton can still be driven through
    /// [`crate::reference::NaiveSyncSimulator`], which is unbounded.
    ///
    /// # Panics
    ///
    /// Panics if a node sends a message exceeding the configured bit limit or
    /// sends to a non-neighbour — both indicate bugs in the node algorithm.
    pub fn run<A, F>(&self, config: SyncConfig, make: F) -> ExecutionReport
    where
        A: NodeAlgorithm + Send,
        F: FnMut(NodeInit<'_>) -> A,
    {
        if config.record_trace || config.track_utilization || config.track_per_edge {
            let mut instr = Instrumentation::new(self.graph, self.ids, config);
            let mut report = self.run_observed(config, make, &mut instr);
            let Instrumentation {
                per_edge,
                utilized,
                trace,
                ..
            } = instr;
            report.per_edge_messages = per_edge;
            report.utilized_edges = utilized;
            report.trace = trace;
            report
        } else if audit_enabled() {
            // `CONGEST_AUDIT=1`: deny-mode compliance auditing — any model
            // violation panics with full provenance, so a run that returns
            // is certified compliant. Reports are bit-identical to
            // unaudited runs.
            self.run_audited(config, &AuditConfig::from_env(), make).0
        } else {
            self.run_observed(config, make, &mut NoopObserver)
        }
    }

    /// Runs like [`SyncSimulator::run`] under a CONGEST-model compliance
    /// [`Auditor`]: every message is checked for adjacency, per-direction
    /// multiplicity and bandwidth, every parallel round for write-window
    /// disjointness and inbox aliasing (see [`crate::audit`]). Returns the
    /// report — bit-identical to an unaudited run — plus the violations
    /// (always empty when [`AuditConfig::deny`] is set: deny mode panics at
    /// the first finding instead).
    ///
    /// Unlike [`SyncSimulator::run_observed`], auditing does *not* pin the
    /// run to the sequential loop: multi-threaded configurations take the
    /// parallel/sharded paths monomorphized with their audit seam on, where
    /// workers log `(from, to, message)` triples that are replayed through
    /// the auditor in deterministic shard order. The built-in
    /// instrumentation fields of the report are `None` here.
    ///
    /// # Panics
    ///
    /// Panics on the first violation when `audit.deny` is set, and on the
    /// engine's own send-validation failures like [`SyncSimulator::run`].
    pub fn run_audited<A, F>(
        &self,
        config: SyncConfig,
        audit: &AuditConfig,
        make: F,
    ) -> (ExecutionReport, Vec<Violation>)
    where
        A: NodeAlgorithm + Send,
        F: FnMut(NodeInit<'_>) -> A,
    {
        let mut auditor = Auditor::new(self.graph, *audit);
        let threads = config.resolved_threads();
        let shards = config.resolved_shards();
        let report = 'run: {
            if shards > 0 {
                // Same sharded-view resolution as `run_observed`.
                let built;
                let sharded = match self.sharded {
                    Some(pre) => (pre.num_shards() > 1).then_some(pre),
                    None => {
                        let plan = ShardPlan::degree_balanced(self.graph, shards);
                        if plan.num_shards() > 1 {
                            built = ShardedGraph::with_plan(self.graph, plan);
                            Some(&built)
                        } else {
                            None
                        }
                    }
                };
                if let Some(sharded) = sharded {
                    if threads > 1 {
                        break 'run self.run_sharded_parallel::<_, _, true>(
                            config,
                            make,
                            sharded,
                            threads,
                            Some(&mut auditor),
                        );
                    }
                    break 'run self.run_sequential::<_, _, _, true>(
                        config,
                        make,
                        &mut auditor,
                        Some(sharded),
                    );
                }
            }
            if threads > 1 {
                self.run_parallel::<_, _, true>(config, make, threads, Some(&mut auditor))
            } else {
                self.run_sequential::<_, _, _, false>(config, make, &mut auditor, None)
            }
        };
        (report, auditor.finish())
    }

    /// Runs like [`SyncSimulator::run`] with a caller-supplied
    /// [`RoundObserver`] receiving every message and round boundary.
    ///
    /// The built-in instrumentation fields of the returned
    /// [`ExecutionReport`] (`per_edge_messages`, `utilized_edges`, `trace`)
    /// are `None` here — the observer owns whatever it recorded. An *active*
    /// observer pins the run to the sequential loop (message callbacks are
    /// ordered); the report is bit-identical either way.
    pub fn run_observed<A, F, O>(
        &self,
        config: SyncConfig,
        make: F,
        observer: &mut O,
    ) -> ExecutionReport
    where
        A: NodeAlgorithm + Send,
        F: FnMut(NodeInit<'_>) -> A,
        O: RoundObserver,
    {
        let threads = config.resolved_threads();
        let shards = config.resolved_shards();
        if shards > 0 {
            // Sharded stepping: the adjacency is only touched through
            // per-shard local CSR slices. The configuration is the gate
            // (`shards == 0` steps unsharded even with an attachment); when
            // it engages, a prebuilt sharded graph (attached via
            // `with_sharded_graph`) is reused as-is and without one the
            // shard slices and ghost tables are built here, once per `run`
            // call. Single-shard plans are the *identity*
            // partition — the one shard's local CSR slice is the global
            // adjacency verbatim (start 0, no ghosts) — so they fall
            // through to the unsharded loops below, which already step
            // them optimally: sharding only costs anything from two shards
            // up, where it buys frontier isolation.
            let built;
            let sharded = match self.sharded {
                Some(pre) => (pre.num_shards() > 1).then_some(pre),
                None => {
                    let plan = ShardPlan::degree_balanced(self.graph, shards);
                    if plan.num_shards() > 1 {
                        built = ShardedGraph::with_plan(self.graph, plan);
                        Some(&built)
                    } else {
                        None
                    }
                }
            };
            if let Some(sharded) = sharded {
                // Multi-threaded uninstrumented runs take the
                // frontier-buffer loop (one worker per shard); everything
                // else walks the shards in order on the sequential loop.
                // Reports are bit-identical either way.
                if !O::ACTIVE && threads > 1 {
                    return self.run_sharded_parallel::<_, _, false>(
                        config, make, sharded, threads, None,
                    );
                }
                return self.run_sequential::<_, _, _, true>(config, make, observer, Some(sharded));
            }
        }
        if !O::ACTIVE && threads > 1 {
            self.run_parallel::<_, _, false>(config, make, threads, None)
        } else {
            self.run_sequential::<_, _, _, false>(config, make, observer, None)
        }
    }

    /// The sequential round loop (also the only loop observers ever see).
    /// With `SHARDED` (and the matching `sharded` graph) set, every
    /// activation resolves its neighbour list from its shard's local CSR
    /// slice (the shards are walked in ascending order, so one cursor tracks
    /// the owning shard); delivery is unchanged, so the report is
    /// bit-identical to an unsharded run. Shardedness is a compile-time
    /// parameter so the unsharded fast path carries no dispatch branches.
    fn run_sequential<A, F, O, const SHARDED: bool>(
        &self,
        config: SyncConfig,
        make: F,
        observer: &mut O,
        sharded: Option<&ShardedGraph>,
    ) -> ExecutionReport
    where
        A: NodeAlgorithm,
        F: FnMut(NodeInit<'_>) -> A,
        O: RoundObserver,
    {
        debug_assert_eq!(SHARDED, sharded.is_some());
        let n = self.graph.num_nodes();
        let mut runtime = NodeRuntime::new(self.graph, self.ids, self.level, make);
        let mut arena = MessageArena::new(n);
        let mut staging = DeliveryBuffer::new(n);

        let mut messages: u64 = 0;
        let mut max_bits: u32 = 0;
        let mut rounds: u64 = 0;
        let mut completed = false;

        // The loop is event-driven: a round only steps its *active* nodes —
        // this round's message receivers plus every node that is not done.
        // The `NodeAlgorithm::is_done` contract makes skipping the rest
        // sound (a done node is only re-invoked when messages arrive), and
        // round 0 activates everyone for initialisation. Per-round cost is
        // O(active + messages), independent of the node count.
        let mut active: Vec<u32> = (0..n as u32).collect();
        let mut active_all = true;
        let mut undone: Vec<u32> = Vec::new();
        let mut receivers: Vec<u32> = Vec::new();
        let mut done = runtime.done_flags();
        let mut undone_count = done.iter().filter(|&&d| !d).count();
        // Sharded stepping state: the reused row-translation buffer.
        let mut scratch: Vec<NodeId> = Vec::new();

        loop {
            if rounds > 0 && arena.len() == 0 && undone_count == 0 {
                completed = true;
                break;
            }
            if rounds >= config.max_rounds {
                break;
            }

            // Pick the delivery layout for this round's traffic before any
            // message is staged (see the engine docs: both layouts yield
            // identical inboxes, so this is purely a throughput knob). When
            // the active list is known to be every node the density check
            // collapses to the O(1) locality gate.
            staging.set_dense(if active_all {
                runtime.dense_full()
            } else {
                runtime.dense_round(&active)
            });

            undone.clear();
            // When every node is being stepped anyway, defer the undone
            // list: a full all-to-all flip never reads it, and a partial
            // flip can afford one O(n) reconstruction scan (the round was
            // already Ω(n)). Sparse rounds keep the incremental push.
            let defer_undone = active_all;
            // Activation order is ascending, so when sharding is on a single
            // forward cursor finds each node's owning shard.
            let mut shard_idx = 0usize;
            let mut step_one = |i: usize| {
                let mut sink = |from: NodeId, to: NodeId, msg: Message| {
                    messages += 1;
                    if O::ACTIVE {
                        let edge = self
                            .graph
                            .edge_between(from, to)
                            .expect("send target verified to be a neighbour");
                        observer.on_message(from, to, edge, &msg);
                    }
                    staging.stage(to, msg);
                };
                let now_done = if SHARDED {
                    let sg = sharded.expect("SHARDED implies a sharded graph");
                    while i >= sg.plan().range(shard_idx).1 as usize {
                        shard_idx += 1;
                    }
                    runtime.step_sharded(
                        sg.shard(shard_idx),
                        i,
                        rounds,
                        arena.inbox(i),
                        config.message_bit_limit,
                        &mut max_bits,
                        &mut scratch,
                        &mut sink,
                    )
                } else {
                    runtime.step(
                        i,
                        rounds,
                        arena.inbox(i),
                        config.message_bit_limit,
                        &mut max_bits,
                        &mut sink,
                    )
                };
                if now_done != done[i] {
                    done[i] = now_done;
                    if now_done {
                        undone_count -= 1;
                    } else {
                        undone_count += 1;
                    }
                }
                if !now_done && !defer_undone {
                    // Activation order is ascending, so `undone` stays
                    // sorted.
                    undone.push(i as u32);
                }
            };
            if active_all {
                // The active list is the identity: iterate it implicitly.
                for i in 0..n {
                    step_one(i);
                }
            } else {
                for &iu in &active {
                    step_one(iu as usize);
                }
            }

            if O::ACTIVE {
                observer.on_round_end(rounds);
            }
            active_all = if staging.flip(&mut arena, &mut receivers) {
                // Full all-to-all delivery: next round activates everyone,
                // no receiver list or merge required.
                true
            } else {
                if defer_undone && undone_count > 0 {
                    undone.extend(
                        done.iter()
                            .enumerate()
                            .filter(|&(_, &d)| !d)
                            .map(|(i, _)| i as u32),
                    );
                }
                next_active(&mut receivers, &undone, &mut active, n)
            };
            rounds += 1;
        }

        ExecutionReport {
            completed,
            rounds,
            messages,
            max_message_bits: max_bits,
            outputs: runtime.outputs(),
            per_edge_messages: None,
            utilized_edges: None,
            trace: None,
        }
    }

    /// The multi-core round loop: degree-balanced contiguous shards of the
    /// active list, thread-local staging, deterministic merge. With `AUDIT`
    /// set (and the matching `auditor`), every worker additionally logs its
    /// `(from, to, message)` sends; the main thread replays the logs in
    /// shard order through the auditor, records each shard's write window
    /// and checks the flipped arena — zero cost when off, exactly like the
    /// fault-injection seam.
    fn run_parallel<A, F, const AUDIT: bool>(
        &self,
        config: SyncConfig,
        make: F,
        threads: usize,
        mut auditor: Option<&mut Auditor<'_>>,
    ) -> ExecutionReport
    where
        A: NodeAlgorithm + Send,
        F: FnMut(NodeInit<'_>) -> A,
    {
        debug_assert_eq!(AUDIT, auditor.is_some());
        let n = self.graph.num_nodes();
        let mut runtime = NodeRuntime::new(self.graph, self.ids, self.level, make);
        let mut arena = MessageArena::new(n);
        let mut staging = DeliveryBuffer::new(n);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("vendored thread pool cannot fail to build");

        let mut messages: u64 = 0;
        let mut max_bits: u32 = 0;
        let mut rounds: u64 = 0;
        let mut completed = false;

        let mut active: Vec<u32> = (0..n as u32).collect();
        let mut undone: Vec<u32> = Vec::new();
        let mut receivers: Vec<u32> = Vec::new();
        let mut done = runtime.done_flags();
        let mut undone_count = done.iter().filter(|&&d| !d).count();

        // Per-shard round state, reused across rounds: staging buffers
        // (merged by `flip_shards`) and undone lists (concatenated — shard
        // order preserves ascending node order). Sized for the maximum shard
        // count: the active list is oversubscribed into up to
        // `SHARD_OVERSUBSCRIPTION` shards per thread so the pool's chunk
        // claiming can rebalance skewed shards mid-round.
        let max_shards = threads * SHARD_OVERSUBSCRIPTION;
        let mut shard_staged: Vec<Vec<(u32, Message)>> =
            (0..max_shards).map(|_| Vec::new()).collect();
        let mut shard_undone: Vec<Vec<u32>> = (0..max_shards).map(|_| Vec::new()).collect();
        // Audit send logs (empty vectors — allocation-free — when off).
        let mut shard_sent: Vec<Vec<(NodeId, NodeId, Message)>> =
            (0..max_shards).map(|_| Vec::new()).collect();

        loop {
            if rounds > 0 && arena.len() == 0 && undone_count == 0 {
                completed = true;
                break;
            }
            if rounds >= config.max_rounds {
                break;
            }

            undone.clear();
            let mut shards_used = 0usize;
            if !active.is_empty() {
                let bounds = plan_shards(&runtime, &active, max_shards);
                shards_used = bounds.len();
                let node_bounds: Vec<(usize, usize)> = bounds
                    .iter()
                    .map(|&(lo, hi)| (active[lo] as usize, active[hi - 1] as usize + 1))
                    .collect();
                let shards = runtime.shard_views(&node_bounds);
                let done_slices = split_ranges_mut(&mut done, &node_bounds);
                let mut tasks: Vec<ShardTask<'_, '_, A>> = shards
                    .into_iter()
                    .zip(&bounds)
                    .zip(shard_staged.iter_mut())
                    .zip(shard_undone.iter_mut())
                    .zip(shard_sent.iter_mut())
                    .zip(done_slices)
                    .map(
                        |(((((shard, &(lo, hi)), staged), undone_buf), sent), done_slice)| {
                            ShardTask {
                                shard,
                                active_slice: &active[lo..hi],
                                base: active[lo] as usize,
                                staged,
                                undone_buf,
                                sent,
                                done_slice,
                                outcome: (0, 0, 0),
                            }
                        },
                    )
                    .collect();

                if tasks.len() == 1 {
                    // Small round: one shard, stepped inline on the caller
                    // thread through the exact same path the workers run.
                    run_shard_task::<_, AUDIT>(
                        &mut tasks[0],
                        rounds,
                        &arena,
                        config.message_bit_limit,
                    );
                } else {
                    // Oversubscribed shards, dynamically claimed: the pool
                    // cuts the task list into single-task chunks and its
                    // workers claim them through one atomic cursor, so a
                    // heavy shard no longer stalls the round (ROADMAP
                    // "work-stealing inside rounds").
                    let arena_ref = &arena;
                    let bit_limit = config.message_bit_limit;
                    pool.par_chunks_mut(&mut tasks, |_, chunk| {
                        for task in chunk {
                            run_shard_task::<_, AUDIT>(task, rounds, arena_ref, bit_limit);
                        }
                    });
                }

                let mut pools = Vec::with_capacity(tasks.len());
                for (t, task) in tasks.into_iter().enumerate() {
                    pools.push(task.shard.into_pool());
                    let (shard_messages, shard_max_bits, undone_delta) = task.outcome;
                    messages += shard_messages;
                    max_bits = max_bits.max(shard_max_bits);
                    undone_count = (undone_count as i64 + undone_delta) as usize;
                    undone.extend_from_slice(task.undone_buf);
                    if AUDIT {
                        // Replay this shard's send log in shard order — the
                        // deterministic merge order — with shard provenance,
                        // and register its write window.
                        let aud = auditor.as_deref_mut().expect("AUDIT implies an auditor");
                        aud.set_shard(Some(t));
                        let (wlo, whi) = node_bounds[t];
                        aud.record_window(t, wlo, whi);
                        for &(from, to, msg) in task.sent.iter() {
                            aud.on_send(from, to, &msg);
                        }
                        task.sent.clear();
                    }
                }
                runtime.restore_pools(pools);
            }

            staging.flip_shards(&mut shard_staged[..shards_used], &mut arena, &mut receivers);
            if AUDIT {
                let aud = auditor.as_deref_mut().expect("AUDIT implies an auditor");
                aud.check_arena(&arena);
                aud.end_round();
            }
            next_active(&mut receivers, &undone, &mut active, n);
            rounds += 1;
        }

        ExecutionReport {
            completed,
            rounds,
            messages,
            max_message_bits: max_bits,
            outputs: runtime.outputs(),
            per_edge_messages: None,
            utilized_edges: None,
            trace: None,
        }
    }

    /// The sharded multi-core round loop: one worker per graph shard, each
    /// stepping its shard's window of the active list against the shard's
    /// **local CSR slice**. Outgoing messages are routed into the round's
    /// `shards × shards` **frontier matrix** (row = source shard, column =
    /// destination shard); [`DeliveryBuffer::flip_shards`] then merges the
    /// matrix in source-shard-major order with one deterministic counting
    /// sort. Shards are contiguous ranges of the node space and each window
    /// is stepped in ascending order, so the merged arena — and therefore
    /// the report — is bit-identical to the unsharded engine at any
    /// shard/thread combination.
    fn run_sharded_parallel<A, F, const AUDIT: bool>(
        &self,
        config: SyncConfig,
        make: F,
        sharded: &ShardedGraph,
        threads: usize,
        mut auditor: Option<&mut Auditor<'_>>,
    ) -> ExecutionReport
    where
        A: NodeAlgorithm + Send,
        F: FnMut(NodeInit<'_>) -> A,
    {
        debug_assert_eq!(AUDIT, auditor.is_some());
        let n = self.graph.num_nodes();
        let s = sharded.num_shards();
        let plan = sharded.plan();
        let mut runtime = NodeRuntime::new(self.graph, self.ids, self.level, make);
        let mut arena = MessageArena::new(n);
        let mut staging = DeliveryBuffer::new(n);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("vendored thread pool cannot fail to build");

        let mut messages: u64 = 0;
        let mut max_bits: u32 = 0;
        let mut rounds: u64 = 0;
        let mut completed = false;

        let mut active: Vec<u32> = (0..n as u32).collect();
        let mut undone: Vec<u32> = Vec::new();
        let mut receivers: Vec<u32> = Vec::new();
        let mut done = runtime.done_flags();
        let mut undone_count = done.iter().filter(|&&d| !d).count();

        let node_ranges: Vec<(usize, usize)> = (0..s)
            .map(|k| {
                let (lo, hi) = plan.range(k);
                (lo as usize, hi as usize)
            })
            .collect();
        // Per-shard round state, reused across rounds: the frontier matrix
        // (s rows of s destination buffers), per-shard undone lists (their
        // shard-order concatenation is the ascending undone list) and the
        // per-shard row-translation scratch buffers.
        let mut frontiers: Vec<Vec<(u32, Message)>> = (0..s * s).map(|_| Vec::new()).collect();
        let mut shard_undone: Vec<Vec<u32>> = (0..s).map(|_| Vec::new()).collect();
        let mut scratches: Vec<Vec<NodeId>> = (0..s).map(|_| Vec::new()).collect();
        // Audit send logs (empty vectors — allocation-free — when off).
        let mut shard_sent: Vec<Vec<(NodeId, NodeId, Message)>> =
            (0..s).map(|_| Vec::new()).collect();

        loop {
            if rounds > 0 && arena.len() == 0 && undone_count == 0 {
                completed = true;
                break;
            }
            if rounds >= config.max_rounds {
                break;
            }

            undone.clear();
            if !active.is_empty() {
                // Each shard's window of the ascending active list.
                let mut windows = Vec::with_capacity(s);
                let mut lo = 0usize;
                for k in 0..s {
                    let end = plan.range(k).1;
                    let hi = lo + active[lo..].partition_point(|&a| a < end);
                    windows.push((lo, hi));
                    lo = hi;
                }
                let views = runtime.shard_slice_views(sharded);
                let done_slices = split_ranges_mut(&mut done, &node_ranges);
                let mut tasks: Vec<ShardedTask<'_, '_, '_, '_, A>> = views
                    .into_iter()
                    .zip(&windows)
                    .zip(frontiers.chunks_mut(s))
                    .zip(shard_undone.iter_mut())
                    .zip(scratches.iter_mut())
                    .zip(shard_sent.iter_mut())
                    .zip(done_slices)
                    .map(
                        |((((((view, &(wlo, whi)), frontier_row), undone_buf), scratch), sent), ds)| {
                            ShardedTask {
                                view,
                                active_slice: &active[wlo..whi],
                                frontier_row,
                                undone_buf,
                                scratch,
                                sent,
                                done_slice: ds,
                                outcome: (0, 0, 0),
                            }
                        },
                    )
                    .collect();

                if active.len() < MIN_ACTIVE_PER_SHARD {
                    // Small round: step the shards inline on the caller
                    // thread — same path, no fork-join.
                    for task in &mut tasks {
                        run_sharded_task::<_, AUDIT>(
                            task,
                            rounds,
                            &arena,
                            config.message_bit_limit,
                            plan,
                        );
                    }
                } else {
                    let arena_ref = &arena;
                    let bit_limit = config.message_bit_limit;
                    pool.par_chunks_mut(&mut tasks, |_, chunk| {
                        for task in chunk {
                            run_sharded_task::<_, AUDIT>(task, rounds, arena_ref, bit_limit, plan);
                        }
                    });
                }

                let mut pools = Vec::with_capacity(tasks.len());
                for (t, task) in tasks.into_iter().enumerate() {
                    pools.push(task.view.into_pool());
                    let (shard_messages, shard_max_bits, undone_delta) = task.outcome;
                    messages += shard_messages;
                    max_bits = max_bits.max(shard_max_bits);
                    undone_count = (undone_count as i64 + undone_delta) as usize;
                    undone.extend_from_slice(task.undone_buf);
                    if AUDIT {
                        // Replay in source-shard order — the frontier
                        // matrix's merge order — with shard provenance; the
                        // write window is the shard's node range.
                        let aud = auditor.as_deref_mut().expect("AUDIT implies an auditor");
                        aud.set_shard(Some(t));
                        let (wlo, whi) = node_ranges[t];
                        aud.record_window(t, wlo, whi);
                        for &(from, to, msg) in task.sent.iter() {
                            aud.on_send(from, to, &msg);
                        }
                        task.sent.clear();
                    }
                }
                runtime.restore_pools(pools);
            }

            staging.flip_shards(&mut frontiers, &mut arena, &mut receivers);
            if AUDIT {
                let aud = auditor.as_deref_mut().expect("AUDIT implies an auditor");
                aud.check_arena(&arena);
                aud.end_round();
            }
            next_active(&mut receivers, &undone, &mut active, n);
            rounds += 1;
        }

        ExecutionReport {
            completed,
            rounds,
            messages,
            max_message_bits: max_bits,
            outputs: runtime.outputs(),
            per_edge_messages: None,
            utilized_edges: None,
            trace: None,
        }
    }
}

/// One claimable unit of a round: a [`ShardView`] over a contiguous window
/// of the active list plus that shard's staging buffer, undone list, done
/// window and outcome accumulator. The parallel loop builds one task per
/// shard and lets the pool's workers claim them dynamically.
struct ShardTask<'a, 'rt, A> {
    shard: ShardView<'rt, 'a, A>,
    active_slice: &'a [u32],
    base: usize,
    staged: &'a mut Vec<(u32, Message)>,
    undone_buf: &'a mut Vec<u32>,
    /// Audit send log `(from, to, message)` — only written under `AUDIT`.
    sent: &'a mut Vec<(NodeId, NodeId, Message)>,
    done_slice: &'a mut [bool],
    /// `(messages, max_bits, undone_count delta)`.
    outcome: (u64, u32, i64),
}

/// Steps one [`ShardTask`] — shared by the inline single-shard path and the
/// claimed parallel path so the two cannot drift.
fn run_shard_task<A: NodeAlgorithm, const AUDIT: bool>(
    task: &mut ShardTask<'_, '_, A>,
    round: u64,
    arena: &MessageArena,
    bit_limit: u32,
) {
    step_shard::<_, AUDIT>(
        &mut task.shard,
        task.active_slice,
        task.base,
        round,
        arena,
        bit_limit,
        task.staged,
        task.undone_buf,
        task.sent,
        task.done_slice,
        &mut task.outcome,
    );
}

/// One thread's share of a round: steps `active_slice` (a contiguous window
/// of the round's ascending active list) through `shard`, staging outgoing
/// messages locally and recording done-flag transitions in the shard's
/// window of the `done` array.
#[allow(clippy::too_many_arguments)]
fn step_shard<A: NodeAlgorithm, const AUDIT: bool>(
    shard: &mut ShardView<'_, '_, A>,
    active_slice: &[u32],
    base: usize,
    round: u64,
    arena: &MessageArena,
    bit_limit: u32,
    staged: &mut Vec<(u32, Message)>,
    undone_buf: &mut Vec<u32>,
    sent: &mut Vec<(NodeId, NodeId, Message)>,
    done_slice: &mut [bool],
    outcome: &mut (u64, u32, i64),
) {
    let mut local_messages = 0u64;
    let mut local_max_bits = 0u32;
    let mut undone_delta = 0i64;
    undone_buf.clear();
    for &iu in active_slice {
        let i = iu as usize;
        let now_done = shard.step(
            i,
            round,
            arena.inbox(i),
            bit_limit,
            &mut local_max_bits,
            &mut |from, to, msg| {
                local_messages += 1;
                if AUDIT {
                    sent.push((from, to, msg));
                }
                staged.push((to.0, msg));
            },
        );
        let flag = &mut done_slice[i - base];
        if now_done != *flag {
            *flag = now_done;
            undone_delta += if now_done { -1 } else { 1 };
        }
        if !now_done {
            undone_buf.push(iu);
        }
    }
    *outcome = (local_messages, local_max_bits, undone_delta);
}

/// One claimable unit of a *sharded* round: a [`ShardSliceView`] over one
/// graph shard's automata plus that shard's active-list window, frontier
/// row (one staging buffer per destination shard), undone list, done window,
/// row-translation scratch and outcome accumulator.
struct ShardedTask<'a, 'rt, 'g, 'sg, A> {
    view: ShardSliceView<'rt, 'g, 'sg, A>,
    active_slice: &'a [u32],
    /// This source shard's row of the frontier matrix: `frontier_row[d]`
    /// stages the messages bound for destination shard `d`.
    frontier_row: &'a mut [Vec<(u32, Message)>],
    undone_buf: &'a mut Vec<u32>,
    scratch: &'a mut Vec<NodeId>,
    /// Audit send log `(from, to, message)` — only written under `AUDIT`.
    sent: &'a mut Vec<(NodeId, NodeId, Message)>,
    done_slice: &'a mut [bool],
    /// `(messages, max_bits, undone_count delta)`.
    outcome: (u64, u32, i64),
}

/// Steps one [`ShardedTask`]: the shard's window of the round's ascending
/// active list runs through the shard-local view, and every outgoing message
/// is routed to its destination shard's frontier buffer.
fn run_sharded_task<A: NodeAlgorithm, const AUDIT: bool>(
    task: &mut ShardedTask<'_, '_, '_, '_, A>,
    round: u64,
    arena: &MessageArena,
    bit_limit: u32,
    plan: &ShardPlan,
) {
    let ShardedTask {
        view,
        active_slice,
        frontier_row,
        undone_buf,
        scratch,
        sent,
        done_slice,
        outcome,
    } = task;
    let base = view.base();
    let mut local_messages = 0u64;
    let mut local_max_bits = 0u32;
    let mut undone_delta = 0i64;
    undone_buf.clear();
    for &iu in *active_slice {
        let i = iu as usize;
        let now_done = view.step(
            i,
            round,
            arena.inbox(i),
            bit_limit,
            &mut local_max_bits,
            scratch,
            &mut |from, to, msg| {
                local_messages += 1;
                if AUDIT {
                    sent.push((from, to, msg));
                }
                frontier_row[plan.shard_of(to)].push((to.0, msg));
            },
        );
        let flag = &mut done_slice[i - base];
        if now_done != *flag {
            *flag = now_done;
            undone_delta += if now_done { -1 } else { 1 };
        }
        if !now_done {
            undone_buf.push(iu);
        }
    }
    *outcome = (local_messages, local_max_bits, undone_delta);
}

/// Cuts the active list into at most `shard_limit` contiguous shards with
/// near-equal degree sums (stepping cost is dominated by inbox/outbox sizes,
/// both bounded by degree), through the same
/// [`balanced_cuts`](symbreak_graphs::sharded::balanced_cuts) quantile walk
/// that plans [`ShardedGraph`] partitions. The parallel loop passes
/// `threads · SHARD_OVERSUBSCRIPTION` so dynamic claiming has spare shards
/// to rebalance with. Rounds too small to amortize a fork-join
/// ([`MIN_ACTIVE_PER_SHARD`]) get one shard. Weight = degree + 1: the
/// constant covers per-activation overhead so isolated low-degree nodes
/// still spread out.
fn plan_shards<A: NodeAlgorithm>(
    runtime: &NodeRuntime<'_, A>,
    active: &[u32],
    shard_limit: usize,
) -> Vec<(usize, usize)> {
    let max_shards = shard_limit.min(active.len() / MIN_ACTIVE_PER_SHARD).max(1);
    balanced_cuts(active.len(), max_shards, |idx| {
        runtime.degree_of(active[idx] as usize) as u64 + 1
    })
}

/// Computes the next round's active set: `receivers ∪ undone`. When every
/// node received a message (all-to-all rounds) the union is trivially the
/// receiver list, which is taken over wholesale in O(1) instead of merged.
/// Returns whether the new active set provably covers every node.
pub(crate) fn next_active(
    receivers: &mut Vec<u32>,
    undone: &[u32],
    active: &mut Vec<u32>,
    n: usize,
) -> bool {
    if receivers.len() == n {
        std::mem::swap(receivers, active);
        true
    } else {
        merge_sorted_into(receivers, undone, active);
        active.len() == n
    }
}

/// Merges two sorted, duplicate-free node lists into `out` (sorted,
/// deduplicated) — the next round's active set.
fn merge_sorted_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// The built-in observer behind [`SyncConfig`]'s instrumentation flags.
struct Instrumentation<'g> {
    graph: &'g Graph,
    ids: &'g IdAssignment,
    per_edge: Option<Vec<u64>>,
    utilized: Option<Vec<bool>>,
    trace: Option<Trace>,
    round_buf: Vec<TraceMessage>,
}

impl<'g> Instrumentation<'g> {
    fn new(graph: &'g Graph, ids: &'g IdAssignment, config: SyncConfig) -> Self {
        Instrumentation {
            graph,
            ids,
            per_edge: config.track_per_edge.then(|| vec![0; graph.num_edges()]),
            utilized: config
                .track_utilization
                .then(|| vec![false; graph.num_edges()]),
            trace: config.record_trace.then(Trace::new),
            round_buf: Vec::new(),
        }
    }
}

impl RoundObserver for Instrumentation<'_> {
    fn on_message(&mut self, from: NodeId, to: NodeId, edge: EdgeId, message: &Message) {
        if let Some(pe) = self.per_edge.as_mut() {
            pe[edge.index()] += 1;
        }
        if let Some(util) = self.utilized.as_mut() {
            mark_utilized(self.graph, self.ids, util, from, to, edge, message);
        }
        if self.trace.is_some() {
            self.round_buf.push(TraceMessage {
                from,
                to,
                message: *message,
            });
        }
    }

    fn on_round_end(&mut self, _round: u64) {
        if let Some(t) = self.trace.as_mut() {
            t.push_round(std::mem::take(&mut self.round_buf));
        }
    }
}

/// Marks edges utilized by one message per Definition 2.3:
/// (i) the edge the message travels on; (ii) for every ID field `φ(w)`
/// contained in the message, the edges `{sender, w}` and `{receiver, w}`
/// if they exist (sender sends the ID of its neighbour `w`; receiver
/// receives the ID of its neighbour `w`).
pub(crate) fn mark_utilized(
    graph: &Graph,
    ids: &IdAssignment,
    utilized: &mut [bool],
    from: NodeId,
    to: NodeId,
    edge: EdgeId,
    msg: &Message,
) {
    utilized[edge.index()] = true;
    for &id in msg.ids() {
        if let Some(w) = ids.node_with_id(id) {
            if let Some(e) = graph.edge_between(from, w) {
                utilized[e.index()] = true;
            }
            if let Some(e) = graph.edge_between(to, w) {
                utilized[e.index()] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoundContext;
    use symbreak_graphs::generators;

    /// Every node sends its own ID to every neighbour in round 0, then stops.
    struct Announce {
        done: bool,
    }

    impl NodeAlgorithm for Announce {
        fn on_round(&mut self, ctx: &mut RoundContext<'_>, _inbox: &[Message]) {
            if ctx.round() == 0 {
                let id = ctx.own_id();
                ctx.broadcast(&Message::tagged(0).with_id(id));
            }
            self.done = true;
        }
        fn is_done(&self) -> bool {
            self.done
        }
        fn output(&self) -> Option<u64> {
            Some(1)
        }
    }

    /// A node algorithm that never sends and is immediately done.
    struct Silent;
    impl NodeAlgorithm for Silent {
        fn on_round(&mut self, _ctx: &mut RoundContext<'_>, _inbox: &[Message]) {}
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn announce_counts_messages_and_rounds() {
        let g = generators::clique(5);
        let ids = IdAssignment::identity(5);
        let sim = SyncSimulator::new(&g, &ids, KtLevel::KT1);
        let report = sim.run(SyncConfig::default(), |_| Announce { done: false });
        assert!(report.completed);
        // Each of 5 nodes broadcasts to 4 neighbours in round 0.
        assert_eq!(report.messages, 20);
        // Round 0 sends, round 1 delivers (nodes already done), then halt.
        assert_eq!(report.rounds, 2);
        assert_eq!(report.outputs, vec![Some(1); 5]);
    }

    #[test]
    fn silent_run_terminates_after_one_round() {
        let g = generators::path(3);
        let ids = IdAssignment::identity(3);
        let sim = SyncSimulator::new(&g, &ids, KtLevel::KT0);
        let report = sim.run(SyncConfig::default(), |_| Silent);
        assert!(report.completed);
        assert_eq!(report.messages, 0);
        assert_eq!(report.rounds, 1);
        assert_eq!(report.max_message_bits, 0);
    }

    #[test]
    fn round_limit_reported_as_incomplete() {
        struct Chatter;
        impl NodeAlgorithm for Chatter {
            fn on_round(&mut self, ctx: &mut RoundContext<'_>, _inbox: &[Message]) {
                let msg = Message::tagged(1);
                ctx.broadcast(&msg);
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = generators::cycle(4);
        let ids = IdAssignment::identity(4);
        let sim = SyncSimulator::new(&g, &ids, KtLevel::KT1);
        let report = sim.run(SyncConfig::default().with_max_rounds(10), |_| Chatter);
        assert!(!report.completed);
        assert_eq!(report.rounds, 10);
        assert_eq!(report.messages, 4 * 2 * 10);
    }

    #[test]
    fn utilization_marks_message_edges_and_id_mentions() {
        // Path 0-1-2: node 1 sends node 2's ID to node 0. The message edge
        // {0,1} is utilized and — because node 0 receives the ID of node 2 —
        // the edge {0,2} would be utilized if it existed (it does not), and
        // the edge {1,2} is utilized because the sender 1 sends the ID of its
        // neighbour 2.
        struct Gossip;
        impl NodeAlgorithm for Gossip {
            fn on_round(&mut self, ctx: &mut RoundContext<'_>, _inbox: &[Message]) {
                if ctx.round() == 0 && ctx.node() == NodeId(1) {
                    let id2 = ctx.knowledge().id_of(NodeId(2));
                    ctx.send(NodeId(0), Message::tagged(0).with_id(id2));
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(3);
        let ids = IdAssignment::from_vec(vec![10, 20, 30]);
        let sim = SyncSimulator::new(&g, &ids, KtLevel::KT1);
        let report = sim.run(SyncConfig::instrumented(), |_| Gossip);
        assert!(report.completed);
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e12 = g.edge_between(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(report.is_utilized(e01), Some(true));
        assert_eq!(report.is_utilized(e12), Some(true));
        assert_eq!(report.utilized_edge_count(), Some(2));
        // Per-edge counters: exactly one message, on edge {0,1}.
        let per_edge = report.per_edge_messages.unwrap();
        assert_eq!(per_edge[e01.index()], 1);
        assert_eq!(per_edge[e12.index()], 0);
        // Trace recorded one message in round 0.
        let trace = report.trace.unwrap();
        assert_eq!(trace.num_messages(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeding the CONGEST budget")]
    fn oversized_messages_panic() {
        struct Oversize;
        impl NodeAlgorithm for Oversize {
            fn on_round(&mut self, ctx: &mut RoundContext<'_>, _inbox: &[Message]) {
                if ctx.round() == 0 {
                    let msg = Message::tagged(0)
                        .with_id(1)
                        .with_id(2)
                        .with_value(3)
                        .with_value(4)
                        .with_value(5);
                    ctx.broadcast(&msg);
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(2);
        let ids = IdAssignment::identity(2);
        let sim = SyncSimulator::new(&g, &ids, KtLevel::KT1);
        let config = SyncConfig {
            message_bit_limit: 64,
            ..SyncConfig::default()
        };
        let _ = sim.run(config, |_| Oversize);
    }

    #[test]
    fn try_new_rejects_mismatched_ids() {
        let g = generators::path(3);
        let ids = IdAssignment::identity(2);
        let err = SyncSimulator::try_new(&g, &ids, KtLevel::KT1).unwrap_err();
        assert_eq!(
            err,
            SimError::IdAssignmentMismatch {
                graph_nodes: 3,
                id_nodes: 2
            }
        );
    }

    #[test]
    fn prebuilt_sharded_graph_is_reused_and_bit_identical() {
        let g = generators::cycle(64);
        let ids = IdAssignment::identity(64);
        let config = SyncConfig::default().with_threads(1).with_shards(4);
        let baseline =
            SyncSimulator::new(&g, &ids, KtLevel::KT1).run(config, |_| Announce { done: false });

        let prebuilt = config.prebuild_sharded(&g).expect("4 shards engage");
        let sim = SyncSimulator::new(&g, &ids, KtLevel::KT1).with_sharded_graph(&prebuilt);
        // Several runs on one simulator, all reusing the one prebuilt graph
        // (the no-rebuild guarantee itself is asserted by the isolated
        // `sharded_cache` regression suite in `symbreak-core`, where the
        // process-wide construction counter cannot race other tests).
        for _ in 0..3 {
            let report = sim.run(config, |_| Announce { done: false });
            assert_eq!(report, baseline);
        }
    }

    #[test]
    fn prebuild_sharded_encodes_the_engagement_rule() {
        let g = generators::cycle(8);
        // Identity-partition configs build nothing.
        assert!(SyncConfig::default()
            .with_shards(1)
            .prebuild_sharded(&g)
            .is_none());
        let sg = SyncConfig::default().with_shards(3).prebuild_sharded(&g);
        assert_eq!(sg.expect("3 shards engage").num_shards(), 3);
    }

    #[test]
    #[should_panic(expected = "different node count")]
    fn mismatched_prebuilt_sharded_graph_is_rejected() {
        let g = generators::cycle(8);
        let other = generators::cycle(9);
        let ids = IdAssignment::identity(8);
        let sg = ShardedGraph::build(&other, 2);
        let _ = SyncSimulator::new(&g, &ids, KtLevel::KT1).with_sharded_graph(&sg);
    }

    #[test]
    fn resolved_threads_prefers_explicit_setting() {
        assert_eq!(SyncConfig::default().with_threads(3).resolved_threads(), 3);
        assert!(SyncConfig::default().resolved_threads() >= 1);
    }

    #[test]
    fn plan_shards_covers_active_list_with_balanced_cuts() {
        let g = generators::cycle(512);
        let ids = IdAssignment::identity(512);
        let runtime = NodeRuntime::new(&g, &ids, KtLevel::KT1, |_| Silent);
        let active: Vec<u32> = (0..512).collect();
        let bounds = plan_shards(&runtime, &active, 4);
        assert_eq!(bounds.len(), 4);
        assert_eq!(bounds[0].0, 0);
        assert_eq!(bounds.last().unwrap().1, 512);
        for w in bounds.windows(2) {
            assert_eq!(w[0].1, w[1].0, "shards must be contiguous");
        }
        // Uniform degrees → near-equal shard sizes.
        for &(lo, hi) in &bounds {
            let len = hi - lo;
            assert!((96..=160).contains(&len), "unbalanced shard: {len}");
        }
        // Tiny rounds stay single-sharded.
        let small: Vec<u32> = (0..40).collect();
        assert_eq!(plan_shards(&runtime, &small, 4), vec![(0, 40)]);
    }

    #[test]
    fn dense_round_requires_a_sender_quorum() {
        // A lone hub covers half the directed edge slots by itself, but the
        // dense path's O(n) flip would break the O(active + messages) round
        // cost — only a quorum of active senders may trip the heuristic.
        let g = generators::star(512);
        let ids = IdAssignment::identity(512);
        let runtime = NodeRuntime::new(&g, &ids, KtLevel::KT1, |_| Silent);
        assert!(!runtime.dense_round(&[0]));
        let all: Vec<u32> = (0..512).collect();
        assert!(runtime.dense_round(&all));
        assert!(runtime.dense_full());
    }
}
