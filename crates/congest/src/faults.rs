//! Deterministic, seed-reproducible fault injection for the asynchronous
//! executor.
//!
//! The paper's asynchronous claims (Theorem 3.4, via Awerbuch's
//! α-synchronizer, Theorem A.5) are stated against an adversary that
//! controls message delays but delivers faithfully. A [`FaultPlan`] widens
//! the adversary along three axes:
//!
//! * **delay laws** ([`DelayLaw`]) — the benign uniform law of
//!   [`crate::async_sim::AsyncSimulator::run`], a fixed law, an *oblivious*
//!   adversary that fixes one delay per directed edge up front from a seed,
//!   a seeded slow/fast edge-class partition, and an *adaptive* adversary
//!   that watches the traffic frontier and maximally delays the busiest
//!   receivers;
//! * **channel faults** — per-edge or global message drop and duplication
//!   probabilities ([`EdgeProb`]) plus a reordering knob (extra delay
//!   jitter, [`FaultPlan::reorder`]) that breaks whatever FIFO-ness the
//!   delay law would otherwise leave intact;
//! * **node faults** ([`CrashFault`]) — crash at a scheduled time, with
//!   optional recovery that either resets the automaton to its initial
//!   state or retains the pre-crash state.
//!
//! Everything is deterministic given the caller's RNG seed and the plan:
//! both [`crate::async_sim::AsyncSimulator::run_with_faults`] and the
//! full-scan oracle
//! [`crate::reference::NaiveAsyncSimulator::run_with_faults`] draw the same
//! fault decisions in the same order, so the differential suite
//! (`tests/async_equivalence.rs`) covers faulty schedules too, and any run
//! can be replayed bit-exactly from its seed.
//!
//! The all-default plan is the *identity*: [`FaultPlan::is_identity`] routes
//! it onto the exact fault-free executor path, so wiring the seam in costs
//! the benign path nothing (the `sim_engine` bench gates this).

use rand::Rng;
use serde::{Deserialize, Serialize};
use symbreak_graphs::NodeId;

use crate::async_sim::AsyncConfig;

/// Environment variable selecting the base seed of fault-matrix scenario
/// runs (`tests/fault_matrix.rs`): a `u64`, combined with each cell's local
/// seed so the whole matrix can be replayed under a different randomness
/// universe without editing code.
pub const FAULT_SEED_ENV: &str = "CONGEST_FAULT_SEED";

/// Environment variable selecting which fault scenarios run: a
/// comma-separated list of scenario names (e.g. `"loss,crash"`). Unset or
/// empty means *all* scenarios.
pub const FAULT_SCENARIOS_ENV: &str = "CONGEST_FAULT_SCENARIOS";

/// The base seed for fault scenario runs: [`FAULT_SEED_ENV`] if set and
/// parseable as `u64`, otherwise `default`.
pub fn fault_seed_from_env(default: u64) -> u64 {
    match std::env::var(FAULT_SEED_ENV) {
        Ok(raw) => raw.trim().parse().unwrap_or(default),
        Err(_) => default,
    }
}

/// Whether the named scenario is enabled under [`FAULT_SCENARIOS_ENV`]:
/// `true` when the variable is unset/empty or the (trimmed,
/// case-insensitive) list contains `name`.
pub fn scenario_enabled(name: &str) -> bool {
    match std::env::var(FAULT_SCENARIOS_ENV) {
        Ok(raw) if !raw.trim().is_empty() => raw
            .split(',')
            .any(|s| s.trim().eq_ignore_ascii_case(name.trim())),
        _ => true,
    }
}

/// How message delivery delays are chosen, per message copy.
///
/// Every law produces delays in `1..=d` time units where `d` is the plan's
/// effective maximum delay ([`FaultPlan::max_effective_delay`]); the
/// executors size their delay wheels from that bound.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum DelayLaw {
    /// The benign law of the fault-free executor: uniform in
    /// `1..=max_delay`, drawn from the run RNG. This is the identity law —
    /// a plan using it (and no other fault) is routed onto the exact
    /// fault-free code path.
    #[default]
    Uniform,
    /// Every message takes exactly this many time units (clamped to ≥ 1).
    Fixed(u64),
    /// An oblivious adversary: each *directed edge* gets one delay in
    /// `1..=max_delay`, fixed up front as a hash of the seed and the edge,
    /// before any coin of the algorithm is seen.
    Oblivious {
        /// Seed of the per-edge delay assignment.
        seed: u64,
    },
    /// A seeded slow/fast partition of the directed edges: a `slow_fraction`
    /// of edges always take `max_delay`, the rest always take 1 — the
    /// classic "one slow link" adversary at `slow_fraction` generality.
    EdgeClasses {
        /// Seed of the edge classification.
        seed: u64,
        /// Fraction of directed edges classified slow, in `[0, 1]`.
        slow_fraction: f64,
    },
    /// An adaptive adversary observing the traffic frontier: a message to a
    /// receiver whose cumulative inbound traffic is above the network
    /// average takes `max_delay`; everything else is delivered at speed 1.
    /// Deterministic (no RNG draws) — the adversary's knowledge is exactly
    /// the executor's own dispatch history.
    Adaptive,
}

/// A global-or-per-edge probability, used for message drop and duplication.
///
/// The probability of a (directed) edge is the last matching override, or
/// the global default. All probabilities must lie in `[0, 1]`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EdgeProb {
    /// The global probability applied to every edge without an override.
    pub default: f64,
    /// Per-directed-edge `(from, to, p)` overrides.
    pub overrides: Vec<(NodeId, NodeId, f64)>,
}

impl EdgeProb {
    /// Probability 0 everywhere (the identity).
    pub fn never() -> Self {
        EdgeProb::default()
    }

    /// The same probability on every edge.
    pub fn uniform(p: f64) -> Self {
        EdgeProb {
            default: p,
            overrides: Vec::new(),
        }
    }

    /// Adds a per-directed-edge override.
    pub fn with_edge(mut self, from: NodeId, to: NodeId, p: f64) -> Self {
        self.overrides.push((from, to, p));
        self
    }

    /// The probability on directed edge `from → to`.
    pub fn at(&self, from: NodeId, to: NodeId) -> f64 {
        self.overrides
            .iter()
            .rev()
            .find(|&&(f, t, _)| f == from && t == to)
            .map(|&(_, _, p)| p)
            .unwrap_or(self.default)
    }

    /// Whether this probability is 0 on every edge.
    pub fn is_never(&self) -> bool {
        self.default == 0.0 && self.overrides.iter().all(|&(_, _, p)| p == 0.0)
    }

    fn validate(&self, what: &str) {
        assert!(
            (0.0..=1.0).contains(&self.default),
            "{what} default probability {} outside [0, 1]",
            self.default
        );
        for &(f, t, p) in &self.overrides {
            assert!(
                (0.0..=1.0).contains(&p),
                "{what} override on {f}->{t} probability {p} outside [0, 1]"
            );
        }
    }
}

/// What a crashed node's state looks like when it comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recovery {
    /// The automaton is rebuilt from the node factory and its local round
    /// counter restarts at 0 (a clean reboot losing all volatile state).
    Reset,
    /// The automaton resumes exactly where the crash left it (persistent
    /// state survived; only the downtime — and every message that arrived
    /// during it — is lost).
    Retain,
}

/// A scheduled node crash, with optional recovery.
///
/// From time `at` (inclusive) the node stops being activated and every
/// message arriving at it is discarded (counted as
/// [`FaultStats::crash_dropped`]). Messages it sent *before* crashing stay
/// in flight. With a recovery `(t, r)` the node rejoins at time `t > at`:
/// it is spontaneously activated that tick (with whatever messages arrive at
/// exactly `t`) and its state follows `r`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashFault {
    /// The crashing node.
    pub node: NodeId,
    /// Crash time (a node with `at = 0` never runs at all).
    pub at: u64,
    /// Optional `(time, mode)` recovery, with `time > at`.
    pub recovery: Option<(u64, Recovery)>,
}

/// A composable, deterministic fault scenario for the asynchronous
/// executors. See the [module docs](self) for the model.
///
/// `FaultPlan::default()` is the identity: uniform delays, no loss, no
/// duplication, no reordering jitter, no crashes — runs with it are
/// bit-identical to the fault-free
/// [`crate::async_sim::AsyncSimulator::run`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The delay law applied to every delivered copy.
    pub delay: DelayLaw,
    /// Per-edge / global message loss probability.
    pub drop: EdgeProb,
    /// Per-edge / global message duplication probability (a duplicated
    /// message is delivered twice, each copy with its own delay).
    pub duplicate: EdgeProb,
    /// Reordering jitter: with this probability a delivered copy takes an
    /// *extra* uniform `1..=max_delay` delay on top of its law delay,
    /// overtaking later traffic on the same edge.
    pub reorder: f64,
    /// Scheduled node crashes.
    pub crashes: Vec<CrashFault>,
}

impl FaultPlan {
    /// Replaces the delay law.
    pub fn with_delay(mut self, law: DelayLaw) -> Self {
        self.delay = law;
        self
    }

    /// Replaces the drop probability.
    pub fn with_drop(mut self, p: EdgeProb) -> Self {
        self.drop = p;
        self
    }

    /// Replaces the duplication probability.
    pub fn with_duplicate(mut self, p: EdgeProb) -> Self {
        self.duplicate = p;
        self
    }

    /// Sets the reordering jitter probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Adds a crash fault.
    pub fn with_crash(mut self, crash: CrashFault) -> Self {
        self.crashes.push(crash);
        self
    }

    /// Whether this plan injects nothing: uniform delays, zero drop and
    /// duplication everywhere, zero reorder jitter and no crashes. Identity
    /// plans are routed onto the exact fault-free executor path, so their
    /// reports are bit-identical to [`crate::async_sim::AsyncSimulator::run`]
    /// under the same seed.
    pub fn is_identity(&self) -> bool {
        self.delay == DelayLaw::Uniform
            && self.drop.is_never()
            && self.duplicate.is_never()
            && self.reorder == 0.0
            && self.crashes.is_empty()
    }

    /// The largest delay any copy can experience under this plan with
    /// `config`'s base `max_delay`: the law's bound, plus another
    /// `max_delay` when reorder jitter is enabled. The executors size their
    /// delay wheels as `max_effective_delay + 1` slots.
    pub fn max_effective_delay(&self, config: &AsyncConfig) -> u64 {
        let base = match self.delay {
            DelayLaw::Fixed(d) => d.max(1),
            _ => config.max_delay,
        };
        if self.reorder > 0.0 {
            base + config.max_delay
        } else {
            base
        }
    }

    /// Panics if the plan is malformed for an `n`-node run: probabilities
    /// outside `[0, 1]`, crash nodes out of range, or recoveries not after
    /// their crash.
    pub fn validate(&self, n: usize) {
        self.drop.validate("drop");
        self.duplicate.validate("duplicate");
        assert!(
            (0.0..=1.0).contains(&self.reorder),
            "reorder probability {} outside [0, 1]",
            self.reorder
        );
        if let DelayLaw::EdgeClasses { slow_fraction, .. } = self.delay {
            assert!(
                (0.0..=1.0).contains(&slow_fraction),
                "slow_fraction {slow_fraction} outside [0, 1]"
            );
        }
        for c in &self.crashes {
            assert!(
                c.node.index() < n,
                "crash fault names node {} of an {n}-node graph",
                c.node
            );
            if let Some((t, _)) = c.recovery {
                assert!(
                    t > c.at,
                    "node {} recovery at {t} not after its crash at {}",
                    c.node,
                    c.at
                );
            }
        }
    }
}

/// Counters of what a fault-enabled run actually did. All zero on the
/// fault-free path (identity plans do not pay for the bookkeeping).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Message copies handed to an automaton.
    pub delivered: u64,
    /// Messages lost to the drop law.
    pub dropped: u64,
    /// Extra copies created by the duplication law.
    pub duplicated: u64,
    /// Message copies discarded because their receiver was down on arrival.
    pub crash_dropped: u64,
    /// Crash events applied.
    pub crashes: u64,
    /// Recovery events applied.
    pub recoveries: u64,
    /// `REJOIN` pulses broadcast by recovering synchronizer nodes
    /// ([`crate::lockstep::Synchronized`]); zero outside lockstep runs.
    pub rejoin_pulses: u64,
    /// Retained message copies re-sent by neighbours in response to a
    /// `REJOIN` pulse; zero outside lockstep runs.
    pub replayed: u64,
}

/// splitmix64 — the per-edge hash behind the oblivious delay laws.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn edge_hash(seed: u64, from: NodeId, to: NodeId) -> u64 {
    mix(seed ^ mix(u64::from(from.0) + 1) ^ mix((u64::from(to.0) + 1) << 32))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Down,
    Up(Recovery),
}

/// Per-run fault state shared by the slot-wheel executor and the full-scan
/// oracle. Both drive the *same* decision sequence through it (same plan,
/// same RNG, same per-tick batch order), which is what makes faulty runs
/// reproducible and cross-executor bit-identical.
pub(crate) struct FaultSession<'p> {
    plan: &'p FaultPlan,
    n: usize,
    max_delay: u64,
    max_effective_delay: u64,
    /// Crash/recovery timeline, sorted by `(time, node)`.
    events: Vec<(u64, u32, EventKind)>,
    next_event: usize,
    down: Vec<bool>,
    /// Nodes revived this tick (ascending), to be activated spontaneously.
    revived: Vec<u32>,
    /// Adaptive-adversary state: cumulative enqueued copies per receiver.
    inbound: Vec<u64>,
    total_inbound: u64,
    pub(crate) stats: FaultStats,
}

impl<'p> FaultSession<'p> {
    pub(crate) fn new(plan: &'p FaultPlan, n: usize, config: &AsyncConfig) -> Self {
        plan.validate(n);
        let mut events: Vec<(u64, u32, EventKind)> = Vec::new();
        for c in &plan.crashes {
            events.push((c.at, c.node.0, EventKind::Down));
            if let Some((t, r)) = c.recovery {
                events.push((t, c.node.0, EventKind::Up(r)));
            }
        }
        events.sort_by_key(|&(t, v, _)| (t, v));
        FaultSession {
            plan,
            n,
            max_delay: config.max_delay,
            max_effective_delay: plan.max_effective_delay(config),
            events,
            next_event: 0,
            down: vec![false; n],
            revived: Vec::new(),
            inbound: vec![0; n],
            total_inbound: 0,
            stats: FaultStats::default(),
        }
    }

    /// Wheel size covering every possible delay under this plan.
    pub(crate) fn window(&self) -> usize {
        (self.max_effective_delay + 1) as usize
    }

    /// The time of the next unapplied crash/recovery event, if any.
    pub(crate) fn next_event_time(&self) -> Option<u64> {
        self.events.get(self.next_event).map(|&(t, _, _)| t)
    }

    /// Applies every event scheduled at or before `time` (in `(time, node)`
    /// order). `on_recover(node, reset)` fires for each recovery so the
    /// caller can rebuild automata that reset.
    pub(crate) fn apply_events<F>(&mut self, time: u64, mut on_recover: F)
    where
        F: FnMut(usize, bool),
    {
        while let Some(&(t, v, kind)) = self.events.get(self.next_event) {
            if t > time {
                break;
            }
            self.next_event += 1;
            match kind {
                EventKind::Down => {
                    if !self.down[v as usize] {
                        self.down[v as usize] = true;
                        self.stats.crashes += 1;
                    }
                }
                EventKind::Up(r) => {
                    if self.down[v as usize] {
                        self.down[v as usize] = false;
                        self.stats.recoveries += 1;
                        self.revived.push(v);
                        on_recover(v as usize, r == Recovery::Reset);
                    }
                }
            }
        }
    }

    /// Nodes revived by the last [`FaultSession::apply_events`] call,
    /// ascending. Cleared with [`FaultSession::clear_revived`] once the
    /// tick's activations ran.
    pub(crate) fn revived(&self) -> &[u32] {
        &self.revived
    }

    pub(crate) fn clear_revived(&mut self) {
        self.revived.clear();
    }

    pub(crate) fn is_down(&self, i: usize) -> bool {
        self.down[i]
    }

    /// Routes one sent message: decides drop/duplication and pushes the
    /// delay of each delivered copy into `delays` (cleared first; empty
    /// means the message was dropped). All randomness comes from `rng`, in
    /// a fixed per-message order, so two executors iterating the same batch
    /// sequence make identical decisions.
    pub(crate) fn route<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        to: NodeId,
        rng: &mut R,
        delays: &mut Vec<u64>,
    ) {
        delays.clear();
        let drop_p = self.plan.drop.at(from, to);
        if drop_p > 0.0 && rng.gen::<f64>() < drop_p {
            self.stats.dropped += 1;
            return;
        }
        let dup_p = self.plan.duplicate.at(from, to);
        let copies = if dup_p > 0.0 && rng.gen::<f64>() < dup_p {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let base = match self.plan.delay {
                DelayLaw::Uniform => rng.gen_range(1..=self.max_delay),
                DelayLaw::Fixed(d) => d.max(1),
                DelayLaw::Oblivious { seed } => 1 + edge_hash(seed, from, to) % self.max_delay,
                DelayLaw::EdgeClasses {
                    seed,
                    slow_fraction,
                } => {
                    // Map the edge hash onto [0, 1) with 53-bit precision.
                    let u = (edge_hash(seed, from, to) >> 11) as f64 / (1u64 << 53) as f64;
                    if u < slow_fraction {
                        self.max_delay
                    } else {
                        1
                    }
                }
                DelayLaw::Adaptive => {
                    let above_avg =
                        self.inbound[to.index()].saturating_mul(self.n as u64) > self.total_inbound;
                    if above_avg {
                        self.max_delay
                    } else {
                        1
                    }
                }
            };
            let jitter = if self.plan.reorder > 0.0 && rng.gen::<f64>() < self.plan.reorder {
                rng.gen_range(1..=self.max_delay)
            } else {
                0
            };
            self.inbound[to.index()] += 1;
            self.total_inbound += 1;
            delays.push(base + jitter);
        }
    }

    /// Records `count` copies handed to a live automaton.
    pub(crate) fn note_delivered(&mut self, count: u64) {
        self.stats.delivered += count;
    }

    /// Records `count` copies discarded at a down receiver.
    pub(crate) fn note_crash_dropped(&mut self, count: u64) {
        self.stats.crash_dropped += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_plan_is_identity() {
        let plan = FaultPlan::default();
        assert!(plan.is_identity());
        let config = AsyncConfig::default();
        assert_eq!(plan.max_effective_delay(&config), config.max_delay);
    }

    #[test]
    fn non_identity_knobs_detected() {
        let config = AsyncConfig::default();
        assert!(!FaultPlan::default()
            .with_delay(DelayLaw::Fixed(3))
            .is_identity());
        assert!(!FaultPlan::default()
            .with_drop(EdgeProb::uniform(0.1))
            .is_identity());
        assert!(!FaultPlan::default()
            .with_duplicate(EdgeProb::never().with_edge(NodeId(0), NodeId(1), 0.5))
            .is_identity());
        let jittered = FaultPlan::default().with_reorder(0.5);
        assert!(!jittered.is_identity());
        // Jitter stacks another max_delay on top of the law's bound.
        assert_eq!(jittered.max_effective_delay(&config), 2 * config.max_delay);
        assert!(!FaultPlan::default()
            .with_crash(CrashFault {
                node: NodeId(0),
                at: 3,
                recovery: None,
            })
            .is_identity());
        // A zero-probability override is still the identity.
        assert!(FaultPlan::default()
            .with_drop(EdgeProb::never().with_edge(NodeId(0), NodeId(1), 0.0))
            .is_identity());
    }

    #[test]
    fn edge_prob_overrides_win() {
        let p = EdgeProb::uniform(0.25).with_edge(NodeId(3), NodeId(4), 0.75);
        assert_eq!(p.at(NodeId(0), NodeId(1)), 0.25);
        assert_eq!(p.at(NodeId(3), NodeId(4)), 0.75);
        assert_eq!(p.at(NodeId(4), NodeId(3)), 0.25);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_rejected() {
        FaultPlan::default()
            .with_drop(EdgeProb::uniform(1.5))
            .validate(4);
    }

    #[test]
    #[should_panic(expected = "not after its crash")]
    fn recovery_before_crash_rejected() {
        FaultPlan::default()
            .with_crash(CrashFault {
                node: NodeId(1),
                at: 5,
                recovery: Some((5, Recovery::Reset)),
            })
            .validate(4);
    }

    #[test]
    fn oblivious_delays_are_per_edge_constants_in_range() {
        let plan = FaultPlan::default().with_delay(DelayLaw::Oblivious { seed: 9 });
        let config = AsyncConfig::default();
        let mut s = FaultSession::new(&plan, 8, &config);
        let mut rng = StdRng::seed_from_u64(0);
        let mut delays = Vec::new();
        let mut first = std::collections::BTreeMap::new();
        for round in 0..3 {
            for a in 0..8u32 {
                for b in 0..8u32 {
                    if a == b {
                        continue;
                    }
                    s.route(NodeId(a), NodeId(b), &mut rng, &mut delays);
                    assert_eq!(delays.len(), 1);
                    let d = delays[0];
                    assert!((1..=config.max_delay).contains(&d));
                    let prev = first.entry((a, b)).or_insert(d);
                    assert_eq!(*prev, d, "edge delay changed between rounds ({round})");
                }
            }
        }
        // Not all edges share one delay (the law is genuinely per-edge).
        let distinct: std::collections::BTreeSet<u64> = first.values().copied().collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn adaptive_law_slows_busy_receivers() {
        let plan = FaultPlan::default().with_delay(DelayLaw::Adaptive);
        let config = AsyncConfig::default();
        let mut s = FaultSession::new(&plan, 4, &config);
        let mut rng = StdRng::seed_from_u64(0);
        let mut delays = Vec::new();
        // Load node 1 far above average.
        for _ in 0..10 {
            s.route(NodeId(0), NodeId(1), &mut rng, &mut delays);
        }
        s.route(NodeId(0), NodeId(1), &mut rng, &mut delays);
        assert_eq!(delays, vec![config.max_delay]);
        // A cold receiver goes at speed 1.
        s.route(NodeId(0), NodeId(2), &mut rng, &mut delays);
        assert_eq!(delays, vec![1]);
    }

    #[test]
    fn drop_and_duplicate_extremes() {
        let config = AsyncConfig::default();
        let always_drop = FaultPlan::default().with_drop(EdgeProb::uniform(1.0));
        let mut s = FaultSession::new(&always_drop, 2, &config);
        let mut rng = StdRng::seed_from_u64(1);
        let mut delays = Vec::new();
        s.route(NodeId(0), NodeId(1), &mut rng, &mut delays);
        assert!(delays.is_empty());
        assert_eq!(s.stats.dropped, 1);

        let always_dup = FaultPlan::default().with_duplicate(EdgeProb::uniform(1.0));
        let mut s = FaultSession::new(&always_dup, 2, &config);
        s.route(NodeId(0), NodeId(1), &mut rng, &mut delays);
        assert_eq!(delays.len(), 2);
        assert_eq!(s.stats.duplicated, 1);
    }

    #[test]
    fn crash_timeline_applies_in_order() {
        let plan = FaultPlan::default()
            .with_crash(CrashFault {
                node: NodeId(2),
                at: 3,
                recovery: Some((7, Recovery::Reset)),
            })
            .with_crash(CrashFault {
                node: NodeId(0),
                at: 3,
                recovery: None,
            });
        let config = AsyncConfig::default();
        let mut s = FaultSession::new(&plan, 4, &config);
        assert_eq!(s.next_event_time(), Some(3));
        let mut resets = Vec::new();
        s.apply_events(2, |i, r| resets.push((i, r)));
        assert!(!s.is_down(0) && !s.is_down(2));
        s.apply_events(3, |i, r| resets.push((i, r)));
        assert!(s.is_down(0) && s.is_down(2));
        assert_eq!(s.next_event_time(), Some(7));
        s.apply_events(7, |i, r| resets.push((i, r)));
        assert!(s.is_down(0) && !s.is_down(2));
        assert_eq!(s.revived(), &[2]);
        assert_eq!(resets, vec![(2, true)]);
        assert_eq!(s.next_event_time(), None);
        assert_eq!(s.stats.crashes, 2);
        assert_eq!(s.stats.recoveries, 1);
    }

    #[test]
    fn scenario_filter_unset_enables_everything() {
        // The suite never sets the variable in-process, so this checks the
        // unset default (running it under a user-set filter is fine too —
        // the assertion below only exercises parsing).
        if std::env::var(FAULT_SCENARIOS_ENV).is_err() {
            assert!(scenario_enabled("benign"));
            assert!(scenario_enabled("anything"));
        }
    }
}
