//! The node-algorithm trait and the per-round execution context.

use symbreak_graphs::NodeId;

use crate::{KnowledgeView, Message};

/// Everything a node is given when it is created, before round 0.
///
/// The factory passed to [`crate::SyncSimulator::run`] receives one
/// `NodeInit` per node and returns that node's algorithm state. Algorithms
/// should copy whatever initial knowledge they need into their own state —
/// the view is only borrowed for the duration of the call.
#[derive(Debug, Clone, Copy)]
pub struct NodeInit<'a> {
    /// The node's simulator address.
    pub node: NodeId,
    /// Number of nodes in the network.
    pub num_nodes: usize,
    /// The node's KT-ρ initial knowledge.
    pub knowledge: KnowledgeView<'a>,
}

/// The context handed to a node on every round.
///
/// It exposes the node's initial knowledge, the current round number and the
/// outgoing-message buffer. Sending is only permitted to direct neighbours,
/// as in the CONGEST model.
#[derive(Debug)]
pub struct RoundContext<'a> {
    node: NodeId,
    round: u64,
    knowledge: KnowledgeView<'a>,
    neighbors: &'a [NodeId],
    outbox: Vec<(NodeId, Message)>,
}

impl<'a> RoundContext<'a> {
    pub(crate) fn new(
        node: NodeId,
        round: u64,
        knowledge: KnowledgeView<'a>,
        neighbors: &'a [NodeId],
    ) -> Self {
        Self::with_buffer(node, round, knowledge, neighbors, Vec::new())
    }

    /// Like [`RoundContext::new`], but reusing an existing (empty) outbox
    /// allocation. The engine pools one buffer across activations so the
    /// inner loop allocates nothing for senders.
    pub(crate) fn with_buffer(
        node: NodeId,
        round: u64,
        knowledge: KnowledgeView<'a>,
        neighbors: &'a [NodeId],
        outbox: Vec<(NodeId, Message)>,
    ) -> Self {
        debug_assert!(outbox.is_empty());
        RoundContext {
            node,
            round,
            knowledge,
            neighbors,
            outbox,
        }
    }

    /// This node's simulator address.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The current round number (0-based).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of nodes in the network.
    pub fn num_nodes(&self) -> usize {
        self.knowledge.num_nodes()
    }

    /// This node's KT-ρ initial knowledge.
    pub fn knowledge(&self) -> &KnowledgeView<'a> {
        &self.knowledge
    }

    /// This node's own ID.
    pub fn own_id(&self) -> u64 {
        self.knowledge.own_id()
    }

    /// The node's neighbours (simulator addresses), sorted.
    pub fn neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors.iter().copied()
    }

    /// The node's degree.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Queues `message` for delivery to neighbour `to` at the start of the
    /// next round.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour of this node — CONGEST only allows
    /// communication along edges of the input graph.
    pub fn send(&mut self, to: NodeId, message: Message) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "node {} attempted to send to non-neighbour {}",
            self.node,
            to
        );
        self.outbox.push((to, message));
    }

    /// Sends a copy of `message` to every neighbour.
    pub fn broadcast(&mut self, message: &Message) {
        for i in 0..self.neighbors.len() {
            let to = self.neighbors[i];
            self.outbox.push((to, *message));
        }
    }

    pub(crate) fn take_outbox(self) -> Vec<(NodeId, Message)> {
        self.outbox
    }
}

/// A per-node automaton executed by the simulators.
///
/// The simulator calls [`NodeAlgorithm::on_round`] once per round; in round 0
/// the inbox is empty and the call plays the role of initialisation. The run
/// terminates once every node reports [`NodeAlgorithm::is_done`] and no
/// messages are in flight.
pub trait NodeAlgorithm {
    /// Executes one round: read `inbox` (messages delivered this round), do
    /// local computation, and queue outgoing messages on `ctx`.
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]);

    /// Whether this node has terminated. A done node is still invoked if new
    /// messages arrive for it.
    ///
    /// The engine relies on this contract for its fast path: on rounds after
    /// round 0 it may *skip* invoking a node that reports done and has no
    /// incoming messages. Round 0 (the initialisation call) is always
    /// delivered to every node. Algorithms that want to act spontaneously on
    /// later rounds must therefore report `false` until they truly have
    /// nothing left to do.
    fn is_done(&self) -> bool;

    /// The node's output (colour, MIS membership, …) once the run completes.
    fn output(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KtLevel;
    use symbreak_graphs::{generators, IdAssignment};

    #[test]
    fn send_to_neighbor_is_queued() {
        let g = generators::path(3);
        let ids = IdAssignment::identity(3);
        let k = KnowledgeView::new(&g, &ids, KtLevel::KT1, NodeId(1));
        let nbrs = vec![NodeId(0), NodeId(2)];
        let mut ctx = RoundContext::new(NodeId(1), 0, k, &nbrs);
        ctx.send(NodeId(0), Message::tagged(1));
        ctx.broadcast(&Message::tagged(2));
        let out = ctx.take_outbox();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0, NodeId(0));
    }

    #[test]
    #[should_panic(expected = "non-neighbour")]
    fn send_to_non_neighbor_panics() {
        let g = generators::path(3);
        let ids = IdAssignment::identity(3);
        let k = KnowledgeView::new(&g, &ids, KtLevel::KT1, NodeId(0));
        let nbrs = vec![NodeId(1)];
        let mut ctx = RoundContext::new(NodeId(0), 0, k, &nbrs);
        ctx.send(NodeId(2), Message::tagged(1));
    }

    #[test]
    fn context_accessors() {
        let g = generators::star(4);
        let ids = IdAssignment::from_vec(vec![9, 8, 7, 6]);
        let k = KnowledgeView::new(&g, &ids, KtLevel::KT1, NodeId(0));
        let nbrs: Vec<NodeId> = g.neighbor_vec(NodeId(0));
        let ctx = RoundContext::new(NodeId(0), 5, k, &nbrs);
        assert_eq!(ctx.node(), NodeId(0));
        assert_eq!(ctx.round(), 5);
        assert_eq!(ctx.num_nodes(), 4);
        assert_eq!(ctx.own_id(), 9);
        assert_eq!(ctx.degree(), 3);
        assert_eq!(ctx.neighbors().count(), 3);
    }
}
