//! Asynchrony: a randomized-delay executor and α-synchronizer accounting.
//!
//! The paper's asynchronous results (Theorem 3.4) rely on two ingredients:
//! an asynchronous broadcast substrate (Theorem 1.3, provided by
//! `symbreak-danner`) and Awerbuch's α-synchronizer (Theorem A.5), which
//! simulates a `T`-round synchronous algorithm asynchronously at an extra
//! cost of at most `2(T + 1)·m'` messages, where `m'` is the number of edges
//! of the (sub)graph the algorithm runs on.
//!
//! This module provides both the accounting function for that overhead and a
//! randomized-delay executor that runs [`NodeAlgorithm`] automata under
//! adversarial-ish message delays, so that delay-insensitive algorithms can
//! be checked to still produce correct outputs.
//!
//! The executor's delay wheel is *slot-indexed*: each of the
//! `max_delay + 1` wheel slots keeps the list of nodes with messages
//! arriving at that time, so a time unit costs `O(activated + delivered)` —
//! mirroring the synchronous engine's active list — instead of the old
//! full `O(n)` node scan (still available as
//! [`crate::reference::NaiveAsyncSimulator`], the differential oracle).

use rand::Rng;
use serde::{Deserialize, Serialize};
use symbreak_graphs::{Graph, IdAssignment, NodeId};

use crate::engine::NodeRuntime;
use crate::faults::{FaultPlan, FaultSession, FaultStats};
use crate::model::DEFAULT_MESSAGE_BITS;
use crate::{KtLevel, Message, NodeAlgorithm, NodeInit};

/// Extra messages incurred by running a `rounds`-round synchronous algorithm
/// through an α-synchronizer on a subgraph with `active_edges` edges
/// (Theorem A.5): at most `2 (rounds + 1) · active_edges`.
///
/// **Overflow policy:** the product saturates at `u64::MAX` instead of
/// wrapping. The value is an upper bound that callers compare observed
/// message counts against (or add to a budget), so for pathological
/// synthetic inputs a clamped ceiling keeps every comparison conservative,
/// whereas silent wrap-around would *under*-state the bound.
pub fn alpha_synchronizer_overhead(rounds: u64, active_edges: u64) -> u64 {
    2u64.saturating_mul(rounds.saturating_add(1))
        .saturating_mul(active_edges)
}

/// Cost of an asynchronous simulation derived from a synchronous execution:
/// the original messages plus the α-synchronizer overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsyncCostEstimate {
    /// Messages of the synchronous execution.
    pub base_messages: u64,
    /// Additional synchronizer messages.
    pub synchronizer_messages: u64,
    /// Rounds (time units) of the asynchronous execution; the α-synchronizer
    /// preserves the round count.
    pub rounds: u64,
}

impl AsyncCostEstimate {
    /// Builds the estimate from a synchronous cost.
    pub fn from_sync(messages: u64, rounds: u64, active_edges: u64) -> Self {
        AsyncCostEstimate {
            base_messages: messages,
            synchronizer_messages: alpha_synchronizer_overhead(rounds, active_edges),
            rounds,
        }
    }

    /// Total messages of the asynchronous execution.
    pub fn total_messages(&self) -> u64 {
        self.base_messages + self.synchronizer_messages
    }
}

/// Configuration of the randomized-delay executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsyncConfig {
    /// Maximum (inclusive) delivery delay of a message, in time units.
    pub max_delay: u64,
    /// Abort after this many time units.
    pub max_time: u64,
    /// Per-message size budget in bits.
    pub message_bit_limit: u32,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            max_delay: 5,
            max_time: 1_000_000,
            message_bit_limit: DEFAULT_MESSAGE_BITS,
        }
    }
}

/// Outcome of an asynchronous run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsyncReport {
    /// Whether every node terminated before the time limit.
    pub completed: bool,
    /// Total simulated time units until quiescence.
    pub time: u64,
    /// Total messages sent.
    pub messages: u64,
    /// The largest message observed, in bits.
    pub max_message_bits: u32,
    /// Final per-node outputs.
    pub outputs: Vec<Option<u64>>,
    /// What the fault layer did (all zero on the fault-free path — identity
    /// plans skip the bookkeeping entirely).
    pub faults: FaultStats,
}

/// An event-driven executor that delivers each message after a random delay
/// of `1..=max_delay` time units. Nodes are activated at time 0 and then
/// whenever a batch of messages is delivered to them.
#[derive(Debug, Clone, Copy)]
pub struct AsyncSimulator<'g> {
    graph: &'g Graph,
    ids: &'g IdAssignment,
    level: KtLevel,
}

impl<'g> AsyncSimulator<'g> {
    /// Creates an asynchronous simulator.
    ///
    /// # Panics
    ///
    /// Panics if the ID assignment does not match the graph.
    pub fn new(graph: &'g Graph, ids: &'g IdAssignment, level: KtLevel) -> Self {
        assert_eq!(
            ids.len(),
            graph.num_nodes(),
            "ID assignment does not match the graph"
        );
        AsyncSimulator { graph, ids, level }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The ID assignment.
    pub fn ids(&self) -> &'g IdAssignment {
        self.ids
    }

    /// The KT level.
    pub fn level(&self) -> KtLevel {
        self.level
    }

    /// Runs the node algorithms under random message delays drawn from `rng`.
    ///
    /// Node activation (context construction, automaton stepping, CONGEST
    /// validation) goes through the same `NodeRuntime` engine as the
    /// synchronous simulator; only the delay-wheel delivery policy lives
    /// here. The wheel tracks, per slot, exactly the nodes with messages
    /// arriving at that time (in ascending node order, so reports are
    /// bit-identical to the full-scan reference loop), and terminal states
    /// are detected from an incrementally maintained undone counter instead
    /// of an `O(n)` sweep per time unit.
    pub fn run<A, F, R>(&self, config: AsyncConfig, rng: &mut R, make: F) -> AsyncReport
    where
        A: NodeAlgorithm,
        F: FnMut(NodeInit<'_>) -> A,
        R: Rng + ?Sized,
    {
        self.run_inner::<A, F, R, false>(config, &FaultPlan::default(), rng, make)
    }

    /// Like [`AsyncSimulator::run`], under a fault scenario.
    ///
    /// Identity plans ([`FaultPlan::is_identity`]) are routed onto the exact
    /// fault-free code path, so their reports are bit-identical to
    /// [`AsyncSimulator::run`] under the same seed and the seam costs the
    /// benign path nothing. Non-identity plans run the fault-instrumented
    /// loop: the delay wheel widens to the plan's effective delay bound,
    /// every sent message is routed through the plan's drop / duplication /
    /// delay / reordering laws (all randomness from `rng`, in a fixed
    /// per-message order), and scheduled crashes take nodes out of the
    /// execution (discarding their arrivals) until their recovery, if any.
    ///
    /// Faulty runs are deterministic given `(config, plan, seed)` and
    /// bit-identical between this executor and the full-scan oracle
    /// [`crate::reference::NaiveAsyncSimulator::run_with_faults`].
    pub fn run_with_faults<A, F, R>(
        &self,
        config: AsyncConfig,
        plan: &FaultPlan,
        rng: &mut R,
        make: F,
    ) -> AsyncReport
    where
        A: NodeAlgorithm,
        F: FnMut(NodeInit<'_>) -> A,
        R: Rng + ?Sized,
    {
        if plan.is_identity() {
            self.run_inner::<A, F, R, false>(config, plan, rng, make)
        } else {
            self.run_inner::<A, F, R, true>(config, plan, rng, make)
        }
    }

    /// The delay-wheel loop, monomorphised over fault injection: with
    /// `FAULTS = false` every fault branch is statically removed and the
    /// body is exactly the historical fault-free loop (the identity
    /// regression and the `sim_engine` zero-fault gate both pin this down).
    fn run_inner<A, F, R, const FAULTS: bool>(
        &self,
        config: AsyncConfig,
        plan: &FaultPlan,
        rng: &mut R,
        mut make: F,
    ) -> AsyncReport
    where
        A: NodeAlgorithm,
        F: FnMut(NodeInit<'_>) -> A,
        R: Rng + ?Sized,
    {
        let n = self.graph.num_nodes();
        let mut runtime = NodeRuntime::new(self.graph, self.ids, self.level, &mut make);
        let mut session: Option<FaultSession<'_>> =
            FAULTS.then(|| FaultSession::new(plan, n, &config));

        // pending[t % window][v] = messages arriving at node v at time t;
        // slot_nodes[t % window] = the v with pending[t % window][v]
        // non-empty (each listed once, unsorted until the slot fires).
        let window = match session.as_ref() {
            Some(s) => s.window(),
            None => (config.max_delay + 1) as usize,
        };
        let mut pending: Vec<Vec<Vec<Message>>> = vec![vec![Vec::new(); n]; window];
        let mut slot_nodes: Vec<Vec<u32>> = vec![Vec::new(); window];
        let mut in_flight: u64 = 0;
        let mut messages: u64 = 0;
        let mut max_bits: u32 = 0;
        let mut time: u64 = 0;
        let mut completed = false;
        // Activation counter per node: how many times each node has been
        // activated (used as its local "round" number).
        let mut activations: Vec<u64> = vec![0; n];
        let mut done = runtime.done_flags();
        let mut undone_count = done.iter().filter(|&&d| !d).count();
        let mut outgoing: Vec<(NodeId, NodeId, Message)> = Vec::new();
        let mut delays: Vec<u64> = Vec::new();

        loop {
            if FAULTS {
                // Crash/recovery events scheduled at `time` apply before
                // anything else this tick; recovered-with-reset nodes are
                // rebuilt from the factory with a fresh round counter.
                let s = session.as_mut().expect("fault session");
                s.apply_events(time, |i, reset| {
                    if reset {
                        let now_done = runtime.reset_node(i, &mut make);
                        activations[i] = 0;
                        if now_done != done[i] {
                            done[i] = now_done;
                            if now_done {
                                undone_count -= 1;
                            } else {
                                undone_count += 1;
                            }
                        }
                    }
                });
            }
            let quiet = in_flight == 0
                && (!FAULTS
                    || session
                        .as_ref()
                        .expect("fault session")
                        .revived()
                        .is_empty());
            if time > 0 && quiet {
                let next_event = if FAULTS {
                    session.as_ref().expect("fault session").next_event_time()
                } else {
                    None
                };
                match next_event {
                    Some(t) => {
                        // Quiescent but the fault timeline isn't over: a
                        // pending recovery may revive the execution. The
                        // full-scan reference idle-ticks its way there;
                        // jump straight to the event for an identical
                        // report.
                        time = t.min(config.max_time);
                        if time >= config.max_time {
                            break;
                        }
                        continue;
                    }
                    None => {
                        if undone_count == 0 {
                            completed = true;
                        } else {
                            // Nothing in flight and no node can activate
                            // spontaneously: the execution is stuck forever.
                            // The full-scan reference idle-ticks its way to
                            // the limit; jump straight there for an
                            // identical report.
                            time = config.max_time;
                        }
                        break;
                    }
                }
            }
            if time >= config.max_time {
                break;
            }

            let slot = (time % window as u64) as usize;
            let mut acts = std::mem::take(&mut slot_nodes[slot]);
            if FAULTS {
                // Recovered nodes activate spontaneously this tick, merged
                // with the slot's receivers (deduplicated — a node can be
                // both).
                let s = session.as_mut().expect("fault session");
                acts.extend_from_slice(s.revived());
                s.clear_revived();
            }
            // Ascending node order matches the reference loop's 0..n scan.
            acts.sort_unstable();
            if FAULTS {
                acts.dedup();
            }
            let mut activate =
                |i: usize,
                 runtime: &mut NodeRuntime<'g, A>,
                 pending: &mut Vec<Vec<Vec<Message>>>,
                 outgoing: &mut Vec<(NodeId, NodeId, Message)>,
                 session: &mut Option<FaultSession<'_>>| {
                    let mut inbox = std::mem::take(&mut pending[slot][i]);
                    if FAULTS {
                        let s = session.as_mut().expect("fault session");
                        if s.is_down(i) {
                            // Arrivals at a down node are discarded.
                            in_flight -= inbox.len() as u64;
                            s.note_crash_dropped(inbox.len() as u64);
                            inbox.clear();
                            pending[slot][i] = inbox;
                            return;
                        }
                        s.note_delivered(inbox.len() as u64);
                    }
                    in_flight -= inbox.len() as u64;
                    let now_done = runtime.step(
                        i,
                        activations[i],
                        &inbox,
                        config.message_bit_limit,
                        &mut max_bits,
                        &mut |from, to, msg| outgoing.push((from, to, msg)),
                    );
                    activations[i] += 1;
                    if now_done != done[i] {
                        done[i] = now_done;
                        if now_done {
                            undone_count -= 1;
                        } else {
                            undone_count += 1;
                        }
                    }
                    // Hand the drained allocation back to the wheel slot.
                    inbox.clear();
                    pending[slot][i] = inbox;
                };
            if time == 0 {
                // Time 0 activates every node for initialisation.
                for i in 0..n {
                    activate(i, &mut runtime, &mut pending, &mut outgoing, &mut session);
                }
            } else {
                for &iu in &acts {
                    activate(
                        iu as usize,
                        &mut runtime,
                        &mut pending,
                        &mut outgoing,
                        &mut session,
                    );
                }
            }
            acts.clear();
            slot_nodes[slot] = acts;

            if FAULTS {
                let s = session.as_mut().expect("fault session");
                for (from, to, msg) in outgoing.drain(..) {
                    // `messages` counts every copy put on the wire: the
                    // original send (even if dropped in transit) plus any
                    // duplicate.
                    messages += 1;
                    s.route(from, to, rng, &mut delays);
                    if delays.len() > 1 {
                        messages += delays.len() as u64 - 1;
                    }
                    for &d in &delays {
                        let arrival = ((time + d) % window as u64) as usize;
                        let bucket = &mut pending[arrival][to.index()];
                        if bucket.is_empty() {
                            slot_nodes[arrival].push(to.0);
                        }
                        bucket.push(msg);
                        in_flight += 1;
                    }
                }
            } else {
                for (_from, to, msg) in outgoing.drain(..) {
                    let delay = rng.gen_range(1..=config.max_delay);
                    let arrival = ((time + delay) % window as u64) as usize;
                    let bucket = &mut pending[arrival][to.index()];
                    if bucket.is_empty() {
                        slot_nodes[arrival].push(to.0);
                    }
                    bucket.push(msg);
                    messages += 1;
                    in_flight += 1;
                }
            }
            time += 1;
        }

        AsyncReport {
            completed,
            time,
            messages,
            max_message_bits: max_bits,
            outputs: runtime.outputs(),
            faults: match session {
                Some(s) => s.stats,
                None => FaultStats::default(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoundContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symbreak_graphs::generators;

    #[test]
    fn synchronizer_overhead_formula() {
        assert_eq!(alpha_synchronizer_overhead(0, 10), 20);
        assert_eq!(alpha_synchronizer_overhead(9, 100), 2000);
    }

    #[test]
    fn synchronizer_overhead_saturates_instead_of_wrapping() {
        // 2(T + 1)m′ overflows u64 for large synthetic inputs; the policy
        // is to clamp at u64::MAX (a conservative ceiling) rather than wrap
        // to a small, misleadingly cheap number.
        assert_eq!(alpha_synchronizer_overhead(u64::MAX, 10), u64::MAX);
        assert_eq!(alpha_synchronizer_overhead(10, u64::MAX), u64::MAX);
        assert_eq!(alpha_synchronizer_overhead(u64::MAX, u64::MAX), u64::MAX);
        // A product just under the edge stays exact.
        assert_eq!(alpha_synchronizer_overhead(0, u64::MAX / 2), u64::MAX - 1);
    }

    #[test]
    fn async_estimate_totals() {
        let est = AsyncCostEstimate::from_sync(50, 4, 10);
        assert_eq!(est.synchronizer_messages, 100);
        assert_eq!(est.total_messages(), 150);
        assert_eq!(est.rounds, 4);
    }

    /// Asynchronous flooding: forward the token the first time it arrives.
    struct Flood {
        have: bool,
    }
    impl NodeAlgorithm for Flood {
        fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
            let start = ctx.node() == NodeId(0) && !self.have && ctx.round() == 0;
            let received = !inbox.is_empty();
            if (start || received) && !self.have {
                self.have = true;
                ctx.broadcast(&Message::tagged(1));
            }
        }
        fn is_done(&self) -> bool {
            true
        }
        fn output(&self) -> Option<u64> {
            Some(u64::from(self.have))
        }
    }

    #[test]
    fn async_flood_reaches_everyone() {
        let g = generators::connected_gnp(30, 0.1, &mut StdRng::seed_from_u64(4));
        let ids = IdAssignment::identity(30);
        let sim = AsyncSimulator::new(&g, &ids, KtLevel::KT1);
        let mut rng = StdRng::seed_from_u64(5);
        let report = sim.run(AsyncConfig::default(), &mut rng, |_| Flood { have: false });
        assert!(report.completed);
        assert!(report.outputs.iter().all(|o| *o == Some(1)));
        assert!(report.messages >= 2 * (g.num_nodes() as u64 - 1));
        assert!(report.time > 0);
        // Flood messages are bare tags: 16 bits.
        assert_eq!(report.max_message_bits, 16);
    }

    #[test]
    fn async_run_respects_time_limit() {
        struct Chatter;
        impl NodeAlgorithm for Chatter {
            fn on_round(&mut self, ctx: &mut RoundContext<'_>, _inbox: &[Message]) {
                ctx.broadcast(&Message::tagged(0));
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = generators::cycle(4);
        let ids = IdAssignment::identity(4);
        let sim = AsyncSimulator::new(&g, &ids, KtLevel::KT1);
        let mut rng = StdRng::seed_from_u64(6);
        let config = AsyncConfig {
            max_time: 20,
            ..AsyncConfig::default()
        };
        let report = sim.run(config, &mut rng, |_| Chatter);
        assert!(!report.completed);
        assert_eq!(report.time, 20);
    }

    #[test]
    fn stuck_undone_nodes_report_the_time_limit() {
        // A node that never terminates and never sends: the wheel drains
        // immediately, and the run must still report `time = max_time`
        // exactly like the idle-ticking full-scan loop.
        struct Mute;
        impl NodeAlgorithm for Mute {
            fn on_round(&mut self, _ctx: &mut RoundContext<'_>, _inbox: &[Message]) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = generators::path(3);
        let ids = IdAssignment::identity(3);
        let sim = AsyncSimulator::new(&g, &ids, KtLevel::KT1);
        let mut rng = StdRng::seed_from_u64(7);
        let config = AsyncConfig {
            max_time: 500,
            ..AsyncConfig::default()
        };
        let report = sim.run(config, &mut rng, |_| Mute);
        assert!(!report.completed);
        assert_eq!(report.time, 500);
        assert_eq!(report.messages, 0);
    }
}
