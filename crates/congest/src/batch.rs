//! The lockstep batch engine: B statistically independent executions stepped
//! in lockstep over **one** shared CSR.
//!
//! Every experiment surface of the workspace reruns the same immutable graph
//! once per seed, paying graph traversal, arena setup and stage construction
//! B times for B executions. [`BatchSimulator`] amortizes that whole inner
//! loop: the adjacency is snapshotted once, and each round walks the sorted
//! **union** of the per-lane active sets, resolving every adjacency row a
//! single time and fanning the activation into all lanes that are live at
//! that node.
//!
//! Layout and determinism:
//!
//! * **Lane-major state** — the `n · B` automata live in one arena with the
//!   B lanes of a node adjacent (`nodes[i·B + k]`), so the per-node inner
//!   loop is a contiguous sweep (per-lane RNG streams and all other
//!   per-execution state are inside the automata). Done flags use the same
//!   layout.
//! * **Per-lane membership bitsets** — a round's shared frontier is the
//!   union of the per-lane active lists; an `n × ⌈B/64⌉` bitset records
//!   which lanes are active at each node and is cleared along the union list
//!   (never an O(n·B) sweep).
//! * **Per-lane double buffers** — each lane owns its own
//!   [`MessageArena`]/[`DeliveryBuffer`] pair, its active/undone lists and
//!   its message/round counters, all maintained exactly as the sequential
//!   loop maintains them. On sequential rounds each live lane picks its own
//!   delivery layout with the engine's per-round dense heuristic evaluated
//!   on *its* active list (receiver-major buckets on all-to-all traffic,
//!   flat sender-major otherwise — identical inboxes either way, see the
//!   engine docs); parallel rounds always merge flat, like the sequential
//!   engine's sharded flips. Staging order is ascending node order — the
//!   sequential staging order.
//!
//! The result is the batch invariant every caller relies on: **lane k of a
//! batched run is bit-identical to a sequential [`SyncSimulator`] run
//! constructed with lane k's state** — same outputs, same message count,
//! same round count, same max message bits — at every `lanes × threads ×
//! shards` combination (asserted end-to-end by the `batch_equivalence`
//! suite).
//!
//! The existing throughput knobs compose: [`SyncConfig::threads`] splits the
//! union frontier into degree-balanced contiguous windows stepped in
//! parallel (shard-parallel outer loop, lane-vectorized inner loop), and
//! [`SyncConfig::shards`] resolves adjacency rows from the per-shard local
//! CSR slices of a (prebuilt or per-run) [`ShardedGraph`]. Instrumented
//! configurations (trace / utilization / per-edge) fall back to per-lane
//! sequential runs — same API, same results, without the amortization.

use symbreak_graphs::sharded::{balanced_cuts, GraphShard, ShardPlan, ShardedGraph};
use symbreak_graphs::{Graph, IdAssignment, NodeId};

use crate::engine::{
    csr_buckets_local, csr_dense_round, sharded_row, split_ranges_mut, step_node, DeliveryBuffer,
    MessageArena,
};
use crate::sync::{next_active, MIN_ACTIVE_PER_SHARD, SHARD_OVERSUBSCRIPTION};
use crate::{
    ExecutionReport, KnowledgeView, KtLevel, Message, NodeAlgorithm, NodeInit, SimError,
    SyncConfig, SyncSimulator,
};

/// The batched multi-execution simulator: like [`SyncSimulator`], plus a
/// lane count. See the module docs for the execution model.
#[derive(Debug, Clone, Copy)]
pub struct BatchSimulator<'g> {
    graph: &'g Graph,
    ids: &'g IdAssignment,
    level: KtLevel,
    sharded: Option<&'g ShardedGraph>,
}

impl<'g> BatchSimulator<'g> {
    /// Creates a batch simulator.
    ///
    /// # Panics
    ///
    /// Panics if the ID assignment does not cover exactly the graph's nodes;
    /// use [`BatchSimulator::try_new`] for a fallible constructor.
    pub fn new(graph: &'g Graph, ids: &'g IdAssignment, level: KtLevel) -> Self {
        Self::try_new(graph, ids, level).expect("ID assignment does not match the graph")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::IdAssignmentMismatch`] if the assignment does not
    /// cover exactly the graph's nodes.
    pub fn try_new(
        graph: &'g Graph,
        ids: &'g IdAssignment,
        level: KtLevel,
    ) -> Result<Self, SimError> {
        if ids.len() != graph.num_nodes() {
            return Err(SimError::IdAssignmentMismatch {
                graph_nodes: graph.num_nodes(),
                id_nodes: ids.len(),
            });
        }
        Ok(BatchSimulator {
            graph,
            ids,
            level,
            sharded: None,
        })
    }

    /// Attaches a prebuilt [`ShardedGraph`], exactly like
    /// [`SyncSimulator::with_sharded_graph`]: every batched run whose
    /// configuration engages sharded stepping reuses it instead of
    /// rebuilding ghost tables per run — the sweep driver prebuilds one CSR
    /// (and one sharded view) per graph of a grid.
    ///
    /// # Panics
    ///
    /// Panics if `sharded` does not cover exactly this simulator's graph.
    pub fn with_sharded_graph(mut self, sharded: &'g ShardedGraph) -> Self {
        assert_eq!(
            sharded.num_nodes(),
            self.graph.num_nodes(),
            "prebuilt sharded graph covers a different node count"
        );
        assert_eq!(
            sharded.num_half_edges(),
            self.graph.degree_sum(),
            "prebuilt sharded graph covers a different adjacency"
        );
        self.sharded = Some(sharded);
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The ID assignment.
    pub fn ids(&self) -> &'g IdAssignment {
        self.ids
    }

    /// The KT level.
    pub fn level(&self) -> KtLevel {
        self.level
    }

    /// Runs [`SyncConfig::resolved_lanes`] lanes; see
    /// [`BatchSimulator::run_batch`].
    pub fn run<A, F>(&self, config: SyncConfig, make: F) -> Vec<ExecutionReport>
    where
        A: NodeAlgorithm + Send,
        F: FnMut(usize, NodeInit<'_>) -> A,
    {
        self.run_batch(config, config.resolved_lanes(), make)
    }

    /// Runs `lanes` executions in lockstep and returns one
    /// [`ExecutionReport`] per lane, in lane order.
    ///
    /// `make(k, init)` constructs lane `k`'s automaton for the node described
    /// by `init` and must be deterministic per `(k, node)` — typically it
    /// seeds the automaton's RNG from lane `k`'s seed. Lane `k`'s report is
    /// bit-identical to `SyncSimulator::run(config, |init| make(k, init))`.
    ///
    /// Instrumented configurations (trace, utilization or per-edge counters
    /// requested) run the lanes sequentially through [`SyncSimulator`] —
    /// identical results, no amortization.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`, or if a node sends a message exceeding the
    /// configured bit limit or addressed to a non-neighbour.
    pub fn run_batch<A, F>(
        &self,
        config: SyncConfig,
        lanes: usize,
        mut make: F,
    ) -> Vec<ExecutionReport>
    where
        A: NodeAlgorithm + Send,
        F: FnMut(usize, NodeInit<'_>) -> A,
    {
        assert!(lanes > 0, "a batched run needs at least one lane");
        if config.record_trace || config.track_utilization || config.track_per_edge {
            // Instrumentation hangs off the sequential observer loop; run
            // the lanes one by one through it. Bit-identical by definition.
            let sim = SyncSimulator::new(self.graph, self.ids, self.level);
            let sim = match self.sharded {
                Some(sg) => sim.with_sharded_graph(sg),
                None => sim,
            };
            return (0..lanes)
                .map(|k| sim.run(config, |init| make(k, init)))
                .collect();
        }
        if crate::audit::audit_enabled() {
            // `CONGEST_AUDIT=1`: each lane runs through its own deny-mode
            // audited run with lane provenance — the same per-lane fallback
            // shape as the instrumented path, bit-identical by the batch
            // invariant.
            let sim = SyncSimulator::new(self.graph, self.ids, self.level);
            let sim = match self.sharded {
                Some(sg) => sim.with_sharded_graph(sg),
                None => sim,
            };
            let cfg = crate::audit::AuditConfig::from_env();
            return (0..lanes)
                .map(|k| {
                    sim.run_audited(config, &cfg.with_lane(k), |init| make(k, init))
                        .0
                })
                .collect();
        }

        // Resolve the sharded view exactly like `SyncSimulator::run_observed`
        // (single-shard plans are the identity partition and step unsharded).
        let shards_cfg = config.resolved_shards();
        let built;
        let sharded: Option<&ShardedGraph> = if shards_cfg > 0 {
            match self.sharded {
                Some(pre) => (pre.num_shards() > 1).then_some(pre),
                None => {
                    let plan = ShardPlan::degree_balanced(self.graph, shards_cfg);
                    if plan.num_shards() > 1 {
                        built = ShardedGraph::with_plan(self.graph, plan);
                        Some(&built)
                    } else {
                        None
                    }
                }
            }
        } else {
            None
        };

        let threads = config.resolved_threads();
        let n = self.graph.num_nodes();
        let lw = lanes.div_ceil(64);

        // One shared CSR snapshot for every lane (the amortization target).
        let mut nbr_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        let mut nbrs: Vec<NodeId> = Vec::with_capacity(self.graph.degree_sum());
        nbr_offsets.push(0);
        for v in self.graph.nodes() {
            nbrs.extend(self.graph.neighbors(v));
            nbr_offsets.push(nbrs.len() as u32);
        }
        // The dense-delivery locality gate, computed once for all lanes.
        let buckets_local = csr_buckets_local(&nbr_offsets, &nbrs);

        // Lane-major automata and done flags: node i's lanes are the
        // contiguous block [i·lanes, (i+1)·lanes).
        let mut nodes: Vec<A> = Vec::with_capacity(n * lanes);
        for i in 0..n {
            let v = NodeId(i as u32);
            for k in 0..lanes {
                nodes.push(make(
                    k,
                    NodeInit {
                        node: v,
                        num_nodes: n,
                        knowledge: KnowledgeView::new(self.graph, self.ids, self.level, v),
                    },
                ));
            }
        }
        let mut done: Vec<bool> = nodes.iter().map(NodeAlgorithm::is_done).collect();

        // Per-lane round state, maintained exactly as the sequential loop
        // maintains its single copy.
        let mut arenas: Vec<MessageArena> = (0..lanes).map(|_| MessageArena::new(n)).collect();
        let mut stagings: Vec<DeliveryBuffer> =
            (0..lanes).map(|_| DeliveryBuffer::new(n)).collect();
        let mut lane_active: Vec<Vec<u32>> = (0..lanes).map(|_| (0..n as u32).collect()).collect();
        let mut lane_undone: Vec<Vec<u32>> = vec![Vec::new(); lanes];
        let mut undone_count: Vec<usize> = (0..lanes)
            .map(|k| (0..n).filter(|&i| !done[i * lanes + k]).count())
            .collect();
        let mut finished = vec![false; lanes];
        let mut lane_completed = vec![false; lanes];
        let mut lane_rounds = vec![0u64; lanes];
        let mut lane_messages = vec![0u64; lanes];
        let mut lane_max_bits = vec![0u32; lanes];

        // The shared frontier: sorted union of the live lanes' active lists
        // plus the per-node lane-membership bitsets.
        let mut member: Vec<u64> = vec![0; n * lw];
        let mut union_active: Vec<u32> = Vec::new();
        let mut merge_scratch: Vec<u32> = Vec::new();
        let mut receivers: Vec<u32> = Vec::new();

        // Parallel-path state, reused across rounds: per-task, per-lane
        // staging buffers and undone lists (task order = ascending node
        // order, so per-lane concatenation reproduces sequential order).
        let pool = (threads > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("vendored thread pool cannot fail to build")
        });
        let max_tasks = match sharded {
            Some(sg) => sg.num_shards(),
            None => threads * SHARD_OVERSUBSCRIPTION,
        }
        .max(1);
        let mut task_staged: Vec<Vec<Vec<(u32, Message)>>> = (0..max_tasks)
            .map(|_| (0..lanes).map(|_| Vec::new()).collect())
            .collect();
        let mut task_undone: Vec<Vec<Vec<u32>>> = (0..max_tasks)
            .map(|_| (0..lanes).map(|_| Vec::new()).collect())
            .collect();
        let mut task_scratch: Vec<Vec<NodeId>> = vec![Vec::new(); max_tasks];
        let mut task_pools: Vec<Vec<(NodeId, Message)>> = vec![Vec::new(); max_tasks];
        let mut outbox_pool: Vec<(NodeId, Message)> = Vec::new();
        let mut inline_scratch: Vec<NodeId> = Vec::new();

        let mut rounds: u64 = 0;

        loop {
            // Per-lane termination, checked at the loop top exactly like the
            // sequential loop; a finished lane freezes (its report fields
            // are final) while the others keep stepping.
            let mut all_finished = true;
            for k in 0..lanes {
                if finished[k] {
                    continue;
                }
                if rounds > 0 && arenas[k].len() == 0 && undone_count[k] == 0 {
                    finished[k] = true;
                    lane_completed[k] = true;
                    lane_rounds[k] = rounds;
                    continue;
                }
                all_finished = false;
            }
            if all_finished {
                break;
            }
            if rounds >= config.max_rounds {
                for k in 0..lanes {
                    if !finished[k] {
                        lane_rounds[k] = rounds;
                    }
                }
                break;
            }

            // Build the shared frontier: union the live lanes' active lists
            // and set their membership bits.
            union_active.clear();
            let mut first = true;
            for (k, active) in lane_active.iter().enumerate() {
                if finished[k] {
                    continue;
                }
                if first {
                    union_active.extend_from_slice(active);
                    first = false;
                } else {
                    merge_sorted_union(&union_active, active, &mut merge_scratch);
                    std::mem::swap(&mut union_active, &mut merge_scratch);
                }
                let (word, bit) = (k / 64, 1u64 << (k % 64));
                for &v in active {
                    member[v as usize * lw + word] |= bit;
                }
            }
            for k in 0..lanes {
                if !finished[k] {
                    lane_undone[k].clear();
                }
            }
            let parallel = threads > 1 && union_active.len() >= MIN_ACTIVE_PER_SHARD;
            if !parallel {
                // Pick each live lane's delivery layout from *its* active
                // list — the same per-round predicate its sequential run
                // evaluates (both layouts yield identical inboxes, so this
                // is purely a throughput knob).
                for k in 0..lanes {
                    if !finished[k] {
                        stagings[k].set_dense(csr_dense_round(
                            buckets_local,
                            &nbr_offsets,
                            &lane_active[k],
                        ));
                    }
                }
                // Sequential walk: one pass over the union list, each row
                // resolved once, lanes stepped in ascending lane order.
                // When sharding is on, the ascending walk lets one forward
                // cursor track the owning shard.
                let mut shard_idx = 0usize;
                for &vu in &union_active {
                    let i = vu as usize;
                    let row: &[NodeId] = match sharded {
                        Some(sg) => {
                            while i >= sg.plan().range(shard_idx).1 as usize {
                                shard_idx += 1;
                            }
                            let shard = sg.shard(shard_idx);
                            sharded_row(
                                shard,
                                (i - shard.start_index()) as u32,
                                &mut inline_scratch,
                            )
                        }
                        None => {
                            let lo = nbr_offsets[i] as usize;
                            let hi = nbr_offsets[i + 1] as usize;
                            &nbrs[lo..hi]
                        }
                    };
                    for w in 0..lw {
                        let mut bits = member[i * lw + w];
                        member[i * lw + w] = 0;
                        while bits != 0 {
                            let k = w * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let staging_k = &mut stagings[k];
                            let mut msgs = 0u64;
                            let now_done = step_node(
                                self.graph,
                                self.ids,
                                self.level,
                                row,
                                &mut nodes[i * lanes + k],
                                NodeId(i as u32),
                                rounds,
                                arenas[k].inbox(i),
                                config.message_bit_limit,
                                &mut lane_max_bits[k],
                                &mut outbox_pool,
                                &mut |_from, to, msg| {
                                    msgs += 1;
                                    staging_k.stage(to, msg);
                                },
                            );
                            lane_messages[k] += msgs;
                            if !now_done {
                                lane_undone[k].push(vu);
                            }
                            let flag = &mut done[i * lanes + k];
                            if now_done != *flag {
                                *flag = now_done;
                                if now_done {
                                    undone_count[k] -= 1;
                                } else {
                                    undone_count[k] += 1;
                                }
                            }
                        }
                    }
                }
                for k in 0..lanes {
                    if finished[k] {
                        continue;
                    }
                    if stagings[k].flip(&mut arenas[k], &mut receivers) {
                        // Full all-to-all flip: the receiver set is the
                        // identity (left implicit by `flip`), which already
                        // covers the undone list — materialize it directly.
                        lane_active[k].clear();
                        lane_active[k].extend(0..n as u32);
                    } else {
                        next_active(&mut receivers, &lane_undone[k], &mut lane_active[k], n);
                    }
                }
            } else {
                // Parallel walk: contiguous windows of the union list (one
                // per graph shard when sharding is on, degree-balanced cuts
                // otherwise), each stepped by one claimable task into
                // task-local per-lane staging buffers.
                let windows: Vec<(usize, usize)> = match sharded {
                    Some(sg) => {
                        let plan = sg.plan();
                        let mut windows = Vec::with_capacity(sg.num_shards());
                        let mut lo = 0usize;
                        for s in 0..sg.num_shards() {
                            let end = plan.range(s).1;
                            let hi = lo + union_active[lo..].partition_point(|&a| a < end);
                            windows.push((lo, hi));
                            lo = hi;
                        }
                        windows
                    }
                    None => {
                        let cap = (threads * SHARD_OVERSUBSCRIPTION)
                            .min(union_active.len() / MIN_ACTIVE_PER_SHARD)
                            .max(1);
                        balanced_cuts(union_active.len(), cap, |idx| {
                            let i = union_active[idx] as usize;
                            (nbr_offsets[i + 1] - nbr_offsets[i]) as u64 + 1
                        })
                    }
                };
                // Split the lane-major automata and done flags along the
                // windows' node ranges (scaled by the lane count). Sharded
                // windows span their whole shard range so empty windows
                // still consume their slice.
                let node_bounds: Vec<(usize, usize)> = match sharded {
                    Some(sg) => (0..sg.num_shards())
                        .map(|s| {
                            let (lo, hi) = sg.plan().range(s);
                            (lo as usize, hi as usize)
                        })
                        .collect(),
                    None => windows
                        .iter()
                        .map(|&(lo, hi)| {
                            (union_active[lo] as usize, union_active[hi - 1] as usize + 1)
                        })
                        .collect(),
                };
                let scaled: Vec<(usize, usize)> = node_bounds
                    .iter()
                    .map(|&(lo, hi)| (lo * lanes, hi * lanes))
                    .collect();
                let node_views = split_ranges_mut(&mut nodes, &scaled);
                let done_views = split_ranges_mut(&mut done, &scaled);
                let tasks_used = windows.len();
                let mut tasks: Vec<BatchTask<'_, A>> = Vec::with_capacity(tasks_used);
                {
                    let mut node_views = node_views.into_iter();
                    let mut done_views = done_views.into_iter();
                    let mut staged_iter = task_staged.iter_mut();
                    let mut undone_iter = task_undone.iter_mut();
                    let mut scratch_iter = task_scratch.iter_mut();
                    let mut pools_iter = task_pools.iter_mut();
                    for (t, (&(wlo, whi), &(base, _))) in
                        windows.iter().zip(&node_bounds).enumerate()
                    {
                        tasks.push(BatchTask {
                            graph: self.graph,
                            ids: self.ids,
                            level: self.level,
                            nbr_offsets: &nbr_offsets,
                            nbrs: &nbrs,
                            shard: sharded.map(|sg| sg.shard(t)),
                            nodes: node_views.next().expect("one view per window"),
                            done: done_views.next().expect("one view per window"),
                            base,
                            active_slice: &union_active[wlo..whi],
                            member: &member,
                            lanes,
                            lw,
                            staged: staged_iter.next().expect("sized max_tasks"),
                            undone: undone_iter.next().expect("sized max_tasks"),
                            scratch: scratch_iter.next().expect("sized max_tasks"),
                            outbox_pool: pools_iter.next().expect("sized max_tasks"),
                            counts: vec![(0, 0, 0); lanes],
                        });
                    }
                }

                let bit_limit = config.message_bit_limit;
                let arenas_ref = &arenas;
                if tasks.len() == 1 {
                    run_batch_task(&mut tasks[0], rounds, arenas_ref, bit_limit);
                } else {
                    let pool = pool.as_ref().expect("parallel path implies a pool");
                    pool.par_chunks_mut(&mut tasks, |_, chunk| {
                        for task in chunk {
                            run_batch_task(task, rounds, arenas_ref, bit_limit);
                        }
                    });
                }

                for task in &tasks {
                    for (k, &(msgs, bits, delta)) in task.counts.iter().enumerate() {
                        lane_messages[k] += msgs;
                        lane_max_bits[k] = lane_max_bits[k].max(bits);
                        undone_count[k] = (undone_count[k] as i64 + delta) as usize;
                    }
                }
                drop(tasks);
                // Clear the membership bits along the union list (the tasks
                // only read them).
                for &vu in &union_active {
                    let i = vu as usize;
                    member[i * lw..(i + 1) * lw].fill(0);
                }
                // Per lane: merge the task-order staging buffers (ascending
                // node order == sequential staging order) and rebuild the
                // active list.
                let mut chunk_scratch: Vec<Vec<(u32, Message)>> = Vec::with_capacity(tasks_used);
                for k in 0..lanes {
                    if finished[k] {
                        continue;
                    }
                    chunk_scratch.clear();
                    chunk_scratch.extend(
                        task_staged[..tasks_used]
                            .iter_mut()
                            .map(|per_lane| std::mem::take(&mut per_lane[k])),
                    );
                    stagings[k].flip_shards(&mut chunk_scratch, &mut arenas[k], &mut receivers);
                    for (per_lane, drained) in task_staged[..tasks_used]
                        .iter_mut()
                        .zip(chunk_scratch.drain(..))
                    {
                        per_lane[k] = drained;
                    }
                    lane_undone[k].clear();
                    for per_lane in &task_undone[..tasks_used] {
                        lane_undone[k].extend_from_slice(&per_lane[k]);
                    }
                    next_active(&mut receivers, &lane_undone[k], &mut lane_active[k], n);
                }
            }
            rounds += 1;
        }

        // Assemble the per-lane reports (outputs gathered lane-major).
        (0..lanes)
            .map(|k| ExecutionReport {
                completed: lane_completed[k],
                rounds: lane_rounds[k],
                messages: lane_messages[k],
                max_message_bits: lane_max_bits[k],
                outputs: (0..n).map(|i| nodes[i * lanes + k].output()).collect(),
                per_edge_messages: None,
                utilized_edges: None,
                trace: None,
            })
            .collect()
    }
}

/// One claimable unit of a batched round: a contiguous window of the union
/// frontier plus the lane-major automata/done slices covering its node
/// range, task-local per-lane staging buffers and undone lists, and a
/// per-lane outcome accumulator.
struct BatchTask<'a, A> {
    graph: &'a Graph,
    ids: &'a IdAssignment,
    level: KtLevel,
    nbr_offsets: &'a [u32],
    nbrs: &'a [NodeId],
    /// The graph shard owning this task's node range (sharded stepping
    /// resolves rows from its local CSR slice).
    shard: Option<&'a GraphShard>,
    /// Lane-major automata slice for nodes `[base, …)`.
    nodes: &'a mut [A],
    done: &'a mut [bool],
    base: usize,
    active_slice: &'a [u32],
    member: &'a [u64],
    lanes: usize,
    lw: usize,
    /// `staged[k]` — lane `k`'s outgoing messages, in this window's
    /// ascending send order.
    staged: &'a mut Vec<Vec<(u32, Message)>>,
    /// `undone[k]` — lane `k`'s not-done nodes of this window (ascending).
    undone: &'a mut Vec<Vec<u32>>,
    scratch: &'a mut Vec<NodeId>,
    outbox_pool: &'a mut Vec<(NodeId, Message)>,
    /// Per lane: `(messages, max_bits, undone_count delta)`.
    counts: Vec<(u64, u32, i64)>,
}

/// Steps one [`BatchTask`]: walks its window of the union frontier, resolves
/// each row once and fans the activation into every member lane — the same
/// per-lane arithmetic as the sequential batch walk, so the two cannot
/// drift.
fn run_batch_task<A: NodeAlgorithm>(
    task: &mut BatchTask<'_, A>,
    round: u64,
    arenas: &[MessageArena],
    bit_limit: u32,
) {
    let lanes = task.lanes;
    let lw = task.lw;
    for buf in task.undone.iter_mut() {
        buf.clear();
    }
    for &vu in task.active_slice {
        let i = vu as usize;
        let row: &[NodeId] = match task.shard {
            Some(shard) => sharded_row(shard, (i - shard.start_index()) as u32, task.scratch),
            None => {
                let lo = task.nbr_offsets[i] as usize;
                let hi = task.nbr_offsets[i + 1] as usize;
                &task.nbrs[lo..hi]
            }
        };
        for w in 0..lw {
            let mut bits = task.member[i * lw + w];
            while bits != 0 {
                let k = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let (msgs_k, max_bits_k, delta_k) = {
                    let c = &mut task.counts[k];
                    (&mut c.0, &mut c.1, &mut c.2)
                };
                let staged_k = &mut task.staged[k];
                let now_done = step_node(
                    task.graph,
                    task.ids,
                    task.level,
                    row,
                    &mut task.nodes[(i - task.base) * lanes + k],
                    NodeId(i as u32),
                    round,
                    arenas[k].inbox(i),
                    bit_limit,
                    max_bits_k,
                    task.outbox_pool,
                    &mut |_from, to, msg| {
                        *msgs_k += 1;
                        staged_k.push((to.0, msg));
                    },
                );
                if !now_done {
                    task.undone[k].push(vu);
                }
                let flag = &mut task.done[(i - task.base) * lanes + k];
                if now_done != *flag {
                    *flag = now_done;
                    *delta_k += if now_done { -1 } else { 1 };
                }
            }
        }
    }
}

/// Merges two sorted, duplicate-free node lists into `out` (sorted,
/// deduplicated) — the union-frontier builder. Mirrors the sync loop's
/// merge; duplicated here because that one appends into caller-owned
/// buffers with different clearing conventions.
fn merge_sorted_union(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoundContext;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use symbreak_graphs::generators;

    /// A chatty randomized automaton: every round an undecided node draws a
    /// value, broadcasts it and decides with probability depending on the
    /// inbox — enough nondeterminism (per lane) to catch any cross-lane
    /// state bleed.
    struct Chatty {
        rng: StdRng,
        decided: bool,
        value: u64,
    }

    impl NodeAlgorithm for Chatty {
        fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
            if self.decided {
                return;
            }
            let heard_max = inbox.iter().map(|m| m.values()[0]).max().unwrap_or(0);
            self.value = self.rng.gen::<u64>() >> 32;
            if ctx.round() > 0 && self.value > heard_max {
                self.decided = true;
                return;
            }
            ctx.broadcast(&Message::tagged(7).with_value(self.value));
        }
        fn is_done(&self) -> bool {
            self.decided
        }
        fn output(&self) -> Option<u64> {
            self.decided.then_some(self.value)
        }
    }

    fn chatty(seed: u64, i: usize) -> Chatty {
        Chatty {
            rng: StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
            decided: false,
            value: 0,
        }
    }

    fn assert_lanes_match_sequential(config: SyncConfig, lanes: usize) {
        let g = generators::connected_gnp(60, 0.15, &mut StdRng::seed_from_u64(5));
        let ids = IdAssignment::identity(60);
        let batch = BatchSimulator::new(&g, &ids, KtLevel::KT1);
        let reports = batch.run_batch(config, lanes, |k, init| {
            chatty(1000 + k as u64, init.node.index())
        });
        assert_eq!(reports.len(), lanes);
        let sim = SyncSimulator::new(&g, &ids, KtLevel::KT1);
        for (k, report) in reports.iter().enumerate() {
            let solo = sim.run(config, |init| chatty(1000 + k as u64, init.node.index()));
            assert_eq!(report, &solo, "lane {k} drifted from its sequential run");
        }
    }

    #[test]
    fn lanes_are_bit_identical_to_sequential_runs() {
        for lanes in [1usize, 3, 8] {
            assert_lanes_match_sequential(SyncConfig::default().with_threads(1), lanes);
        }
    }

    #[test]
    fn lanes_survive_threads_and_shards() {
        for (threads, shards) in [(4usize, 0usize), (1, 3), (4, 3)] {
            assert_lanes_match_sequential(
                SyncConfig::default()
                    .with_threads(threads)
                    .with_shards(shards),
                5,
            );
        }
    }

    #[test]
    fn instrumented_batch_falls_back_to_sequential_lanes() {
        let g = generators::cycle(24);
        let ids = IdAssignment::identity(24);
        let batch = BatchSimulator::new(&g, &ids, KtLevel::KT1);
        let config = SyncConfig {
            track_per_edge: true,
            ..SyncConfig::default()
        };
        let reports = batch.run_batch(config, 3, |k, init| chatty(k as u64, init.node.index()));
        for (k, report) in reports.iter().enumerate() {
            assert!(report.per_edge_messages.is_some(), "lane {k}");
            let solo = SyncSimulator::new(&g, &ids, KtLevel::KT1)
                .run(config, |init| chatty(k as u64, init.node.index()));
            assert_eq!(report, &solo);
        }
    }

    #[test]
    fn lane_count_resolution_prefers_explicit_setting() {
        assert_eq!(SyncConfig::default().with_lanes(6).resolved_lanes(), 6);
        assert!(SyncConfig::default().resolved_lanes() >= 1);
    }
}
