//! Execution traces and their decoded representations.
//!
//! Definition 2.1 of the paper describes an execution as the messages sent in
//! each round plus node states; Definition 2.2 defines two executions to be
//! *similar* if their *decoded representations* — obtained by replacing every
//! occurrence of an ID value `φ(v)` by the node name `v` — coincide. The
//! lower-bound experiments in `symbreak-lowerbounds` compare traces of a
//! comparison-based algorithm on the base graph and on a crossed graph using
//! exactly this notion.

use serde::{Deserialize, Serialize};
use symbreak_graphs::{IdAssignment, NodeId};

use crate::Message;

/// One recorded message: sender, receiver and payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMessage {
    /// Sending node (simulator address).
    pub from: NodeId,
    /// Receiving node (simulator address).
    pub to: NodeId,
    /// The message payload.
    pub message: Message,
}

/// A full per-round record of every message sent during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    rounds: Vec<Vec<TraceMessage>>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { rounds: Vec::new() }
    }

    pub(crate) fn push_round(&mut self, messages: Vec<TraceMessage>) {
        self.rounds.push(messages);
    }

    /// Number of recorded rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total number of recorded messages.
    pub fn num_messages(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// The messages of round `i`.
    pub fn round(&self, i: usize) -> &[TraceMessage] {
        &self.rounds[i]
    }

    /// Iterates over all `(round, message)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &TraceMessage)> + '_ {
        self.rounds
            .iter()
            .enumerate()
            .flat_map(|(r, ms)| ms.iter().map(move |m| (r, m)))
    }

    /// Computes the decoded representation of this trace under the given ID
    /// assignment (Definition 2.2): every ID field is replaced by the node
    /// carrying that ID (or kept as an opaque value if no node carries it).
    pub fn decode(&self, ids: &IdAssignment) -> DecodedTrace {
        let rounds = self
            .rounds
            .iter()
            .map(|msgs| {
                let mut decoded: Vec<DecodedMessage> = msgs
                    .iter()
                    .map(|m| DecodedMessage {
                        from: m.from,
                        to: m.to,
                        tag: m.message.tag(),
                        ids: m
                            .message
                            .ids()
                            .iter()
                            .map(|&id| match ids.node_with_id(id) {
                                Some(v) => DecodedField::Node(v),
                                None => DecodedField::Unknown(id),
                            })
                            .collect(),
                        values: m.message.values().to_vec(),
                    })
                    .collect();
                // Canonical order so that per-round comparison is independent
                // of the (arbitrary) send order within a round.
                decoded.sort();
                decoded
            })
            .collect();
        DecodedTrace { rounds }
    }
}

/// An ID field after decoding: either the node that carries the ID, or the
/// raw value if no node does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DecodedField {
    /// The ID belonged to this node.
    Node(NodeId),
    /// The ID did not belong to any node of the graph.
    Unknown(u64),
}

/// A message in decoded representation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DecodedMessage {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Message tag.
    pub tag: u16,
    /// Decoded ID fields.
    pub ids: Vec<DecodedField>,
    /// Ordinary fields (copied verbatim).
    pub values: Vec<u64>,
}

/// The decoded representation of a whole execution; two executions are
/// *similar* (Definition 2.2) exactly when their decoded traces are equal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedTrace {
    rounds: Vec<Vec<DecodedMessage>>,
}

impl DecodedTrace {
    /// Number of rounds in the decoded trace.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The decoded messages of round `i` (in canonical order).
    pub fn round(&self, i: usize) -> &[DecodedMessage] {
        &self.rounds[i]
    }

    /// Whether two decoded traces are identical — the similarity relation of
    /// Definition 2.2.
    pub fn similar_to(&self, other: &DecodedTrace) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(from: u32, to: u32, id: u64) -> TraceMessage {
        TraceMessage {
            from: NodeId(from),
            to: NodeId(to),
            message: Message::tagged(1).with_id(id),
        }
    }

    #[test]
    fn counts() {
        let mut t = Trace::new();
        t.push_round(vec![msg(0, 1, 100), msg(1, 0, 200)]);
        t.push_round(vec![msg(0, 1, 100)]);
        assert_eq!(t.num_rounds(), 2);
        assert_eq!(t.num_messages(), 3);
        assert_eq!(t.round(0).len(), 2);
        assert_eq!(t.iter().count(), 3);
    }

    #[test]
    fn decoding_replaces_ids_with_nodes() {
        let ids = IdAssignment::from_vec(vec![100, 200]);
        let mut t = Trace::new();
        t.push_round(vec![msg(0, 1, 200), msg(1, 0, 999)]);
        let d = t.decode(&ids);
        let round = d.round(0);
        // Canonical ordering sorts by (from, to, …).
        assert_eq!(round[0].ids, vec![DecodedField::Node(NodeId(1))]);
        assert_eq!(round[1].ids, vec![DecodedField::Unknown(999)]);
    }

    #[test]
    fn similarity_is_invariant_under_order_preserving_relabeling() {
        // Execution 1: IDs (100, 200); node 0 sends node 1's ID to it.
        let ids1 = IdAssignment::from_vec(vec![100, 200]);
        let mut t1 = Trace::new();
        t1.push_round(vec![msg(0, 1, 200)]);
        // Execution 2: IDs (5, 7); same decoded behaviour.
        let ids2 = IdAssignment::from_vec(vec![5, 7]);
        let mut t2 = Trace::new();
        t2.push_round(vec![msg(0, 1, 7)]);

        assert!(t1.decode(&ids1).similar_to(&t2.decode(&ids2)));

        // Execution 3: node 0 sends its *own* ID instead — not similar.
        let mut t3 = Trace::new();
        t3.push_round(vec![msg(0, 1, 5)]);
        assert!(!t1.decode(&ids1).similar_to(&t3.decode(&ids2)));
    }

    #[test]
    fn canonical_ordering_ignores_send_order() {
        let ids = IdAssignment::from_vec(vec![1, 2, 3]);
        let mut a = Trace::new();
        a.push_round(vec![msg(0, 1, 2), msg(2, 1, 2)]);
        let mut b = Trace::new();
        b.push_round(vec![msg(2, 1, 2), msg(0, 1, 2)]);
        assert!(a.decode(&ids).similar_to(&b.decode(&ids)));
    }
}
