//! Model parameters of the KT-ρ CONGEST model.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The initial-knowledge radius ρ of the KT-ρ CONGEST model.
///
/// In KT-ρ, every node `v` initially knows (i) the IDs of all nodes at
/// distance at most ρ from `v` and (ii) the neighbourhood of every node at
/// distance at most ρ − 1 from `v` (Section 1.4.1 of the paper).
///
/// `KT0` is the clean network model, `KT1` gives knowledge of neighbours'
/// IDs, and `KT2` additionally gives knowledge of the two-hop neighbourhood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KtLevel(pub u32);

impl KtLevel {
    /// The clean network model (knowledge of only one's own ID).
    pub const KT0: KtLevel = KtLevel(0);
    /// Knowledge of neighbours' IDs (the model of Sections 2–3).
    pub const KT1: KtLevel = KtLevel(1);
    /// Knowledge of the two-hop neighbourhood (the model of Section 4).
    pub const KT2: KtLevel = KtLevel(2);

    /// The radius ρ.
    #[inline]
    pub fn radius(self) -> u32 {
        self.0
    }

    /// Whether a node may know the ID of a node at distance `dist`.
    #[inline]
    pub fn knows_ids_at(self, dist: u32) -> bool {
        dist <= self.0
    }

    /// Whether a node may know the full neighbourhood of a node at distance
    /// `dist`.
    #[inline]
    pub fn knows_adjacency_at(self, dist: u32) -> bool {
        self.0 > 0 && dist < self.0
    }
}

impl fmt::Display for KtLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KT-{}", self.0)
    }
}

impl Default for KtLevel {
    fn default() -> Self {
        KtLevel::KT1
    }
}

/// Default per-message budget for ordinary (non-ID) payload bits.
///
/// CONGEST messages carry `O(log n)` bits; the simulator uses a conservative
/// constant so that all of the paper's algorithms (which send a constant
/// number of IDs, colours, ranks, or counters per message) fit comfortably,
/// while anything that tried to ship whole neighbourhoods in one message
/// would be rejected.
pub const DEFAULT_MESSAGE_BITS: u32 = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radii() {
        assert_eq!(KtLevel::KT0.radius(), 0);
        assert_eq!(KtLevel::KT1.radius(), 1);
        assert_eq!(KtLevel::KT2.radius(), 2);
        assert_eq!(KtLevel(5).radius(), 5);
    }

    #[test]
    fn knowledge_predicates() {
        assert!(KtLevel::KT0.knows_ids_at(0));
        assert!(!KtLevel::KT0.knows_ids_at(1));
        assert!(!KtLevel::KT0.knows_adjacency_at(0));

        assert!(KtLevel::KT1.knows_ids_at(1));
        assert!(!KtLevel::KT1.knows_ids_at(2));
        assert!(KtLevel::KT1.knows_adjacency_at(0));
        assert!(!KtLevel::KT1.knows_adjacency_at(1));

        assert!(KtLevel::KT2.knows_ids_at(2));
        assert!(KtLevel::KT2.knows_adjacency_at(1));
        assert!(!KtLevel::KT2.knows_adjacency_at(2));
    }

    #[test]
    fn display_and_default() {
        assert_eq!(KtLevel::KT2.to_string(), "KT-2");
        assert_eq!(KtLevel::default(), KtLevel::KT1);
        assert!(KtLevel::KT0 < KtLevel::KT1);
    }
}
