//! A naive synchronous simulator kept as a correctness oracle and
//! throughput baseline.
//!
//! [`NaiveSyncSimulator`] reproduces the pre-engine implementation of
//! [`crate::SyncSimulator::run`] faithfully: per-node `Vec<Vec<Message>>`
//! inboxes reallocated every round, a cloned `Vec<Vec<NodeId>>` adjacency
//! snapshot, a per-message `edge_between` lookup and `Option`-checked
//! instrumentation inside the inner loop.
//!
//! It must produce **bit-identical** [`ExecutionReport`]s to the arena-based
//! engine (the differential tests in `tests/engine_equivalence.rs` assert
//! this), and it is what the `sim_engine` bench measures the engine against.

use symbreak_graphs::NodeId;

use crate::sync::mark_utilized;
use crate::trace::{Trace, TraceMessage};
use crate::{
    ExecutionReport, KnowledgeView, Message, NodeAlgorithm, NodeInit, RoundContext, SyncConfig,
    SyncSimulator,
};

/// The naive round loop, wrapped around the same simulator handle.
///
/// Construct a [`SyncSimulator`] as usual and pass it here; `run` accepts
/// the same configuration and node factory.
#[derive(Debug, Clone, Copy)]
pub struct NaiveSyncSimulator<'g> {
    sim: SyncSimulator<'g>,
}

impl<'g> NaiveSyncSimulator<'g> {
    /// Wraps a simulator handle.
    pub fn new(sim: SyncSimulator<'g>) -> Self {
        NaiveSyncSimulator { sim }
    }

    /// Runs exactly like [`SyncSimulator::run`], using the historical
    /// nested-`Vec` implementation.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SyncSimulator::run`].
    pub fn run<A, F>(&self, config: SyncConfig, mut make: F) -> ExecutionReport
    where
        A: NodeAlgorithm,
        F: FnMut(NodeInit<'_>) -> A,
    {
        let graph = self.sim.graph();
        let ids = self.sim.ids();
        let level = self.sim.level();
        let n = graph.num_nodes();
        let neighbor_lists: Vec<Vec<NodeId>> = (0..n)
            .map(|i| graph.neighbor_vec(NodeId(i as u32)))
            .collect();

        let mut nodes: Vec<A> = (0..n)
            .map(|i| {
                let v = NodeId(i as u32);
                make(NodeInit {
                    node: v,
                    num_nodes: n,
                    knowledge: KnowledgeView::new(graph, ids, level, v),
                })
            })
            .collect();

        let mut inboxes: Vec<Vec<Message>> = vec![Vec::new(); n];
        let mut messages: u64 = 0;
        let mut max_bits: u32 = 0;
        let mut rounds: u64 = 0;
        let mut completed = false;
        let mut per_edge: Option<Vec<u64>> =
            config.track_per_edge.then(|| vec![0u64; graph.num_edges()]);
        let mut utilized: Option<Vec<bool>> = config
            .track_utilization
            .then(|| vec![false; graph.num_edges()]);
        let mut trace: Option<Trace> = config.record_trace.then(Trace::new);

        loop {
            let in_flight: usize = inboxes.iter().map(Vec::len).sum();
            if rounds > 0 && in_flight == 0 && nodes.iter().all(NodeAlgorithm::is_done) {
                completed = true;
                break;
            }
            if rounds >= config.max_rounds {
                break;
            }

            let mut next_inboxes: Vec<Vec<Message>> = vec![Vec::new(); n];
            let mut round_trace: Vec<TraceMessage> = Vec::new();

            for i in 0..n {
                let v = NodeId(i as u32);
                let inbox = std::mem::take(&mut inboxes[i]);
                let knowledge = KnowledgeView::new(graph, ids, level, v);
                let mut ctx = RoundContext::new(v, rounds, knowledge, &neighbor_lists[i]);
                nodes[i].on_round(&mut ctx, &inbox);
                for (to, msg) in ctx.take_outbox() {
                    let bits = msg.size_bits();
                    assert!(
                        bits <= config.message_bit_limit,
                        "node {v} sent a {bits}-bit message, exceeding the CONGEST budget of {} bits",
                        config.message_bit_limit
                    );
                    max_bits = max_bits.max(bits);
                    messages += 1;
                    let edge = graph
                        .edge_between(v, to)
                        .expect("send target verified to be a neighbour");
                    if let Some(pe) = per_edge.as_mut() {
                        pe[edge.index()] += 1;
                    }
                    if let Some(util) = utilized.as_mut() {
                        mark_utilized(graph, ids, util, v, to, edge, &msg);
                    }
                    if trace.is_some() {
                        round_trace.push(TraceMessage {
                            from: v,
                            to,
                            message: msg,
                        });
                    }
                    next_inboxes[to.index()].push(msg);
                }
            }

            if let Some(t) = trace.as_mut() {
                t.push_round(round_trace);
            }
            inboxes = next_inboxes;
            rounds += 1;
        }

        ExecutionReport {
            completed,
            rounds,
            messages,
            max_message_bits: max_bits,
            outputs: nodes.iter().map(NodeAlgorithm::output).collect(),
            per_edge_messages: per_edge,
            utilized_edges: utilized,
            trace,
        }
    }
}
