//! Naive simulators kept as correctness oracles and throughput baselines.
//!
//! [`NaiveSyncSimulator`] reproduces the pre-engine implementation of
//! [`crate::SyncSimulator::run`] faithfully: per-node `Vec<Vec<Message>>`
//! inboxes reallocated every round, a cloned `Vec<Vec<NodeId>>` adjacency
//! snapshot, a per-message `edge_between` lookup and `Option`-checked
//! instrumentation inside the inner loop.
//!
//! [`NaiveAsyncSimulator`] likewise preserves the pre-slot-index delay
//! wheel of [`crate::async_sim::AsyncSimulator`]: every time unit scans all
//! `n` nodes for pending deliveries and re-checks termination with a full
//! `is_done` sweep.
//!
//! Both must produce **bit-identical** reports to their engine counterparts
//! (the differential tests in `tests/engine_equivalence.rs` and
//! `tests/async_equivalence.rs` assert this), and they are what the
//! `sim_engine` bench measures the engine against.

use rand::Rng;
use symbreak_graphs::NodeId;

use crate::async_sim::{AsyncConfig, AsyncReport, AsyncSimulator};
use crate::faults::{FaultPlan, FaultSession, FaultStats};
use crate::sync::mark_utilized;
use crate::trace::{Trace, TraceMessage};
use crate::{
    ExecutionReport, KnowledgeView, Message, NodeAlgorithm, NodeInit, RoundContext, SyncConfig,
    SyncSimulator,
};

/// The naive round loop, wrapped around the same simulator handle.
///
/// Construct a [`SyncSimulator`] as usual and pass it here; `run` accepts
/// the same configuration and node factory.
#[derive(Debug, Clone, Copy)]
pub struct NaiveSyncSimulator<'g> {
    sim: SyncSimulator<'g>,
}

impl<'g> NaiveSyncSimulator<'g> {
    /// Wraps a simulator handle.
    pub fn new(sim: SyncSimulator<'g>) -> Self {
        NaiveSyncSimulator { sim }
    }

    /// Runs exactly like [`SyncSimulator::run`], using the historical
    /// nested-`Vec` implementation.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SyncSimulator::run`].
    pub fn run<A, F>(&self, config: SyncConfig, mut make: F) -> ExecutionReport
    where
        A: NodeAlgorithm,
        F: FnMut(NodeInit<'_>) -> A,
    {
        let graph = self.sim.graph();
        let ids = self.sim.ids();
        let level = self.sim.level();
        let n = graph.num_nodes();
        let neighbor_lists: Vec<Vec<NodeId>> = (0..n)
            .map(|i| graph.neighbor_vec(NodeId(i as u32)))
            .collect();

        let mut nodes: Vec<A> = (0..n)
            .map(|i| {
                let v = NodeId(i as u32);
                make(NodeInit {
                    node: v,
                    num_nodes: n,
                    knowledge: KnowledgeView::new(graph, ids, level, v),
                })
            })
            .collect();

        let mut inboxes: Vec<Vec<Message>> = vec![Vec::new(); n];
        let mut messages: u64 = 0;
        let mut max_bits: u32 = 0;
        let mut rounds: u64 = 0;
        let mut completed = false;
        let mut per_edge: Option<Vec<u64>> =
            config.track_per_edge.then(|| vec![0u64; graph.num_edges()]);
        let mut utilized: Option<Vec<bool>> = config
            .track_utilization
            .then(|| vec![false; graph.num_edges()]);
        let mut trace: Option<Trace> = config.record_trace.then(Trace::new);

        loop {
            let in_flight: usize = inboxes.iter().map(Vec::len).sum();
            if rounds > 0 && in_flight == 0 && nodes.iter().all(NodeAlgorithm::is_done) {
                completed = true;
                break;
            }
            if rounds >= config.max_rounds {
                break;
            }

            let mut next_inboxes: Vec<Vec<Message>> = vec![Vec::new(); n];
            let mut round_trace: Vec<TraceMessage> = Vec::new();

            for i in 0..n {
                let v = NodeId(i as u32);
                let inbox = std::mem::take(&mut inboxes[i]);
                let knowledge = KnowledgeView::new(graph, ids, level, v);
                let mut ctx = RoundContext::new(v, rounds, knowledge, &neighbor_lists[i]);
                nodes[i].on_round(&mut ctx, &inbox);
                for (to, msg) in ctx.take_outbox() {
                    let bits = msg.size_bits();
                    assert!(
                        bits <= config.message_bit_limit,
                        "node {v} sent a {bits}-bit message, exceeding the CONGEST budget of {} bits",
                        config.message_bit_limit
                    );
                    max_bits = max_bits.max(bits);
                    messages += 1;
                    let edge = graph
                        .edge_between(v, to)
                        .expect("send target verified to be a neighbour");
                    if let Some(pe) = per_edge.as_mut() {
                        pe[edge.index()] += 1;
                    }
                    if let Some(util) = utilized.as_mut() {
                        mark_utilized(graph, ids, util, v, to, edge, &msg);
                    }
                    if trace.is_some() {
                        round_trace.push(TraceMessage {
                            from: v,
                            to,
                            message: msg,
                        });
                    }
                    next_inboxes[to.index()].push(msg);
                }
            }

            if let Some(t) = trace.as_mut() {
                t.push_round(round_trace);
            }
            inboxes = next_inboxes;
            rounds += 1;
        }

        ExecutionReport {
            completed,
            rounds,
            messages,
            max_message_bits: max_bits,
            outputs: nodes.iter().map(NodeAlgorithm::output).collect(),
            per_edge_messages: per_edge,
            utilized_edges: utilized,
            trace,
        }
    }
}

/// The historical full-scan delay wheel, wrapped around the same
/// asynchronous simulator handle.
///
/// Every time unit visits all `n` nodes (delivering whatever the current
/// wheel slot holds for each) and re-checks termination with a full
/// `is_done` sweep — the `O(n)`-per-tick behaviour the slot-indexed wheel
/// replaced. Kept as the differential oracle for
/// `tests/async_equivalence.rs`: under the same seed it must produce
/// bit-identical [`AsyncReport`]s, including the order in which random
/// delays are drawn.
#[derive(Debug, Clone, Copy)]
pub struct NaiveAsyncSimulator<'g> {
    sim: AsyncSimulator<'g>,
}

impl<'g> NaiveAsyncSimulator<'g> {
    /// Wraps a simulator handle.
    pub fn new(sim: AsyncSimulator<'g>) -> Self {
        NaiveAsyncSimulator { sim }
    }

    /// Runs exactly like [`AsyncSimulator::run`], using the historical
    /// full-scan implementation.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`AsyncSimulator::run`].
    pub fn run<A, F, R>(&self, config: AsyncConfig, rng: &mut R, mut make: F) -> AsyncReport
    where
        A: NodeAlgorithm,
        F: FnMut(NodeInit<'_>) -> A,
        R: Rng + ?Sized,
    {
        let graph = self.sim.graph();
        let ids = self.sim.ids();
        let level = self.sim.level();
        let n = graph.num_nodes();
        let neighbor_lists: Vec<Vec<NodeId>> = (0..n)
            .map(|i| graph.neighbor_vec(NodeId(i as u32)))
            .collect();
        let mut nodes: Vec<A> = (0..n)
            .map(|i| {
                let v = NodeId(i as u32);
                make(NodeInit {
                    node: v,
                    num_nodes: n,
                    knowledge: KnowledgeView::new(graph, ids, level, v),
                })
            })
            .collect();

        let window = (config.max_delay + 1) as usize;
        let mut pending: Vec<Vec<Vec<Message>>> = vec![vec![Vec::new(); n]; window];
        let mut in_flight: u64 = 0;
        let mut messages: u64 = 0;
        let mut max_bits: u32 = 0;
        let mut time: u64 = 0;
        let mut completed = false;
        let mut activations: Vec<u64> = vec![0; n];

        loop {
            if time > 0 && in_flight == 0 && nodes.iter().all(NodeAlgorithm::is_done) {
                completed = true;
                break;
            }
            if time >= config.max_time {
                break;
            }

            let slot = (time % window as u64) as usize;
            let mut outgoing: Vec<(NodeId, Message)> = Vec::new();
            for i in 0..n {
                let inbox = std::mem::take(&mut pending[slot][i]);
                let activate = time == 0 || !inbox.is_empty();
                if !activate {
                    continue;
                }
                in_flight -= inbox.len() as u64;
                let v = NodeId(i as u32);
                let knowledge = KnowledgeView::new(graph, ids, level, v);
                let mut ctx = RoundContext::new(v, activations[i], knowledge, &neighbor_lists[i]);
                nodes[i].on_round(&mut ctx, &inbox);
                for (to, msg) in ctx.take_outbox() {
                    let bits = msg.size_bits();
                    assert!(
                        bits <= config.message_bit_limit,
                        "node {v} sent a {bits}-bit message, exceeding the CONGEST budget of {} bits",
                        config.message_bit_limit
                    );
                    max_bits = max_bits.max(bits);
                    outgoing.push((to, msg));
                }
                activations[i] += 1;
            }
            for (to, msg) in outgoing {
                let delay = rng.gen_range(1..=config.max_delay);
                let arrival = ((time + delay) % window as u64) as usize;
                pending[arrival][to.index()].push(msg);
                messages += 1;
                in_flight += 1;
            }
            time += 1;
        }

        AsyncReport {
            completed,
            time,
            messages,
            max_message_bits: max_bits,
            outputs: nodes.iter().map(NodeAlgorithm::output).collect(),
            faults: FaultStats::default(),
        }
    }

    /// Runs exactly like [`AsyncSimulator::run_with_faults`], using the
    /// historical full-scan implementation: every time unit visits all `n`
    /// nodes and idle-ticks through quiescent stretches instead of jumping
    /// to the next crash/recovery event. Under the same seed and plan it
    /// must produce a bit-identical [`AsyncReport`] — including the order
    /// of every drop / duplication / delay / jitter draw — which is what
    /// validates the slot wheel's event-jump logic differentially.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`AsyncSimulator::run_with_faults`].
    pub fn run_with_faults<A, F, R>(
        &self,
        config: AsyncConfig,
        plan: &FaultPlan,
        rng: &mut R,
        mut make: F,
    ) -> AsyncReport
    where
        A: NodeAlgorithm,
        F: FnMut(NodeInit<'_>) -> A,
        R: Rng + ?Sized,
    {
        if plan.is_identity() {
            // Mirror the wheel's identity dispatch: an identity plan runs the
            // fault-free loop with zero fault bookkeeping.
            return self.run(config, rng, make);
        }
        let graph = self.sim.graph();
        let ids = self.sim.ids();
        let level = self.sim.level();
        let n = graph.num_nodes();
        let neighbor_lists: Vec<Vec<NodeId>> = (0..n)
            .map(|i| graph.neighbor_vec(NodeId(i as u32)))
            .collect();
        let mut nodes: Vec<A> = (0..n)
            .map(|i| {
                let v = NodeId(i as u32);
                make(NodeInit {
                    node: v,
                    num_nodes: n,
                    knowledge: KnowledgeView::new(graph, ids, level, v),
                })
            })
            .collect();
        let mut session = FaultSession::new(plan, n, &config);

        let window = session.window();
        let mut pending: Vec<Vec<Vec<Message>>> = vec![vec![Vec::new(); n]; window];
        let mut in_flight: u64 = 0;
        let mut messages: u64 = 0;
        let mut max_bits: u32 = 0;
        let mut time: u64 = 0;
        let mut completed = false;
        let mut activations: Vec<u64> = vec![0; n];
        let mut delays: Vec<u64> = Vec::new();

        loop {
            session.apply_events(time, |i, reset| {
                if reset {
                    let v = NodeId(i as u32);
                    nodes[i] = make(NodeInit {
                        node: v,
                        num_nodes: n,
                        knowledge: KnowledgeView::new(graph, ids, level, v),
                    });
                    activations[i] = 0;
                }
            });
            if time > 0
                && in_flight == 0
                && session.revived().is_empty()
                && session.next_event_time().is_none()
                && nodes.iter().all(NodeAlgorithm::is_done)
            {
                completed = true;
                break;
            }
            if time >= config.max_time {
                break;
            }

            let slot = (time % window as u64) as usize;
            let mut outgoing: Vec<(NodeId, NodeId, Message)> = Vec::new();
            for i in 0..n {
                let inbox = std::mem::take(&mut pending[slot][i]);
                if session.is_down(i) {
                    // Arrivals at a down node are discarded.
                    if !inbox.is_empty() {
                        in_flight -= inbox.len() as u64;
                        session.note_crash_dropped(inbox.len() as u64);
                    }
                    continue;
                }
                let revived = session.revived().binary_search(&(i as u32)).is_ok();
                let activate = time == 0 || !inbox.is_empty() || revived;
                if !activate {
                    continue;
                }
                in_flight -= inbox.len() as u64;
                session.note_delivered(inbox.len() as u64);
                let v = NodeId(i as u32);
                let knowledge = KnowledgeView::new(graph, ids, level, v);
                let mut ctx = RoundContext::new(v, activations[i], knowledge, &neighbor_lists[i]);
                nodes[i].on_round(&mut ctx, &inbox);
                for (to, msg) in ctx.take_outbox() {
                    let bits = msg.size_bits();
                    assert!(
                        bits <= config.message_bit_limit,
                        "node {v} sent a {bits}-bit message, exceeding the CONGEST budget of {} bits",
                        config.message_bit_limit
                    );
                    max_bits = max_bits.max(bits);
                    outgoing.push((v, to, msg));
                }
                activations[i] += 1;
            }
            session.clear_revived();
            for (from, to, msg) in outgoing {
                messages += 1;
                session.route(from, to, rng, &mut delays);
                if delays.len() > 1 {
                    messages += delays.len() as u64 - 1;
                }
                for &d in &delays {
                    let arrival = ((time + d) % window as u64) as usize;
                    pending[arrival][to.index()].push(msg);
                    in_flight += 1;
                }
            }
            time += 1;
        }

        AsyncReport {
            completed,
            time,
            messages,
            max_message_bits: max_bits,
            outputs: nodes.iter().map(NodeAlgorithm::output).collect(),
            faults: session.stats,
        }
    }
}
