//! Error type for simulator-level failures.

use std::error::Error;
use std::fmt;

/// Errors reported by the CONGEST simulators.
///
/// Programming errors inside node algorithms (sending to a non-neighbour,
/// overflowing the message budget, querying knowledge outside the permitted
/// radius) are reported by panicking with a descriptive message, because they
/// indicate a bug in the algorithm rather than a recoverable condition. This
/// error type covers run-level conditions a caller may legitimately want to
/// handle.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The run hit the configured round limit before all nodes terminated.
    RoundLimitExceeded {
        /// The configured maximum number of rounds.
        limit: u64,
    },
    /// The provided ID assignment does not cover every node of the graph.
    IdAssignmentMismatch {
        /// Number of nodes in the graph.
        graph_nodes: usize,
        /// Number of nodes covered by the assignment.
        id_nodes: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "simulation exceeded the round limit of {limit}")
            }
            SimError::IdAssignmentMismatch {
                graph_nodes,
                id_nodes,
            } => write!(
                f,
                "ID assignment covers {id_nodes} nodes but the graph has {graph_nodes}"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::RoundLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("round limit"));
        let e = SimError::IdAssignmentMismatch {
            graph_nodes: 5,
            id_nodes: 3,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync>() {}
        assert_error::<SimError>();
    }
}
