//! A message-metered simulator for the KT-ρ CONGEST model.
//!
//! The paper *"Can We Break Symmetry with o(m) Communication?"* (PODC 2021)
//! proves all of its results in the synchronous CONGEST model with
//! `O(log n)`-bit messages, parameterised by the radius ρ of initial
//! knowledge (KT-ρ, Section 1.4.1). This crate implements that model as an
//! executable simulator:
//!
//! * [`KtLevel`] and [`KnowledgeView`] capture exactly what a node is allowed
//!   to know initially (IDs within radius ρ, adjacency within radius ρ − 1)
//!   and enforce it at query time.
//! * [`Message`] separates *ID-type* fields from *ordinary* fields, which is
//!   what the comparison-based lower-bound machinery of Section 2 needs
//!   (utilized edges, decoded representations of executions).
//! * [`SyncSimulator`] drives [`NodeAlgorithm`] automata round by round,
//!   metering every message, every round, per-edge traffic and utilized
//!   edges (Definition 2.3). Throughput knobs — worker threads
//!   ([`SyncConfig::threads`] / `CONGEST_THREADS`) and graph sharding with
//!   ghost-node frontiers ([`SyncConfig::shards`] / `CONGEST_SHARDS`) —
//!   never change results: reports are bit-identical at every
//!   thread/shard combination.
//! * [`CostAccount`] additionally supports *charged* costs, used when a
//!   substrate (the danner of Theorem 1.1, the asynchronous MST of
//!   Theorem 1.3) is invoked as a black box with published complexity.
//! * [`async_sim`] provides the α-synchronizer accounting of Theorem A.5 and
//!   a randomized-delay executor for asynchrony experiments.
//!
//! # Example: flooding a token
//!
//! ```
//! use symbreak_congest::{KtLevel, Message, NodeAlgorithm, NodeInit, RoundContext, SyncConfig,
//!     SyncSimulator};
//! use symbreak_graphs::{generators, IdAssignment};
//!
//! struct Flood { have: bool, done: bool }
//!
//! impl NodeAlgorithm for Flood {
//!     fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
//!         let newly = (ctx.round() == 0 && ctx.node().0 == 0) || (!self.have && !inbox.is_empty());
//!         if newly {
//!             self.have = true;
//!             ctx.broadcast(&Message::tagged(1));
//!         } else if self.have {
//!             self.done = true;
//!         }
//!     }
//!     fn is_done(&self) -> bool { self.done }
//!     fn output(&self) -> Option<u64> { Some(u64::from(self.have)) }
//! }
//!
//! let graph = generators::cycle(8);
//! let ids = IdAssignment::identity(8);
//! let sim = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
//! let report = sim.run(SyncConfig::default(), |_init: NodeInit<'_>| Flood { have: false, done: false });
//! assert!(report.completed);
//! assert!(report.outputs.iter().all(|o| *o == Some(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_sim;
pub mod audit;
mod batch;
pub mod checkpoint;
mod engine;
mod error;
pub mod faults;
mod knowledge;
pub mod lockstep;
mod message;
mod metrics;
mod model;
mod node;
pub mod reference;
mod sync;
pub mod trace;
pub mod trace_store;

pub use audit::{
    audit_enabled, AuditConfig, Auditor, Violation, ViolationKind, AUDIT_BUDGET_ENV, AUDIT_ENV,
    DEFAULT_BUDGET_C,
};
pub use batch::BatchSimulator;
pub use checkpoint::{
    CheckpointChain, CheckpointConfig, CheckpointRecord, PersistState, CHECKPOINT_DIR_ENV,
    CHECKPOINT_EVERY_ENV,
};
pub use engine::{NoopObserver, RoundObserver};
pub use error::SimError;
pub use faults::{
    fault_seed_from_env, scenario_enabled, CrashFault, DelayLaw, EdgeProb, FaultPlan, FaultStats,
    Recovery, FAULT_SCENARIOS_ENV, FAULT_SEED_ENV,
};
pub use knowledge::KnowledgeView;
pub use lockstep::{
    run_synchronized, run_synchronized_recovering, RejoinLedger, Synchronized,
    DEFAULT_REPLAY_DEPTH, PULSE_TAG,
};
pub use message::{Message, MAX_ID_FIELDS, MAX_VALUE_FIELDS};
pub use metrics::{CostAccount, PhaseCost};
pub use model::KtLevel;
pub use node::{NodeAlgorithm, NodeInit, RoundContext};
pub use sync::{ExecutionReport, SyncConfig, SyncSimulator, LANES_ENV, SHARDS_ENV, THREADS_ENV};
