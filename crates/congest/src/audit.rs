//! Runtime CONGEST-model compliance auditing.
//!
//! The simulator's correctness story so far is *differential* — every loop
//! is bit-identical to the naive reference. This module adds the orthogonal
//! *model-compliance* check: an [`Auditor`] that re-derives, per round, the
//! constraints the CONGEST model imposes on a legal execution and flags any
//! step that escapes them:
//!
//! * **Bandwidth** — a message's model size (16-bit tag plus one
//!   `w = ⌈log₂ n⌉`-bit word per ID/value field) must fit the per-edge
//!   budget `B = c·w` bits ([`AuditConfig::budget_c`], default
//!   [`DEFAULT_BUDGET_C`]).
//! * **Adjacency** — every message must travel on an edge of the input
//!   graph.
//! * **Multiplicity** — at most one message per edge *per direction* per
//!   round.
//! * **Shard windows** — the parallel loops' per-worker write windows must
//!   be pairwise disjoint within a round (the race-freedom invariant behind
//!   the bit-identical merge).
//! * **Inbox disjointness** — after a delivery flip, no two nodes' inbox
//!   ranges may alias the same arena slots.
//!
//! Violations carry full provenance — `(round, edge, lane, shard)` plus the
//! caller's replay seed — and either abort immediately
//! ([`AuditConfig::deny`], the `CONGEST_AUDIT=1` mode CI runs whole suites
//! under) or accumulate for inspection ([`Auditor::finish`]).
//!
//! Wiring: the sequential loop audits through the ordinary
//! [`crate::RoundObserver`] seam (the [`Auditor`] *is* an observer); the
//! parallel and sharded loops are monomorphized over `const AUDIT: bool` —
//! when on, each worker logs `(from, to, message)` triples that the main
//! thread replays in deterministic shard order, exactly like the
//! fault-injection and capture seams. When off, the logging branch compiles
//! out and the fast paths are unchanged.

use std::fmt;

use symbreak_graphs::{EdgeId, Graph, NodeId};

use crate::engine::{MessageArena, RoundObserver};
use crate::Message;

/// Environment variable enabling deny-mode auditing on every
/// [`crate::SyncSimulator::run`] / [`crate::BatchSimulator`] run
/// (`CONGEST_AUDIT=1`; empty or `0` disables). Instrumented runs
/// (trace / utilization / per-edge) keep their dedicated sequential
/// observer and are not audited.
pub const AUDIT_ENV: &str = "CONGEST_AUDIT";

/// Environment variable overriding the bandwidth budget multiplier `c`
/// of env-driven audits (`B = c·⌈log₂ n⌉` bits; default
/// [`DEFAULT_BUDGET_C`]).
pub const AUDIT_BUDGET_ENV: &str = "CONGEST_AUDIT_C";

/// Default bandwidth budget multiplier: `B = 24·⌈log₂ n⌉` bits. Generous
/// enough that every `O(log n)`-bit message of the shipped algorithms
/// passes structurally (a full message is `16 + 5w ≤ 24w` bits for every
/// `w ≥ 1`), tight enough to catch anything super-logarithmic.
pub const DEFAULT_BUDGET_C: u32 = 24;

/// Whether `CONGEST_AUDIT` requests env-driven (deny-mode) auditing.
pub fn audit_enabled() -> bool {
    std::env::var(AUDIT_ENV)
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Configuration of an audited run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Bandwidth budget multiplier: a message may carry at most
    /// `budget_c · ⌈log₂ n⌉` bits under the audit's model accounting.
    pub budget_c: u32,
    /// Deny mode: panic on the first violation (with full provenance)
    /// instead of accumulating it. This is what `CONGEST_AUDIT=1` runs use,
    /// so a green suite certifies zero violations.
    pub deny: bool,
    /// The caller's replay seed, stamped into every violation so a finding
    /// can be reproduced outside the audited run.
    pub seed: u64,
    /// The batch lane this audit covers (0 for plain runs), stamped into
    /// every violation.
    pub lane: usize,
}

impl AuditConfig {
    /// Collect mode: violations accumulate and are returned by
    /// [`Auditor::finish`] / [`crate::SyncSimulator::run_audited`].
    pub fn collect(seed: u64) -> Self {
        AuditConfig {
            budget_c: DEFAULT_BUDGET_C,
            deny: false,
            seed,
            lane: 0,
        }
    }

    /// Deny mode: the first violation panics with full provenance.
    pub fn deny(seed: u64) -> Self {
        AuditConfig {
            deny: true,
            ..Self::collect(seed)
        }
    }

    /// The env-driven configuration `CONGEST_AUDIT=1` runs use: deny mode,
    /// budget multiplier from `CONGEST_AUDIT_C` (default
    /// [`DEFAULT_BUDGET_C`]).
    pub fn from_env() -> Self {
        let budget_c = std::env::var(AUDIT_BUDGET_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_BUDGET_C);
        AuditConfig {
            budget_c,
            ..Self::deny(0)
        }
    }

    /// Overrides the bandwidth budget multiplier.
    pub fn with_budget(mut self, budget_c: u32) -> Self {
        self.budget_c = budget_c;
        self
    }

    /// Stamps violations with a batch lane.
    pub fn with_lane(mut self, lane: usize) -> Self {
        self.lane = lane;
        self
    }
}

/// What a [`Violation`] violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A message's model size exceeds the per-edge bandwidth budget.
    Bandwidth {
        /// The message's size under the audit's model accounting.
        bits: u32,
        /// The per-message budget `c·⌈log₂ n⌉` it exceeds.
        budget: u32,
    },
    /// A message addressed to a non-neighbour of its sender.
    Adjacency,
    /// More than one message on the same edge in the same direction within
    /// one round.
    Multiplicity {
        /// How many messages this edge-direction has carried this round,
        /// including the offending one.
        count: u32,
    },
    /// Two workers' write windows of the same round overlap.
    WindowOverlap {
        /// The earlier-recorded window's shard.
        other_shard: usize,
        /// The earlier-recorded window's node range.
        other_window: (usize, usize),
        /// The offending window's node range.
        window: (usize, usize),
    },
    /// Two nodes' delivered inbox ranges alias the same arena slots.
    InboxOverlap {
        /// The first aliasing node.
        a: NodeId,
        /// The second aliasing node.
        b: NodeId,
    },
}

/// One CONGEST-model violation with full provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// What was violated.
    pub kind: ViolationKind,
    /// The round the violation occurred in.
    pub round: u64,
    /// The sending node, when the violation concerns a message.
    pub from: Option<NodeId>,
    /// The receiving node, when the violation concerns a message.
    pub to: Option<NodeId>,
    /// The graph edge involved (`None` for adjacency violations — there is
    /// no such edge — and for window/inbox findings).
    pub edge: Option<EdgeId>,
    /// The batch lane ([`AuditConfig::lane`]).
    pub lane: usize,
    /// The worker shard whose replayed log raised the finding (`None` on
    /// the sequential loop).
    pub shard: Option<usize>,
    /// The caller's replay seed ([`AuditConfig::seed`]).
    pub seed: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CONGEST audit violation: ")?;
        match self.kind {
            ViolationKind::Bandwidth { bits, budget } => {
                write!(f, "message of {bits} model bits exceeds the {budget}-bit budget")?;
            }
            ViolationKind::Adjacency => write!(f, "send to a non-neighbour")?,
            ViolationKind::Multiplicity { count } => {
                write!(f, "edge direction carried {count} messages in one round")?;
            }
            ViolationKind::WindowOverlap {
                other_shard,
                other_window,
                window,
            } => {
                write!(
                    f,
                    "write window {window:?} overlaps shard {other_shard}'s window {other_window:?}"
                )?;
            }
            ViolationKind::InboxOverlap { a, b } => {
                write!(f, "inbox ranges of nodes {} and {} alias", a.0, b.0)?;
            }
        }
        write!(f, " [round {}", self.round)?;
        if let (Some(from), Some(to)) = (self.from, self.to) {
            write!(f, ", {} -> {}", from.0, to.0)?;
        }
        if let Some(edge) = self.edge {
            write!(f, ", edge {}", edge.index())?;
        }
        write!(f, ", lane {}", self.lane)?;
        if let Some(shard) = self.shard {
            write!(f, ", shard {shard}")?;
        }
        write!(f, ", seed {}]", self.seed)
    }
}

/// The runtime compliance checker. See the module docs for the invariants
/// it enforces and [`crate::SyncSimulator::run_audited`] for the usual way
/// to engage it; tests may also drive it directly through
/// [`Auditor::on_send`] / [`Auditor::record_window`] / [`Auditor::end_round`].
pub struct Auditor<'g> {
    graph: &'g Graph,
    cfg: AuditConfig,
    /// `⌈log₂ max(n, 2)⌉` — the model's word size for this graph.
    word_bits: u32,
    /// `budget_c · word_bits`.
    budget_bits: u32,
    /// Per-directed-edge message counts for the current round
    /// (`2·num_edges` slots, slot `2e + (from > to)`).
    counts: Vec<u8>,
    /// Slots touched this round (so `end_round` clears in O(touched)).
    touched: Vec<u32>,
    /// Write windows recorded this round: `(shard, lo, hi)`.
    windows: Vec<(usize, usize, usize)>,
    round: u64,
    shard: Option<usize>,
    violations: Vec<Violation>,
}

impl<'g> Auditor<'g> {
    /// Creates an auditor for runs over `graph`.
    pub fn new(graph: &'g Graph, cfg: AuditConfig) -> Self {
        let n = graph.num_nodes().max(2) as u32;
        let word_bits = (n - 1).ilog2() + 1;
        Auditor {
            graph,
            cfg,
            word_bits,
            budget_bits: cfg.budget_c * word_bits,
            counts: vec![0; graph.num_edges() * 2],
            touched: Vec::new(),
            windows: Vec::new(),
            round: 0,
            shard: None,
            violations: Vec::new(),
        }
    }

    /// The per-message bandwidth budget in bits (`c·⌈log₂ n⌉`).
    pub fn budget_bits(&self) -> u32 {
        self.budget_bits
    }

    /// A message's size under the model accounting: a 16-bit tag plus one
    /// `⌈log₂ n⌉`-bit word per ID/value field. (Distinct from
    /// [`Message::size_bits`], which charges full 64-bit words — the audit
    /// asks whether the *information content* fits `O(log n)` bits.)
    pub fn model_bits(&self, message: &Message) -> u32 {
        16 + (message.ids().len() + message.values().len()) as u32 * self.word_bits
    }

    /// Stamps subsequently raised violations with a worker shard (the
    /// parallel loops set this while replaying each shard's send log).
    pub fn set_shard(&mut self, shard: Option<usize>) {
        self.shard = shard;
    }

    /// Audits one message: adjacency, per-direction multiplicity,
    /// bandwidth.
    pub fn on_send(&mut self, from: NodeId, to: NodeId, message: &Message) {
        let edge = self.graph.edge_between(from, to);
        match edge {
            None => self.raise(ViolationKind::Adjacency, Some(from), Some(to), None),
            Some(edge) => {
                let slot = edge.index() * 2 + usize::from(from.0 > to.0);
                if self.counts[slot] == 0 {
                    self.touched.push(slot as u32);
                }
                self.counts[slot] = self.counts[slot].saturating_add(1);
                if self.counts[slot] > 1 {
                    let count = u32::from(self.counts[slot]);
                    self.raise(
                        ViolationKind::Multiplicity { count },
                        Some(from),
                        Some(to),
                        Some(edge),
                    );
                }
            }
        }
        let bits = self.model_bits(message);
        if bits > self.budget_bits {
            self.raise(
                ViolationKind::Bandwidth {
                    bits,
                    budget: self.budget_bits,
                },
                Some(from),
                Some(to),
                edge,
            );
        }
    }

    /// Records one worker's write window `[lo, hi)` for the current round
    /// and checks it against every window already recorded this round.
    pub fn record_window(&mut self, shard: usize, lo: usize, hi: usize) {
        for w in 0..self.windows.len() {
            let (other_shard, olo, ohi) = self.windows[w];
            if lo < ohi && olo < hi {
                self.raise(
                    ViolationKind::WindowOverlap {
                        other_shard,
                        other_window: (olo, ohi),
                        window: (lo, hi),
                    },
                    None,
                    None,
                    None,
                );
            }
        }
        self.windows.push((shard, lo, hi));
    }

    /// Verifies the flipped arena's inbox ranges are pairwise disjoint.
    pub(crate) fn check_arena(&mut self, arena: &MessageArena) {
        if let Some((a, b)) = arena.overlapping_inboxes() {
            self.raise(
                ViolationKind::InboxOverlap {
                    a: NodeId(a),
                    b: NodeId(b),
                },
                None,
                None,
                None,
            );
        }
    }

    /// Closes the current round: clears the multiplicity counters and the
    /// window set, advances the round counter.
    pub fn end_round(&mut self) {
        for &slot in &self.touched {
            self.counts[slot as usize] = 0;
        }
        self.touched.clear();
        self.windows.clear();
        self.shard = None;
        self.round += 1;
    }

    /// The violations accumulated so far (always empty in deny mode).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Consumes the auditor and returns its violations.
    pub fn finish(self) -> Vec<Violation> {
        self.violations
    }

    fn raise(
        &mut self,
        kind: ViolationKind,
        from: Option<NodeId>,
        to: Option<NodeId>,
        edge: Option<EdgeId>,
    ) {
        let v = Violation {
            kind,
            round: self.round,
            from,
            to,
            edge,
            lane: self.cfg.lane,
            shard: self.shard,
            seed: self.cfg.seed,
        };
        if self.cfg.deny {
            panic!("{v}");
        }
        self.violations.push(v);
    }
}

impl fmt::Debug for Auditor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Auditor")
            .field("cfg", &self.cfg)
            .field("round", &self.round)
            .field("violations", &self.violations.len())
            .finish_non_exhaustive()
    }
}

/// The sequential loop audits through the ordinary observer seam: every
/// validated message and round boundary flows through these callbacks.
impl RoundObserver for Auditor<'_> {
    fn on_message(&mut self, from: NodeId, to: NodeId, _edge: EdgeId, message: &Message) {
        self.on_send(from, to, message);
    }

    fn on_round_end(&mut self, _round: u64) {
        self.end_round();
    }
}
