//! Lockstep execution of synchronous automata on the asynchronous executor —
//! the executable counterpart of the α-synchronizer (Theorem A.5).
//!
//! The paper's asynchronous results (Theorem 3.4) are obtained by running
//! the synchronous algorithms under Awerbuch's α-synchronizer: every node
//! acknowledges each round to its neighbours, and a node starts round `k`
//! only once all neighbours confirmed round `k − 1`. [`Synchronized`] wraps
//! any [`NodeAlgorithm`] in exactly that protocol so it can run unchanged on
//! [`AsyncSimulator`] — including under a [`FaultPlan`]:
//!
//! * after executing inner round `k`, a node sends its round-`k` payload
//!   messages (wrapped with the sender's ID and a `(round, seq)` marker) and
//!   then one **pulse** per neighbour carrying the payload count;
//! * inner round `k` runs only when every neighbour's round-`k − 1` pulse
//!   arrived *and* all announced payloads were received;
//! * payloads are de-duplicated per `(sender, round)` by sequence-number
//!   bitmask, so message **duplication and reordering are harmless**;
//! * message **loss or a crash stalls the wheel** — safety is preserved (no
//!   node ever runs a round on partial inboxes), only liveness is lost,
//!   which the fault-matrix suite asserts as `completed == false`.
//!
//! On a benign (or delay-only, or duplicate/reorder) schedule the inner
//! execution is **bit-identical to the synchronous run**: each inner round
//! sees the same inbox in the same order (neighbour address ascending, send
//! order within a neighbour) with the same local round number, so all
//! per-node randomness is drawn on the same schedule. Pulse overhead is
//! exactly `(R − 1) · 2m` messages for an `R`-round run on `m` edges, within
//! the `2(T + 1)·m′` budget of
//! [`crate::async_sim::alpha_synchronizer_overhead`].
//!
//! The wrapper needs KT-1 knowledge (pulses are matched to neighbour slots
//! by sender ID) and message room for the wrapping: a pulse is 208 bits and
//! a wrapped payload adds one ID plus one value field to the inner message,
//! so configure [`AsyncConfig::message_bit_limit`] accordingly (384 covers
//! every algorithm in this repository).

use std::collections::BTreeMap;

use rand::Rng;
use symbreak_graphs::NodeId;

use crate::async_sim::{AsyncConfig, AsyncReport, AsyncSimulator};
use crate::faults::FaultPlan;
use crate::{Message, NodeAlgorithm, NodeInit, RoundContext};

/// Reserved tag of synchronizer pulse messages. Inner algorithms must not
/// use it (asserted when wrapping payloads).
pub const PULSE_TAG: u16 = u16::MAX;

/// Per-(neighbour, round) receive state.
#[derive(Debug, Default)]
struct SlotRound {
    /// Payload count announced by the neighbour's pulse, once it arrived.
    expected: Option<u64>,
    /// Bitmask of payload sequence numbers received (de-duplication).
    seq_mask: u64,
    /// Received payloads, `(seq, unwrapped message)`.
    msgs: Vec<(u64, Message)>,
}

impl SlotRound {
    fn ready(&self) -> bool {
        self.expected
            .is_some_and(|c| u64::from(self.seq_mask.count_ones()) >= c)
    }
}

/// An α-synchronizer shell around a synchronous [`NodeAlgorithm`], running
/// it for a fixed number of inner rounds on the asynchronous executor. See
/// the [module docs](self) for the protocol; construct per node with
/// [`Synchronized::new`] or run a whole network with [`run_synchronized`].
pub struct Synchronized<A> {
    inner: A,
    own_id: u64,
    total_rounds: u64,
    /// Next inner round to execute; `total_rounds` once finished.
    round: u64,
    /// Neighbour addresses, ascending (slot order).
    neighbors: Vec<NodeId>,
    /// `(neighbour ID, slot)` sorted by ID, for pulse/payload attribution.
    slot_by_id: Vec<(u64, usize)>,
    /// Per-slot inner-round receive buffers.
    bufs: Vec<BTreeMap<u64, SlotRound>>,
}

impl<A: NodeAlgorithm> Synchronized<A> {
    /// Wraps `inner` to run for exactly `total_rounds` synchronous rounds
    /// (take a synchronous [`crate::ExecutionReport::rounds`] for a faithful
    /// replay).
    ///
    /// # Panics
    ///
    /// Panics if `total_rounds` is 0 or the knowledge level is KT-0 (the
    /// synchronizer needs neighbour IDs to attribute pulses).
    pub fn new(inner: A, init: NodeInit<'_>, total_rounds: u64) -> Self {
        assert!(
            total_rounds > 0,
            "a synchronized run needs at least 1 round"
        );
        let mut neighbors: Vec<NodeId> = init.knowledge.neighbors();
        neighbors.sort_unstable();
        let mut slot_by_id: Vec<(u64, usize)> = init
            .knowledge
            .neighbor_ids()
            .into_iter()
            .map(|(v, id)| {
                let slot = neighbors
                    .binary_search(&v)
                    .expect("neighbor_ids returned a non-neighbour");
                (id, slot)
            })
            .collect();
        slot_by_id.sort_unstable();
        let bufs = (0..neighbors.len()).map(|_| BTreeMap::new()).collect();
        Synchronized {
            inner,
            own_id: init.knowledge.own_id(),
            total_rounds,
            round: 0,
            neighbors,
            slot_by_id,
            bufs,
        }
    }

    /// The wrapped automaton (its outputs are also forwarded by
    /// [`NodeAlgorithm::output`]).
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// How many inner rounds have been executed so far.
    pub fn rounds_executed(&self) -> u64 {
        self.round
    }

    fn slot_of(&self, sender_id: u64) -> usize {
        let at = self
            .slot_by_id
            .binary_search_by_key(&sender_id, |&(id, _)| id)
            .expect("synchronizer message from an unknown sender ID");
        self.slot_by_id[at].1
    }

    /// Executes inner round `k` against `inbox` (already in synchronous
    /// delivery order), sending wrapped payloads and pulses through `ctx`
    /// unless `k` is the final round.
    fn exec_round(&mut self, ctx: &mut RoundContext<'_>, k: u64, inbox: &[Message]) {
        // Mirror the engine's fast path: a done inner node with an empty
        // inbox is not invoked after round 0 (keeps RNG schedules aligned
        // with the synchronous executor).
        let skip = k > 0 && inbox.is_empty() && self.inner.is_done();
        let outbox = if skip {
            Vec::new()
        } else {
            let mut ictx = RoundContext::new(ctx.node(), k, *ctx.knowledge(), &self.neighbors);
            self.inner.on_round(&mut ictx, inbox);
            ictx.take_outbox()
        };
        self.round = k + 1;
        if self.round >= self.total_rounds {
            // Nothing runs round `total_rounds`; pulses or payloads sent now
            // could never be consumed and would keep the run in flight
            // forever. A faithful replay sends nothing in its final round
            // anyway (the synchronous run terminated quiescent).
            return;
        }
        let mut counts = vec![0u64; self.neighbors.len()];
        for (to, msg) in outbox {
            let slot = self
                .neighbors
                .binary_search(&to)
                .expect("inner algorithm sent to a non-neighbour");
            let seq = counts[slot];
            counts[slot] += 1;
            assert!(
                seq < 64,
                "lockstep wrapper supports at most 64 messages per neighbour per round"
            );
            assert!(
                msg.tag() != PULSE_TAG,
                "inner algorithm used the reserved synchronizer pulse tag"
            );
            ctx.send(to, msg.with_id(self.own_id).with_value((k << 8) | seq));
        }
        for (slot, &to) in self.neighbors.iter().enumerate() {
            ctx.send(
                to,
                Message::tagged(PULSE_TAG)
                    .with_id(self.own_id)
                    .with_value(k)
                    .with_value(counts[slot]),
            );
        }
    }
}

impl<A: NodeAlgorithm> NodeAlgorithm for Synchronized<A> {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        // Absorb incoming synchronizer traffic into the per-slot buffers.
        for msg in inbox {
            if msg.tag() == PULSE_TAG {
                let sender = *msg.ids().last().expect("pulse without sender ID");
                let round = msg.values()[0];
                let count = msg.values()[1];
                if round + 1 < self.round {
                    continue; // stale (late duplicate of a consumed round)
                }
                let slot = self.slot_of(sender);
                let entry = self.bufs[slot].entry(round).or_default();
                if entry.expected.is_none() {
                    entry.expected = Some(count);
                }
            } else {
                let sender = *msg.ids().last().expect("payload without sender ID");
                let marker = *msg.values().last().expect("payload without round marker");
                let (round, seq) = (marker >> 8, marker & 0xff);
                if round + 1 < self.round {
                    continue;
                }
                let slot = self.slot_of(sender);
                let entry = self.bufs[slot].entry(round).or_default();
                if entry.seq_mask & (1 << seq) == 0 {
                    entry.seq_mask |= 1 << seq;
                    // Rebuild the inner message without the wrapper fields.
                    let ids = msg.ids();
                    let values = msg.values();
                    let mut unwrapped = Message::tagged(msg.tag());
                    for &id in &ids[..ids.len() - 1] {
                        unwrapped = unwrapped.with_id(id);
                    }
                    for &v in &values[..values.len() - 1] {
                        unwrapped = unwrapped.with_value(v);
                    }
                    entry.msgs.push((seq, unwrapped));
                }
            }
        }

        // Execute every inner round whose requirements are now met. Round 0
        // has none (it fires on the time-0 initialisation activation).
        loop {
            let k = self.round;
            if k >= self.total_rounds {
                break;
            }
            if k > 0 {
                let prev = k - 1;
                let all_ready = self
                    .bufs
                    .iter()
                    .all(|b| b.get(&prev).is_some_and(SlotRound::ready));
                if !all_ready {
                    break;
                }
            }
            let mut round_inbox: Vec<Message> = Vec::new();
            if k > 0 {
                // Slot order is neighbour-address order and seq order is
                // send order, which together reproduce the synchronous
                // executor's delivery order exactly.
                for buf in &mut self.bufs {
                    if let Some(mut entry) = buf.remove(&(k - 1)) {
                        entry.msgs.sort_unstable_by_key(|&(seq, _)| seq);
                        round_inbox.extend(entry.msgs.into_iter().map(|(_, m)| m));
                    }
                }
            }
            self.exec_round(ctx, k, &round_inbox);
        }
    }

    fn is_done(&self) -> bool {
        self.round >= self.total_rounds
    }

    fn output(&self) -> Option<u64> {
        self.inner.output()
    }
}

/// Runs a synchronous node algorithm on the asynchronous executor under a
/// fault plan, by wrapping every node in [`Synchronized`] for
/// `total_rounds` inner rounds.
///
/// Pass the round count of a synchronous run of the same algorithm
/// ([`crate::ExecutionReport::rounds`]) to replay it: on benign,
/// delay-only and duplicate/reorder schedules the reported outputs are
/// identical to the synchronous outputs; under loss or crashes the run
/// stalls instead of producing unsafe outputs.
pub fn run_synchronized<A, F, R>(
    sim: &AsyncSimulator<'_>,
    config: AsyncConfig,
    plan: &FaultPlan,
    total_rounds: u64,
    rng: &mut R,
    mut make: F,
) -> AsyncReport
where
    A: NodeAlgorithm,
    F: FnMut(NodeInit<'_>) -> A,
    R: Rng + ?Sized,
{
    sim.run_with_faults(config, plan, rng, |init| {
        Synchronized::new(make(init), init, total_rounds)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::EdgeProb;
    use crate::{KtLevel, SyncConfig, SyncSimulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symbreak_graphs::{generators, IdAssignment};

    /// Broadcasts the running maximum ID for `t_limit` rounds.
    struct MaxFlood {
        t_limit: u64,
        max: u64,
        done: bool,
    }

    impl NodeAlgorithm for MaxFlood {
        fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
            if ctx.round() == 0 {
                self.max = ctx.own_id();
            }
            for m in inbox {
                self.max = self.max.max(m.value().unwrap_or(0));
            }
            if ctx.round() < self.t_limit {
                ctx.broadcast(&Message::tagged(1).with_value(self.max));
            } else {
                self.done = true;
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
        fn output(&self) -> Option<u64> {
            Some(self.max)
        }
    }

    fn make_max(t_limit: u64) -> impl FnMut(NodeInit<'_>) -> MaxFlood {
        move |_init| MaxFlood {
            t_limit,
            max: 0,
            done: false,
        }
    }

    fn config() -> AsyncConfig {
        AsyncConfig {
            message_bit_limit: 384,
            max_time: 10_000,
            ..AsyncConfig::default()
        }
    }

    #[test]
    fn benign_lockstep_replays_the_sync_run_exactly() {
        let graph = generators::connected_gnp(20, 0.2, &mut StdRng::seed_from_u64(5));
        let ids = IdAssignment::identity(20);
        let sync = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let sync_report = sync.run(SyncConfig::default(), make_max(4));
        assert!(sync_report.completed);
        let rounds = sync_report.rounds;

        let asim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let mut rng = StdRng::seed_from_u64(99);
        let report = run_synchronized(
            &asim,
            config(),
            &FaultPlan::default(),
            rounds,
            &mut rng,
            make_max(4),
        );
        assert!(report.completed, "benign lockstep must terminate");
        assert_eq!(report.outputs, sync_report.outputs);
        // Pulse overhead is exactly (R - 1) · 2m on a benign schedule.
        let two_m = 2 * graph.num_edges() as u64;
        assert_eq!(report.messages, sync_report.messages + (rounds - 1) * two_m);
    }

    #[test]
    fn duplication_is_deduplicated_by_seq_masks() {
        let graph = generators::cycle(12);
        let ids = IdAssignment::identity(12);
        let sync = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let sync_report = sync.run(SyncConfig::default(), make_max(3));
        let asim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let plan = FaultPlan::default()
            .with_duplicate(EdgeProb::uniform(1.0))
            .with_reorder(0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let report = run_synchronized(
            &asim,
            config(),
            &plan,
            sync_report.rounds,
            &mut rng,
            make_max(3),
        );
        assert!(report.completed);
        assert_eq!(report.outputs, sync_report.outputs);
        assert!(report.faults.duplicated > 0);
    }

    #[test]
    fn total_loss_stalls_without_unsafe_output() {
        let graph = generators::cycle(8);
        let ids = IdAssignment::identity(8);
        let asim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let plan = FaultPlan::default().with_drop(EdgeProb::uniform(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = AsyncConfig {
            max_time: 500,
            ..config()
        };
        let report = run_synchronized(&asim, cfg, &plan, 4, &mut rng, make_max(3));
        assert!(!report.completed, "lossy lockstep must stall, not lie");
        assert_eq!(report.time, 500);
        assert!(report.faults.dropped > 0);
    }

    #[test]
    #[should_panic(expected = "at least 1 round")]
    fn zero_round_wrapper_rejected() {
        let graph = generators::cycle(4);
        let ids = IdAssignment::identity(4);
        let asim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let mut rng = StdRng::seed_from_u64(0);
        run_synchronized(
            &asim,
            config(),
            &FaultPlan::default(),
            0,
            &mut rng,
            make_max(1),
        );
    }
}
