//! Lockstep execution of synchronous automata on the asynchronous executor —
//! the executable counterpart of the α-synchronizer (Theorem A.5).
//!
//! The paper's asynchronous results (Theorem 3.4) are obtained by running
//! the synchronous algorithms under Awerbuch's α-synchronizer: every node
//! acknowledges each round to its neighbours, and a node starts round `k`
//! only once all neighbours confirmed round `k − 1`. [`Synchronized`] wraps
//! any [`NodeAlgorithm`] in exactly that protocol so it can run unchanged on
//! [`AsyncSimulator`] — including under a [`FaultPlan`]:
//!
//! * after executing inner round `k`, a node sends its round-`k` payload
//!   messages (wrapped with the sender's ID and a `(round, seq)` marker) and
//!   then one **pulse** per neighbour carrying the payload count;
//! * inner round `k` runs only when every neighbour's round-`k − 1` pulse
//!   arrived *and* all announced payloads were received;
//! * payloads are de-duplicated per `(sender, round)` by sequence-number
//!   bitmask, so message **duplication and reordering are harmless**;
//! * message **loss stalls the wheel** — safety is preserved (no node ever
//!   runs a round on partial inboxes), only liveness is lost, which the
//!   fault-matrix suite asserts as `completed == false`;
//! * a **crash with recovery re-joins** instead of stalling: every node
//!   retains its last [`Synchronized::with_replay_depth`] rounds of sent
//!   traffic in a bounded replay buffer, a recovering node broadcasts a
//!   `REJOIN` pulse naming the round it needs, and neighbours re-send the
//!   retained copies — all idempotent under the existing de-duplication, so
//!   the run completes with outputs bit-identical to the synchronous run.
//!
//! # Crash recovery
//!
//! A mid-run activation with an **empty inbox** is how the executors
//! deliver a crash revival (every other mid-run activation carries at least
//! one message), so [`Synchronized`] treats it as the re-join trigger: the
//! node broadcasts one `REJOIN` pulse per neighbour (a [`PULSE_TAG`]
//! message whose count field is the reserved sentinel `u64::MAX`) carrying
//! the first inner round it may have lost. Each neighbour answers from its
//! replay buffer with the retained pulses and wrapped payloads of every
//! buffered round at or after the requested one. [`Recovery::Retain`]
//! revivals need only [`DEFAULT_REPLAY_DEPTH`] rounds of retention (the
//! synchronizer keeps neighbours within one round of each other);
//! [`Recovery::Reset`] revivals restart the automaton much further back, so
//! [`run_synchronized_recovering`] re-seats them at the nearest engine
//! checkpoint ([`crate::checkpoint`]) and needs a replay depth covering the
//! checkpoint-to-crash gap. Re-join traffic is tallied in
//! [`FaultStats::rejoin_pulses`] / [`FaultStats::replayed`]. If a revival
//! races a same-tick delivery the trigger is missed and the run stalls —
//! safety is never at risk, the fault matrix still observes
//! `completed == false`.
//!
//! [`Recovery::Retain`]: crate::faults::Recovery::Retain
//! [`Recovery::Reset`]: crate::faults::Recovery::Reset
//! [`FaultStats::rejoin_pulses`]: crate::faults::FaultStats::rejoin_pulses
//! [`FaultStats::replayed`]: crate::faults::FaultStats::replayed
//!
//! On a benign (or delay-only, or duplicate/reorder) schedule the inner
//! execution is **bit-identical to the synchronous run**: each inner round
//! sees the same inbox in the same order (neighbour address ascending, send
//! order within a neighbour) with the same local round number, so all
//! per-node randomness is drawn on the same schedule. Pulse overhead is
//! exactly `(R − 1) · 2m` messages for an `R`-round run on `m` edges, within
//! the `2(T + 1)·m′` budget of
//! [`crate::async_sim::alpha_synchronizer_overhead`].
//!
//! The wrapper needs KT-1 knowledge (pulses are matched to neighbour slots
//! by sender ID) and message room for the wrapping: a pulse is 208 bits and
//! a wrapped payload adds one ID plus one value field to the inner message,
//! so configure [`AsyncConfig::message_bit_limit`] accordingly (384 covers
//! every algorithm in this repository).

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use rand::Rng;
use symbreak_graphs::NodeId;

use crate::async_sim::{AsyncConfig, AsyncReport, AsyncSimulator};
use crate::checkpoint::{CheckpointChain, PersistState};
use crate::faults::FaultPlan;
use crate::{Message, NodeAlgorithm, NodeInit, RoundContext};

/// Reserved tag of synchronizer pulse messages. Inner algorithms must not
/// use it (asserted when wrapping payloads).
pub const PULSE_TAG: u16 = u16::MAX;

/// Reserved pulse count marking a `REJOIN` request. Unreachable by real
/// pulses, whose counts are bounded by the 64-messages-per-round cap.
const REJOIN_COUNT: u64 = u64::MAX;

/// Default number of sent rounds each node retains for crash re-join. Two
/// rounds suffice for [`Recovery::Retain`]: the synchronizer keeps
/// neighbours within one inner round of each other, so everything a
/// revived node can have lost is in its neighbours' last two sent rounds.
///
/// [`Recovery::Retain`]: crate::faults::Recovery::Retain
pub const DEFAULT_REPLAY_DEPTH: usize = 2;

/// Shared tally of re-join traffic across every node of a lockstep run.
///
/// [`run_synchronized`] and [`run_synchronized_recovering`] install one
/// ledger into all their wrappers and fold it into
/// [`FaultStats::rejoin_pulses`] / [`FaultStats::replayed`]; tests driving
/// [`crate::async_sim::AsyncSimulator::run_with_faults`] directly can share
/// their own via [`Synchronized::with_ledger`].
///
/// [`FaultStats::rejoin_pulses`]: crate::faults::FaultStats::rejoin_pulses
/// [`FaultStats::replayed`]: crate::faults::FaultStats::replayed
#[derive(Debug, Default)]
pub struct RejoinLedger {
    pulses: Cell<u64>,
    replayed: Cell<u64>,
    peak_buffered: Cell<u64>,
}

impl RejoinLedger {
    /// `REJOIN` pulses broadcast by recovering nodes.
    pub fn rejoin_pulses(&self) -> u64 {
        self.pulses.get()
    }

    /// Retained copies (payloads and pulses) re-sent in response to a
    /// `REJOIN`.
    pub fn replayed(&self) -> u64 {
        self.replayed.get()
    }

    /// The largest number of rounds any node's replay buffer held at once —
    /// never exceeds the configured replay depth (the memory bound).
    pub fn peak_buffered_rounds(&self) -> u64 {
        self.peak_buffered.get()
    }
}

/// One retained round of sent synchronizer traffic.
#[derive(Debug)]
struct ReplayRound {
    /// Inner round the traffic belongs to.
    round: u64,
    /// Per-slot payload counts (the pulse contents).
    counts: Vec<u64>,
    /// Wrapped payload copies, `(slot, message)`, in send order.
    payloads: Vec<(usize, Message)>,
}

/// Per-(neighbour, round) receive state.
#[derive(Debug, Default)]
struct SlotRound {
    /// Payload count announced by the neighbour's pulse, once it arrived.
    expected: Option<u64>,
    /// Bitmask of payload sequence numbers received (de-duplication).
    seq_mask: u64,
    /// Received payloads, `(seq, unwrapped message)`.
    msgs: Vec<(u64, Message)>,
}

impl SlotRound {
    fn ready(&self) -> bool {
        self.expected
            .is_some_and(|c| u64::from(self.seq_mask.count_ones()) >= c)
    }
}

/// An α-synchronizer shell around a synchronous [`NodeAlgorithm`], running
/// it for a fixed number of inner rounds on the asynchronous executor. See
/// the [module docs](self) for the protocol; construct per node with
/// [`Synchronized::new`] or run a whole network with [`run_synchronized`].
pub struct Synchronized<A> {
    inner: A,
    own_id: u64,
    total_rounds: u64,
    /// Next inner round to execute; `total_rounds` once finished.
    round: u64,
    /// Neighbour addresses, ascending (slot order).
    neighbors: Vec<NodeId>,
    /// `(neighbour ID, slot)` sorted by ID, for pulse/payload attribution.
    slot_by_id: Vec<(u64, usize)>,
    /// Per-slot inner-round receive buffers.
    bufs: Vec<BTreeMap<u64, SlotRound>>,
    /// How many sent rounds to retain for crash re-join.
    replay_depth: usize,
    /// The retained rounds, oldest first, at most `replay_depth` entries.
    replay: VecDeque<ReplayRound>,
    /// Re-join traffic tally, shared across the run's nodes.
    ledger: Rc<RejoinLedger>,
}

impl<A: NodeAlgorithm> Synchronized<A> {
    /// Wraps `inner` to run for exactly `total_rounds` synchronous rounds
    /// (take a synchronous [`crate::ExecutionReport::rounds`] for a faithful
    /// replay).
    ///
    /// # Panics
    ///
    /// Panics if `total_rounds` is 0 or the knowledge level is KT-0 (the
    /// synchronizer needs neighbour IDs to attribute pulses).
    pub fn new(inner: A, init: NodeInit<'_>, total_rounds: u64) -> Self {
        assert!(
            total_rounds > 0,
            "a synchronized run needs at least 1 round"
        );
        let mut neighbors: Vec<NodeId> = init.knowledge.neighbors();
        neighbors.sort_unstable();
        let mut slot_by_id: Vec<(u64, usize)> = init
            .knowledge
            .neighbor_ids()
            .into_iter()
            .map(|(v, id)| {
                let slot = neighbors
                    .binary_search(&v)
                    .expect("neighbor_ids returned a non-neighbour");
                (id, slot)
            })
            .collect();
        slot_by_id.sort_unstable();
        let bufs = (0..neighbors.len()).map(|_| BTreeMap::new()).collect();
        Synchronized {
            inner,
            own_id: init.knowledge.own_id(),
            total_rounds,
            round: 0,
            neighbors,
            slot_by_id,
            bufs,
            replay_depth: DEFAULT_REPLAY_DEPTH,
            replay: VecDeque::new(),
            ledger: Rc::new(RejoinLedger::default()),
        }
    }

    /// Sets how many sent rounds this node retains for crash re-join
    /// (default [`DEFAULT_REPLAY_DEPTH`]). [`Recovery::Retain`] revivals
    /// need 2; checkpoint-reset revivals need the checkpoint-to-crash gap
    /// plus one ([`run_synchronized_recovering`] sizes this from the
    /// checkpoint cadence).
    ///
    /// [`Recovery::Retain`]: crate::faults::Recovery::Retain
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 — a node retaining nothing could never answer
    /// a re-join.
    pub fn with_replay_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "replay depth must retain at least one round");
        self.replay_depth = depth;
        self
    }

    /// Shares `ledger` as this node's re-join tally (each wrapper otherwise
    /// counts into a private one). [`run_synchronized`] installs one ledger
    /// across all nodes and folds it into the report's
    /// [`crate::faults::FaultStats`].
    pub fn with_ledger(mut self, ledger: Rc<RejoinLedger>) -> Self {
        self.ledger = ledger;
        self
    }

    /// The wrapped automaton (its outputs are also forwarded by
    /// [`NodeAlgorithm::output`]).
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// How many inner rounds have been executed so far.
    pub fn rounds_executed(&self) -> u64 {
        self.round
    }

    fn slot_of(&self, sender_id: u64) -> usize {
        let at = self
            .slot_by_id
            .binary_search_by_key(&sender_id, |&(id, _)| id)
            .expect("synchronizer message from an unknown sender ID");
        self.slot_by_id[at].1
    }

    /// Executes inner round `k` against `inbox` (already in synchronous
    /// delivery order), sending wrapped payloads and pulses through `ctx`
    /// unless `k` is the final round.
    fn exec_round(&mut self, ctx: &mut RoundContext<'_>, k: u64, inbox: &[Message]) {
        // Mirror the engine's fast path: a done inner node with an empty
        // inbox is not invoked after round 0 (keeps RNG schedules aligned
        // with the synchronous executor).
        let skip = k > 0 && inbox.is_empty() && self.inner.is_done();
        let outbox = if skip {
            Vec::new()
        } else {
            let mut ictx = RoundContext::new(ctx.node(), k, *ctx.knowledge(), &self.neighbors);
            self.inner.on_round(&mut ictx, inbox);
            ictx.take_outbox()
        };
        self.round = k + 1;
        if self.round >= self.total_rounds {
            // Nothing runs round `total_rounds`; pulses or payloads sent now
            // could never be consumed and would keep the run in flight
            // forever. A faithful replay sends nothing in its final round
            // anyway (the synchronous run terminated quiescent).
            return;
        }
        let mut counts = vec![0u64; self.neighbors.len()];
        let mut payloads: Vec<(usize, Message)> = Vec::with_capacity(outbox.len());
        for (to, msg) in outbox {
            let slot = self
                .neighbors
                .binary_search(&to)
                .expect("inner algorithm sent to a non-neighbour");
            let seq = counts[slot];
            counts[slot] += 1;
            assert!(
                seq < 64,
                "lockstep wrapper supports at most 64 messages per neighbour per round"
            );
            assert!(
                msg.tag() != PULSE_TAG,
                "inner algorithm used the reserved synchronizer pulse tag"
            );
            let wrapped = msg.with_id(self.own_id).with_value((k << 8) | seq);
            ctx.send(to, wrapped);
            payloads.push((slot, wrapped));
        }
        for (slot, &to) in self.neighbors.iter().enumerate() {
            ctx.send(
                to,
                Message::tagged(PULSE_TAG)
                    .with_id(self.own_id)
                    .with_value(k)
                    .with_value(counts[slot]),
            );
        }
        // Retain this round for crash re-join, evicting the oldest beyond
        // the replay depth (the bounded-memory guarantee).
        self.replay.push_back(ReplayRound {
            round: k,
            counts,
            payloads,
        });
        if self.replay.len() > self.replay_depth {
            self.replay.pop_front();
        }
        let buffered = self.replay.len() as u64;
        if buffered > self.ledger.peak_buffered.get() {
            self.ledger.peak_buffered.set(buffered);
        }
    }

    /// Answers a neighbour's `REJOIN(need)`: re-sends the retained pulses
    /// and payloads of every buffered round at or after `need` to that
    /// neighbour. Replays are copies of the originals, so the receiver's
    /// seq-mask / expected-count de-duplication makes them idempotent (a
    /// duplicated or reordered `REJOIN` is harmless too).
    fn replay_to(&self, ctx: &mut RoundContext<'_>, sender_id: u64, need: u64) {
        let slot = self.slot_of(sender_id);
        let to = self.neighbors[slot];
        let mut sent = 0u64;
        for r in &self.replay {
            if r.round < need {
                continue;
            }
            for (s, m) in &r.payloads {
                if *s == slot {
                    ctx.send(to, *m);
                    sent += 1;
                }
            }
            ctx.send(
                to,
                Message::tagged(PULSE_TAG)
                    .with_id(self.own_id)
                    .with_value(r.round)
                    .with_value(r.counts[slot]),
            );
            sent += 1;
        }
        self.ledger.replayed.set(self.ledger.replayed.get() + sent);
    }
}

impl<A: NodeAlgorithm> NodeAlgorithm for Synchronized<A> {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        if inbox.is_empty() && self.round > 0 && !self.is_done() {
            // A mid-run activation without arrivals is a crash revival (the
            // executors never otherwise activate a node spontaneously):
            // everything this node can have lost while down is traffic for
            // the round it is waiting on or later, so ask every neighbour
            // to replay from there.
            let need = self.round - 1;
            for &to in &self.neighbors {
                ctx.send(
                    to,
                    Message::tagged(PULSE_TAG)
                        .with_id(self.own_id)
                        .with_value(need)
                        .with_value(REJOIN_COUNT),
                );
                self.ledger.pulses.set(self.ledger.pulses.get() + 1);
            }
            return;
        }
        // Absorb incoming synchronizer traffic into the per-slot buffers.
        for msg in inbox {
            if msg.tag() == PULSE_TAG {
                let sender = *msg.ids().last().expect("pulse without sender ID");
                let round = msg.values()[0];
                let count = msg.values()[1];
                if count == REJOIN_COUNT {
                    // A recovering neighbour asks for rounds >= `round`.
                    self.replay_to(ctx, sender, round);
                    continue;
                }
                if round + 1 < self.round {
                    continue; // stale (late duplicate of a consumed round)
                }
                let slot = self.slot_of(sender);
                let entry = self.bufs[slot].entry(round).or_default();
                if entry.expected.is_none() {
                    entry.expected = Some(count);
                }
            } else {
                let sender = *msg.ids().last().expect("payload without sender ID");
                let marker = *msg.values().last().expect("payload without round marker");
                let (round, seq) = (marker >> 8, marker & 0xff);
                if round + 1 < self.round {
                    continue;
                }
                let slot = self.slot_of(sender);
                let entry = self.bufs[slot].entry(round).or_default();
                if entry.seq_mask & (1 << seq) == 0 {
                    entry.seq_mask |= 1 << seq;
                    // Rebuild the inner message without the wrapper fields.
                    let ids = msg.ids();
                    let values = msg.values();
                    let mut unwrapped = Message::tagged(msg.tag());
                    for &id in &ids[..ids.len() - 1] {
                        unwrapped = unwrapped.with_id(id);
                    }
                    for &v in &values[..values.len() - 1] {
                        unwrapped = unwrapped.with_value(v);
                    }
                    entry.msgs.push((seq, unwrapped));
                }
            }
        }

        // Execute every inner round whose requirements are now met. Round 0
        // has none (it fires on the time-0 initialisation activation).
        loop {
            let k = self.round;
            if k >= self.total_rounds {
                break;
            }
            if k > 0 {
                let prev = k - 1;
                let all_ready = self
                    .bufs
                    .iter()
                    .all(|b| b.get(&prev).is_some_and(SlotRound::ready));
                if !all_ready {
                    break;
                }
            }
            let mut round_inbox: Vec<Message> = Vec::new();
            if k > 0 {
                // Slot order is neighbour-address order and seq order is
                // send order, which together reproduce the synchronous
                // executor's delivery order exactly.
                for buf in &mut self.bufs {
                    if let Some(mut entry) = buf.remove(&(k - 1)) {
                        entry.msgs.sort_unstable_by_key(|&(seq, _)| seq);
                        round_inbox.extend(entry.msgs.into_iter().map(|(_, m)| m));
                    }
                }
            }
            self.exec_round(ctx, k, &round_inbox);
        }
    }

    fn is_done(&self) -> bool {
        self.round >= self.total_rounds
    }

    fn output(&self) -> Option<u64> {
        self.inner.output()
    }
}

/// Runs a synchronous node algorithm on the asynchronous executor under a
/// fault plan, by wrapping every node in [`Synchronized`] for
/// `total_rounds` inner rounds.
///
/// Pass the round count of a synchronous run of the same algorithm
/// ([`crate::ExecutionReport::rounds`]) to replay it: on benign,
/// delay-only and duplicate/reorder schedules the reported outputs are
/// identical to the synchronous outputs; crashes with
/// [`Recovery::Retain`] re-join through the replay protocol (see the
/// [module docs](self)) and still complete bit-identically; under loss or
/// unrecovered crashes the run stalls instead of producing unsafe outputs.
///
/// Re-join traffic is reported in the returned
/// [`AsyncReport::faults`](crate::async_sim::AsyncReport)
/// (`rejoin_pulses` / `replayed`).
///
/// [`Recovery::Retain`]: crate::faults::Recovery::Retain
pub fn run_synchronized<A, F, R>(
    sim: &AsyncSimulator<'_>,
    config: AsyncConfig,
    plan: &FaultPlan,
    total_rounds: u64,
    rng: &mut R,
    mut make: F,
) -> AsyncReport
where
    A: NodeAlgorithm,
    F: FnMut(NodeInit<'_>) -> A,
    R: Rng + ?Sized,
{
    let ledger = Rc::new(RejoinLedger::default());
    let mut report = sim.run_with_faults(config, plan, rng, |init| {
        Synchronized::new(make(init), init, total_rounds).with_ledger(Rc::clone(&ledger))
    });
    report.faults.rejoin_pulses = ledger.rejoin_pulses();
    report.faults.replayed = ledger.replayed();
    report
}

/// Like [`run_synchronized`], additionally re-seating
/// [`Recovery::Reset`](crate::faults::Recovery::Reset) revivals at the
/// nearest engine checkpoint so they re-join instead of stalling.
///
/// The asynchronous executor rebuilds a reset node through the factory;
/// this wrapper then restores the rebuilt automaton from `chain` at the
/// boundary `resume_round` (e.g. [`CheckpointChain::at_or_before`] of the
/// crash round, from a [`crate::SyncSimulator::run_checkpointed`] log of
/// the same algorithm) via [`PersistState::decode_state`] and re-seats the
/// synchronizer shell at that inner round. The revival then broadcasts a
/// `REJOIN` for `resume_round - 1`, so `replay_depth` must cover the gap
/// from there to the most advanced neighbour — the checkpoint cadence plus
/// two is always enough. When `chain` has no state for a node or decoding
/// fails, that node restarts factory-fresh at round 0 and the run stalls
/// safely instead of producing wrong outputs.
///
/// For outputs bit-identical to the synchronous run, the automaton's
/// [`PersistState`] encoding must capture *all* volatile state, including
/// RNG cursors.
#[allow(clippy::too_many_arguments)]
pub fn run_synchronized_recovering<A, F, R>(
    sim: &AsyncSimulator<'_>,
    config: AsyncConfig,
    plan: &FaultPlan,
    total_rounds: u64,
    rng: &mut R,
    mut make: F,
    chain: &CheckpointChain,
    resume_round: u64,
    replay_depth: usize,
) -> AsyncReport
where
    A: PersistState,
    F: FnMut(NodeInit<'_>) -> A,
    R: Rng + ?Sized,
{
    let ledger = Rc::new(RejoinLedger::default());
    let mut seen = vec![false; sim.graph().num_nodes()];
    let mut report = sim.run_with_faults(config, plan, rng, |init| {
        let i = init.node.index();
        // A second factory call for the same node is a reset revival.
        let rebirth = std::mem::replace(&mut seen[i], true);
        let mut inner = make(init);
        let mut resume_at = 0;
        if rebirth {
            if let Some(words) = chain.state_of(i as u32, resume_round) {
                if inner.decode_state(words) {
                    resume_at = resume_round.min(total_rounds);
                }
            }
        }
        let mut node = Synchronized::new(inner, init, total_rounds)
            .with_replay_depth(replay_depth)
            .with_ledger(Rc::clone(&ledger));
        node.round = resume_at;
        node
    });
    report.faults.rejoin_pulses = ledger.rejoin_pulses();
    report.faults.replayed = ledger.replayed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointConfig;
    use crate::faults::{CrashFault, DelayLaw, EdgeProb, Recovery};
    use crate::{KtLevel, SyncConfig, SyncSimulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symbreak_graphs::{generators, IdAssignment};

    /// Broadcasts the running maximum ID for `t_limit` rounds.
    struct MaxFlood {
        t_limit: u64,
        max: u64,
        done: bool,
    }

    impl NodeAlgorithm for MaxFlood {
        fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
            if ctx.round() == 0 {
                self.max = ctx.own_id();
            }
            for m in inbox {
                self.max = self.max.max(m.value().unwrap_or(0));
            }
            if ctx.round() < self.t_limit {
                ctx.broadcast(&Message::tagged(1).with_value(self.max));
            } else {
                self.done = true;
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
        fn output(&self) -> Option<u64> {
            Some(self.max)
        }
    }

    impl PersistState for MaxFlood {
        fn encode_state(&self, out: &mut Vec<u64>) {
            out.push(self.max);
            out.push(u64::from(self.done));
        }

        fn decode_state(&mut self, words: &[u64]) -> bool {
            let &[max, done] = words else { return false };
            if done > 1 {
                return false;
            }
            self.max = max;
            self.done = done == 1;
            true
        }
    }

    fn make_max(t_limit: u64) -> impl FnMut(NodeInit<'_>) -> MaxFlood {
        move |_init| MaxFlood {
            t_limit,
            max: 0,
            done: false,
        }
    }

    fn config() -> AsyncConfig {
        AsyncConfig {
            message_bit_limit: 384,
            max_time: 10_000,
            ..AsyncConfig::default()
        }
    }

    #[test]
    fn benign_lockstep_replays_the_sync_run_exactly() {
        let graph = generators::connected_gnp(20, 0.2, &mut StdRng::seed_from_u64(5));
        let ids = IdAssignment::identity(20);
        let sync = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let sync_report = sync.run(SyncConfig::default(), make_max(4));
        assert!(sync_report.completed);
        let rounds = sync_report.rounds;

        let asim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let mut rng = StdRng::seed_from_u64(99);
        let report = run_synchronized(
            &asim,
            config(),
            &FaultPlan::default(),
            rounds,
            &mut rng,
            make_max(4),
        );
        assert!(report.completed, "benign lockstep must terminate");
        assert_eq!(report.outputs, sync_report.outputs);
        // Pulse overhead is exactly (R - 1) · 2m on a benign schedule.
        let two_m = 2 * graph.num_edges() as u64;
        assert_eq!(report.messages, sync_report.messages + (rounds - 1) * two_m);
    }

    #[test]
    fn duplication_is_deduplicated_by_seq_masks() {
        let graph = generators::cycle(12);
        let ids = IdAssignment::identity(12);
        let sync = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let sync_report = sync.run(SyncConfig::default(), make_max(3));
        let asim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let plan = FaultPlan::default()
            .with_duplicate(EdgeProb::uniform(1.0))
            .with_reorder(0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let report = run_synchronized(
            &asim,
            config(),
            &plan,
            sync_report.rounds,
            &mut rng,
            make_max(3),
        );
        assert!(report.completed);
        assert_eq!(report.outputs, sync_report.outputs);
        assert!(report.faults.duplicated > 0);
    }

    #[test]
    fn total_loss_stalls_without_unsafe_output() {
        let graph = generators::cycle(8);
        let ids = IdAssignment::identity(8);
        let asim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let plan = FaultPlan::default().with_drop(EdgeProb::uniform(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = AsyncConfig {
            max_time: 500,
            ..config()
        };
        let report = run_synchronized(&asim, cfg, &plan, 4, &mut rng, make_max(3));
        assert!(!report.completed, "lossy lockstep must stall, not lie");
        assert_eq!(report.time, 500);
        assert!(report.faults.dropped > 0);
    }

    #[test]
    fn retain_crash_rejoins_and_completes_bit_identically() {
        let graph = generators::cycle(12);
        let ids = IdAssignment::identity(12);
        let sync = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let sync_report = sync.run(SyncConfig::default(), make_max(8));
        assert!(sync_report.completed);

        // Crash mid-run (inner rounds advance at most one per time unit, so
        // at t = 6 the node cannot have finished its 8+ rounds), revive long
        // after the stall drains the wheel.
        let asim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let plan = FaultPlan::default().with_crash(CrashFault {
            node: NodeId(5),
            at: 6,
            recovery: Some((2_000, Recovery::Retain)),
        });
        let run = || {
            let mut rng = StdRng::seed_from_u64(7);
            run_synchronized(
                &asim,
                config(),
                &plan,
                sync_report.rounds,
                &mut rng,
                make_max(8),
            )
        };
        let report = run();
        assert!(report.completed, "a Retain crash must re-join, not stall");
        assert_eq!(report.outputs, sync_report.outputs);
        assert_eq!(report.faults.crashes, 1);
        assert_eq!(report.faults.recoveries, 1);
        assert!(
            report.faults.crash_dropped > 0,
            "the crash must actually lose traffic for re-join to matter"
        );
        // One REJOIN per neighbour (degree 2 on the cycle), answered with
        // retained copies.
        assert_eq!(report.faults.rejoin_pulses, 2);
        assert!(report.faults.replayed > 0);
        // The faulty schedule is deterministic given (config, plan, seed).
        assert_eq!(run(), report);
    }

    #[test]
    fn replay_buffers_stay_bounded_on_benign_schedules() {
        let graph = generators::cycle(10);
        let ids = IdAssignment::identity(10);
        let sync = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let sync_report = sync.run(SyncConfig::default(), make_max(6));
        let asim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let ledger = Rc::new(RejoinLedger::default());
        let mut rng = StdRng::seed_from_u64(11);
        let mut make = make_max(6);
        // A fixed delay law is lossless but non-identity, exercising the
        // fault-instrumented loop without any crash.
        let plan = FaultPlan::default().with_delay(DelayLaw::Fixed(2));
        let report = asim.run_with_faults(config(), &plan, &mut rng, |init| {
            Synchronized::new(make(init), init, sync_report.rounds).with_ledger(Rc::clone(&ledger))
        });
        assert!(report.completed);
        assert_eq!(report.outputs, sync_report.outputs);
        // Every node retained traffic, but never more than the depth bound.
        assert_eq!(ledger.peak_buffered_rounds(), DEFAULT_REPLAY_DEPTH as u64);
        assert_eq!(ledger.rejoin_pulses(), 0);
        assert_eq!(ledger.replayed(), 0);
    }

    #[test]
    fn reset_crash_rejoins_from_the_nearest_checkpoint() {
        let graph = generators::cycle(12);
        let ids = IdAssignment::identity(12);
        let sync = SyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let sync_report = sync.run(SyncConfig::default(), make_max(8));
        assert!(sync_report.completed);

        // Checkpoint a synchronous run of the same algorithm every 2 rounds.
        let dir = std::env::temp_dir().join(format!("sb-lockstep-reset-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.sbck");
        let ckpt = CheckpointConfig::new(&path).with_every(2);
        let ck_report = sync
            .run_checkpointed(SyncConfig::default(), &ckpt, make_max(8))
            .unwrap();
        assert_eq!(ck_report, sync_report);
        let chain = CheckpointChain::load(&path).unwrap();

        // Fixed 1-unit delays advance exactly one inner round per tick, so a
        // crash at t = 5 catches node 3 with 5 rounds executed; the nearest
        // boundary at or before that is round 4.
        let resume = chain.at_or_before(5).unwrap().round;
        assert_eq!(resume, 4);
        let plan = FaultPlan::default()
            .with_delay(DelayLaw::Fixed(1))
            .with_crash(CrashFault {
                node: NodeId(3),
                at: 5,
                recovery: Some((2_000, Recovery::Reset)),
            });
        let asim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let mut rng = StdRng::seed_from_u64(21);
        let report = run_synchronized_recovering(
            &asim,
            config(),
            &plan,
            sync_report.rounds,
            &mut rng,
            make_max(8),
            &chain,
            resume,
            4,
        );
        assert!(
            report.completed,
            "a Reset crash must re-join via the checkpoint"
        );
        assert_eq!(report.outputs, sync_report.outputs);
        assert_eq!(report.faults.crashes, 1);
        assert_eq!(report.faults.recoveries, 1);
        assert_eq!(report.faults.rejoin_pulses, 2);
        assert!(report.faults.replayed > 0);
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "at least 1 round")]
    fn zero_round_wrapper_rejected() {
        let graph = generators::cycle(4);
        let ids = IdAssignment::identity(4);
        let asim = AsyncSimulator::new(&graph, &ids, KtLevel::KT1);
        let mut rng = StdRng::seed_from_u64(0);
        run_synchronized(
            &asim,
            config(),
            &FaultPlan::default(),
            0,
            &mut rng,
            make_max(1),
        );
    }
}
