//! Spill-to-disk trace storage: record full message traces without holding
//! them in RAM.
//!
//! The lower-bound experiments need *complete* per-round traces
//! (Definition 2.1), but [`crate::trace::Trace`] buffers every message in a
//! `Vec<Vec<_>>`, which caps trace-recording runs well below the n = 10⁵
//! scale the engine itself reaches. This module streams the trace to an
//! **append-only file** instead, through the existing [`RoundObserver`]
//! seam — no engine changes: an active observer already pins the run to the
//! sequential loop, so messages arrive in deterministic order and there is
//! no cross-thread ordering problem.
//!
//! * [`MmapTraceObserver`] — the writer. Every message is encoded as one
//!   fixed-width [`RECORD_BYTES`]-byte record behind a `BufWriter`; round
//!   boundaries accumulate in a tiny in-memory index (8 bytes per round)
//!   appended as a footer by [`MmapTraceObserver::finish`]. Peak memory is
//!   the write buffer plus the round index, independent of the message
//!   count.
//! * [`StoredTrace`] — the reader. Fixed-width records make the data region
//!   position-indexed, so round `i` is a handful of exact-range block reads
//!   (one for typical rounds): on Unix positional `read_exact_at` (no seek
//!   state, `&self`-safe — the closest safe-Rust equivalent of an mmap'd
//!   view; the layout is exactly what a memory map would expose zero-copy),
//!   elsewhere a buffered seek-and-read fallback. Supports random round access, streaming iteration,
//!   [`StoredTrace::same_as`] (full equality against an in-RAM [`Trace`])
//!   and [`StoredTrace::to_trace`] rehydration.
//!
//! Files are placed explicitly ([`MmapTraceObserver::create`]) or in the
//! directory named by the `CONGEST_TRACE_DIR` environment variable
//! ([`TRACE_DIR_ENV`], falling back to the system temp dir) via
//! [`MmapTraceObserver::create_temp`]. Readers validate magics and sizes
//! and surface corruption as [`std::io::ErrorKind::InvalidData`].
//!
//! # File format (version 2 — torn-write safe)
//!
//! ```text
//! magic    b"SBTRACE2"
//! records  (num_messages + num_rounds) × 56 bytes, little-endian, in send
//!          order. A *message record* is
//!          from u32 · to u32 · tag u16 · num_ids u8 · num_values u8
//!          ids  MAX_ID_FIELDS × u64    (unused slots zero)
//!          values MAX_VALUE_FIELDS × u64 (unused slots zero)
//!          checksum u32                (FNV-1a over the 52 payload bytes)
//!          Each completed round is followed by one *round marker* record
//!          (same width): sentinel from = u32::MAX · round u64 ·
//!          cumulative message count u64 · zeros · checksum u32.
//! index    num_rounds × u64 — cumulative message count at each round end
//! footer   num_rounds u64 · num_messages u64 · magic b"SBTRIDX2"
//! ```
//!
//! The per-record checksums and in-stream round markers make an *unsealed*
//! file recoverable: [`MmapTraceObserver::recover`] scans the record
//! stream, truncates the file to the last valid round boundary and returns
//! an observer that appends from there, so an interrupted trace-recording
//! run resumes instead of starting over ([`MmapTraceObserver::recover_to`]
//! truncates to an exact round — the engine-checkpoint boundary — for
//! [`crate::checkpoint`] resumes). Sealing fsyncs both the file and its
//! parent directory before the [`StoredTrace`] is returned.
//!
//! # Example
//!
//! ```
//! use symbreak_congest::trace_store::MmapTraceObserver;
//! use symbreak_congest::{KtLevel, Message, NodeAlgorithm, RoundContext, SyncConfig,
//!     SyncSimulator};
//! use symbreak_graphs::{generators, IdAssignment};
//!
//! struct Announce(bool);
//! impl NodeAlgorithm for Announce {
//!     fn on_round(&mut self, ctx: &mut RoundContext<'_>, _inbox: &[Message]) {
//!         if ctx.round() == 0 { ctx.broadcast(&Message::tagged(1).with_id(ctx.own_id())); }
//!         self.0 = true;
//!     }
//!     fn is_done(&self) -> bool { self.0 }
//! }
//!
//! let g = generators::cycle(16);
//! let ids = IdAssignment::identity(16);
//! let sim = SyncSimulator::new(&g, &ids, KtLevel::KT1);
//! let mut obs = MmapTraceObserver::create_temp().unwrap();
//! sim.run_observed(SyncConfig::default(), |_| Announce(false), &mut obs);
//! let stored = obs.finish().unwrap();
//! assert_eq!(stored.num_messages(), 32);
//! assert_eq!(stored.round(0).unwrap().len(), 32);
//! stored.remove().unwrap();
//! ```

use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use symbreak_graphs::{EdgeId, NodeId};

use crate::engine::RoundObserver;
use crate::message::{MAX_ID_FIELDS, MAX_VALUE_FIELDS};
use crate::trace::{Trace, TraceMessage};
use crate::Message;

/// Environment variable naming the directory
/// [`MmapTraceObserver::create_temp`] spills into (falls back to the system
/// temp dir when unset or empty).
pub const TRACE_DIR_ENV: &str = "CONGEST_TRACE_DIR";

/// Leading magic of a stored trace.
const HEADER_MAGIC: &[u8; 8] = b"SBTRACE2";
/// Trailing magic, written after the round index by `finish`.
const FOOTER_MAGIC: &[u8; 8] = b"SBTRIDX2";
/// Bytes of the fixed footer tail: round count, message count, magic.
const FOOTER_TAIL: u64 = 8 + 8 + 8;

/// Bytes of the checksummed payload of a record (everything but the
/// trailing checksum word).
const PAYLOAD_BYTES: usize = 4 + 4 + 2 + 1 + 1 + 8 * MAX_ID_FIELDS + 8 * MAX_VALUE_FIELDS;

/// Size of one encoded record ([`TraceMessage`] or round marker): the
/// payload plus a u32 FNV-1a checksum.
pub const RECORD_BYTES: usize = PAYLOAD_BYTES + 4;

/// The `from` field of a round-marker record — a value no real node ever
/// has (graphs are capped far below `u32::MAX` nodes).
const MARKER_SENTINEL: u32 = u32::MAX;

/// 64-bit FNV-1a — the running checksum shared by the trace records and
/// the checkpoint log ([`crate::checkpoint`]).
pub(crate) fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Folded 32-bit record checksum.
fn checksum32(bytes: &[u8]) -> u32 {
    let h = checksum64(bytes);
    (h ^ (h >> 32)) as u32
}

/// The directory trace spill files default to: `CONGEST_TRACE_DIR` if set
/// and non-empty, else the system temp dir.
pub fn trace_dir() -> PathBuf {
    match std::env::var(TRACE_DIR_ENV) {
        Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
        _ => std::env::temp_dir(),
    }
}

fn corrupt(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

/// Encodes one message record into `buf` (little-endian, fixed layout,
/// trailing checksum).
pub(crate) fn encode_record(
    buf: &mut [u8; RECORD_BYTES],
    from: NodeId,
    to: NodeId,
    message: &Message,
) {
    let ids = message.ids();
    let values = message.values();
    buf[0..4].copy_from_slice(&from.0.to_le_bytes());
    buf[4..8].copy_from_slice(&to.0.to_le_bytes());
    buf[8..10].copy_from_slice(&message.tag().to_le_bytes());
    buf[10] = ids.len() as u8;
    buf[11] = values.len() as u8;
    let mut at = 12;
    for slot in 0..MAX_ID_FIELDS {
        let v = ids.get(slot).copied().unwrap_or(0);
        buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
        at += 8;
    }
    for slot in 0..MAX_VALUE_FIELDS {
        let v = values.get(slot).copied().unwrap_or(0);
        buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
        at += 8;
    }
    let sum = checksum32(&buf[..PAYLOAD_BYTES]);
    buf[PAYLOAD_BYTES..].copy_from_slice(&sum.to_le_bytes());
}

/// Encodes the round marker that follows round `round` (whose end brings
/// the cumulative message count to `messages`).
fn encode_marker(buf: &mut [u8; RECORD_BYTES], round: u64, messages: u64) {
    buf.fill(0);
    buf[0..4].copy_from_slice(&MARKER_SENTINEL.to_le_bytes());
    buf[4..12].copy_from_slice(&round.to_le_bytes());
    buf[12..20].copy_from_slice(&messages.to_le_bytes());
    let sum = checksum32(&buf[..PAYLOAD_BYTES]);
    buf[PAYLOAD_BYTES..].copy_from_slice(&sum.to_le_bytes());
}

/// Decodes a round marker: `(round, cumulative message count)`.
fn decode_marker(buf: &[u8; RECORD_BYTES]) -> io::Result<(u64, u64)> {
    verify_checksum(buf)?;
    if buf[0..4] != MARKER_SENTINEL.to_le_bytes() {
        return Err(corrupt("message record where a round marker was expected"));
    }
    if buf[20..PAYLOAD_BYTES].iter().any(|&b| b != 0) {
        return Err(corrupt("nonzero padding in a round marker"));
    }
    let round = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let messages = u64::from_le_bytes(buf[12..20].try_into().unwrap());
    Ok((round, messages))
}

/// Validates a record's trailing checksum.
fn verify_checksum(buf: &[u8; RECORD_BYTES]) -> io::Result<()> {
    let declared = u32::from_le_bytes(buf[PAYLOAD_BYTES..].try_into().unwrap());
    if checksum32(&buf[..PAYLOAD_BYTES]) != declared {
        return Err(corrupt("record checksum mismatch"));
    }
    Ok(())
}

/// Decodes one record back into a [`TraceMessage`], validating its
/// checksum.
pub(crate) fn decode_record(buf: &[u8; RECORD_BYTES]) -> io::Result<TraceMessage> {
    verify_checksum(buf)?;
    let word = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
    let from = NodeId(u32::from_le_bytes(buf[0..4].try_into().unwrap()));
    let to = NodeId(u32::from_le_bytes(buf[4..8].try_into().unwrap()));
    if from.0 == MARKER_SENTINEL {
        return Err(corrupt("round marker where a message record was expected"));
    }
    let tag = u16::from_le_bytes(buf[8..10].try_into().unwrap());
    let (num_ids, num_values) = (buf[10] as usize, buf[11] as usize);
    if num_ids > MAX_ID_FIELDS || num_values > MAX_VALUE_FIELDS {
        return Err(corrupt(format!(
            "record declares {num_ids} ids / {num_values} values"
        )));
    }
    let mut message = Message::tagged(tag);
    for slot in 0..num_ids {
        message = message.with_id(word(12 + 8 * slot));
    }
    for slot in 0..num_values {
        message = message.with_value(word(12 + 8 * MAX_ID_FIELDS + 8 * slot));
    }
    // Unused slots must be zero (the `Message` invariant `Eq` relies on);
    // reject payload bytes smuggled past the declared counts.
    for slot in num_ids..MAX_ID_FIELDS {
        if word(12 + 8 * slot) != 0 {
            return Err(corrupt("nonzero bytes past the declared id count"));
        }
    }
    for slot in num_values..MAX_VALUE_FIELDS {
        if word(12 + 8 * MAX_ID_FIELDS + 8 * slot) != 0 {
            return Err(corrupt("nonzero bytes past the declared value count"));
        }
    }
    Ok(TraceMessage { from, to, message })
}

/// A [`RoundObserver`] that spills every message to an append-only trace
/// file instead of buffering it in RAM — see the [module docs](self) for
/// format and memory profile. Pass it to
/// [`crate::SyncSimulator::run_observed`], then call
/// [`MmapTraceObserver::finish`] to seal the file and obtain the
/// [`StoredTrace`] reader.
///
/// I/O errors inside the observer callbacks (which cannot return `Result`)
/// are sticky: recording stops at the first error and `finish` reports it.
#[derive(Debug)]
pub struct MmapTraceObserver {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Messages written so far.
    messages: u64,
    /// Cumulative message count at each completed round's end.
    round_ends: Vec<u64>,
    /// First write error, reported by `finish`.
    error: Option<io::Error>,
}

impl MmapTraceObserver {
    /// Creates (or truncates) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the file or writing the header.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let mut writer = BufWriter::new(File::create(&path)?);
        writer.write_all(HEADER_MAGIC)?;
        Ok(MmapTraceObserver {
            path,
            writer,
            messages: 0,
            round_ends: Vec::new(),
            error: None,
        })
    }

    /// Creates a uniquely-named trace file in [`trace_dir`] (the
    /// `CONGEST_TRACE_DIR` directory, or the system temp dir).
    ///
    /// # Errors
    ///
    /// Any I/O error creating the file.
    pub fn create_temp() -> io::Result<Self> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let name = format!(
            "congest-trace-{}-{}.sbtr",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        );
        Self::create(trace_dir().join(name))
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Messages recorded so far.
    pub fn num_messages(&self) -> u64 {
        self.messages
    }

    /// Completed rounds recorded so far.
    pub fn num_rounds(&self) -> usize {
        self.round_ends.len()
    }

    /// Bytes the sealed file will occupy (header + records + markers +
    /// index + footer).
    pub fn stored_bytes(&self) -> u64 {
        8 + (self.messages + self.round_ends.len() as u64) * RECORD_BYTES as u64
            + self.round_ends.len() as u64 * 8
            + FOOTER_TAIL
    }

    /// Seals the file — appends the round index and footer, flushes,
    /// fsyncs the file **and its parent directory** — and reopens it as a
    /// [`StoredTrace`]. The directory fsync makes the rename/creation of
    /// the sealed file itself durable, not just its contents: without it a
    /// crash shortly after sealing can lose the whole file even though
    /// every byte was synced.
    ///
    /// # Errors
    ///
    /// The first error hit while recording, or any error writing the
    /// footer. The (unusable) file is left in place for inspection; remove
    /// it with [`std::fs::remove_file`].
    pub fn finish(self) -> io::Result<StoredTrace> {
        let MmapTraceObserver {
            path,
            mut writer,
            messages,
            round_ends,
            error,
        } = self;
        if let Some(e) = error {
            return Err(e);
        }
        for &end in &round_ends {
            writer.write_all(&end.to_le_bytes())?;
        }
        writer.write_all(&(round_ends.len() as u64).to_le_bytes())?;
        writer.write_all(&messages.to_le_bytes())?;
        writer.write_all(FOOTER_MAGIC)?;
        writer.flush()?;
        writer.get_ref().sync_all()?;
        drop(writer);
        sync_parent_dir(&path)?;
        StoredTrace::open(path)
    }

    /// Recovers an **unsealed** trace file (a recording interrupted before
    /// [`MmapTraceObserver::finish`]): scans the record stream, truncates
    /// the file to the last valid round boundary, and returns an observer
    /// positioned to append from there plus the number of complete rounds
    /// recovered. Messages of the partially recorded round past that
    /// boundary are discarded — re-running the interrupted round rewrites
    /// them bit for bit.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`std::io::ErrorKind::InvalidData`] when the file
    /// does not even start with a valid trace header.
    pub fn recover(path: impl Into<PathBuf>) -> io::Result<(Self, u64)> {
        Self::recover_inner(path.into(), None)
    }

    /// Like [`MmapTraceObserver::recover`], but truncates to **exactly**
    /// `rounds` complete rounds — the form the engine-checkpoint resume
    /// path uses, so the trace re-joins the run at the checkpoint boundary.
    ///
    /// # Errors
    ///
    /// Everything [`MmapTraceObserver::recover`] reports, plus
    /// [`std::io::ErrorKind::InvalidData`] when fewer than `rounds` valid
    /// rounds survive in the file.
    pub fn recover_to(path: impl Into<PathBuf>, rounds: u64) -> io::Result<Self> {
        let (obs, got) = Self::recover_inner(path.into(), Some(rounds))?;
        if got != rounds {
            return Err(corrupt(format!(
                "trace holds only {got} recoverable rounds, {rounds} requested"
            )));
        }
        Ok(obs)
    }

    fn recover_inner(path: PathBuf, limit: Option<u64>) -> io::Result<(Self, u64)> {
        let file = File::open(&path)?;
        let mut reader = io::BufReader::new(file);
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != HEADER_MAGIC {
            return Err(corrupt("bad trace header magic"));
        }
        let mut buf = [0u8; RECORD_BYTES];
        let mut messages: u64 = 0;
        let mut round_ends: Vec<u64> = Vec::new();
        // Offset just past the last valid round marker, and the message
        // count at that point — the recovery point.
        let mut valid_end: u64 = 8;
        let mut valid_messages: u64 = 0;
        let mut offset: u64 = 8;
        loop {
            if limit.is_some_and(|lim| round_ends.len() as u64 >= lim) {
                break;
            }
            let mut filled = 0usize;
            while filled < RECORD_BYTES {
                match reader.read(&mut buf[filled..]) {
                    Ok(0) => break,
                    Ok(k) => filled += k,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            if filled < RECORD_BYTES {
                break; // torn tail (or clean EOF)
            }
            offset += RECORD_BYTES as u64;
            if buf[0..4] == MARKER_SENTINEL.to_le_bytes() {
                // A marker must agree with the running counts, or the
                // stream in front of it was damaged.
                match decode_marker(&buf) {
                    Ok((round, cum)) if round == round_ends.len() as u64 && cum == messages => {
                        round_ends.push(messages);
                        valid_end = offset;
                        valid_messages = messages;
                    }
                    _ => break,
                }
            } else if decode_record(&buf).is_ok() {
                messages += 1;
            } else {
                // Bit rot, the footer of a sealed file, or a torn record:
                // everything after the last marker is discarded.
                break;
            }
        }
        drop(reader);
        let rounds = round_ends.len() as u64;
        let file = fs::OpenOptions::new().read(true).write(true).open(&path)?;
        file.set_len(valid_end)?;
        let mut writer = BufWriter::new(file);
        writer.seek(SeekFrom::Start(valid_end))?;
        Ok((
            MmapTraceObserver {
                path,
                writer,
                messages: valid_messages,
                round_ends,
                error: None,
            },
            rounds,
        ))
    }
}

/// Fsyncs the directory containing `path`, making the file's directory
/// entry durable (no-op on platforms where directories cannot be opened).
pub(crate) fn sync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        if let Some(parent) = path.parent() {
            let dir = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            File::open(dir)?.sync_all()?;
        }
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

impl RoundObserver for MmapTraceObserver {
    fn on_message(&mut self, from: NodeId, to: NodeId, _edge: EdgeId, message: &Message) {
        if self.error.is_some() {
            return;
        }
        let mut buf = [0u8; RECORD_BYTES];
        encode_record(&mut buf, from, to, message);
        match self.writer.write_all(&buf) {
            Ok(()) => self.messages += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn on_round_end(&mut self, _round: u64) {
        if self.error.is_none() {
            let mut buf = [0u8; RECORD_BYTES];
            encode_marker(&mut buf, self.round_ends.len() as u64, self.messages);
            if let Err(e) = self.writer.write_all(&buf) {
                self.error = Some(e);
                return;
            }
        }
        self.round_ends.push(self.messages);
    }
}

/// A sealed trace file opened for reading — the disk-backed counterpart of
/// [`Trace`], with O(1)-seek random access to any round.
#[derive(Debug)]
pub struct StoredTrace {
    path: PathBuf,
    file: File,
    /// Cumulative message count at each round's end (from the footer).
    round_ends: Vec<u64>,
}

impl StoredTrace {
    /// Opens a file sealed by [`MmapTraceObserver::finish`], validating
    /// magics and the size accounting.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`std::io::ErrorKind::InvalidData`] when the file is
    /// not a sealed trace (bad magic, truncated, inconsistent counts).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let mut file = File::open(&path)?;
        let total = file.metadata()?.len();
        if total < 8 + FOOTER_TAIL {
            return Err(corrupt("file too small to be a sealed trace"));
        }
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != HEADER_MAGIC {
            return Err(corrupt("bad trace header magic"));
        }
        file.seek(SeekFrom::End(-(FOOTER_TAIL as i64)))?;
        let mut tail = [0u8; FOOTER_TAIL as usize];
        file.read_exact(&mut tail)?;
        if &tail[16..24] != FOOTER_MAGIC {
            return Err(corrupt(
                "bad trace footer magic (unsealed or truncated file?)",
            ));
        }
        let rounds = u64::from_le_bytes(tail[0..8].try_into().unwrap());
        let messages = u64::from_le_bytes(tail[8..16].try_into().unwrap());
        // Checked size accounting: the counts are untrusted, and a crafted
        // footer must not wrap the arithmetic into a passing check (the
        // reader's contract is InvalidData, never a panic or huge
        // allocation). A passing check bounds `rounds`/`messages` by the
        // actual file size, which makes the reservations below safe.
        let expected = messages
            .checked_add(rounds)
            .and_then(|recs| recs.checked_mul(RECORD_BYTES as u64))
            .and_then(|b| b.checked_add(rounds.checked_mul(8)?))
            .and_then(|b| b.checked_add(8 + FOOTER_TAIL))
            .ok_or_else(|| corrupt("trace counts overflow the size accounting"))?;
        if expected != total {
            return Err(corrupt(format!(
                "trace declares {messages} messages / {rounds} rounds \
                 ({expected} bytes) but the file holds {total}"
            )));
        }
        file.seek(SeekFrom::Start(
            8 + (messages + rounds) * RECORD_BYTES as u64,
        ))?;
        let mut round_ends = Vec::with_capacity(rounds as usize);
        let mut buf = [0u8; 8];
        for _ in 0..rounds {
            file.read_exact(&mut buf)?;
            round_ends.push(u64::from_le_bytes(buf));
        }
        if round_ends.windows(2).any(|w| w[0] > w[1])
            || round_ends.last().is_some_and(|&last| last != messages)
            || (rounds == 0 && messages != 0)
        {
            return Err(corrupt("trace round index is not monotone to the total"));
        }
        Ok(StoredTrace {
            path,
            file,
            round_ends,
        })
    }

    /// The underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of recorded rounds.
    pub fn num_rounds(&self) -> usize {
        self.round_ends.len()
    }

    /// Total number of recorded messages.
    pub fn num_messages(&self) -> u64 {
        self.round_ends.last().copied().unwrap_or(0)
    }

    /// Number of messages recorded in round `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ num_rounds()` (mirrors [`Trace::round`]).
    pub fn round_len(&self, i: usize) -> u64 {
        let lo = if i == 0 { 0 } else { self.round_ends[i - 1] };
        self.round_ends[i] - lo
    }

    /// Reads the full contents of the data region at `offset` into `buf` —
    /// positionally on Unix (no shared cursor, the mmap-style access path),
    /// through a seek elsewhere.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            // `Seek`/`Read` are implemented for `&File`; single-reader use
            // only (the shared cursor makes this path non-reentrant).
            let mut f = &self.file;
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)
        }
    }

    /// Records fetched per positional read in [`StoredTrace::read_round_into`]
    /// — large enough that even a 10⁵-node all-to-all round costs a handful
    /// of syscalls, small enough (~53 KiB) to bound the scratch buffer.
    const BLOCK_RECORDS: usize = 1024;

    /// Reads the messages of round `i` into `out` (overwritten) — random
    /// access: the fixed-width records make the round one contiguous
    /// position-indexed range, fetched in `BLOCK_RECORDS`-record
    /// exact-range block reads (a single read for typical rounds) and
    /// decoded in memory.
    ///
    /// # Errors
    ///
    /// I/O errors and record-level corruption
    /// ([`std::io::ErrorKind::InvalidData`]).
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ num_rounds()` (mirrors [`Trace::round`]).
    pub fn read_round_into(&self, i: usize, out: &mut Vec<TraceMessage>) -> io::Result<()> {
        let lo = if i == 0 { 0 } else { self.round_ends[i - 1] };
        let hi = self.round_ends[i];
        out.clear();
        let count = (hi - lo) as usize;
        out.reserve(count);
        let mut block = vec![0u8; RECORD_BYTES * count.min(Self::BLOCK_RECORDS)];
        let mut done = 0usize;
        while done < count {
            let take = (count - done).min(Self::BLOCK_RECORDS);
            let bytes = &mut block[..take * RECORD_BYTES];
            // Round `i`'s records are preceded by `lo` messages and the `i`
            // round markers that closed rounds 0..i.
            self.read_at(
                8 + (lo + i as u64 + done as u64) * RECORD_BYTES as u64,
                bytes,
            )?;
            for record in bytes.chunks_exact(RECORD_BYTES) {
                out.push(decode_record(record.try_into().unwrap())?);
            }
            done += take;
        }
        Ok(())
    }

    /// The messages of round `i` — allocating convenience form of
    /// [`StoredTrace::read_round_into`].
    ///
    /// # Errors
    ///
    /// See [`StoredTrace::read_round_into`].
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ num_rounds()`.
    pub fn round(&self, i: usize) -> io::Result<Vec<TraceMessage>> {
        let mut out = Vec::new();
        self.read_round_into(i, &mut out)?;
        Ok(out)
    }

    /// Full equality against an in-RAM [`Trace`]: same round count, same
    /// per-round message count, every message equal field for field (the
    /// fixed-width records round-trip payloads byte for byte, so this is
    /// byte-level equality of the payloads). Streams one round at a time —
    /// the stored trace is never materialized whole.
    ///
    /// # Errors
    ///
    /// I/O errors reading the stored rounds.
    pub fn same_as(&self, other: &Trace) -> io::Result<bool> {
        if self.num_rounds() != other.num_rounds() {
            return Ok(false);
        }
        let mut buf = Vec::new();
        for i in 0..self.num_rounds() {
            if self.round_len(i) as usize != other.round(i).len() {
                return Ok(false);
            }
            self.read_round_into(i, &mut buf)?;
            if buf != other.round(i) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Rehydrates the whole stored trace into an in-RAM [`Trace`] (for
    /// small traces and the differential tests; defeats the point of
    /// spilling at n = 10⁵).
    ///
    /// # Errors
    ///
    /// I/O errors reading the stored rounds.
    pub fn to_trace(&self) -> io::Result<Trace> {
        let mut trace = Trace::new();
        let mut buf = Vec::new();
        for i in 0..self.num_rounds() {
            self.read_round_into(i, &mut buf)?;
            trace.push_round(std::mem::take(&mut buf));
        }
        Ok(trace)
    }

    /// Deletes the backing file (spill hygiene for tests and one-shot
    /// experiment runs).
    ///
    /// # Errors
    ///
    /// Any error removing the file.
    pub fn remove(self) -> io::Result<()> {
        let StoredTrace { path, file, .. } = self;
        drop(file);
        fs::remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(from: u32, to: u32, id: u64) -> TraceMessage {
        TraceMessage {
            from: NodeId(from),
            to: NodeId(to),
            message: Message::tagged(7).with_id(id).with_value(id * 3),
        }
    }

    fn scratch_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sbtr-unit-{}-{tag}.sbtr", std::process::id()))
    }

    /// Drives the observer callbacks directly (unit level — the
    /// simulator-driven path is covered by `tests/trace_store_equivalence`).
    fn record(path: &Path, rounds: &[Vec<TraceMessage>]) -> StoredTrace {
        let mut obs = MmapTraceObserver::create(path).unwrap();
        for (r, round) in rounds.iter().enumerate() {
            for m in round {
                obs.on_message(m.from, m.to, EdgeId(0), &m.message);
            }
            obs.on_round_end(r as u64);
        }
        obs.finish().unwrap()
    }

    #[test]
    fn record_roundtrip_preserves_every_field() {
        let rounds = vec![
            vec![msg(0, 1, 10), msg(1, 0, 20)],
            Vec::new(),
            vec![msg(2, 0, 30)],
        ];
        let path = scratch_path("roundtrip");
        let stored = record(&path, &rounds);
        assert_eq!(stored.num_rounds(), 3);
        assert_eq!(stored.num_messages(), 3);
        assert_eq!(stored.round_len(1), 0);
        // Random access, out of order.
        assert_eq!(stored.round(2).unwrap(), rounds[2]);
        assert_eq!(stored.round(0).unwrap(), rounds[0]);

        let mut in_ram = Trace::new();
        for r in &rounds {
            in_ram.push_round(r.clone());
        }
        assert!(stored.same_as(&in_ram).unwrap());
        assert_eq!(stored.to_trace().unwrap(), in_ram);
        stored.remove().unwrap();
    }

    #[test]
    fn same_as_detects_any_divergence() {
        let rounds = vec![vec![msg(0, 1, 10)], vec![msg(1, 0, 20)]];
        let path = scratch_path("divergence");
        let stored = record(&path, &rounds);

        let mut fewer_rounds = Trace::new();
        fewer_rounds.push_round(rounds[0].clone());
        assert!(!stored.same_as(&fewer_rounds).unwrap());

        let mut other_payload = Trace::new();
        other_payload.push_round(rounds[0].clone());
        other_payload.push_round(vec![msg(1, 0, 21)]);
        assert!(!stored.same_as(&other_payload).unwrap());
        stored.remove().unwrap();
    }

    #[test]
    fn empty_trace_roundtrips() {
        let path = scratch_path("empty");
        let stored = record(&path, &[]);
        assert_eq!(stored.num_rounds(), 0);
        assert_eq!(stored.num_messages(), 0);
        assert!(stored.same_as(&Trace::new()).unwrap());
        stored.remove().unwrap();
    }

    #[test]
    fn open_rejects_unsealed_and_corrupt_files() {
        let path = scratch_path("corrupt");
        // Unsealed: header only, no footer.
        let obs = MmapTraceObserver::create(&path).unwrap();
        drop(obs);
        assert_eq!(
            StoredTrace::open(&path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Sealed then truncated: size accounting must catch it.
        let stored = record(&path, &[vec![msg(0, 1, 1), msg(1, 0, 2)]]);
        let len = fs::metadata(stored.path()).unwrap().len();
        drop(stored);
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - RECORD_BYTES as u64).unwrap();
        drop(f);
        assert!(StoredTrace::open(&path).is_err());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn overflowing_footer_counts_are_rejected() {
        // A crafted footer whose counts would wrap the size accounting must
        // surface as InvalidData, not pass the check and panic later.
        let path = scratch_path("overflow");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(HEADER_MAGIC);
        bytes.extend_from_slice(&1u64.to_le_bytes()); // rounds
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // messages
        bytes.extend_from_slice(FOOTER_MAGIC);
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            StoredTrace::open(&path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_resumes_an_unsealed_recording() {
        let rounds = vec![
            vec![msg(0, 1, 10), msg(1, 0, 20)],
            vec![msg(2, 0, 30)],
            vec![msg(0, 2, 40)],
        ];
        let path = scratch_path("recover");
        // Record all three rounds but drop the observer unsealed (the
        // BufWriter flushes what it has on drop — a killed run).
        let mut obs = MmapTraceObserver::create(&path).unwrap();
        for (r, round) in rounds.iter().enumerate() {
            for m in round {
                obs.on_message(m.from, m.to, EdgeId(0), &m.message);
            }
            obs.on_round_end(r as u64);
        }
        drop(obs);
        assert!(StoredTrace::open(&path).is_err(), "unsealed must not open");

        // Recover to the checkpoint boundary after round 1, replay round 2.
        let mut obs = MmapTraceObserver::recover_to(&path, 2).unwrap();
        assert_eq!(obs.num_rounds(), 2);
        assert_eq!(obs.num_messages(), 3);
        for m in &rounds[2] {
            obs.on_message(m.from, m.to, EdgeId(0), &m.message);
        }
        obs.on_round_end(2);
        let stored = obs.finish().unwrap();
        let mut in_ram = Trace::new();
        for r in &rounds {
            in_ram.push_round(r.clone());
        }
        assert!(stored.same_as(&in_ram).unwrap());
        stored.remove().unwrap();
    }

    #[test]
    fn recover_truncates_a_torn_tail() {
        let path = scratch_path("torn");
        let mut obs = MmapTraceObserver::create(&path).unwrap();
        let m = msg(0, 1, 5);
        obs.on_message(m.from, m.to, EdgeId(0), &m.message);
        obs.on_round_end(0);
        // A message of round 1 that never reached its round marker, plus a
        // torn half-record.
        obs.on_message(m.from, m.to, EdgeId(0), &m.message);
        drop(obs);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB; RECORD_BYTES / 2]);
        fs::write(&path, &bytes).unwrap();

        let (obs, rounds) = MmapTraceObserver::recover(&path).unwrap();
        assert_eq!(rounds, 1);
        assert_eq!(obs.num_messages(), 1);
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            8 + 2 * RECORD_BYTES as u64,
            "one message + one marker survive"
        );
        let stored = obs.finish().unwrap();
        assert_eq!(stored.num_rounds(), 1);
        stored.remove().unwrap();

        // recover_to more rounds than survive is InvalidData.
        let stored = record(&path, &[vec![msg(0, 1, 1)]]);
        drop(stored);
        assert_eq!(
            MmapTraceObserver::recover_to(&path, 5).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flips_in_records_are_detected_on_read() {
        let path = scratch_path("bitflip");
        let stored = record(&path, &[vec![msg(0, 1, 1), msg(1, 0, 2)]]);
        drop(stored);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8 + 20] ^= 0x40; // a payload byte of the first record
        fs::write(&path, &bytes).unwrap();
        let stored = StoredTrace::open(&path).unwrap();
        assert_eq!(
            stored.round(0).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        stored.remove().unwrap();
    }

    #[test]
    fn stored_bytes_accounts_exactly() {
        let path = scratch_path("bytes");
        let mut obs = MmapTraceObserver::create(&path).unwrap();
        let m = msg(3, 4, 9);
        obs.on_message(m.from, m.to, EdgeId(0), &m.message);
        obs.on_round_end(0);
        let predicted = obs.stored_bytes();
        let stored = obs.finish().unwrap();
        assert_eq!(fs::metadata(stored.path()).unwrap().len(), predicted);
        stored.remove().unwrap();
    }
}
