//! Cost accounting across the phases of a composed algorithm.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ExecutionReport;

/// Message/round costs of one phase of an algorithm.
///
/// *Simulated* costs come from actually executed message exchanges in the
/// simulator. *Charged* costs come from black-box substrates whose published
/// complexity is charged without re-implementing them (see the substitution
/// notes in `DESIGN.md`: the danner construction of Theorem 1.1 and the
/// asynchronous MST of Theorem 1.3). Reports keep the two separate so that
/// the substitution stays visible in every measurement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Messages actually exchanged in the simulator.
    pub simulated_messages: u64,
    /// Rounds actually executed in the simulator.
    pub simulated_rounds: u64,
    /// Messages charged for black-box substrates.
    pub charged_messages: u64,
    /// Rounds charged for black-box substrates.
    pub charged_rounds: u64,
}

impl PhaseCost {
    /// A purely simulated cost.
    pub fn simulated(messages: u64, rounds: u64) -> Self {
        PhaseCost {
            simulated_messages: messages,
            simulated_rounds: rounds,
            ..Default::default()
        }
    }

    /// A purely charged cost.
    pub fn charged(messages: u64, rounds: u64) -> Self {
        PhaseCost {
            charged_messages: messages,
            charged_rounds: rounds,
            ..Default::default()
        }
    }

    /// Total messages (simulated + charged).
    pub fn total_messages(&self) -> u64 {
        self.simulated_messages + self.charged_messages
    }

    /// Total rounds (simulated + charged).
    pub fn total_rounds(&self) -> u64 {
        self.simulated_rounds + self.charged_rounds
    }
}

/// A labelled, ordered collection of [`PhaseCost`]s for one algorithm run.
///
/// # Example
///
/// ```
/// use symbreak_congest::{CostAccount, PhaseCost};
///
/// let mut acc = CostAccount::new();
/// acc.charge("danner construction", PhaseCost::charged(1000, 10));
/// acc.charge("coloring", PhaseCost::simulated(250, 12));
/// assert_eq!(acc.total_messages(), 1250);
/// assert_eq!(acc.simulated_messages(), 250);
/// assert_eq!(acc.total_rounds(), 22);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostAccount {
    phases: Vec<(String, PhaseCost)>,
}

impl CostAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        CostAccount::default()
    }

    /// Records the cost of a phase.
    pub fn charge(&mut self, label: impl Into<String>, cost: PhaseCost) {
        self.phases.push((label.into(), cost));
    }

    /// Records the simulated cost of an [`ExecutionReport`].
    pub fn charge_report(&mut self, label: impl Into<String>, report: &ExecutionReport) {
        self.charge(label, PhaseCost::simulated(report.messages, report.rounds));
    }

    /// Merges another account into this one, prefixing its phase labels.
    pub fn absorb(&mut self, prefix: &str, other: &CostAccount) {
        for (label, cost) in &other.phases {
            self.phases.push((format!("{prefix}/{label}"), *cost));
        }
    }

    /// The recorded phases in order.
    pub fn phases(&self) -> impl Iterator<Item = (&str, PhaseCost)> + '_ {
        self.phases.iter().map(|(l, c)| (l.as_str(), *c))
    }

    /// Total messages across all phases (simulated + charged).
    pub fn total_messages(&self) -> u64 {
        self.phases.iter().map(|(_, c)| c.total_messages()).sum()
    }

    /// Simulated messages across all phases.
    pub fn simulated_messages(&self) -> u64 {
        self.phases.iter().map(|(_, c)| c.simulated_messages).sum()
    }

    /// Charged messages across all phases.
    pub fn charged_messages(&self) -> u64 {
        self.phases.iter().map(|(_, c)| c.charged_messages).sum()
    }

    /// Total rounds across all phases (phases are sequential, so rounds add).
    pub fn total_rounds(&self) -> u64 {
        self.phases.iter().map(|(_, c)| c.total_rounds()).sum()
    }

    /// Simulated rounds across all phases.
    pub fn simulated_rounds(&self) -> u64 {
        self.phases.iter().map(|(_, c)| c.simulated_rounds).sum()
    }
}

impl fmt::Display for CostAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<40} {:>12} {:>12} {:>8} {:>8}",
            "phase", "sim msgs", "chg msgs", "sim rds", "chg rds"
        )?;
        for (label, c) in &self.phases {
            writeln!(
                f,
                "{:<40} {:>12} {:>12} {:>8} {:>8}",
                label,
                c.simulated_messages,
                c.charged_messages,
                c.simulated_rounds,
                c.charged_rounds
            )?;
        }
        writeln!(
            f,
            "{:<40} {:>12} {:>12} {:>8} {:>8}",
            "TOTAL",
            self.simulated_messages(),
            self.charged_messages(),
            self.simulated_rounds(),
            self.total_rounds() - self.simulated_rounds()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut acc = CostAccount::new();
        acc.charge("a", PhaseCost::simulated(10, 2));
        acc.charge("b", PhaseCost::charged(100, 5));
        acc.charge(
            "c",
            PhaseCost {
                simulated_messages: 1,
                simulated_rounds: 1,
                charged_messages: 2,
                charged_rounds: 3,
            },
        );
        assert_eq!(acc.total_messages(), 113);
        assert_eq!(acc.simulated_messages(), 11);
        assert_eq!(acc.charged_messages(), 102);
        assert_eq!(acc.total_rounds(), 11);
        assert_eq!(acc.simulated_rounds(), 3);
        assert_eq!(acc.phases().count(), 3);
    }

    #[test]
    fn absorb_prefixes_labels() {
        let mut inner = CostAccount::new();
        inner.charge("x", PhaseCost::simulated(5, 1));
        let mut outer = CostAccount::new();
        outer.absorb("sub", &inner);
        let labels: Vec<&str> = outer.phases().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["sub/x"]);
        assert_eq!(outer.total_messages(), 5);
    }

    #[test]
    fn display_contains_phases_and_total() {
        let mut acc = CostAccount::new();
        acc.charge("phase-one", PhaseCost::simulated(7, 3));
        let rendered = acc.to_string();
        assert!(rendered.contains("phase-one"));
        assert!(rendered.contains("TOTAL"));
    }

    #[test]
    fn phase_cost_helpers() {
        let c = PhaseCost::charged(4, 2);
        assert_eq!(c.total_messages(), 4);
        assert_eq!(c.total_rounds(), 2);
        assert_eq!(c.simulated_messages, 0);
    }
}
