//! Engine checkpoints: periodic snapshots of the sequential round loop and
//! bit-identical resumption after a crash.
//!
//! A checkpointed run appends one record to a single **append-only log**
//! every [`CheckpointConfig::every`] rounds. Each record captures everything
//! the round loop needs to continue from that boundary:
//!
//! * the loop counters (round, message count, max message bits),
//! * the round's active set (or the "every node" flag),
//! * the in-flight messages — the inboxes the next round will consume,
//!   stored in staging (send) order so the restore path replays them
//!   through the same counting sort that built the original arena,
//! * the automata states of every node **touched since the previous
//!   checkpoint**, through the [`PersistState`] seam (later records
//!   override earlier ones on restore; nodes no record mentions are still
//!   factory-fresh, which the deterministic factory reproduces exactly).
//!
//! Records are length-prefixed and guarded by a trailing 64-bit
//! word-folded FNV-1a checksum covering the whole body (individual
//! in-flight messages carry no per-message checksum — the body digest
//! already covers them). The log is only `fsync`ed when a run finishes: a
//! process crash mid-run can tear the final record, and
//! [`CheckpointChain::load`] simply stops at the last valid one — exactly
//! the recovery contract of
//! [`crate::trace_store::MmapTraceObserver::recover`]. Resuming truncates
//! the torn tail and appends from there.
//!
//! [`SyncSimulator::run_checkpointed`] and [`SyncSimulator::resume_from`]
//! drive the loop; resumed runs are **bit-identical** to uninterrupted ones
//! (same reports, outputs and traces), which the `checkpoint_resume`
//! integration suite proves by killing a run at every checkpoint boundary.
//! Checkpointed runs always execute on the sequential loop; since reports
//! are bit-identical at every thread count, a sequential resume still
//! reproduces a parallel baseline exactly.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use symbreak_graphs::{Graph, NodeId};

use crate::engine::{DeliveryBuffer, MessageArena, NodeRuntime, NoopObserver, RoundObserver};
use crate::message::{MAX_ID_FIELDS, MAX_VALUE_FIELDS};
use crate::sync::next_active;
use crate::trace::TraceMessage;
use crate::trace_store::sync_parent_dir;
use crate::{ExecutionReport, Message, NodeAlgorithm, NodeInit, SyncConfig, SyncSimulator};

/// Environment variable naming the directory
/// [`CheckpointConfig::from_env`] places checkpoint logs in (system temp
/// dir when unset or empty).
pub const CHECKPOINT_DIR_ENV: &str = "CONGEST_CHECKPOINT_DIR";

/// Environment variable overriding the checkpoint cadence of
/// [`CheckpointConfig::from_env`] (rounds between checkpoints; default 8).
pub const CHECKPOINT_EVERY_ENV: &str = "CONGEST_CHECKPOINT_EVERY";

/// Default checkpoint cadence in rounds.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 8;

/// Magic number opening every checkpoint log (8 bytes, versioned).
const LOG_MAGIC: &[u8; 8] = b"SBCKLOG1";

/// Smallest possible record body (counters + flags + empty sections).
const MIN_BODY_BYTES: u64 = 8 + 8 + 4 + 1 + 4 + 4;

/// Log writer buffer: full-graph snapshots run to megabytes, and draining
/// them through `BufWriter`'s default 8 KiB buffer costs a syscall per
/// 8 KiB.
const WRITE_BUFFER: usize = 1 << 18;

/// The checkpoint directory: `CONGEST_CHECKPOINT_DIR` if set and non-empty,
/// else the system temp dir.
pub fn checkpoint_dir() -> PathBuf {
    match std::env::var(CHECKPOINT_DIR_ENV) {
        Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
        _ => std::env::temp_dir(),
    }
}

/// Where and how often a checkpointed run snapshots its state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Path of the append-only checkpoint log file.
    pub path: PathBuf,
    /// Rounds between checkpoints (must be ≥ 1).
    pub every: u64,
}

impl CheckpointConfig {
    /// Configuration writing to `path` with the default cadence.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            path: path.into(),
            every: DEFAULT_CHECKPOINT_EVERY,
        }
    }

    /// Sets the checkpoint cadence.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_every(mut self, every: u64) -> Self {
        assert!(every > 0, "checkpoint cadence must be at least one round");
        self.every = every;
        self
    }

    /// Configuration from the environment: the log `<stem>.sbck` inside
    /// [`checkpoint_dir`] (`CONGEST_CHECKPOINT_DIR`), with the cadence from
    /// `CONGEST_CHECKPOINT_EVERY` (default [`DEFAULT_CHECKPOINT_EVERY`]).
    pub fn from_env(stem: &str) -> Self {
        let mut config = CheckpointConfig::new(checkpoint_dir().join(format!("{stem}.sbck")));
        if let Ok(raw) = std::env::var(CHECKPOINT_EVERY_ENV) {
            if let Ok(every) = raw.trim().parse::<u64>() {
                if every > 0 {
                    config.every = every;
                }
            }
        }
        config
    }
}

/// The state-snapshot seam of checkpointable automata.
///
/// `encode_state` must capture **everything** that distinguishes this
/// automaton from a factory-fresh one — decision state, counters, RNG
/// cursors (see `StdRng::state`) — as a word sequence; `decode_state`
/// applied to a factory-fresh instance must reproduce the encoded one
/// exactly. Borrowed or factory-derived data (neighbour lists, knowledge
/// views) need not be encoded: restoration always runs the factory first.
pub trait PersistState: NodeAlgorithm {
    /// Appends this automaton's state to `out`.
    fn encode_state(&self, out: &mut Vec<u64>);

    /// Restores a state captured by [`PersistState::encode_state`] into a
    /// factory-fresh instance. Returns `false` when `words` is malformed
    /// (wrong length, out-of-range discriminant, …) — the loader surfaces
    /// that as [`io::ErrorKind::InvalidData`], never a panic.
    #[must_use]
    fn decode_state(&mut self, words: &[u64]) -> bool;
}

/// One decoded checkpoint record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// The round boundary this checkpoint was taken at (the next round to
    /// execute).
    pub round: u64,
    /// Messages sent so far.
    pub messages: u64,
    /// Largest message observed so far, in bits.
    pub max_message_bits: u32,
    /// Whether the round's active set is every node (`active` is then
    /// empty).
    pub active_all: bool,
    /// The round's active set, ascending (empty when `active_all`).
    pub active: Vec<u32>,
    /// The in-flight messages the round will consume, in staging (send)
    /// order.
    pub in_flight: Vec<TraceMessage>,
    /// `(node, state words)` for every node touched since the previous
    /// checkpoint, ascending by node.
    pub states: Vec<(u32, Vec<u64>)>,
}

/// A checkpoint log's valid prefix: every record up to (excluding) the
/// first torn or corrupt one.
#[derive(Debug)]
pub struct CheckpointChain {
    records: Vec<CheckpointRecord>,
    valid_end: u64,
}

impl CheckpointChain {
    /// Reads the log's valid prefix. A torn or bit-flipped tail record is
    /// silently dropped (that is the crash-recovery contract); a missing
    /// file or an invalid header is an error.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] when the header is damaged, plus
    /// ordinary I/O errors (e.g. a missing file).
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut magic = [0u8; 8];
        if file_len < 8 {
            return Err(corrupt("checkpoint log shorter than its header"));
        }
        file.read_exact(&mut magic)?;
        if &magic != LOG_MAGIC {
            return Err(corrupt("not a checkpoint log (bad magic)"));
        }
        let mut records = Vec::new();
        let mut offset = 8u64;
        loop {
            let mut len_buf = [0u8; 8];
            if offset + 8 > file_len {
                break;
            }
            file.read_exact(&mut len_buf)?;
            let len = u64::from_le_bytes(len_buf);
            if len < MIN_BODY_BYTES || offset + 8 + len + 8 > file_len {
                break; // Torn length prefix or torn body.
            }
            let mut body = vec![0u8; len as usize];
            file.read_exact(&mut body)?;
            let mut sum_buf = [0u8; 8];
            file.read_exact(&mut sum_buf)?;
            if u64::from_le_bytes(sum_buf) != body_checksum(&body) {
                break; // Bit-flipped or torn record.
            }
            match decode_body(&body) {
                Some(record) => records.push(record),
                None => break,
            }
            offset += 8 + len + 8;
            file.seek(SeekFrom::Start(offset))?;
        }
        Ok(CheckpointChain {
            records,
            valid_end: offset,
        })
    }

    /// The decoded records, oldest first.
    pub fn records(&self) -> &[CheckpointRecord] {
        &self.records
    }

    /// The most recent valid checkpoint, if any.
    pub fn latest(&self) -> Option<&CheckpointRecord> {
        self.records.last()
    }

    /// The most recent valid checkpoint at or before `round`, if any.
    pub fn at_or_before(&self, round: u64) -> Option<&CheckpointRecord> {
        self.records.iter().rev().find(|r| r.round <= round)
    }

    /// Byte offset of the valid prefix's end (where a resumed run appends).
    pub fn valid_end(&self) -> u64 {
        self.valid_end
    }

    /// Folds the incremental state records up to (and including) the
    /// checkpoint at `round`: the latest state words recorded for `node`,
    /// or `None` when no record ≤ `round` touched it (the node is then
    /// factory-fresh at that boundary).
    pub fn state_of(&self, node: u32, round: u64) -> Option<&[u64]> {
        self.records
            .iter()
            .rev()
            .filter(|r| r.round <= round)
            .find_map(|r| {
                r.states
                    .binary_search_by_key(&node, |&(v, _)| v)
                    .ok()
                    .map(|at| r.states[at].1.as_slice())
            })
    }
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// 64-bit FNV-1a folded over whole little-endian words, with the byte
/// length mixed in last. Checkpoint bodies run to kilobytes at tight
/// cadences, where the trace store's byte-serial FNV (one carried multiply
/// per byte) would dominate the boundary cost; folding eight bytes per
/// multiply keeps the digest's bit-sensitivity (XOR then odd multiply is
/// injective per chunk) at an eighth of the chain length.
fn body_checksum(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h ^= u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    let mut tail = [0u8; 8];
    tail[..rem.len()].copy_from_slice(rem);
    h ^= u64::from_le_bytes(tail);
    h = h.wrapping_mul(PRIME);
    // Zero-padding the tail aliases lengths; the explicit length chunk
    // disambiguates them.
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

/// Appends one in-flight message in the body's compact wire form: sender,
/// receiver, tag, field counts, then only the declared id/value words (no
/// per-message checksum — the whole-body digest covers them). Called from
/// the round loop's message sink on capture rounds, so boundary encoding
/// never re-walks a staged message list.
fn push_message(buf: &mut Vec<u8>, from: NodeId, to: NodeId, msg: &Message) {
    let ids = msg.ids();
    let values = msg.values();
    buf.extend_from_slice(&from.0.to_le_bytes());
    buf.extend_from_slice(&to.0.to_le_bytes());
    buf.extend_from_slice(&msg.tag().to_le_bytes());
    buf.push(ids.len() as u8);
    buf.push(values.len() as u8);
    for &w in ids.iter().chain(values) {
        buf.extend_from_slice(&w.to_le_bytes());
    }
}

/// Serializes one checkpoint body (everything but the length prefix and
/// trailing checksum).
#[allow(clippy::too_many_arguments)]
fn encode_body<A: PersistState>(
    body: &mut Vec<u8>,
    round: u64,
    messages: u64,
    max_bits: u32,
    active_all: bool,
    active: &[u32],
    in_flight_count: u32,
    in_flight_bytes: &[u8],
    touched_all: bool,
    touched: &[u32],
    runtime: &NodeRuntime<'_, A>,
    words: &mut Vec<u64>,
) {
    body.clear();
    body.extend_from_slice(&round.to_le_bytes());
    body.extend_from_slice(&messages.to_le_bytes());
    body.extend_from_slice(&max_bits.to_le_bytes());
    body.push(u8::from(active_all));
    if active_all {
        body.extend_from_slice(&0u32.to_le_bytes());
    } else {
        body.extend_from_slice(&(active.len() as u32).to_le_bytes());
        for &a in active {
            body.extend_from_slice(&a.to_le_bytes());
        }
    }
    body.extend_from_slice(&in_flight_count.to_le_bytes());
    body.extend_from_slice(in_flight_bytes);
    // Touched nodes are written in first-touch order (or 0..n when an
    // all-active round fell in the window); the decoder sorts, keeping the
    // boundary path allocation- and sort-free.
    let mut emit = |body: &mut Vec<u8>, i: u32| {
        words.clear();
        runtime.node_ref(i as usize).encode_state(words);
        body.extend_from_slice(&i.to_le_bytes());
        body.extend_from_slice(&(words.len() as u32).to_le_bytes());
        for &w in words.iter() {
            body.extend_from_slice(&w.to_le_bytes());
        }
    };
    if touched_all {
        let n = runtime.num_nodes() as u32;
        body.extend_from_slice(&n.to_le_bytes());
        for i in 0..n {
            emit(body, i);
        }
    } else {
        body.extend_from_slice(&(touched.len() as u32).to_le_bytes());
        for &i in touched {
            emit(body, i);
        }
    }
}

/// Deserializes one checkpoint body; `None` marks a malformed interior
/// (the caller treats it as the log's torn tail).
fn decode_body(body: &[u8]) -> Option<CheckpointRecord> {
    let mut at = 0usize;
    let mut take = |len: usize| -> Option<&[u8]> {
        let slice = body.get(at..at + len)?;
        at += len;
        Some(slice)
    };
    let round = u64::from_le_bytes(take(8)?.try_into().ok()?);
    let messages = u64::from_le_bytes(take(8)?.try_into().ok()?);
    let max_message_bits = u32::from_le_bytes(take(4)?.try_into().ok()?);
    let active_all = match take(1)?[0] {
        0 => false,
        1 => true,
        _ => return None,
    };
    let active_len = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
    if active_all && active_len != 0 {
        return None;
    }
    let mut active = Vec::with_capacity(active_len.min(body.len() / 4));
    for _ in 0..active_len {
        active.push(u32::from_le_bytes(take(4)?.try_into().ok()?));
    }
    let in_flight_len = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
    let mut in_flight = Vec::with_capacity(in_flight_len.min(body.len() / 12));
    for _ in 0..in_flight_len {
        let from = NodeId(u32::from_le_bytes(take(4)?.try_into().ok()?));
        let to = NodeId(u32::from_le_bytes(take(4)?.try_into().ok()?));
        let tag = u16::from_le_bytes(take(2)?.try_into().ok()?);
        let num_ids = take(1)?[0] as usize;
        let num_values = take(1)?[0] as usize;
        if num_ids > MAX_ID_FIELDS || num_values > MAX_VALUE_FIELDS {
            return None;
        }
        let mut message = Message::tagged(tag);
        for _ in 0..num_ids {
            message = message.with_id(u64::from_le_bytes(take(8)?.try_into().ok()?));
        }
        for _ in 0..num_values {
            message = message.with_value(u64::from_le_bytes(take(8)?.try_into().ok()?));
        }
        in_flight.push(TraceMessage { from, to, message });
    }
    let states_len = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
    let mut states: Vec<(u32, Vec<u64>)> = Vec::with_capacity(states_len.min(body.len() / 8));
    for _ in 0..states_len {
        let node = u32::from_le_bytes(take(4)?.try_into().ok()?);
        let words_len = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        let mut words = Vec::with_capacity(words_len.min(body.len() / 8));
        for _ in 0..words_len {
            words.push(u64::from_le_bytes(take(8)?.try_into().ok()?));
        }
        states.push((node, words));
    }
    if at != body.len() {
        return None; // Trailing garbage inside a checksummed body.
    }
    // The writer emits touched nodes in step order; sort here so
    // [`CheckpointChain::state_of`] can binary-search. A node listed twice
    // in one record is malformed (the writer's dirty set is unique).
    states.sort_unstable_by_key(|&(node, _)| node);
    if states.windows(2).any(|w| w[0].0 == w[1].0) {
        return None;
    }
    Some(CheckpointRecord {
        round,
        messages,
        max_message_bits,
        active_all,
        active,
        in_flight,
        states,
    })
}

/// The append-only log writer. Records are buffered ([`BufWriter`]
/// flushes to the OS as its buffer fills) and `fsync`ed once at
/// [`CheckpointWriter::finish`] — per-record syscalls would dominate the
/// loop at tight cadences. A process kill therefore recovers from the
/// last OS-flushed prefix, possibly a few boundaries behind the last
/// encoded record; a torn tail is dropped by [`CheckpointChain::load`]
/// either way.
struct CheckpointWriter {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl CheckpointWriter {
    /// Creates a fresh log (truncating any previous one) and writes the
    /// header.
    fn create(path: &Path) -> io::Result<Self> {
        let mut writer = BufWriter::with_capacity(WRITE_BUFFER, File::create(path)?);
        writer.write_all(LOG_MAGIC)?;
        Ok(CheckpointWriter {
            writer,
            path: path.to_path_buf(),
        })
    }

    /// Reopens an existing log for appending after its valid prefix,
    /// truncating any torn tail.
    fn append_after(path: &Path, valid_end: u64) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_end)?;
        let mut writer = BufWriter::with_capacity(WRITE_BUFFER, file);
        writer.seek(SeekFrom::Start(valid_end))?;
        Ok(CheckpointWriter {
            writer,
            path: path.to_path_buf(),
        })
    }

    /// Appends one record (length prefix, body, checksum) to the buffer.
    fn write_record(&mut self, body: &[u8]) -> io::Result<()> {
        self.writer.write_all(&(body.len() as u64).to_le_bytes())?;
        self.writer.write_all(body)?;
        self.writer.write_all(&body_checksum(body).to_le_bytes())
    }

    /// Flushes and `fsync`s the log and its parent directory.
    fn finish(mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()?;
        drop(self.writer);
        sync_parent_dir(&self.path)
    }
}

impl<'g> SyncSimulator<'g> {
    /// Runs like [`SyncSimulator::run`], snapshotting the loop state to
    /// `checkpoint.path` every `checkpoint.every` rounds. The report is
    /// bit-identical to an uncheckpointed run at any thread count (the
    /// checkpointed loop itself always executes sequentially, which is
    /// already report-equivalent); the built-in instrumentation fields stay
    /// `None` — attach an observer via
    /// [`SyncSimulator::run_checkpointed_observed`] instead.
    ///
    /// # Errors
    ///
    /// I/O errors writing the checkpoint log.
    ///
    /// # Panics
    ///
    /// As [`SyncSimulator::run`] (bit-budget or non-neighbour sends).
    pub fn run_checkpointed<A, F>(
        &self,
        config: SyncConfig,
        checkpoint: &CheckpointConfig,
        make: F,
    ) -> io::Result<ExecutionReport>
    where
        A: PersistState,
        F: FnMut(NodeInit<'_>) -> A,
    {
        run_loop(self, config, checkpoint, make, &mut NoopObserver, false)
    }

    /// [`SyncSimulator::run_checkpointed`] with a caller-supplied
    /// [`RoundObserver`] (e.g. a
    /// [`crate::trace_store::MmapTraceObserver`]) receiving every message
    /// and round boundary.
    ///
    /// # Errors
    ///
    /// I/O errors writing the checkpoint log.
    pub fn run_checkpointed_observed<A, F, O>(
        &self,
        config: SyncConfig,
        checkpoint: &CheckpointConfig,
        make: F,
        observer: &mut O,
    ) -> io::Result<ExecutionReport>
    where
        A: PersistState,
        F: FnMut(NodeInit<'_>) -> A,
        O: RoundObserver,
    {
        run_loop(self, config, checkpoint, make, observer, false)
    }

    /// Resumes an interrupted checkpointed run from the latest valid
    /// checkpoint in `checkpoint.path`, truncating any torn tail and
    /// appending further checkpoints from there. The factory must be the
    /// same deterministic one the interrupted run used; the completed
    /// resumed run is then bit-identical to an uninterrupted
    /// [`SyncSimulator::run_checkpointed`] run. A log holding no valid
    /// checkpoint restarts the run from round 0.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] when the log's header is damaged or a
    /// recorded automaton state is rejected by
    /// [`PersistState::decode_state`]; ordinary I/O errors otherwise.
    pub fn resume_from<A, F>(
        &self,
        config: SyncConfig,
        checkpoint: &CheckpointConfig,
        make: F,
    ) -> io::Result<ExecutionReport>
    where
        A: PersistState,
        F: FnMut(NodeInit<'_>) -> A,
    {
        run_loop(self, config, checkpoint, make, &mut NoopObserver, true)
    }

    /// [`SyncSimulator::resume_from`] with a caller-supplied
    /// [`RoundObserver`] — pair it with a trace observer recovered by
    /// [`crate::trace_store::MmapTraceObserver::recover_to`] to continue an
    /// interrupted recording.
    ///
    /// # Errors
    ///
    /// As [`SyncSimulator::resume_from`].
    pub fn resume_from_observed<A, F, O>(
        &self,
        config: SyncConfig,
        checkpoint: &CheckpointConfig,
        make: F,
        observer: &mut O,
    ) -> io::Result<ExecutionReport>
    where
        A: PersistState,
        F: FnMut(NodeInit<'_>) -> A,
        O: RoundObserver,
    {
        run_loop(self, config, checkpoint, make, observer, true)
    }
}

/// The mutable per-run bookkeeping [`run_loop`] shares with its stepping
/// pass [`step_active`].
struct LoopState {
    messages: u64,
    max_bits: u32,
    /// Per-node done flags plus the count of nodes still undone.
    done: Vec<bool>,
    undone_count: usize,
    /// Stepped-but-not-done nodes of the current round (ascending).
    undone: Vec<u32>,
    /// The active lists of every round since the previous checkpoint,
    /// concatenated (one bulk append per round — per-step marking in the
    /// sink measurably drags the loop). The boundary dedups this into the
    /// touched set using `dirty` as scratch flags (all false in between).
    window_nodes: Vec<u32>,
    /// An all-active round occurred since the previous checkpoint: the
    /// touched set is every node, `window_nodes` is irrelevant.
    window_all: bool,
    dirty: Vec<bool>,
    /// Capture rounds encode in-flight messages straight into wire form
    /// here (count alongside, since records are count-prefixed).
    in_flight_buf: Vec<u8>,
    in_flight_count: u32,
}

/// One round's stepping pass, monomorphized over whether the round feeds
/// the next checkpoint boundary. `CAPTURE` is a const so the seven-of-
/// eight non-capture rounds compile to a message sink with no capture
/// code in it at all — with a runtime flag instead, the extra branch and
/// buffer accesses in the sink measurably drag the whole loop below the
/// plain engine (the sink is the innermost hot path).
#[allow(clippy::too_many_arguments)]
fn step_active<A, O, const CAPTURE: bool>(
    graph: &Graph,
    runtime: &mut NodeRuntime<'_, A>,
    arena: &MessageArena,
    staging: &mut DeliveryBuffer,
    observer: &mut O,
    bit_limit: u32,
    rounds: u64,
    active_all: bool,
    active: &[u32],
    st: &mut LoopState,
) where
    A: PersistState,
    O: RoundObserver,
{
    let defer_undone = active_all;
    let LoopState {
        messages,
        max_bits,
        done,
        undone_count,
        undone,
        in_flight_buf,
        in_flight_count,
        ..
    } = st;
    let mut step_one = |i: usize| {
        let mut sink = |from: NodeId, to: NodeId, msg: Message| {
            *messages += 1;
            if O::ACTIVE {
                let edge = graph
                    .edge_between(from, to)
                    .expect("send target verified to be a neighbour");
                observer.on_message(from, to, edge, &msg);
            }
            if CAPTURE {
                *in_flight_count += 1;
                push_message(in_flight_buf, from, to, &msg);
            }
            staging.stage(to, msg);
        };
        let now_done = runtime.step(i, rounds, arena.inbox(i), bit_limit, max_bits, &mut sink);
        if now_done != done[i] {
            done[i] = now_done;
            if now_done {
                *undone_count -= 1;
            } else {
                *undone_count += 1;
            }
        }
        if !now_done && !defer_undone {
            undone.push(i as u32);
        }
    };
    if active_all {
        for i in 0..graph.num_nodes() {
            step_one(i);
        }
    } else {
        for &iu in active {
            step_one(iu as usize);
        }
    }
}

/// The checkpointed sequential round loop — [`crate::sync`]'s sequential
/// loop plus dirty-node tracking, in-flight capture on pre-boundary rounds
/// and the restore path. Event-driven exactly like the plain loop, so
/// reports are bit-identical.
fn run_loop<A, F, O>(
    sim: &SyncSimulator<'_>,
    config: SyncConfig,
    checkpoint: &CheckpointConfig,
    mut make: F,
    observer: &mut O,
    resume: bool,
) -> io::Result<ExecutionReport>
where
    A: PersistState,
    F: FnMut(NodeInit<'_>) -> A,
    O: RoundObserver,
{
    assert!(
        checkpoint.every > 0,
        "checkpoint cadence must be at least one round"
    );
    let graph = sim.graph();
    let n = graph.num_nodes();
    let every = checkpoint.every;
    let mut runtime = NodeRuntime::new(graph, sim.ids(), sim.level(), &mut make);
    let mut arena = MessageArena::new(n);
    let mut staging = DeliveryBuffer::new(n);

    let mut rounds: u64 = 0;
    let mut completed = false;
    let mut active: Vec<u32> = (0..n as u32).collect();
    let mut active_all = true;
    let mut receivers: Vec<u32> = Vec::new();
    let mut st = LoopState {
        messages: 0,
        max_bits: 0,
        done: Vec::new(),
        undone_count: 0,
        undone: Vec::new(),
        window_nodes: Vec::new(),
        window_all: false,
        dirty: vec![false; n],
        in_flight_buf: Vec::new(),
        in_flight_count: 0,
    };

    let mut writer = if resume {
        let chain = CheckpointChain::load(&checkpoint.path)?;
        if let Some(record) = chain.latest() {
            // Fold the incremental state records, oldest first: the last
            // record touching a node wins, untouched nodes stay
            // factory-fresh.
            for rec in chain.records() {
                for (node, words) in &rec.states {
                    let i = *node as usize;
                    if i >= n || !runtime.node_mut(i).decode_state(words) {
                        return Err(corrupt(
                            "checkpointed automaton state rejected by decode_state",
                        ));
                    }
                }
            }
            // Replay the in-flight messages through the flat counting sort;
            // it reproduces the original arena's inboxes exactly (both
            // delivery layouts group identically).
            for tm in &record.in_flight {
                staging.stage(tm.to, tm.message);
            }
            staging.flip(&mut arena, &mut receivers);
            st.messages = record.messages;
            st.max_bits = record.max_message_bits;
            rounds = record.round;
            active_all = record.active_all;
            if !active_all {
                active.clear();
                active.extend_from_slice(&record.active);
            }
        }
        CheckpointWriter::append_after(&checkpoint.path, chain.valid_end())?
    } else {
        CheckpointWriter::create(&checkpoint.path)?
    };

    st.done = runtime.done_flags();
    st.undone_count = st.done.iter().filter(|&&d| !d).count();
    let mut body: Vec<u8> = Vec::new();
    let mut words: Vec<u64> = Vec::new();
    // Rounds until the next checkpoint boundary — a countdown, because at
    // tight cadences two 64-bit modulos per round are measurable against
    // the event-driven loop. Both fresh and resumed runs start a full
    // cadence away from their next boundary (a resumed run's restart
    // checkpoint is already in the log and must not be appended again).
    let mut until_boundary = every;

    loop {
        if rounds > 0 && arena.len() == 0 && st.undone_count == 0 {
            completed = true;
            break;
        }
        if rounds >= config.max_rounds {
            break;
        }

        if until_boundary == 0 {
            until_boundary = every;
            // Dedup the window's concatenated active lists into the touched
            // set (first-occurrence order; the decoder sorts).
            if !st.window_all {
                let mut keep = 0;
                for k in 0..st.window_nodes.len() {
                    let i = st.window_nodes[k];
                    if !st.dirty[i as usize] {
                        st.dirty[i as usize] = true;
                        st.window_nodes[keep] = i;
                        keep += 1;
                    }
                }
                st.window_nodes.truncate(keep);
            }
            encode_body(
                &mut body,
                rounds,
                st.messages,
                st.max_bits,
                active_all,
                &active,
                st.in_flight_count,
                &st.in_flight_buf,
                st.window_all,
                &st.window_nodes,
                &runtime,
                &mut words,
            );
            writer.write_record(&body)?;
            for &i in &st.window_nodes {
                st.dirty[i as usize] = false;
            }
            st.window_nodes.clear();
            st.window_all = false;
        }
        st.in_flight_buf.clear();
        st.in_flight_count = 0;
        // The stepped set is exactly this round's active set: one bulk
        // append records it for the boundary's touched-set dedup.
        if active_all {
            st.window_all = true;
        } else {
            st.window_nodes.extend_from_slice(&active);
        }

        staging.set_dense(if active_all {
            runtime.dense_full()
        } else {
            runtime.dense_round(&active)
        });
        st.undone.clear();
        let defer_undone = active_all;
        // Only the round feeding the next checkpoint boundary pays for the
        // in-flight capture (a distinct monomorphization of the pass).
        if until_boundary == 1 {
            step_active::<_, _, true>(
                graph,
                &mut runtime,
                &arena,
                &mut staging,
                observer,
                config.message_bit_limit,
                rounds,
                active_all,
                &active,
                &mut st,
            );
        } else {
            step_active::<_, _, false>(
                graph,
                &mut runtime,
                &arena,
                &mut staging,
                observer,
                config.message_bit_limit,
                rounds,
                active_all,
                &active,
                &mut st,
            );
        }

        if O::ACTIVE {
            observer.on_round_end(rounds);
        }
        active_all = if staging.flip(&mut arena, &mut receivers) {
            true
        } else {
            if defer_undone && st.undone_count > 0 {
                st.undone.extend(
                    st.done
                        .iter()
                        .enumerate()
                        .filter(|&(_, &d)| !d)
                        .map(|(i, _)| i as u32),
                );
            }
            next_active(&mut receivers, &st.undone, &mut active, n)
        };
        rounds += 1;
        until_boundary -= 1;
    }

    writer.finish()?;
    Ok(ExecutionReport {
        completed,
        rounds,
        messages: st.messages,
        max_message_bits: st.max_bits,
        outputs: runtime.outputs(),
        per_edge_messages: None,
        utilized_edges: None,
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KtLevel, RoundContext};
    use symbreak_graphs::{generators, IdAssignment};

    /// The crate-doc flooding automaton, made checkpointable.
    struct Flood {
        have: bool,
        done: bool,
    }

    impl NodeAlgorithm for Flood {
        fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
            let newly =
                (ctx.round() == 0 && ctx.node().0 == 0) || (!self.have && !inbox.is_empty());
            if newly {
                self.have = true;
                ctx.broadcast(&Message::tagged(1));
            } else if self.have {
                self.done = true;
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
        fn output(&self) -> Option<u64> {
            Some(u64::from(self.have))
        }
    }

    impl PersistState for Flood {
        fn encode_state(&self, out: &mut Vec<u64>) {
            out.push(u64::from(self.have) | (u64::from(self.done) << 1));
        }
        fn decode_state(&mut self, words: &[u64]) -> bool {
            match words {
                [bits] if *bits <= 3 => {
                    self.have = bits & 1 != 0;
                    self.done = bits & 2 != 0;
                    true
                }
                _ => false,
            }
        }
    }

    fn fresh(_init: NodeInit<'_>) -> Flood {
        Flood {
            have: false,
            done: false,
        }
    }

    fn scratch_log(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sbck-unit-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("log.sbck")
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        let g = generators::cycle(64);
        let ids = IdAssignment::identity(64);
        let sim = SyncSimulator::new(&g, &ids, KtLevel::KT1);
        let baseline = sim.run(SyncConfig::default(), fresh);
        let path = scratch_log("match");
        let ckpt = CheckpointConfig::new(&path).with_every(4);
        let report = sim
            .run_checkpointed(SyncConfig::default(), &ckpt, fresh)
            .unwrap();
        assert_eq!(report, baseline);
        // The log holds one checkpoint per boundary the run crossed.
        let chain = CheckpointChain::load(&path).unwrap();
        assert_eq!(
            chain.records().len(),
            (baseline.rounds as usize - 1) / 4,
            "one record per crossed boundary"
        );
        // Flood's frontier is two nodes per round, so later incremental
        // checkpoints stay frontier-sized instead of O(n).
        let last = chain.latest().unwrap();
        assert!(
            last.states.len() < 16,
            "incremental, got {}",
            last.states.len()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn killed_runs_resume_bit_identically_at_every_boundary() {
        let g = generators::cycle(48);
        let ids = IdAssignment::identity(48);
        let sim = SyncSimulator::new(&g, &ids, KtLevel::KT1);
        let baseline = sim.run(SyncConfig::default(), fresh);
        let path = scratch_log("kill");
        let ckpt = CheckpointConfig::new(&path).with_every(5);
        let mut boundary = 5;
        while boundary < baseline.rounds {
            // "Kill" the run at the boundary by capping its round budget …
            let partial = sim
                .run_checkpointed(
                    SyncConfig::default().with_max_rounds(boundary),
                    &ckpt,
                    fresh,
                )
                .unwrap();
            assert!(!partial.completed);
            // … then resume with the full budget from the surviving log.
            let resumed = sim
                .resume_from(SyncConfig::default(), &ckpt, fresh)
                .unwrap();
            assert_eq!(resumed, baseline, "kill at round {boundary}");
            boundary += 5;
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tails_are_dropped_and_resume_appends() {
        let g = generators::cycle(40);
        let ids = IdAssignment::identity(40);
        let sim = SyncSimulator::new(&g, &ids, KtLevel::KT1);
        let baseline = sim.run(SyncConfig::default(), fresh);
        let path = scratch_log("torn");
        let ckpt = CheckpointConfig::new(&path).with_every(4);
        sim.run_checkpointed(SyncConfig::default(), &ckpt, fresh)
            .unwrap();
        let full = CheckpointChain::load(&path).unwrap();
        let full_records = full.records().len();
        assert!(full_records >= 2);
        // Tear the final record: truncate mid-body.
        let intact = std::fs::read(&path).unwrap();
        std::fs::write(&path, &intact[..intact.len() - 9]).unwrap();
        let torn = CheckpointChain::load(&path).unwrap();
        assert_eq!(torn.records().len(), full_records - 1);
        assert_eq!(torn.records(), &full.records()[..full_records - 1]);
        // Resuming from the shortened chain still reproduces the run.
        let resumed = sim
            .resume_from(SyncConfig::default(), &ckpt, fresh)
            .unwrap();
        assert_eq!(resumed, baseline);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_logs_restart_from_round_zero() {
        let g = generators::path(8);
        let ids = IdAssignment::identity(8);
        let sim = SyncSimulator::new(&g, &ids, KtLevel::KT1);
        let baseline = sim.run(SyncConfig::default(), fresh);
        let path = scratch_log("empty");
        std::fs::write(&path, LOG_MAGIC).unwrap();
        let resumed = sim
            .resume_from(SyncConfig::default(), &CheckpointConfig::new(&path), fresh)
            .unwrap();
        assert_eq!(resumed, baseline);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn damaged_headers_are_invalid_data() {
        let path = scratch_log("header");
        std::fs::write(&path, b"NOTACKPT").unwrap();
        let err = CheckpointChain::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::write(&path, b"SBCK").unwrap();
        let err = CheckpointChain::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn state_of_folds_incremental_records() {
        let g = generators::cycle(32);
        let ids = IdAssignment::identity(32);
        let sim = SyncSimulator::new(&g, &ids, KtLevel::KT1);
        let path = scratch_log("fold");
        let ckpt = CheckpointConfig::new(&path).with_every(3);
        sim.run_checkpointed(SyncConfig::default(), &ckpt, fresh)
            .unwrap();
        let chain = CheckpointChain::load(&path).unwrap();
        let last_round = chain.latest().unwrap().round;
        // Node 0 floods in round 0 and is done well before the last
        // checkpoint: its folded state must say so.
        assert_eq!(chain.state_of(0, last_round), Some(&[3u64][..]));
        // Round 0 steps every node, so the first checkpoint is full: the
        // cycle's antipode is recorded too, still in its factory state.
        assert_eq!(
            chain.state_of(16, chain.records()[0].round),
            Some(&[0u64][..])
        );
        // Later checkpoints are incremental: the second record only carries
        // the nodes the frontier touched between the boundaries.
        assert!(chain.records()[1].states.len() < 32);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_cadence_is_rejected() {
        let _ = CheckpointConfig::new("x").with_every(0);
    }
}
