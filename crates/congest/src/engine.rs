//! The reusable round engine shared by the synchronous and asynchronous
//! simulators.
//!
//! Three pieces, all allocation-frugal:
//!
//! * [`NodeRuntime`] — owns the node automata plus a flat (CSR-style)
//!   neighbour array, and runs single-node activations: build the
//!   [`RoundContext`], call [`NodeAlgorithm::on_round`], validate the
//!   outbox against the CONGEST bit budget and hand every message to a
//!   caller-supplied sink. Both simulators drive their delivery policies
//!   through this one code path.
//! * [`MessageArena`] + [`DeliveryBuffer`] — the synchronous double buffer.
//!   Messages produced during a round are staged in sender order in the
//!   [`DeliveryBuffer`]; [`DeliveryBuffer::flip`] counting-sorts them by
//!   receiver into the [`MessageArena`], whose per-node offset ranges into
//!   one flat `Vec<Message>` serve as next round's inboxes. Both buffers are
//!   reused across rounds, so a steady-state round performs no allocations
//!   beyond message payloads.
//! * [`RoundObserver`] — compile-time-gated instrumentation. The
//!   uninstrumented fast path runs with [`NoopObserver`], whose
//!   `ACTIVE = false` constant statically removes every observation branch
//!   (including the per-message edge lookup) from the inner loop.

use symbreak_graphs::{EdgeId, Graph, IdAssignment, NodeId};

use crate::{KnowledgeView, KtLevel, Message, NodeAlgorithm, NodeInit, RoundContext};

/// Observer of a simulated execution, called from the engine's inner loop.
///
/// Implementations receive every delivered message (with the edge it
/// travelled on) and a callback at the end of every round. The simulator's
/// built-in instrumentation (traces, per-edge counters, utilized edges) is
/// one implementation; callers can pass their own to
/// [`crate::SyncSimulator::run_observed`].
pub trait RoundObserver {
    /// Whether this observer wants callbacks at all. When `false`, the
    /// engine statically skips the per-message edge resolution *and* the
    /// observer calls, leaving the fast path free of instrumentation
    /// branches.
    const ACTIVE: bool = true;

    /// Called once per message, after CONGEST validation, before delivery.
    /// `edge` is the graph edge the message travels on.
    fn on_message(&mut self, from: NodeId, to: NodeId, edge: EdgeId, message: &Message);

    /// Called once at the end of every executed round.
    fn on_round_end(&mut self, round: u64);
}

/// The do-nothing observer of the uninstrumented fast path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl RoundObserver for NoopObserver {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn on_message(&mut self, _from: NodeId, _to: NodeId, _edge: EdgeId, _message: &Message) {}

    #[inline(always)]
    fn on_round_end(&mut self, _round: u64) {}
}

/// Owns the per-node automata and the flat neighbour table, and executes
/// single-node activations for both simulators.
pub(crate) struct NodeRuntime<'g, A> {
    graph: &'g Graph,
    ids: &'g IdAssignment,
    level: KtLevel,
    nodes: Vec<A>,
    /// CSR offsets into `nbrs`: node `i`'s neighbours are
    /// `nbrs[nbr_offsets[i] as usize .. nbr_offsets[i + 1] as usize]`.
    nbr_offsets: Vec<u32>,
    /// All neighbour lists, flattened into one allocation (the old code
    /// cloned the adjacency structure into a `Vec<Vec<NodeId>>` per run).
    nbrs: Vec<NodeId>,
    /// Pooled outbox storage, swapped into each [`RoundContext`] so sender
    /// activations allocate nothing in steady state.
    outbox_pool: Vec<(NodeId, Message)>,
}

impl<'g, A: NodeAlgorithm> NodeRuntime<'g, A> {
    /// Creates the automata via `make` and snapshots the neighbour table.
    pub(crate) fn new<F>(
        graph: &'g Graph,
        ids: &'g IdAssignment,
        level: KtLevel,
        mut make: F,
    ) -> Self
    where
        F: FnMut(NodeInit<'_>) -> A,
    {
        let n = graph.num_nodes();
        let mut nbr_offsets = Vec::with_capacity(n + 1);
        let mut nbrs = Vec::with_capacity(graph.degree_sum());
        nbr_offsets.push(0u32);
        for v in graph.nodes() {
            nbrs.extend(graph.neighbors(v));
            nbr_offsets.push(nbrs.len() as u32);
        }
        let nodes = (0..n)
            .map(|i| {
                let v = NodeId(i as u32);
                make(NodeInit {
                    node: v,
                    num_nodes: n,
                    knowledge: KnowledgeView::new(graph, ids, level, v),
                })
            })
            .collect();
        NodeRuntime {
            graph,
            ids,
            level,
            nodes,
            nbr_offsets,
            nbrs,
            outbox_pool: Vec::new(),
        }
    }

    /// Current done flag of every automaton (used to seed the skip list).
    pub(crate) fn done_flags(&self) -> Vec<bool> {
        self.nodes.iter().map(NodeAlgorithm::is_done).collect()
    }

    /// Whether every automaton reports done.
    pub(crate) fn all_done(&self) -> bool {
        self.nodes.iter().all(NodeAlgorithm::is_done)
    }

    /// Final outputs of every automaton.
    pub(crate) fn outputs(&self) -> Vec<Option<u64>> {
        self.nodes.iter().map(NodeAlgorithm::output).collect()
    }

    /// Activates node `i` for one round: runs its automaton on `inbox` and
    /// feeds every outgoing message — after validating the CONGEST bit
    /// budget and updating `max_bits` — to `sink`. Returns the automaton's
    /// done flag after the activation.
    ///
    /// # Panics
    ///
    /// Panics if the node sends a message exceeding `bit_limit`; sends to
    /// non-neighbours already panic inside [`RoundContext::send`].
    pub(crate) fn step<S>(
        &mut self,
        i: usize,
        round: u64,
        inbox: &[Message],
        bit_limit: u32,
        max_bits: &mut u32,
        sink: &mut S,
    ) -> bool
    where
        S: FnMut(NodeId, NodeId, Message),
    {
        let v = NodeId(i as u32);
        let lo = self.nbr_offsets[i] as usize;
        let hi = self.nbr_offsets[i + 1] as usize;
        let knowledge = KnowledgeView::new(self.graph, self.ids, self.level, v);
        let mut ctx = RoundContext::with_buffer(
            v,
            round,
            knowledge,
            &self.nbrs[lo..hi],
            std::mem::take(&mut self.outbox_pool),
        );
        self.nodes[i].on_round(&mut ctx, inbox);
        let mut outbox = ctx.take_outbox();
        for (to, msg) in outbox.drain(..) {
            let bits = msg.size_bits();
            assert!(
                bits <= bit_limit,
                "node {v} sent a {bits}-bit message, exceeding the CONGEST budget of {bit_limit} bits"
            );
            *max_bits = (*max_bits).max(bits);
            sink(v, to, msg);
        }
        self.outbox_pool = outbox;
        self.nodes[i].is_done()
    }
}

/// Flat per-round inbox storage: one `Vec<Message>` partitioned into
/// per-node ranges.
///
/// Ranges are *epoch-stamped*: [`DeliveryBuffer::flip`] bumps the epoch and
/// rewrites only the entries of this round's receivers, so stale ranges from
/// earlier rounds are ignored without any per-round `O(n)` clearing.
pub(crate) struct MessageArena {
    /// `ranges[i]` is node `i`'s inbox range in `msgs` — valid only when
    /// `stamps[i] == epoch`.
    ranges: Vec<(u32, u32)>,
    stamps: Vec<u64>,
    epoch: u64,
    /// High-water message storage: only `msgs[..live]` is meaningful. The
    /// buffer never shrinks; `Message` is `Copy`, so stale slots past `live`
    /// need neither dropping nor clearing and each flip simply overwrites.
    msgs: Vec<Message>,
    live: usize,
}

impl MessageArena {
    pub(crate) fn new(n: usize) -> Self {
        MessageArena {
            ranges: vec![(0, 0); n],
            stamps: vec![0; n],
            epoch: 0,
            msgs: Vec::new(),
            live: 0,
        }
    }

    /// Node `i`'s inbox for the current round.
    #[inline]
    pub(crate) fn inbox(&self, i: usize) -> &[Message] {
        if self.stamps[i] == self.epoch {
            let (lo, hi) = self.ranges[i];
            &self.msgs[lo as usize..hi as usize]
        } else {
            &[]
        }
    }

    /// Total number of messages currently held (the in-flight count).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.live
    }
}

/// The staging half of the synchronous double buffer: messages accumulate
/// here in sender order during a round, then [`DeliveryBuffer::flip`]
/// counting-sorts them into a [`MessageArena`] keyed by receiver.
pub(crate) struct DeliveryBuffer {
    staged: Vec<(u32, Message)>,
    /// Per-receiver message counts; nonzero only at indices listed in
    /// `receivers`. Reused as placement cursors during `flip`, then zeroed.
    counts: Vec<u32>,
    /// Nodes with staged messages this round (unsorted until `flip`).
    receivers: Vec<u32>,
}

impl DeliveryBuffer {
    pub(crate) fn new(n: usize) -> Self {
        DeliveryBuffer {
            staged: Vec::new(),
            counts: vec![0; n],
            receivers: Vec::new(),
        }
    }

    /// Queues one message for delivery to `to` next round.
    #[inline]
    pub(crate) fn stage(&mut self, to: NodeId, msg: Message) {
        if self.counts[to.index()] == 0 {
            self.receivers.push(to.0);
        }
        self.counts[to.index()] += 1;
        self.staged.push((to.0, msg));
    }

    /// Moves the staged messages into `arena`, grouped by receiver (in
    /// ascending receiver order, preserving send order within each
    /// receiver), and resets this buffer. `receivers_out` is overwritten
    /// with the sorted receiver list — the round loop unions it with the
    /// non-done nodes to form the next round's active set.
    ///
    /// The arena's previous contents (last round's inboxes) are dropped
    /// here. Runs in `O(staged + receivers·log(receivers))` — independent of
    /// the node count — with no allocations once the buffers have warmed up.
    pub(crate) fn flip(&mut self, arena: &mut MessageArena, receivers_out: &mut Vec<u32>) {
        self.receivers.sort_unstable();
        arena.epoch += 1;
        arena.live = self.staged.len();
        if arena.msgs.len() < arena.live {
            // Grow to the high-water mark; the placeholder fill happens at
            // most a few times per run and the scatter below overwrites
            // every live slot.
            arena.msgs.resize(arena.live, Message::tagged(u16::MAX));
        }
        let mut acc = 0u32;
        for &r in &self.receivers {
            let c = self.counts[r as usize];
            arena.ranges[r as usize] = (acc, acc + c);
            arena.stamps[r as usize] = arena.epoch;
            // Repurpose the count slot as this receiver's placement cursor.
            self.counts[r as usize] = acc;
            acc += c;
        }
        for &(to, msg) in &self.staged {
            let slot = self.counts[to as usize];
            arena.msgs[slot as usize] = msg;
            self.counts[to as usize] += 1;
        }
        self.staged.clear();
        for &r in &self.receivers {
            self.counts[r as usize] = 0;
        }
        receivers_out.clear();
        receivers_out.append(&mut self.receivers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_buffer_groups_by_receiver_preserving_send_order() {
        let mut arena = MessageArena::new(3);
        let mut buf = DeliveryBuffer::new(3);
        let mut receivers = Vec::new();
        buf.stage(NodeId(2), Message::tagged(0));
        buf.stage(NodeId(0), Message::tagged(1));
        buf.stage(NodeId(2), Message::tagged(2));
        buf.flip(&mut arena, &mut receivers);
        assert_eq!(receivers, vec![0, 2]);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.inbox(0).len(), 1);
        assert_eq!(arena.inbox(0)[0].tag(), 1);
        assert!(arena.inbox(1).is_empty());
        let tags: Vec<u16> = arena.inbox(2).iter().map(Message::tag).collect();
        assert_eq!(tags, vec![0, 2]);
    }

    #[test]
    fn flip_resets_for_reuse() {
        let mut arena = MessageArena::new(2);
        let mut buf = DeliveryBuffer::new(2);
        let mut receivers = Vec::new();
        buf.stage(NodeId(1), Message::tagged(7));
        buf.flip(&mut arena, &mut receivers);
        assert_eq!(arena.inbox(1).len(), 1);
        // Next round: nothing staged, arena empties out and stale ranges
        // from the previous epoch are ignored.
        buf.flip(&mut arena, &mut receivers);
        assert!(receivers.is_empty());
        assert_eq!(arena.len(), 0);
        assert!(arena.inbox(0).is_empty());
        assert!(arena.inbox(1).is_empty());
        // And staging works again afterwards.
        buf.stage(NodeId(0), Message::tagged(9));
        buf.flip(&mut arena, &mut receivers);
        assert_eq!(receivers, vec![0]);
        assert_eq!(arena.inbox(0)[0].tag(), 9);
    }
}
