//! The reusable round engine shared by the synchronous and asynchronous
//! simulators.
//!
//! Three pieces, all allocation-frugal:
//!
//! * [`NodeRuntime`] — owns the node automata plus a flat (CSR-style)
//!   neighbour array, and runs single-node activations: build the
//!   [`RoundContext`], call [`NodeAlgorithm::on_round`], validate the
//!   outbox against the CONGEST bit budget and hand every message to a
//!   caller-supplied sink. Both simulators drive their delivery policies
//!   through this one code path. For multi-core stepping,
//!   [`NodeRuntime::shard_views`] splits the automata into disjoint
//!   [`ShardView`]s over contiguous node ranges, each steppable from its own
//!   thread with no shared mutable state.
//! * [`MessageArena`] + [`DeliveryBuffer`] — the synchronous double buffer,
//!   with two delivery layouts:
//!   - **sender-major scatter** (the default): messages are staged in sender
//!     order and [`DeliveryBuffer::flip`] counting-sorts them by receiver
//!     into one flat `Vec<Message>`;
//!   - **receiver-major gather** (dense rounds): when the round loop
//!     predicts traffic comparable to the edge count on a high-degree graph
//!     ([`NodeRuntime::dense_round`]), staging writes each message once into
//!     a per-receiver bucket and `flip` *swaps* the buckets into the arena —
//!     no second copy, closing the scatter's double-write gap on
//!     clique-like all-to-all rounds.
//!
//!   Both layouts produce identical inboxes (same per-receiver contents and
//!   order), so reports are bit-identical whichever heuristic path runs.
//!   [`DeliveryBuffer::flip_shards`] is the multi-threaded variant: it merges
//!   per-shard staging buffers with the same counting sort, walking shards in
//!   shard order so the merged arena is bit-identical to a sequential run.
//! * [`RoundObserver`] — compile-time-gated instrumentation. The
//!   uninstrumented fast path runs with [`NoopObserver`], whose
//!   `ACTIVE = false` constant statically removes every observation branch
//!   (including the per-message edge lookup) from the inner loop.

use symbreak_graphs::sharded::{GraphShard, ShardedGraph};
use symbreak_graphs::{EdgeId, Graph, IdAssignment, NodeId};

use crate::{KnowledgeView, KtLevel, Message, NodeAlgorithm, NodeInit, RoundContext};

/// Node-count bound under which the per-receiver bucket array (headers and
/// typical payloads) stays cache-resident, making receiver-major delivery
/// profitable regardless of the graph's edge locality.
const DENSE_SMALL_NODES: usize = 8192;

/// Average `|receiver − sender|` index distance under which bucket writes
/// land near the stepping cursor (cycles, grids, banded graphs), keeping the
/// receiver-major path cache-friendly on graphs of any size.
const DENSE_MAX_AVG_SPAN: u64 = 64;

/// Observer of a simulated execution, called from the engine's inner loop.
///
/// Implementations receive every delivered message (with the edge it
/// travelled on) and a callback at the end of every round. The simulator's
/// built-in instrumentation (traces, per-edge counters, utilized edges) is
/// one implementation; callers can pass their own to
/// [`crate::SyncSimulator::run_observed`].
pub trait RoundObserver {
    /// Whether this observer wants callbacks at all. When `false`, the
    /// engine statically skips the per-message edge resolution *and* the
    /// observer calls, leaving the fast path free of instrumentation
    /// branches.
    const ACTIVE: bool = true;

    /// Called once per message, after CONGEST validation, before delivery.
    /// `edge` is the graph edge the message travels on.
    fn on_message(&mut self, from: NodeId, to: NodeId, edge: EdgeId, message: &Message);

    /// Called once at the end of every executed round.
    fn on_round_end(&mut self, round: u64);
}

/// The do-nothing observer of the uninstrumented fast path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl RoundObserver for NoopObserver {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn on_message(&mut self, _from: NodeId, _to: NodeId, _edge: EdgeId, _message: &Message) {}

    #[inline(always)]
    fn on_round_end(&mut self, _round: u64) {}
}

/// Executes one node activation: builds the [`RoundContext`], runs the
/// automaton, validates every outgoing message against the CONGEST bit
/// budget and feeds it to `sink`. Shared by the sequential
/// [`NodeRuntime::step`] and the per-thread [`ShardView::step`] so the two
/// paths cannot drift. Also the per-lane activation primitive of the
/// lockstep batch loop ([`crate::BatchSimulator`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn step_node<A, S>(
    graph: &Graph,
    ids: &IdAssignment,
    level: KtLevel,
    nbrs: &[NodeId],
    node: &mut A,
    v: NodeId,
    round: u64,
    inbox: &[Message],
    bit_limit: u32,
    max_bits: &mut u32,
    outbox_pool: &mut Vec<(NodeId, Message)>,
    sink: &mut S,
) -> bool
where
    A: NodeAlgorithm,
    S: FnMut(NodeId, NodeId, Message),
{
    let knowledge = KnowledgeView::new(graph, ids, level, v);
    let mut ctx = RoundContext::with_buffer(v, round, knowledge, nbrs, std::mem::take(outbox_pool));
    node.on_round(&mut ctx, inbox);
    let mut outbox = ctx.take_outbox();
    for (to, msg) in outbox.drain(..) {
        let bits = msg.size_bits();
        assert!(
            bits <= bit_limit,
            "node {v} sent a {bits}-bit message, exceeding the CONGEST budget of {bit_limit} bits"
        );
        *max_bits = (*max_bits).max(bits);
        sink(v, to, msg);
    }
    *outbox_pool = outbox;
    node.is_done()
}

/// Owns the per-node automata and the flat neighbour table, and executes
/// single-node activations for both simulators.
pub(crate) struct NodeRuntime<'g, A> {
    graph: &'g Graph,
    ids: &'g IdAssignment,
    level: KtLevel,
    nodes: Vec<A>,
    /// CSR offsets into `nbrs`: node `i`'s neighbours are
    /// `nbrs[nbr_offsets[i] as usize .. nbr_offsets[i + 1] as usize]`.
    nbr_offsets: Vec<u32>,
    /// All neighbour lists, flattened into one allocation (the old code
    /// cloned the adjacency structure into a `Vec<Vec<NodeId>>` per run).
    nbrs: Vec<NodeId>,
    /// Pooled outbox storage, swapped into each [`RoundContext`] so sender
    /// activations allocate nothing in steady state.
    outbox_pool: Vec<(NodeId, Message)>,
    /// Warm outbox pools handed to [`ShardView`]s and taken back between
    /// rounds, so parallel stepping also allocates nothing in steady state.
    shard_pools: Vec<Vec<(NodeId, Message)>>,
    /// Whether per-receiver buckets are cache-friendly on this graph (see
    /// [`NodeRuntime::dense_round`]); computed once at construction.
    buckets_local: bool,
}

impl<'g, A: NodeAlgorithm> NodeRuntime<'g, A> {
    /// Creates the automata via `make` and snapshots the neighbour table.
    pub(crate) fn new<F>(
        graph: &'g Graph,
        ids: &'g IdAssignment,
        level: KtLevel,
        mut make: F,
    ) -> Self
    where
        F: FnMut(NodeInit<'_>) -> A,
    {
        let n = graph.num_nodes();
        let mut nbr_offsets = Vec::with_capacity(n + 1);
        let mut nbrs = Vec::with_capacity(graph.degree_sum());
        nbr_offsets.push(0u32);
        for v in graph.nodes() {
            nbrs.extend(graph.neighbors(v));
            nbr_offsets.push(nbrs.len() as u32);
        }
        let nodes = (0..n)
            .map(|i| {
                let v = NodeId(i as u32);
                make(NodeInit {
                    node: v,
                    num_nodes: n,
                    knowledge: KnowledgeView::new(graph, ids, level, v),
                })
            })
            .collect();
        let buckets_local = csr_buckets_local(&nbr_offsets, &nbrs);
        NodeRuntime {
            graph,
            ids,
            level,
            nodes,
            nbr_offsets,
            nbrs,
            outbox_pool: Vec::new(),
            shard_pools: Vec::new(),
            buckets_local,
        }
    }

    /// Rebuilds node `i`'s automaton from the factory, as if the node had
    /// just been created (crash-with-state-reset recovery in the faulty
    /// asynchronous executor). Returns the fresh automaton's done flag.
    pub(crate) fn reset_node<F>(&mut self, i: usize, make: &mut F) -> bool
    where
        F: FnMut(NodeInit<'_>) -> A,
    {
        let v = NodeId(i as u32);
        self.nodes[i] = make(NodeInit {
            node: v,
            num_nodes: self.nodes.len(),
            knowledge: KnowledgeView::new(self.graph, self.ids, self.level, v),
        });
        self.nodes[i].is_done()
    }

    /// Shared access to node `i`'s automaton (state encoding at a
    /// checkpoint boundary; see [`crate::checkpoint`]).
    #[inline]
    pub(crate) fn node_ref(&self, i: usize) -> &A {
        &self.nodes[i]
    }

    /// Number of automata (full-state checkpoint boundaries; see
    /// [`crate::checkpoint`]).
    #[inline]
    pub(crate) fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Mutable access to node `i`'s automaton (state restoration when
    /// resuming from a checkpoint; see [`crate::checkpoint`]).
    #[inline]
    pub(crate) fn node_mut(&mut self, i: usize) -> &mut A {
        &mut self.nodes[i]
    }

    /// Current done flag of every automaton (used to seed the skip list).
    pub(crate) fn done_flags(&self) -> Vec<bool> {
        self.nodes.iter().map(NodeAlgorithm::is_done).collect()
    }

    /// Final outputs of every automaton.
    pub(crate) fn outputs(&self) -> Vec<Option<u64>> {
        self.nodes.iter().map(NodeAlgorithm::output).collect()
    }

    /// Degree of node `i` (its number of incident edge endpoints).
    #[inline]
    pub(crate) fn degree_of(&self, i: usize) -> u32 {
        self.nbr_offsets[i + 1] - self.nbr_offsets[i]
    }

    /// [`NodeRuntime::dense_round`] for the case where the active list is
    /// already known to be every node (density 1): only the locality gate
    /// remains to check, making the per-round heuristic O(1).
    pub(crate) fn dense_full(&self) -> bool {
        self.buckets_local && !self.nbrs.is_empty()
    }

    /// Whether the upcoming round should use the receiver-major dense
    /// delivery path: the active set's degree sum (an upper bound on the
    /// round's traffic, reached by all-to-all broadcasts) must cover at
    /// least half of all directed edge slots, *and* the graph's bucket
    /// access pattern must be cache-friendly (`buckets_local`). On such
    /// rounds writing each message once into its receiver's bucket beats
    /// the flat layout's stage-then-scatter double write; on large graphs
    /// with scattered neighbourhoods the flat layout's sequential staging
    /// wins instead and this returns `false`.
    pub(crate) fn dense_round(&self, active: &[u32]) -> bool {
        csr_dense_round(self.buckets_local, &self.nbr_offsets, active)
    }

    /// Activates node `i` for one round: runs its automaton on `inbox` and
    /// feeds every outgoing message — after validating the CONGEST bit
    /// budget and updating `max_bits` — to `sink`. Returns the automaton's
    /// done flag after the activation.
    ///
    /// # Panics
    ///
    /// Panics if the node sends a message exceeding `bit_limit`; sends to
    /// non-neighbours already panic inside [`RoundContext::send`].
    pub(crate) fn step<S>(
        &mut self,
        i: usize,
        round: u64,
        inbox: &[Message],
        bit_limit: u32,
        max_bits: &mut u32,
        sink: &mut S,
    ) -> bool
    where
        S: FnMut(NodeId, NodeId, Message),
    {
        let lo = self.nbr_offsets[i] as usize;
        let hi = self.nbr_offsets[i + 1] as usize;
        step_node(
            self.graph,
            self.ids,
            self.level,
            &self.nbrs[lo..hi],
            &mut self.nodes[i],
            NodeId(i as u32),
            round,
            inbox,
            bit_limit,
            max_bits,
            &mut self.outbox_pool,
            sink,
        )
    }

    /// Like [`NodeRuntime::step`], but resolving the node's neighbour list
    /// from `shard`'s *local* CSR slice instead of the runtime's global
    /// neighbour table: an identity shard (single-shard plans) lends its
    /// rows out directly, every other shard's row is translated into global
    /// [`NodeId`]s through the ghost table into `scratch` (a reused buffer).
    /// The activation then runs through the same [`step_node`] path as every
    /// other loop. `i` is a global node index owned by `shard`.
    ///
    /// This is the sequential half of the sharded stepping seam: the graph's
    /// adjacency is only touched through per-shard slices, which is what
    /// out-of-core and NUMA-local placement need.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(crate) fn step_sharded<S>(
        &mut self,
        shard: &GraphShard,
        i: usize,
        round: u64,
        inbox: &[Message],
        bit_limit: u32,
        max_bits: &mut u32,
        scratch: &mut Vec<NodeId>,
        sink: &mut S,
    ) -> bool
    where
        S: FnMut(NodeId, NodeId, Message),
    {
        let nbrs = sharded_row(shard, (i - shard.start_index()) as u32, scratch);
        step_node(
            self.graph,
            self.ids,
            self.level,
            nbrs,
            &mut self.nodes[i],
            NodeId(i as u32),
            round,
            inbox,
            bit_limit,
            max_bits,
            &mut self.outbox_pool,
            sink,
        )
    }

    /// Splits the automata into disjoint mutable [`ShardSliceView`]s, one
    /// per shard of `sharded` — the multi-threaded counterpart of
    /// [`NodeRuntime::step_sharded`]. Each view steps its own node range
    /// against its shard's local CSR slice from a separate thread.
    ///
    /// Return the warm outbox pools with [`NodeRuntime::restore_pools`] once
    /// the views are dropped.
    ///
    /// # Panics
    ///
    /// Panics if the shard plan does not cover exactly the runtime's nodes.
    pub(crate) fn shard_slice_views<'rt, 'sg>(
        &'rt mut self,
        sharded: &'sg ShardedGraph,
    ) -> Vec<ShardSliceView<'rt, 'g, 'sg, A>> {
        assert_eq!(sharded.num_nodes(), self.nodes.len());
        let ranges: Vec<(usize, usize)> = (0..sharded.num_shards())
            .map(|s| {
                let (lo, hi) = sharded.plan().range(s);
                (lo as usize, hi as usize)
            })
            .collect();
        split_ranges_mut(&mut self.nodes, &ranges)
            .into_iter()
            .enumerate()
            .map(|(s, nodes)| ShardSliceView {
                graph: self.graph,
                ids: self.ids,
                level: self.level,
                shard: sharded.shard(s),
                nodes,
                outbox_pool: self.shard_pools.pop().unwrap_or_default(),
            })
            .collect()
    }

    /// Splits the automata into disjoint mutable [`ShardView`]s, one per
    /// entry of `node_bounds` (ascending, non-overlapping `[start, end)`
    /// node-index ranges). Each view can step its own nodes from a separate
    /// thread; immutable state (graph, IDs, neighbour table) is shared.
    ///
    /// Return the warm outbox pools with [`NodeRuntime::restore_pools`] once
    /// the shards are dropped.
    ///
    /// # Panics
    ///
    /// Panics if the ranges are not ascending and disjoint or exceed the
    /// node count.
    pub(crate) fn shard_views<'rt>(
        &'rt mut self,
        node_bounds: &[(usize, usize)],
    ) -> Vec<ShardView<'rt, 'g, A>> {
        split_ranges_mut(&mut self.nodes, node_bounds)
            .into_iter()
            .zip(node_bounds)
            .map(|(nodes, &(start, _end))| ShardView {
                graph: self.graph,
                ids: self.ids,
                level: self.level,
                nbr_offsets: &self.nbr_offsets,
                nbrs: &self.nbrs,
                base: start,
                nodes,
                outbox_pool: self.shard_pools.pop().unwrap_or_default(),
            })
            .collect()
    }

    /// Takes back the outbox pools of consumed shards for reuse next round.
    pub(crate) fn restore_pools<I>(&mut self, pools: I)
    where
        I: IntoIterator<Item = Vec<(NodeId, Message)>>,
    {
        self.shard_pools.extend(pools);
    }
}

/// A disjoint mutable view over a contiguous node-index range of a
/// [`NodeRuntime`], steppable independently of (and concurrently with) the
/// runtime's other shards.
pub(crate) struct ShardView<'rt, 'g, A> {
    graph: &'g Graph,
    ids: &'g IdAssignment,
    level: KtLevel,
    nbr_offsets: &'rt [u32],
    nbrs: &'rt [NodeId],
    /// Node index of `nodes[0]`.
    base: usize,
    nodes: &'rt mut [A],
    outbox_pool: Vec<(NodeId, Message)>,
}

impl<A: NodeAlgorithm> ShardView<'_, '_, A> {
    /// Like [`NodeRuntime::step`], for a *global* node index `i` inside this
    /// shard's range.
    pub(crate) fn step<S>(
        &mut self,
        i: usize,
        round: u64,
        inbox: &[Message],
        bit_limit: u32,
        max_bits: &mut u32,
        sink: &mut S,
    ) -> bool
    where
        S: FnMut(NodeId, NodeId, Message),
    {
        let lo = self.nbr_offsets[i] as usize;
        let hi = self.nbr_offsets[i + 1] as usize;
        step_node(
            self.graph,
            self.ids,
            self.level,
            &self.nbrs[lo..hi],
            &mut self.nodes[i - self.base],
            NodeId(i as u32),
            round,
            inbox,
            bit_limit,
            max_bits,
            &mut self.outbox_pool,
            sink,
        )
    }

    /// Consumes the shard, releasing its warm outbox pool.
    pub(crate) fn into_pool(self) -> Vec<(NodeId, Message)> {
        self.outbox_pool
    }
}

/// A disjoint mutable view over the automata of one [`GraphShard`],
/// steppable independently of (and concurrently with) the other shards —
/// the sharded counterpart of [`ShardView`]. Where [`ShardView`] reads
/// neighbour lists from the runtime's *global* flat table, this view reads
/// them from its shard's **local CSR slice**, translating ghost references
/// back to global IDs per activation.
pub(crate) struct ShardSliceView<'rt, 'g, 'sg, A> {
    graph: &'g Graph,
    ids: &'g IdAssignment,
    level: KtLevel,
    shard: &'sg GraphShard,
    nodes: &'rt mut [A],
    outbox_pool: Vec<(NodeId, Message)>,
}

impl<A: NodeAlgorithm> ShardSliceView<'_, '_, '_, A> {
    /// Global node index of this view's first node (its shard's start).
    #[inline]
    pub(crate) fn base(&self) -> usize {
        self.shard.start_index()
    }

    /// Like [`NodeRuntime::step_sharded`], for a *global* node index `i`
    /// inside this view's shard. `scratch` is the caller's reused
    /// row-translation buffer (one per shard, reused across rounds; kept
    /// outside the view because the view is rebuilt every round while the
    /// buffer's warm allocation survives).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step<S>(
        &mut self,
        i: usize,
        round: u64,
        inbox: &[Message],
        bit_limit: u32,
        max_bits: &mut u32,
        scratch: &mut Vec<NodeId>,
        sink: &mut S,
    ) -> bool
    where
        S: FnMut(NodeId, NodeId, Message),
    {
        let base = self.shard.start_index();
        let nbrs = sharded_row(self.shard, (i - base) as u32, scratch);
        step_node(
            self.graph,
            self.ids,
            self.level,
            nbrs,
            &mut self.nodes[i - base],
            NodeId(i as u32),
            round,
            inbox,
            bit_limit,
            max_bits,
            &mut self.outbox_pool,
            sink,
        )
    }

    /// Consumes the view, releasing its warm outbox pool.
    pub(crate) fn into_pool(self) -> Vec<(NodeId, Message)> {
        self.outbox_pool
    }
}

/// Resolves the neighbour row of shard-local node `local` to global
/// [`NodeId`]s: an identity shard lends its row out directly, every other
/// shard translates through its ghost table into `scratch`. One helper
/// shared by [`NodeRuntime::step_sharded`], [`ShardSliceView::step`] and the
/// batch loop's sharded walk so the sharded paths cannot drift.
#[inline]
pub(crate) fn sharded_row<'a>(
    shard: &'a GraphShard,
    local: u32,
    scratch: &'a mut Vec<NodeId>,
) -> &'a [NodeId] {
    match shard.global_row(local) {
        Some(row) => row,
        None => {
            shard.write_global_row(local, scratch);
            scratch
        }
    }
}

/// Whether per-receiver buckets are cache-friendly on a CSR snapshot.
/// Receiver-major staging writes through one bucket per receiver, so it only
/// pays off when those writes stay cache-resident: either the whole bucket
/// array is small, or senders' neighbour indices are close to their own
/// (small average edge span, e.g. cycles/grids), keeping consecutive
/// activations on neighbouring cache lines. Computed once per run; shared by
/// [`NodeRuntime`] and the batch engine's per-lane layout choice.
pub(crate) fn csr_buckets_local(nbr_offsets: &[u32], nbrs: &[NodeId]) -> bool {
    let n = nbr_offsets.len() - 1;
    let span_sum: u64 = (0..n)
        .map(|i| {
            let lo = nbr_offsets[i] as usize;
            let hi = nbr_offsets[i + 1] as usize;
            nbrs[lo..hi]
                .iter()
                .map(|&w| (w.0 as i64 - i as i64).unsigned_abs())
                .sum::<u64>()
        })
        .sum();
    n <= DENSE_SMALL_NODES || span_sum <= nbrs.len() as u64 * DENSE_MAX_AVG_SPAN
}

/// The per-round dense-delivery predicate over a CSR snapshot (see
/// [`NodeRuntime::dense_round`] for the rationale): the active set's degree
/// sum must cover at least half of all directed edge slots *and* the bucket
/// access pattern must be cache-friendly.
pub(crate) fn csr_dense_round(buckets_local: bool, nbr_offsets: &[u32], active: &[u32]) -> bool {
    let n = nbr_offsets.len() - 1;
    let dirs = nbr_offsets[n] as u64;
    if dirs == 0 || !buckets_local {
        return false;
    }
    // The degree sum is only an upper bound on traffic; without a sender
    // quorum a handful of hubs (one star centre) would trip it every round
    // and make each flip's O(n) scan violate the round loop's
    // O(active + messages) cost contract.
    if active.len() * 4 < n {
        return false;
    }
    let active_degrees: u64 = active
        .iter()
        .map(|&i| (nbr_offsets[i as usize + 1] - nbr_offsets[i as usize]) as u64)
        .sum();
    active_degrees * 2 >= dirs
}

/// Splits `data` into disjoint mutable sub-slices, one per `[start, end)`
/// range (ascending, non-overlapping). Used to hand each stepping thread its
/// own window of the shared `done` flags.
pub(crate) fn split_ranges_mut<'a, T>(
    data: &'a mut [T],
    ranges: &[(usize, usize)],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut rest = data;
    let mut consumed = 0usize;
    for &(start, end) in ranges {
        let (_skip, tail) = rest.split_at_mut(start - consumed);
        let (mine, tail) = tail.split_at_mut(end - start);
        rest = tail;
        consumed = end;
        out.push(mine);
    }
    out
}

/// Flat per-round inbox storage: one `Vec<Message>` partitioned into
/// per-node ranges, or — for dense rounds — per-receiver bucket vectors
/// swapped in wholesale by the gather path.
///
/// Ranges are *epoch-stamped*: [`DeliveryBuffer::flip`] bumps the epoch and
/// rewrites only the entries of this round's receivers, so stale ranges from
/// earlier rounds are ignored without any per-round `O(n)` clearing. The
/// `bucketed` flag records which layout the current epoch was written in;
/// stamps from older epochs are ignored either way.
pub(crate) struct MessageArena {
    /// `ranges[i]` is node `i`'s inbox range in `msgs` — valid only when
    /// `stamps[i] == epoch` and the epoch is flat.
    ranges: Vec<(u32, u32)>,
    stamps: Vec<u64>,
    epoch: u64,
    /// High-water message storage: only `msgs[..live]` is meaningful. The
    /// buffer never shrinks; `Message` is `Copy`, so stale slots past `live`
    /// need neither dropping nor clearing and each flip simply overwrites.
    msgs: Vec<Message>,
    live: usize,
    /// Whether the current epoch's inboxes live in `buckets` instead of
    /// `msgs` (receiver-major dense delivery).
    bucketed: bool,
    /// Whether the current (bucketed) epoch delivered to *every* node —
    /// sustained all-to-all rounds. Lets [`MessageArena::inbox`] skip the
    /// stamp check and [`DeliveryBuffer::flip`] skip stamping altogether.
    all_valid: bool,
    /// Per-receiver inboxes of a bucketed epoch; allocated lazily on the
    /// first dense round and swapped (not copied) with the staging buckets.
    buckets: Vec<Vec<Message>>,
}

impl MessageArena {
    pub(crate) fn new(n: usize) -> Self {
        MessageArena {
            ranges: vec![(0, 0); n],
            stamps: vec![0; n],
            epoch: 0,
            msgs: Vec::new(),
            live: 0,
            bucketed: false,
            all_valid: false,
            buckets: Vec::new(),
        }
    }

    /// Node `i`'s inbox for the current round.
    #[inline]
    pub(crate) fn inbox(&self, i: usize) -> &[Message] {
        if self.all_valid {
            // Full all-to-all epoch: every bucket is this round's inbox.
            return &self.buckets[i];
        }
        if self.stamps[i] == self.epoch {
            if self.bucketed {
                &self.buckets[i]
            } else {
                let (lo, hi) = self.ranges[i];
                &self.msgs[lo as usize..hi as usize]
            }
        } else {
            &[]
        }
    }

    /// Total number of messages currently held (the in-flight count).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Audit support: the first pair of nodes whose current-epoch flat
    /// inbox ranges overlap, if any. Bucketed epochs hold one owned vector
    /// per receiver and are structurally disjoint.
    pub(crate) fn overlapping_inboxes(&self) -> Option<(u32, u32)> {
        if self.bucketed || self.all_valid {
            return None;
        }
        let mut spans: Vec<(u32, u32, u32)> = (0..self.ranges.len())
            .filter(|&i| self.stamps[i] == self.epoch)
            .filter_map(|i| {
                let (lo, hi) = self.ranges[i];
                (hi > lo).then_some((lo, hi, i as u32))
            })
            .collect();
        spans.sort_unstable();
        spans
            .windows(2)
            .find(|w| w[1].0 < w[0].1)
            .map(|w| (w[0].2, w[1].2))
    }
}

/// The staging half of the synchronous double buffer: messages accumulate
/// here during a round, then [`DeliveryBuffer::flip`] moves them into a
/// [`MessageArena`] keyed by receiver.
///
/// Two staging layouts, chosen per round *before* stepping via
/// [`DeliveryBuffer::set_dense`]:
///
/// * **flat** (default): sender-order `staged` vector, counting-sorted into
///   the arena on flip (two writes per message);
/// * **dense**: per-receiver buckets written once at stage time and swapped
///   into the arena on flip (one write per message plus a pointer swap per
///   receiver) — the receiver-major gather path for all-to-all rounds.
pub(crate) struct DeliveryBuffer {
    staged: Vec<(u32, Message)>,
    /// Per-receiver message counts; nonzero only at indices listed in
    /// `receivers`. Reused as placement cursors during `flip`, then zeroed.
    counts: Vec<u32>,
    /// Nodes with staged messages this round (unsorted until `flip`).
    receivers: Vec<u32>,
    /// Whether this round stages into `buckets` (receiver-major).
    dense: bool,
    /// Per-receiver staging buckets of the dense path; lazily allocated,
    /// cleared lazily on first touch per round (they hold the arena's
    /// two-epochs-old buckets after a swap).
    buckets: Vec<Vec<Message>>,
    /// Messages staged this round on the dense path (`staged.len()` covers
    /// the flat path).
    dense_staged: usize,
    /// Distinct receivers touched this round on the dense path; `== n`
    /// detects full all-to-all rounds, whose flip skips stamping.
    touched: usize,
}

impl DeliveryBuffer {
    pub(crate) fn new(n: usize) -> Self {
        DeliveryBuffer {
            staged: Vec::new(),
            counts: vec![0; n],
            receivers: Vec::new(),
            dense: false,
            buckets: Vec::new(),
            dense_staged: 0,
            touched: 0,
        }
    }

    /// Selects the staging layout for the upcoming round. Must be called
    /// only while the buffer is empty (between flips).
    pub(crate) fn set_dense(&mut self, dense: bool) {
        debug_assert!(self.staged.is_empty() && self.dense_staged == 0);
        self.dense = dense;
        if dense && self.buckets.len() < self.counts.len() {
            self.buckets.resize_with(self.counts.len(), Vec::new);
        }
    }

    /// Queues one message for delivery to `to` next round.
    ///
    /// The dense path tracks receivers through the `counts` markers alone
    /// (no list push): the flip's `O(n)` scan rebuilds the sorted receiver
    /// list anyway, so staging stays at one bucket write per message.
    #[inline]
    pub(crate) fn stage(&mut self, to: NodeId, msg: Message) {
        let t = to.index();
        if self.dense {
            if self.counts[t] == 0 {
                self.counts[t] = 1;
                self.touched += 1;
                self.buckets[t].clear();
            }
            self.buckets[t].push(msg);
            self.dense_staged += 1;
        } else {
            if self.counts[t] == 0 {
                self.receivers.push(to.0);
            }
            self.counts[t] += 1;
            self.staged.push((to.0, msg));
        }
    }

    /// Sorts `receivers` ascending: a comparison sort when the list is small
    /// relative to the node count, otherwise an `O(n)` scan over `counts`
    /// (dense rounds touch most nodes, where `k log k` loses to `n`).
    fn order_receivers(&mut self) {
        if self.receivers.len() * 16 >= self.counts.len() {
            self.receivers.clear();
            for (i, &c) in self.counts.iter().enumerate() {
                if c != 0 {
                    self.receivers.push(i as u32);
                }
            }
        } else {
            self.receivers.sort_unstable();
        }
    }

    /// Moves the staged messages into `arena`, grouped by receiver (in
    /// ascending receiver order, preserving send order within each
    /// receiver), and resets this buffer. `receivers_out` is overwritten
    /// with the sorted receiver list — the round loop unions it with the
    /// non-done nodes to form the next round's active set.
    ///
    /// The arena's previous contents (last round's inboxes) are dropped
    /// here. The flat path runs in `O(staged + min(n, receivers·log
    /// receivers))`; the dense path in `O(receivers + n)` — both independent
    /// of stale state, with no allocations once the buffers have warmed up.
    ///
    /// Returns `true` when *every* node received a message, in which case
    /// `receivers_out` is left **empty** (the receiver set is the identity
    /// and the caller can skip materializing it).
    pub(crate) fn flip(&mut self, arena: &mut MessageArena, receivers_out: &mut Vec<u32>) -> bool {
        arena.epoch += 1;
        if self.dense {
            arena.live = self.dense_staged;
            arena.bucketed = true;
            arena.all_valid = false;
            if self.touched == 0 {
                // Nothing staged (the quiescent round closing a dense
                // workload): no swap, no scan.
                receivers_out.clear();
                return false;
            }
            if arena.buckets.len() < self.buckets.len() {
                arena.buckets.resize_with(self.buckets.len(), Vec::new);
            }
            // The gather: one pointer swap publishes every staged bucket
            // (the swapped-back arena buckets, stale by two epochs, are
            // cleared lazily on first touch by `stage`).
            std::mem::swap(&mut arena.buckets, &mut self.buckets);
            receivers_out.clear();
            let all = self.touched == self.counts.len() && self.touched > 0;
            if all {
                // Full all-to-all round: every node is a receiver, so no
                // per-node stamping is needed at all — a single arena flag
                // validates every bucket, and the receiver set is the
                // identity (left implicit; see the return value).
                arena.all_valid = true;
                self.counts.fill(0);
            } else {
                // One fused pass: collect the (ascending) receivers, stamp
                // their buckets into the new epoch and reset the touch
                // markers.
                arena.all_valid = false;
                for i in 0..self.counts.len() {
                    if self.counts[i] != 0 {
                        self.counts[i] = 0;
                        receivers_out.push(i as u32);
                        arena.stamps[i] = arena.epoch;
                    }
                }
            }
            self.dense_staged = 0;
            self.touched = 0;
            return all;
        }
        let mut staged = std::mem::take(&mut self.staged);
        self.scatter_flat(std::slice::from_mut(&mut staged), arena, receivers_out);
        self.staged = staged;
        false
    }

    /// The flat counting-sort scatter shared by [`DeliveryBuffer::flip`] and
    /// [`DeliveryBuffer::flip_shards`]: with `counts`/`receivers` already
    /// populated, sorts the receivers, carves the arena's per-receiver
    /// ranges, scatters every chunk of staged messages (chunk order = send
    /// order) and resets this buffer. Keeping one implementation is what
    /// guarantees sequential and sharded flips produce bit-identical arenas.
    fn scatter_flat(
        &mut self,
        staged_chunks: &mut [Vec<(u32, Message)>],
        arena: &mut MessageArena,
        receivers_out: &mut Vec<u32>,
    ) {
        self.order_receivers();
        arena.live = staged_chunks.iter().map(Vec::len).sum();
        arena.bucketed = false;
        arena.all_valid = false;
        if arena.msgs.len() < arena.live {
            // Grow to the high-water mark; the placeholder fill happens at
            // most a few times per run and the scatter below overwrites
            // every live slot.
            arena.msgs.resize(arena.live, Message::tagged(u16::MAX));
        }
        let mut acc = 0u32;
        for &r in &self.receivers {
            let c = self.counts[r as usize];
            arena.ranges[r as usize] = (acc, acc + c);
            arena.stamps[r as usize] = arena.epoch;
            // Repurpose the count slot as this receiver's placement cursor.
            self.counts[r as usize] = acc;
            acc += c;
        }
        for chunk in staged_chunks.iter_mut() {
            for &(to, msg) in chunk.iter() {
                let slot = self.counts[to as usize];
                arena.msgs[slot as usize] = msg;
                self.counts[to as usize] += 1;
            }
            chunk.clear();
        }
        for &r in &self.receivers {
            self.counts[r as usize] = 0;
        }
        receivers_out.clear();
        receivers_out.append(&mut self.receivers);
    }

    /// The multi-threaded flip: merges per-shard staging vectors (each in
    /// that shard's sender order) into `arena` with one counting sort,
    /// walking shards in shard order. Because the parallel round loop
    /// assigns shards contiguous slices of the ascending active list, the
    /// concatenation of the shard buffers *is* the sequential staging order,
    /// and the merged arena is bit-identical to a sequential flip.
    ///
    /// All shard buffers are drained; the flat layout is always used (the
    /// dense heuristic only drives the sequential path).
    pub(crate) fn flip_shards(
        &mut self,
        shards: &mut [Vec<(u32, Message)>],
        arena: &mut MessageArena,
        receivers_out: &mut Vec<u32>,
    ) {
        debug_assert!(self.staged.is_empty() && self.dense_staged == 0);
        for shard in shards.iter() {
            for &(to, _) in shard {
                if self.counts[to as usize] == 0 {
                    self.receivers.push(to);
                }
                self.counts[to as usize] += 1;
            }
        }
        arena.epoch += 1;
        self.scatter_flat(shards, arena, receivers_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_buffer_groups_by_receiver_preserving_send_order() {
        let mut arena = MessageArena::new(3);
        let mut buf = DeliveryBuffer::new(3);
        let mut receivers = Vec::new();
        buf.stage(NodeId(2), Message::tagged(0));
        buf.stage(NodeId(0), Message::tagged(1));
        buf.stage(NodeId(2), Message::tagged(2));
        buf.flip(&mut arena, &mut receivers);
        assert_eq!(receivers, vec![0, 2]);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.inbox(0).len(), 1);
        assert_eq!(arena.inbox(0)[0].tag(), 1);
        assert!(arena.inbox(1).is_empty());
        let tags: Vec<u16> = arena.inbox(2).iter().map(Message::tag).collect();
        assert_eq!(tags, vec![0, 2]);
    }

    #[test]
    fn flip_resets_for_reuse() {
        let mut arena = MessageArena::new(2);
        let mut buf = DeliveryBuffer::new(2);
        let mut receivers = Vec::new();
        buf.stage(NodeId(1), Message::tagged(7));
        buf.flip(&mut arena, &mut receivers);
        assert_eq!(arena.inbox(1).len(), 1);
        // Next round: nothing staged, arena empties out and stale ranges
        // from the previous epoch are ignored.
        buf.flip(&mut arena, &mut receivers);
        assert!(receivers.is_empty());
        assert_eq!(arena.len(), 0);
        assert!(arena.inbox(0).is_empty());
        assert!(arena.inbox(1).is_empty());
        // And staging works again afterwards.
        buf.stage(NodeId(0), Message::tagged(9));
        buf.flip(&mut arena, &mut receivers);
        assert_eq!(receivers, vec![0]);
        assert_eq!(arena.inbox(0)[0].tag(), 9);
    }

    #[test]
    fn dense_flip_matches_flat_layout() {
        // Same staging sequence through both layouts; inboxes must agree.
        let stage_seq = [
            (NodeId(2), Message::tagged(0)),
            (NodeId(0), Message::tagged(1)),
            (NodeId(2), Message::tagged(2)),
            (NodeId(1), Message::tagged(3)),
            (NodeId(0), Message::tagged(4)),
        ];
        let mut flat_arena = MessageArena::new(3);
        let mut flat_buf = DeliveryBuffer::new(3);
        let mut dense_arena = MessageArena::new(3);
        let mut dense_buf = DeliveryBuffer::new(3);
        dense_buf.set_dense(true);
        let (mut r1, mut r2) = (Vec::new(), Vec::new());
        for (to, msg) in stage_seq {
            flat_buf.stage(to, msg);
            dense_buf.stage(to, msg);
        }
        let flat_all = flat_buf.flip(&mut flat_arena, &mut r1);
        let dense_all = dense_buf.flip(&mut dense_arena, &mut r2);
        // Every node received: the dense path signals full coverage through
        // the return value and leaves the receiver list implicit.
        assert!(!flat_all);
        assert!(dense_all);
        assert_eq!(r1, vec![0, 1, 2]);
        assert!(r2.is_empty());
        assert_eq!(flat_arena.len(), dense_arena.len());
        for i in 0..3 {
            assert_eq!(flat_arena.inbox(i), dense_arena.inbox(i), "inbox {i}");
        }
    }

    #[test]
    fn partial_dense_flip_reports_receivers() {
        let mut arena = MessageArena::new(4);
        let mut buf = DeliveryBuffer::new(4);
        buf.set_dense(true);
        buf.stage(NodeId(3), Message::tagged(1));
        buf.stage(NodeId(1), Message::tagged(2));
        let mut receivers = Vec::new();
        let all = buf.flip(&mut arena, &mut receivers);
        assert!(!all);
        assert_eq!(receivers, vec![1, 3]);
        assert_eq!(arena.len(), 2);
        assert!(arena.inbox(0).is_empty());
        assert_eq!(arena.inbox(1)[0].tag(), 2);
        assert_eq!(arena.inbox(3)[0].tag(), 1);
    }

    #[test]
    fn dense_and_flat_rounds_interleave() {
        let mut arena = MessageArena::new(2);
        let mut buf = DeliveryBuffer::new(2);
        let mut receivers = Vec::new();
        // Dense round.
        buf.set_dense(true);
        buf.stage(NodeId(0), Message::tagged(1));
        buf.stage(NodeId(1), Message::tagged(2));
        buf.flip(&mut arena, &mut receivers);
        assert_eq!(arena.inbox(0)[0].tag(), 1);
        assert_eq!(arena.inbox(1)[0].tag(), 2);
        // Flat round: stale bucket stamps must not leak.
        buf.set_dense(false);
        buf.stage(NodeId(1), Message::tagged(3));
        buf.flip(&mut arena, &mut receivers);
        assert_eq!(receivers, vec![1]);
        assert!(arena.inbox(0).is_empty());
        assert_eq!(arena.inbox(1).len(), 1);
        assert_eq!(arena.inbox(1)[0].tag(), 3);
        // Dense again: the swapped-back staging bucket (holding round-1
        // leftovers) is cleared on first touch.
        buf.set_dense(true);
        buf.stage(NodeId(0), Message::tagged(4));
        buf.flip(&mut arena, &mut receivers);
        assert_eq!(arena.len(), 1);
        let tags: Vec<u16> = arena.inbox(0).iter().map(Message::tag).collect();
        assert_eq!(tags, vec![4]);
        assert!(arena.inbox(1).is_empty());
    }

    #[test]
    fn flip_shards_matches_sequential_flip() {
        // Shard buffers concatenated in shard order == one sequential
        // staging sequence; the merged arena must be identical.
        let n = 5;
        let shard_a = vec![
            (3u32, Message::tagged(0)),
            (1, Message::tagged(1)),
            (3, Message::tagged(2)),
        ];
        let shard_b = vec![(0u32, Message::tagged(3)), (3, Message::tagged(4))];
        let shard_c: Vec<(u32, Message)> = Vec::new();

        let mut seq_arena = MessageArena::new(n);
        let mut seq_buf = DeliveryBuffer::new(n);
        let mut seq_receivers = Vec::new();
        for &(to, msg) in shard_a.iter().chain(&shard_b).chain(&shard_c) {
            seq_buf.stage(NodeId(to), msg);
        }
        seq_buf.flip(&mut seq_arena, &mut seq_receivers);

        let mut par_arena = MessageArena::new(n);
        let mut par_buf = DeliveryBuffer::new(n);
        let mut par_receivers = Vec::new();
        let mut shards = [shard_a, shard_b, shard_c];
        par_buf.flip_shards(&mut shards, &mut par_arena, &mut par_receivers);

        assert_eq!(seq_receivers, par_receivers);
        assert_eq!(seq_arena.len(), par_arena.len());
        for i in 0..n {
            assert_eq!(seq_arena.inbox(i), par_arena.inbox(i), "inbox {i}");
        }
        // Buffers drained and reusable.
        assert!(shards.iter().all(Vec::is_empty));
        par_buf.stage(NodeId(2), Message::tagged(9));
        par_buf.flip(&mut par_arena, &mut par_receivers);
        assert_eq!(par_receivers, vec![2]);
    }

    #[test]
    fn split_ranges_mut_yields_disjoint_windows() {
        let mut data = [0u8; 10];
        let views = split_ranges_mut(&mut data, &[(1, 3), (5, 6), (8, 10)]);
        assert_eq!(views.iter().map(|v| v.len()).collect::<Vec<_>>(), [2, 1, 2]);
        for (k, v) in views.into_iter().enumerate() {
            for x in v.iter_mut() {
                *x = k as u8 + 1;
            }
        }
        assert_eq!(data, [0, 1, 1, 0, 0, 2, 0, 0, 3, 3]);
    }
}
