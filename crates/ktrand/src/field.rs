//! Arithmetic in the Mersenne prime field `GF(p)` with `p = 2^61 − 1`.
//!
//! The field is large enough to hold any ID from a polynomial-size ID space
//! (the paper assumes IDs of `O(log n)` bits), and the Mersenne structure
//! makes reduction branch-light and fast, which matters because the
//! simulator evaluates hash functions `Θ(n·Δ)` times per experiment.

/// The field modulus `p = 2^61 − 1` (a Mersenne prime).
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// Reduces an arbitrary `u64` into `[0, p)`.
#[inline]
pub fn reduce(x: u64) -> u64 {
    let r = (x & MODULUS) + (x >> 61);
    if r >= MODULUS {
        r - MODULUS
    } else {
        r
    }
}

/// Reduces a 128-bit product into `[0, p)`.
#[inline]
pub fn reduce128(x: u128) -> u64 {
    let lo = (x & MODULUS as u128) as u64;
    let hi = (x >> 61) as u64;
    reduce(lo.wrapping_add(reduce(hi)))
}

/// Field addition.
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    reduce(reduce(a) + reduce(b))
}

/// Field multiplication.
#[inline]
pub fn mul(a: u64, b: u64) -> u64 {
    reduce128(reduce(a) as u128 * reduce(b) as u128)
}

/// Evaluates the polynomial `coeffs[0] + coeffs[1]·x + coeffs[2]·x² + …`
/// over the field using Horner's rule.
#[inline]
pub fn poly_eval(coeffs: &[u64], x: u64) -> u64 {
    let x = reduce(x);
    let mut acc = 0u64;
    for &c in coeffs.iter().rev() {
        acc = add(mul(acc, x), c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_identities() {
        assert_eq!(reduce(0), 0);
        assert_eq!(reduce(MODULUS), 0);
        assert_eq!(reduce(MODULUS + 5), 5);
        // 2^64 − 1 = 8·(2^61 − 1) + 7, so the residue is 7.
        assert_eq!(reduce(u64::MAX), 7);
    }

    #[test]
    fn add_wraps_correctly() {
        assert_eq!(add(MODULUS - 1, 1), 0);
        assert_eq!(add(MODULUS - 1, 2), 1);
        assert_eq!(add(3, 4), 7);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let cases = [
            (0u64, 12345u64),
            (1, MODULUS - 1),
            (123_456_789, 987_654_321),
            (MODULUS - 1, MODULUS - 1),
            (1 << 60, 3),
        ];
        for (a, b) in cases {
            let expect = ((a as u128 % MODULUS as u128) * (b as u128 % MODULUS as u128)
                % MODULUS as u128) as u64;
            assert_eq!(mul(a, b), expect, "a={a} b={b}");
        }
    }

    #[test]
    fn poly_eval_horner() {
        // 2 + 3x + x² at x = 5 → 2 + 15 + 25 = 42.
        assert_eq!(poly_eval(&[2, 3, 1], 5), 42);
        // Constant polynomial.
        assert_eq!(poly_eval(&[7], 1_000_000), 7);
        // Empty polynomial is zero.
        assert_eq!(poly_eval(&[], 99), 0);
    }

    #[test]
    fn all_outputs_are_reduced() {
        for x in [0u64, 1, MODULUS - 1, MODULUS, u64::MAX] {
            assert!(reduce(x) < MODULUS);
            assert!(mul(x, x) < MODULUS);
            assert!(add(x, x) < MODULUS);
        }
    }
}
