//! k-wise independent hash families via random polynomials over `GF(2^61−1)`.
//!
//! A uniformly random polynomial of degree `k − 1` over a prime field is a
//! k-wise independent function from the field to itself (Definition A.3 /
//! Lemma A.4 of the paper). Values are then mapped into the requested output
//! range; because the field (≈ 2^61) is astronomically larger than any range
//! used by the algorithms (at most `poly(n)`), the modulo bias is negligible
//! for every experiment in this repository.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::field;

/// A family of k-wise independent hash functions `h : u64 → [0, range)`.
///
/// Sampling a function from the family costs `k` field elements of
/// randomness — `k · 61` bits — matching the `c · max{a, b}` random bits of
/// Lemma A.4 up to constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KWiseFamily {
    independence: usize,
    range: u64,
}

impl KWiseFamily {
    /// Creates the family of `independence`-wise independent functions with
    /// outputs in `[0, range)`.
    ///
    /// # Panics
    ///
    /// Panics if `independence == 0` or `range == 0`.
    pub fn new(independence: usize, range: u64) -> Self {
        assert!(independence >= 1, "independence must be at least 1");
        assert!(range >= 1, "range must be at least 1");
        KWiseFamily {
            independence,
            range,
        }
    }

    /// The independence parameter `k`.
    pub fn independence(&self) -> usize {
        self.independence
    }

    /// The output range size.
    pub fn range(&self) -> u64 {
        self.range
    }

    /// Number of random bits consumed when sampling one function.
    pub fn seed_bits(&self) -> usize {
        self.independence * 61
    }

    /// Samples a hash function from the family.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> KWiseHash {
        let coeffs = (0..self.independence)
            .map(|_| rng.gen_range(0..field::MODULUS))
            .collect();
        KWiseHash {
            coeffs,
            range: self.range,
        }
    }
}

/// A single hash function drawn from a [`KWiseFamily`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KWiseHash {
    coeffs: Vec<u64>,
    range: u64,
}

impl KWiseHash {
    /// Builds a hash function from explicit polynomial coefficients — useful
    /// for tests that need full determinism.
    pub fn from_coefficients(coeffs: Vec<u64>, range: u64) -> Self {
        assert!(range >= 1, "range must be at least 1");
        assert!(!coeffs.is_empty(), "at least one coefficient is required");
        KWiseHash { coeffs, range }
    }

    /// The output range size.
    pub fn range(&self) -> u64 {
        self.range
    }

    /// The independence parameter (number of coefficients).
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the hash function at `x`, returning a value in `[0, range)`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        field::poly_eval(&self.coeffs, x) % self.range
    }

    /// Evaluates the hash at `x` and returns `true` with probability
    /// `numerator / range` — i.e. whether the hash value falls below
    /// `numerator`. Used for pseudo-random Bernoulli decisions that every
    /// KT-1 neighbour can reproduce locally.
    #[inline]
    pub fn bernoulli(&self, x: u64, numerator: u64) -> bool {
        self.eval(x) < numerator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn outputs_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let fam = KWiseFamily::new(8, 17);
        let h = fam.sample(&mut rng);
        for x in 0..2000u64 {
            assert!(h.eval(x) < 17);
        }
    }

    #[test]
    fn deterministic_for_same_coefficients() {
        let h1 = KWiseHash::from_coefficients(vec![3, 5, 7], 100);
        let h2 = KWiseHash::from_coefficients(vec![3, 5, 7], 100);
        for x in [0u64, 1, 99, 12345, u64::MAX] {
            assert_eq!(h1.eval(x), h2.eval(x));
        }
    }

    #[test]
    fn different_functions_differ_somewhere() {
        let mut rng = StdRng::seed_from_u64(3);
        let fam = KWiseFamily::new(4, 1 << 20);
        let h1 = fam.sample(&mut rng);
        let h2 = fam.sample(&mut rng);
        let differs = (0..100u64).any(|x| h1.eval(x) != h2.eval(x));
        assert!(differs);
    }

    #[test]
    fn marginal_distribution_is_roughly_uniform() {
        // Pairwise independence implies uniform marginals; check empirically
        // by averaging over many sampled functions at a fixed point.
        let mut rng = StdRng::seed_from_u64(4);
        let fam = KWiseFamily::new(2, 10);
        let mut counts = [0usize; 10];
        let trials = 20_000;
        for _ in 0..trials {
            let h = fam.sample(&mut rng);
            counts[h.eval(424242) as usize] += 1;
        }
        let expected = trials as f64 / 10.0;
        for (bucket, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 0.15 * expected,
                "bucket {bucket} has count {c}, expected ≈ {expected}"
            );
        }
    }

    #[test]
    fn pairwise_collision_rate_matches_uniform() {
        // For a pairwise-independent family, Pr[h(x) = h(y)] = 1/range.
        let mut rng = StdRng::seed_from_u64(5);
        let range = 16u64;
        let fam = KWiseFamily::new(2, range);
        let trials = 30_000;
        let mut collisions = 0;
        for _ in 0..trials {
            let h = fam.sample(&mut rng);
            if h.eval(17) == h.eval(23_000_001) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let expected = 1.0 / range as f64;
        assert!(
            (rate - expected).abs() < 0.5 * expected,
            "collision rate {rate} vs expected {expected}"
        );
    }

    #[test]
    fn bernoulli_threshold() {
        let h = KWiseHash::from_coefficients(vec![0, 1], 100); // h(x) = x mod 100
        assert!(h.bernoulli(5, 10));
        assert!(!h.bernoulli(50, 10));
    }

    #[test]
    fn seed_bits_accounting() {
        let fam = KWiseFamily::new(32, 1000);
        assert_eq!(fam.seed_bits(), 32 * 61);
        assert_eq!(fam.independence(), 32);
        assert_eq!(fam.range(), 1000);
    }

    #[test]
    #[should_panic(expected = "range must be at least 1")]
    fn zero_range_rejected() {
        let _ = KWiseFamily::new(2, 0);
    }
}
