//! Tail bounds for sums of variables with limited independence.
//!
//! These are the bounds of Lemma A.1 and Lemma A.2 in the paper (due to
//! Schmidt, Siegel and Srinivasan). They are used by tests and experiment
//! harnesses to pick constants (e.g. how many neighbours can share a colour
//! in a phase of Algorithm 2 before the w.h.p. guarantee is at risk) and to
//! double-check that the empirical concentration observed in the simulator
//! is consistent with the theory.

/// Lemma A.1: for `c ≥ 4` even and `Z` the sum of `t` `c`-wise independent
/// variables in `[0, 1]` with mean `μ`, `Pr[|Z − μ| ≥ λ] ≤ 2 (c·t / λ²)^(c/2)`.
///
/// Returns the probability bound (clamped to 1).
pub fn kwise_deviation_bound(c: u32, t: f64, lambda: f64) -> f64 {
    assert!(
        c >= 4 && c.is_multiple_of(2),
        "Lemma A.1 requires even c ≥ 4"
    );
    assert!(t >= 0.0 && lambda > 0.0);
    let base = (f64::from(c) * t) / (lambda * lambda);
    (2.0 * base.powf(f64::from(c) / 2.0)).min(1.0)
}

/// Lemma A.2: for `X` a sum of `c`-wise independent 0/1 variables and
/// `μ ≥ E[X]`, `Pr[X ≥ (1 + δ)μ] ≤ exp(−min{c, δ²μ})`.
///
/// Returns the probability bound (clamped to 1).
pub fn kwise_chernoff_upper(c: u32, delta: f64, mu: f64) -> f64 {
    assert!(delta >= 0.0 && mu >= 0.0);
    (-f64::from(c).min(delta * delta * mu)).exp().min(1.0)
}

/// Convenience: the independence `c = Θ(log n)` the paper uses, with the
/// constant chosen so that `exp(−c) ≤ n^{−2}`.
pub fn log_n_independence(n: usize) -> usize {
    let ln = (n.max(2) as f64).ln();
    (2.0 * ln).ceil() as usize + 2
}

/// Convenience: a high-probability threshold `A·log n` such that a sum of
/// `c`-wise independent indicators with mean ≤ 1 exceeds it with probability
/// at most `n^{-2}` (cf. the proof of Lemma 3.7).
pub fn whp_threshold(n: usize) -> usize {
    let ln = (n.max(2) as f64).ln();
    (4.0 * ln).ceil() as usize + 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_bound_decreases_with_lambda() {
        let b1 = kwise_deviation_bound(4, 100.0, 30.0);
        let b2 = kwise_deviation_bound(4, 100.0, 60.0);
        assert!(b2 < b1);
        assert!(b1 <= 1.0 && b2 > 0.0);
    }

    #[test]
    fn deviation_bound_clamped_to_one() {
        assert_eq!(kwise_deviation_bound(4, 1000.0, 1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "even c")]
    fn deviation_bound_requires_even_c() {
        let _ = kwise_deviation_bound(5, 10.0, 1.0);
    }

    #[test]
    fn chernoff_upper_behaviour() {
        // Larger deviations or larger means give smaller bounds, until the
        // independence c caps the exponent.
        let loose = kwise_chernoff_upper(64, 0.5, 10.0);
        let tight = kwise_chernoff_upper(64, 2.0, 10.0);
        assert!(tight < loose);
        // With tiny c the bound can never be smaller than exp(-c).
        assert!(kwise_chernoff_upper(2, 100.0, 100.0) >= (-2.0f64).exp() - 1e-12);
    }

    #[test]
    fn log_n_independence_grows_slowly() {
        assert!(log_n_independence(16) < log_n_independence(1 << 20));
        assert!(log_n_independence(1 << 20) < 64);
        // exp(-c) ≤ n^{-2} by construction.
        let n = 1000usize;
        let c = log_n_independence(n) as f64;
        assert!((-c).exp() <= (n as f64).powi(-2) * 1.0001);
    }

    #[test]
    fn whp_threshold_reasonable() {
        assert!(whp_threshold(100) >= 20);
        assert!(whp_threshold(100) < 100);
    }
}
