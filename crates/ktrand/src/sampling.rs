//! Private-coin sampling helpers used by the MIS algorithms.

use rand::Rng;

/// Returns the indices in `0..n` that were selected by independent
/// Bernoulli(`p`) trials — e.g. the set `S` sampled with probability
/// `c/√n` in Step 1 of Algorithm 3.
///
/// # Panics
///
/// Panics unless `0.0 ≤ p ≤ 1.0`.
pub fn bernoulli_subset<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&p), "probability p={p} out of range");
    (0..n)
        .filter(|_| p >= 1.0 || (p > 0.0 && rng.gen_bool(p)))
        .collect()
}

/// Samples `n` random ranks (distinct with overwhelming probability) used by
/// the randomized greedy MIS algorithms; ties are broken deterministically by
/// index, so exact distinctness is not required for correctness.
pub fn random_ranks<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<u64> {
    (0..n).map(|_| rng.gen::<u64>()).collect()
}

/// Samples `k` distinct indices from `0..n` uniformly at random (a partial
/// Fisher–Yates shuffle).
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_without_replacement<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} items from {n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(bernoulli_subset(10, 0.0, &mut rng).is_empty());
        assert_eq!(bernoulli_subset(10, 1.0, &mut rng).len(), 10);
    }

    #[test]
    fn bernoulli_expected_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = bernoulli_subset(10_000, 0.3, &mut rng);
        assert!((s.len() as f64 - 3000.0).abs() < 300.0, "len={}", s.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bernoulli_rejects_bad_p() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = bernoulli_subset(5, -0.1, &mut rng);
    }

    #[test]
    fn ranks_have_right_length_and_variety() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = random_ranks(100, &mut rng);
        assert_eq!(r.len(), 100);
        let distinct: std::collections::BTreeSet<_> = r.iter().collect();
        assert!(distinct.len() > 95);
    }

    #[test]
    fn sample_without_replacement_is_distinct_subset() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_without_replacement(50, 20, &mut rng);
        assert_eq!(s.len(), 20);
        let distinct: std::collections::BTreeSet<_> = s.iter().collect();
        assert_eq!(distinct.len(), 20);
        assert!(s.iter().all(|&x| x < 50));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_without_replacement_rejects_oversampling() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = sample_without_replacement(3, 5, &mut rng);
    }
}
