//! Shared randomness derived from a broadcast seed.
//!
//! In Algorithm 1 and Algorithm 2 of the paper, a leader generates
//! `O(polylog n)` random bits and broadcasts them over the danner. Every node
//! then expands the same bits into the same Θ(log n)-wise independent hash
//! functions. [`SharedRandomness`] models the broadcast payload: it is
//! constructed from a seed, records how many bits the leader would need to
//! broadcast, and deterministically derives named hash functions so that
//! every simulated node — holding a *copy* of the same value — obtains
//! identical functions.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{KWiseFamily, KWiseHash};

/// A broadcastable package of shared random bits.
///
/// Cloning this value models a node receiving the broadcast: all clones
/// derive exactly the same hash functions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedRandomness {
    seed: u64,
    budget_bits: usize,
    consumed_bits: std::cell::Cell<usize>,
}

impl SharedRandomness {
    /// Creates shared randomness from a leader-generated seed with a bit
    /// budget of `budget_bits` (the number of bits the leader broadcasts,
    /// e.g. `Θ(log² n)` for Algorithm 1 or `Θ(log³ n / ε)` for Algorithm 2).
    pub fn from_seed(seed: u64, budget_bits: usize) -> Self {
        SharedRandomness {
            seed,
            budget_bits,
            consumed_bits: std::cell::Cell::new(0),
        }
    }

    /// Creates shared randomness by drawing the seed from `rng` (the leader's
    /// private coin flips).
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R, budget_bits: usize) -> Self {
        Self::from_seed(rng.next_u64(), budget_bits)
    }

    /// The broadcast bit budget declared at construction time.
    pub fn budget_bits(&self) -> usize {
        self.budget_bits
    }

    /// Total bits consumed so far by derived hash functions. Tests use this
    /// to confirm that algorithms stay within their declared `polylog`
    /// randomness budgets.
    pub fn consumed_bits(&self) -> usize {
        self.consumed_bits.get()
    }

    /// The raw seed (exposed for reproducibility reporting).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the `independence`-wise independent hash function with outputs
    /// in `[0, range)` associated with `label`.
    ///
    /// The same `(label, independence, range)` triple always yields the same
    /// function for the same seed, and different labels yield (statistically)
    /// unrelated functions — this is how different steps of an algorithm
    /// (e.g. `h_L`, `h`, `h_c` in Algorithm 1, or the per-phase `h_i` in
    /// Algorithm 2) obtain their own functions from one broadcast.
    pub fn hash_fn(&self, label: &str, independence: usize, range: u64) -> KWiseHash {
        let family = KWiseFamily::new(independence, range);
        self.consumed_bits
            .set(self.consumed_bits.get() + family.seed_bits());
        let mut rng = StdRng::seed_from_u64(self.seed ^ label_digest(label));
        family.sample(&mut rng)
    }

    /// Derives the hash function for an indexed label such as `phase.3`.
    pub fn indexed_hash_fn(
        &self,
        label: &str,
        index: usize,
        independence: usize,
        range: u64,
    ) -> KWiseHash {
        self.hash_fn(&format!("{label}.{index}"), independence, range)
    }
}

/// FNV-1a digest of the label, used to decorrelate labels under one seed.
fn label_digest(label: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    // Avalanche so that similar labels do not produce similar seeds.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clones_agree_on_all_functions() {
        let original = SharedRandomness::from_seed(99, 4096);
        let copy = original.clone();
        let h1 = original.hash_fn("partition", 16, 64);
        let h2 = copy.hash_fn("partition", 16, 64);
        for x in 0..500u64 {
            assert_eq!(h1.eval(x), h2.eval(x));
        }
    }

    #[test]
    fn different_labels_give_different_functions() {
        let sr = SharedRandomness::from_seed(7, 4096);
        let a = sr.hash_fn("alpha", 8, 1 << 30);
        let b = sr.hash_fn("beta", 8, 1 << 30);
        assert!((0..64u64).any(|x| a.eval(x) != b.eval(x)));
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let a = SharedRandomness::from_seed(1, 4096).hash_fn("x", 8, 1 << 30);
        let b = SharedRandomness::from_seed(2, 4096).hash_fn("x", 8, 1 << 30);
        assert!((0..64u64).any(|x| a.eval(x) != b.eval(x)));
    }

    #[test]
    fn indexed_labels_are_distinct() {
        let sr = SharedRandomness::from_seed(3, 4096);
        let h0 = sr.indexed_hash_fn("phase", 0, 8, 1 << 30);
        let h1 = sr.indexed_hash_fn("phase", 1, 8, 1 << 30);
        assert!((0..64u64).any(|x| h0.eval(x) != h1.eval(x)));
    }

    #[test]
    fn bit_accounting_accumulates() {
        let sr = SharedRandomness::from_seed(5, 10_000);
        assert_eq!(sr.consumed_bits(), 0);
        let _ = sr.hash_fn("a", 4, 10);
        assert_eq!(sr.consumed_bits(), 4 * 61);
        let _ = sr.hash_fn("b", 2, 10);
        assert_eq!(sr.consumed_bits(), 6 * 61);
        assert_eq!(sr.budget_bits(), 10_000);
    }

    #[test]
    fn generate_uses_rng() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = SharedRandomness::generate(&mut rng, 128);
        let b = SharedRandomness::generate(&mut rng, 128);
        assert_ne!(a.seed(), b.seed());
    }
}
