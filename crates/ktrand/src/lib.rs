//! Limited-independence randomness for message-frugal KT-1 algorithms.
//!
//! The upper bounds of *"Can We Break Symmetry with o(m) Communication?"*
//! (PODC 2021) rely on a simple but powerful trick: a leader broadcasts a
//! short random seed, every node deterministically expands the seed into
//! Θ(log n)-wise independent hash functions (Lemma A.4 of the paper), and —
//! because each node knows its neighbours' IDs (KT-1) — it can evaluate those
//! hash functions *on its neighbours' IDs locally*, eliminating the state
//! exchange that would otherwise cost Ω(m) messages.
//!
//! This crate provides:
//!
//! * [`field`] — arithmetic in the prime field `GF(2^61 − 1)`.
//! * [`KWiseFamily`] / [`KWiseHash`] — k-wise independent hash functions
//!   implemented as random degree-(k−1) polynomials over the field.
//! * [`SharedRandomness`] — a broadcastable seed from which every node
//!   derives the same named hash functions, with bit-length accounting.
//! * [`tail`] — the limited-independence Chernoff bounds of Lemmas A.1/A.2.
//! * [`sampling`] — small helpers for Bernoulli node sampling and random
//!   ranks used by the MIS algorithms.
//!
//! # Example
//!
//! ```
//! use symbreak_ktrand::SharedRandomness;
//!
//! // Both "nodes" hold the same broadcast seed…
//! let a = SharedRandomness::from_seed(0xfeed, 1024);
//! let b = SharedRandomness::from_seed(0xfeed, 1024);
//! // …so they derive identical hash functions and agree on every value.
//! let ha = a.hash_fn("bucket", 8, 32);
//! let hb = b.hash_fn("bucket", 8, 32);
//! assert_eq!(ha.eval(12345), hb.eval(12345));
//! assert!(ha.eval(12345) < 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
mod kwise;
pub mod sampling;
mod shared;
pub mod tail;

pub use kwise::{KWiseFamily, KWiseHash};
pub use shared::SharedRandomness;
