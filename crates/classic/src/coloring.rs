//! Vertex-coloring algorithms: verification, sequential greedy, Johansson's
//! randomized list coloring, and the Θ(m)-message distributed baseline.

pub mod verify {
    //! Coloring solution checkers.

    use symbreak_graphs::Graph;

    /// Whether every node is coloured and no edge is monochromatic.
    pub fn is_proper_coloring(graph: &Graph, colors: &[Option<u64>]) -> bool {
        assert_eq!(
            colors.len(),
            graph.num_nodes(),
            "one colour per node required"
        );
        colors.iter().all(Option::is_some)
            && graph
                .edges()
                .all(|(_, u, v)| colors[u.index()] != colors[v.index()])
    }

    /// Whether the coloring uses only colours `< bound` (e.g. `Δ + 1` or
    /// `(1 + ε)Δ`).
    pub fn uses_colors_below(colors: &[Option<u64>], bound: u64) -> bool {
        colors.iter().flatten().all(|&c| c < bound)
    }

    /// Whether each node's colour belongs to its list (list-coloring).
    pub fn respects_lists(colors: &[Option<u64>], lists: &[Vec<u64>]) -> bool {
        assert_eq!(colors.len(), lists.len(), "one list per node required");
        colors
            .iter()
            .zip(lists)
            .all(|(c, list)| c.map(|c| list.contains(&c)).unwrap_or(false))
    }

    /// Number of distinct colours used.
    pub fn num_colors_used(colors: &[Option<u64>]) -> usize {
        let set: std::collections::BTreeSet<u64> = colors.iter().flatten().copied().collect();
        set.len()
    }
}

pub mod greedy {
    //! Sequential greedy coloring (centralized reference and baseline).

    use symbreak_graphs::{Graph, NodeId};

    /// Greedy colours nodes in the given order with the smallest colour not
    /// used by an already-coloured neighbour; uses at most `Δ + 1` colours.
    pub fn greedy_coloring_in_order(graph: &Graph, order: &[NodeId]) -> Vec<Option<u64>> {
        assert_eq!(
            order.len(),
            graph.num_nodes(),
            "order must list every node once"
        );
        let mut colors: Vec<Option<u64>> = vec![None; graph.num_nodes()];
        for &v in order {
            let taken: std::collections::BTreeSet<u64> = graph
                .neighbors(v)
                .filter_map(|u| colors[u.index()])
                .collect();
            let mut c = 0u64;
            while taken.contains(&c) {
                c += 1;
            }
            colors[v.index()] = Some(c);
        }
        colors
    }

    /// Greedy coloring in node-index order.
    pub fn greedy_coloring(graph: &Graph) -> Vec<Option<u64>> {
        let order: Vec<NodeId> = graph.nodes().collect();
        greedy_coloring_in_order(graph, &order)
    }
}

pub mod johansson {
    //! Johansson's randomized (deg+1)-list-coloring as a CONGEST automaton.
    //!
    //! In each phase an uncoloured node proposes a uniformly random colour
    //! from its current palette and keeps it if no active neighbour proposed
    //! or already holds the same colour; finalised colours are announced so
    //! that neighbours strike them from their palettes. The algorithm
    //! terminates in `O(log n)` phases w.h.p. and exchanges `O(1)` messages
    //! per active edge per phase, which is exactly the behaviour Algorithm 1
    //! relies on when colouring each part `B_i` (Step 3) and the leftover
    //! set `L` (Step 5).

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use symbreak_congest::{
        ExecutionReport, KtLevel, Message, NodeAlgorithm, RoundContext, SyncConfig, SyncSimulator,
    };
    use symbreak_graphs::{Graph, IdAssignment, NodeId};

    /// Proposal of a candidate colour.
    pub const TAG_PROPOSE: u16 = 0x40;
    /// Announcement of a finalised colour.
    pub const TAG_FINAL: u16 = 0x41;

    /// Per-node specification of a list-coloring instance.
    #[derive(Debug, Clone)]
    pub struct ListColoringSpec {
        /// `palettes[v]` — the colour list of node `v`.
        pub palettes: Vec<Vec<u64>>,
        /// `active[v]` — the neighbours `v` exchanges messages with (its
        /// neighbours in the subgraph being coloured).
        pub active: Vec<Vec<NodeId>>,
        /// `participating[v]` — whether `v` is to be coloured in this run.
        pub participating: Vec<bool>,
    }

    impl ListColoringSpec {
        /// A spec that colours the whole graph with palette `{0, …, Δ}` —
        /// the classic (Δ+1)-coloring instance.
        pub fn delta_plus_one(graph: &Graph) -> Self {
            let palette: Vec<u64> = (0..=graph.max_degree() as u64).collect();
            ListColoringSpec {
                palettes: vec![palette; graph.num_nodes()],
                active: graph.nodes().map(|v| graph.neighbor_vec(v)).collect(),
                participating: vec![true; graph.num_nodes()],
            }
        }

        fn validate(&self, graph: &Graph) {
            assert_eq!(self.palettes.len(), graph.num_nodes());
            assert_eq!(self.active.len(), graph.num_nodes());
            assert_eq!(self.participating.len(), graph.num_nodes());
            for v in graph.nodes() {
                if self.participating[v.index()] {
                    let active_deg = self.active[v.index()]
                        .iter()
                        .filter(|u| self.participating[u.index()])
                        .count();
                    assert!(
                        self.palettes[v.index()].len() > active_deg,
                        "node {v} has palette of size {} but {} active participating neighbours; \
                         (deg+1)-list-coloring needs a strictly larger palette",
                        self.palettes[v.index()].len(),
                        active_deg
                    );
                }
            }
        }
    }

    struct Node {
        participating: bool,
        color: Option<u64>,
        palette: Vec<u64>,
        active: Vec<NodeId>,
        candidate: Option<u64>,
        rng: StdRng,
    }

    impl Node {
        fn remove_from_palette(&mut self, c: u64) {
            if let Some(pos) = self.palette.iter().position(|&x| x == c) {
                self.palette.swap_remove(pos);
            }
        }
        fn send_all(&self, ctx: &mut RoundContext<'_>, msg: &Message) {
            for i in 0..self.active.len() {
                ctx.send(self.active[i], *msg);
            }
        }
    }

    impl NodeAlgorithm for Node {
        fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
            if !self.participating {
                return;
            }
            if ctx.round() % 2 == 0 {
                // Start of a phase: first digest the FINAL announcements of
                // the previous phase, then propose a fresh candidate.
                for msg in inbox {
                    if msg.tag() == TAG_FINAL {
                        self.remove_from_palette(msg.values()[0]);
                    }
                }
                if self.color.is_none() {
                    assert!(
                        !self.palette.is_empty(),
                        "palette exhausted — the list-coloring precondition was violated"
                    );
                    let idx = self.rng.gen_range(0..self.palette.len());
                    let c = self.palette[idx];
                    self.candidate = Some(c);
                    self.send_all(ctx, &Message::tagged(TAG_PROPOSE).with_value(c));
                }
            } else if self.color.is_none() {
                // Decision: keep the candidate if no neighbour proposed the
                // same colour this phase (finalised colours were already
                // removed from the palette, so they cannot be the candidate).
                let c = self.candidate.expect("a candidate was proposed this phase");
                let conflict = inbox
                    .iter()
                    .any(|m| m.tag() == TAG_PROPOSE && m.values()[0] == c);
                if !conflict {
                    self.color = Some(c);
                    self.send_all(ctx, &Message::tagged(TAG_FINAL).with_value(c));
                }
                self.candidate = None;
            }
        }

        fn is_done(&self) -> bool {
            !self.participating || self.color.is_some()
        }

        fn output(&self) -> Option<u64> {
            self.color
        }
    }

    /// Runs Johansson's list-coloring according to `spec`.
    ///
    /// Returns per-node colours (participants only; non-participants are
    /// `None`) and the execution report.
    ///
    /// # Panics
    ///
    /// Panics if the spec violates the `(deg+1)`-list-coloring precondition
    /// (a participant with a palette not larger than its active degree) or if
    /// the run fails to terminate within the configured round limit.
    pub fn run(
        graph: &Graph,
        ids: &IdAssignment,
        level: KtLevel,
        spec: &ListColoringSpec,
        seed: u64,
        config: SyncConfig,
    ) -> (Vec<Option<u64>>, ExecutionReport) {
        spec.validate(graph);
        let sim = SyncSimulator::new(graph, ids, level);
        let report = sim.run(config, |init| {
            let i = init.node.index();
            Node {
                participating: spec.participating[i],
                color: None,
                palette: spec.palettes[i].clone(),
                active: spec.active[i].clone(),
                candidate: None,
                rng: StdRng::seed_from_u64(seed ^ 0x517cc1b727220a95u64.wrapping_mul(i as u64 + 1)),
            }
        });
        assert!(
            report.completed,
            "Johansson list-coloring did not terminate"
        );
        (report.outputs.clone(), report)
    }
}

pub mod baseline {
    //! The naive Θ(m)-message distributed (Δ+1)-coloring baseline: every node
    //! talks to *all* of its neighbours in every phase. This is the implicit
    //! Ω(m) coloring baseline of Figure 1 against which Algorithm 1 and
    //! Algorithm 2 are compared.

    use symbreak_congest::{ExecutionReport, KtLevel, SyncConfig};
    use symbreak_graphs::{Graph, IdAssignment};

    use super::johansson::{self, ListColoringSpec};

    /// Runs the baseline and returns `(colors, report)`.
    pub fn run(
        graph: &Graph,
        ids: &IdAssignment,
        seed: u64,
        config: SyncConfig,
    ) -> (Vec<Option<u64>>, ExecutionReport) {
        let spec = ListColoringSpec::delta_plus_one(graph);
        johansson::run(graph, ids, KtLevel::KT1, &spec, seed, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use johansson::ListColoringSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symbreak_congest::{KtLevel, SyncConfig};
    use symbreak_graphs::{generators, IdAssignment, NodeId};

    #[test]
    fn verify_checks_propriety_and_bounds() {
        let g = generators::path(3);
        let good = vec![Some(0), Some(1), Some(0)];
        let bad = vec![Some(0), Some(0), Some(1)];
        let partial = vec![Some(0), None, Some(1)];
        assert!(verify::is_proper_coloring(&g, &good));
        assert!(!verify::is_proper_coloring(&g, &bad));
        assert!(!verify::is_proper_coloring(&g, &partial));
        assert!(verify::uses_colors_below(&good, 2));
        assert!(!verify::uses_colors_below(&good, 1));
        assert_eq!(verify::num_colors_used(&good), 2);
        assert!(verify::respects_lists(
            &good,
            &[vec![0], vec![1, 2], vec![0]]
        ));
        assert!(!verify::respects_lists(&good, &[vec![1], vec![1], vec![0]]));
    }

    #[test]
    fn greedy_coloring_is_proper_and_within_delta_plus_one() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let g = generators::gnp(40, 0.2, &mut rng);
            let colors = greedy::greedy_coloring(&g);
            assert!(verify::is_proper_coloring(&g, &colors));
            assert!(verify::uses_colors_below(
                &colors,
                g.max_degree() as u64 + 1
            ));
        }
    }

    #[test]
    fn johansson_colors_whole_graph_properly() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [15usize, 30, 60] {
            let g = generators::connected_gnp(n, 0.2, &mut rng);
            let ids = IdAssignment::identity(n);
            let spec = ListColoringSpec::delta_plus_one(&g);
            let (colors, report) =
                johansson::run(&g, &ids, KtLevel::KT1, &spec, 5, SyncConfig::default());
            assert!(verify::is_proper_coloring(&g, &colors), "n={n}");
            assert!(verify::uses_colors_below(
                &colors,
                g.max_degree() as u64 + 1
            ));
            assert!(report.completed);
        }
    }

    #[test]
    fn johansson_respects_restricted_palettes() {
        // Colour a cycle with per-node lists {10, 11, 12}.
        let g = generators::cycle(9);
        let ids = IdAssignment::identity(9);
        let lists: Vec<Vec<u64>> = vec![vec![10, 11, 12]; 9];
        let spec = ListColoringSpec {
            palettes: lists.clone(),
            active: g.nodes().map(|v| g.neighbor_vec(v)).collect(),
            participating: vec![true; 9],
        };
        let (colors, _) = johansson::run(&g, &ids, KtLevel::KT1, &spec, 9, SyncConfig::default());
        assert!(verify::is_proper_coloring(&g, &colors));
        assert!(verify::respects_lists(&colors, &lists));
    }

    #[test]
    fn johansson_only_colors_participants_and_only_uses_active_edges() {
        let g = generators::clique(10);
        let ids = IdAssignment::identity(10);
        // Only even nodes participate, and they only talk to even nodes.
        let participating: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let active: Vec<Vec<NodeId>> = g
            .nodes()
            .map(|v| {
                g.neighbors(v)
                    .filter(|u| participating[u.index()] && participating[v.index()])
                    .collect()
            })
            .collect();
        let palettes: Vec<Vec<u64>> = vec![(0..5).collect(); 10];
        let spec = ListColoringSpec {
            palettes,
            active,
            participating: participating.clone(),
        };
        let (colors, report) =
            johansson::run(&g, &ids, KtLevel::KT1, &spec, 3, SyncConfig::default());
        for v in g.nodes() {
            assert_eq!(colors[v.index()].is_some(), participating[v.index()]);
        }
        // The induced subgraph on the 5 even nodes is a K5: check propriety.
        for (_, u, v) in g.edges() {
            if participating[u.index()] && participating[v.index()] {
                assert_ne!(colors[u.index()], colors[v.index()]);
            }
        }
        // Only the 5·4 = 20 directed pairs among participants ever exchange
        // messages, and each exchanges O(1) per phase.
        assert!(report.messages <= 20 * 2 * report.rounds);
    }

    #[test]
    #[should_panic(expected = "strictly larger palette")]
    fn johansson_rejects_too_small_palettes() {
        let g = generators::clique(4);
        let ids = IdAssignment::identity(4);
        let spec = ListColoringSpec {
            palettes: vec![vec![0, 1]; 4],
            active: g.nodes().map(|v| g.neighbor_vec(v)).collect(),
            participating: vec![true; 4],
        };
        let _ = johansson::run(&g, &ids, KtLevel::KT1, &spec, 1, SyncConfig::default());
    }

    #[test]
    fn baseline_uses_order_m_messages() {
        let g = generators::clique(20);
        let ids = IdAssignment::identity(20);
        let (colors, report) = baseline::run(&g, &ids, 17, SyncConfig::default());
        assert!(verify::is_proper_coloring(&g, &colors));
        assert!(report.messages as usize >= g.num_edges());
    }

    #[test]
    fn coloring_on_edgeless_graph() {
        let g = generators::empty(4);
        let ids = IdAssignment::identity(4);
        let (colors, report) = baseline::run(&g, &ids, 1, SyncConfig::default());
        assert!(verify::is_proper_coloring(&g, &colors));
        assert_eq!(report.messages, 0);
    }
}
