//! Vertex-coloring algorithms: verification, sequential greedy, Johansson's
//! randomized list coloring, and the Θ(m)-message distributed baseline.

pub mod verify {
    //! Coloring solution checkers.

    use symbreak_graphs::Graph;

    /// Whether every node is coloured and no edge is monochromatic.
    pub fn is_proper_coloring(graph: &Graph, colors: &[Option<u64>]) -> bool {
        assert_eq!(
            colors.len(),
            graph.num_nodes(),
            "one colour per node required"
        );
        colors.iter().all(Option::is_some)
            && graph
                .edges()
                .all(|(_, u, v)| colors[u.index()] != colors[v.index()])
    }

    /// Whether the coloring uses only colours `< bound` (e.g. `Δ + 1` or
    /// `(1 + ε)Δ`).
    pub fn uses_colors_below(colors: &[Option<u64>], bound: u64) -> bool {
        colors.iter().flatten().all(|&c| c < bound)
    }

    /// Whether each node's colour belongs to its list (list-coloring).
    pub fn respects_lists(colors: &[Option<u64>], lists: &[Vec<u64>]) -> bool {
        assert_eq!(colors.len(), lists.len(), "one list per node required");
        colors
            .iter()
            .zip(lists)
            .all(|(c, list)| c.map(|c| list.contains(&c)).unwrap_or(false))
    }

    /// Number of distinct colours used.
    pub fn num_colors_used(colors: &[Option<u64>]) -> usize {
        let set: std::collections::BTreeSet<u64> = colors.iter().flatten().copied().collect();
        set.len()
    }
}

pub mod greedy {
    //! Sequential greedy coloring (centralized reference and baseline).

    use symbreak_graphs::{Graph, NodeId};

    /// Greedy colours nodes in the given order with the smallest colour not
    /// used by an already-coloured neighbour; uses at most `Δ + 1` colours.
    pub fn greedy_coloring_in_order(graph: &Graph, order: &[NodeId]) -> Vec<Option<u64>> {
        assert_eq!(
            order.len(),
            graph.num_nodes(),
            "order must list every node once"
        );
        let mut colors: Vec<Option<u64>> = vec![None; graph.num_nodes()];
        for &v in order {
            let taken: std::collections::BTreeSet<u64> = graph
                .neighbors(v)
                .filter_map(|u| colors[u.index()])
                .collect();
            let mut c = 0u64;
            while taken.contains(&c) {
                c += 1;
            }
            colors[v.index()] = Some(c);
        }
        colors
    }

    /// Greedy coloring in node-index order.
    pub fn greedy_coloring(graph: &Graph) -> Vec<Option<u64>> {
        let order: Vec<NodeId> = graph.nodes().collect();
        greedy_coloring_in_order(graph, &order)
    }
}

pub mod palette {
    //! Fixed-width bitset palettes.
    //!
    //! Every coloring stage in the workspace draws colours from a bounded
    //! domain `0..domain` (at most `(1+ε)Δ + 1` colours), so a per-node
    //! palette fits in `⌈domain/64⌉` machine words. Compared to the nested
    //! `Vec<Vec<u64>>` representation this makes
    //!
    //! * striking a colour (`FINAL` digestion) an O(1) bit clear instead of
    //!   a linear scan + `Vec` removal, and
    //! * drawing a uniformly random *free* colour an O(words) select instead
    //!   of materialising a filtered `Vec` per phase.
    //!
    //! Bit order is colour order: the `r`-th set bit (ascending) of a row is
    //! the `r`-th smallest colour, so a flat draw visits colours in exactly
    //! the order a sorted, duplicate-free colour list would — which is what
    //! keeps the bitset pipelines bit-identical to the retained nested-`Vec`
    //! baselines under the same per-node RNG streams.

    /// Number of 64-bit words covering the colour domain `0..domain`.
    pub fn words_for(domain: u64) -> usize {
        (domain as usize).div_ceil(64).max(1)
    }

    /// The full palette `{0, …, domain − 1}` as one bitset row of
    /// [`words_for`]`(domain)` words — the template the flat builders blit
    /// into every participant's row.
    pub fn full_row(domain: u64) -> Vec<u64> {
        let mut row = vec![0u64; words_for(domain)];
        for c in 0..domain {
            row[(c / 64) as usize] |= 1 << (c % 64);
        }
        row
    }

    /// Selects the `r`-th (0-based, ascending) set bit of `words`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `r + 1` bits are set.
    pub fn nth_set_bit(words: &[u64], mut r: u32) -> u64 {
        for (k, &w) in words.iter().enumerate() {
            let ones = w.count_ones();
            if r < ones {
                let mut w = w;
                for _ in 0..r {
                    w &= w - 1; // clear lowest set bit
                }
                return (k as u64) * 64 + w.trailing_zeros() as u64;
            }
            r -= ones;
        }
        panic!("nth_set_bit: fewer than r+1 bits set");
    }

    /// Popcount of `palette & !excluded` (the free colours).
    pub fn masked_count(palette: &[u64], excluded: &[u64]) -> u32 {
        palette
            .iter()
            .zip(excluded)
            .map(|(&p, &x)| (p & !x).count_ones())
            .sum()
    }

    /// The `r`-th (ascending) colour of `palette & !excluded`.
    pub fn masked_nth(palette: &[u64], excluded: &[u64], r: u32) -> u64 {
        let mut rr = r;
        for (k, (&p, &x)) in palette.iter().zip(excluded).enumerate() {
            let mut w = p & !x;
            let ones = w.count_ones();
            if rr < ones {
                for _ in 0..rr {
                    w &= w - 1;
                }
                return (k as u64) * 64 + w.trailing_zeros() as u64;
            }
            rr -= ones;
        }
        panic!("masked_nth: fewer than r+1 free colours");
    }

    /// Bitset palettes of all `n` nodes of a stage, stored as one flat word
    /// array (`n · words_per_node` words) plus per-node popcounts.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct PaletteBitsets {
        domain: u64,
        words: usize,
        bits: Vec<u64>,
        counts: Vec<u32>,
    }

    impl PaletteBitsets {
        /// `n` empty palettes over the domain `0..domain`.
        pub fn new(n: usize, domain: u64) -> Self {
            let words = words_for(domain);
            PaletteBitsets {
                domain,
                words,
                bits: vec![0; n * words],
                counts: vec![0; n],
            }
        }

        /// Builds palettes from per-node colour lists. The domain is the
        /// largest listed colour plus one; duplicates collapse.
        pub fn from_lists(lists: &[Vec<u64>]) -> Self {
            let domain = lists
                .iter()
                .flatten()
                .copied()
                .max()
                .map_or(1, |max| max + 1);
            let mut palettes = Self::new(lists.len(), domain);
            for (v, list) in lists.iter().enumerate() {
                for &c in list {
                    palettes.insert(v, c);
                }
            }
            palettes
        }

        /// The colour-domain bound (colours are `< domain`).
        pub fn domain(&self) -> u64 {
            self.domain
        }

        /// Words per node row.
        pub fn words_per_node(&self) -> usize {
            self.words
        }

        /// Node `v`'s palette words.
        #[inline]
        pub fn row(&self, v: usize) -> &[u64] {
            &self.bits[v * self.words..(v + 1) * self.words]
        }

        /// Number of colours in node `v`'s palette.
        #[inline]
        pub fn count(&self, v: usize) -> u32 {
            self.counts[v]
        }

        /// Adds colour `c` to node `v`'s palette.
        ///
        /// # Panics
        ///
        /// Panics if `c` is outside the domain.
        pub fn insert(&mut self, v: usize, c: u64) {
            assert!(c < self.domain, "colour {c} outside domain {}", self.domain);
            let word = &mut self.bits[v * self.words + (c / 64) as usize];
            let mask = 1u64 << (c % 64);
            if *word & mask == 0 {
                *word |= mask;
                self.counts[v] += 1;
            }
        }

        /// Copies a precomputed row (e.g. one bucket's shared palette) into
        /// node `v`'s row — the single-counting-pass builders compute each
        /// distinct palette once and blit it per node.
        pub fn set_row(&mut self, v: usize, row: &[u64], count: u32) {
            assert_eq!(row.len(), self.words);
            self.bits[v * self.words..(v + 1) * self.words].copy_from_slice(row);
            self.counts[v] = count;
        }

        /// Whether colour `c` is in node `v`'s palette.
        #[inline]
        pub fn contains(&self, v: usize, c: u64) -> bool {
            c < self.domain && (self.bits[v * self.words + (c / 64) as usize] >> (c % 64)) & 1 == 1
        }
    }

    /// One node's mutable palette: the bitset row plus a live colour count.
    /// [`NodePalette::remove`] is the O(1) strike that replaces the nested
    /// representation's linear `Vec` removal.
    #[derive(Debug, Clone)]
    pub struct NodePalette {
        words: Vec<u64>,
        len: u32,
    }

    impl NodePalette {
        /// Copies a row out of a [`PaletteBitsets`].
        pub fn from_row(row: &[u64], count: u32) -> Self {
            NodePalette {
                words: row.to_vec(),
                len: count,
            }
        }

        /// Number of colours currently in the palette.
        pub fn len(&self) -> usize {
            self.len as usize
        }

        /// Whether the palette is empty.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// Strikes colour `c` (no-op when absent or out of domain).
        pub fn remove(&mut self, c: u64) {
            let k = (c / 64) as usize;
            if k >= self.words.len() {
                return;
            }
            let mask = 1u64 << (c % 64);
            if self.words[k] & mask != 0 {
                self.words[k] &= !mask;
                self.len -= 1;
            }
        }

        /// The `r`-th smallest colour of the palette.
        pub fn nth(&self, r: usize) -> u64 {
            nth_set_bit(&self.words, r as u32)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bitsets_mirror_lists() {
            let lists = vec![vec![0, 3, 64, 130], vec![], vec![5]];
            let p = PaletteBitsets::from_lists(&lists);
            assert_eq!(p.domain(), 131);
            assert_eq!(p.words_per_node(), 3);
            for (v, list) in lists.iter().enumerate() {
                assert_eq!(p.count(v) as usize, list.len());
                for c in 0..140u64 {
                    assert_eq!(p.contains(v, c), list.contains(&c), "v={v} c={c}");
                }
                for (r, &c) in list.iter().enumerate() {
                    assert_eq!(nth_set_bit(p.row(v), r as u32), c);
                }
            }
        }

        #[test]
        fn masked_draw_skips_excluded_colors() {
            let lists = vec![vec![1, 2, 5, 66, 70]];
            let p = PaletteBitsets::from_lists(&lists);
            let mut excluded = vec![0u64; p.words_per_node()];
            excluded[0] |= 1 << 2; // strike colour 2
            excluded[1] |= 1 << (66 - 64); // strike colour 66
            assert_eq!(masked_count(p.row(0), &excluded), 3);
            assert_eq!(masked_nth(p.row(0), &excluded, 0), 1);
            assert_eq!(masked_nth(p.row(0), &excluded, 1), 5);
            assert_eq!(masked_nth(p.row(0), &excluded, 2), 70);
        }

        #[test]
        fn node_palette_removal_is_exact() {
            let p = PaletteBitsets::from_lists(&[vec![0, 1, 2, 3]]);
            let mut np = NodePalette::from_row(p.row(0), p.count(0));
            assert_eq!(np.len(), 4);
            np.remove(1);
            np.remove(1); // double strike is a no-op
            np.remove(99); // out of domain is a no-op
            assert_eq!(np.len(), 3);
            assert_eq!(np.nth(0), 0);
            assert_eq!(np.nth(1), 2);
            assert_eq!(np.nth(2), 3);
            assert!(!np.is_empty());
        }
    }
}

pub mod johansson {
    //! Johansson's randomized (deg+1)-list-coloring as a CONGEST automaton.
    //!
    //! In each phase an uncoloured node proposes a uniformly random colour
    //! from its current palette and keeps it if no active neighbour proposed
    //! or already holds the same colour; finalised colours are announced so
    //! that neighbours strike them from their palettes. The algorithm
    //! terminates in `O(log n)` phases w.h.p. and exchanges `O(1)` messages
    //! per active edge per phase, which is exactly the behaviour Algorithm 1
    //! relies on when colouring each part `B_i` (Step 3) and the leftover
    //! set `L` (Step 5).
    //!
    //! Two equivalent runtimes are provided:
    //!
    //! * [`run`] — the retained nested-`Vec` baseline: per-node palette and
    //!   active-list `Vec`s cloned out of a [`ListColoringSpec`];
    //! * [`run_flat`] — the flat pipeline: palettes as fixed-width bitsets
    //!   ([`super::palette`]) and active lists in one CSR arena
    //!   ([`FlatListColoring`]), borrowed (not cloned) into the nodes.
    //!
    //! Both draw colours in ascending palette order from identical per-node
    //! RNG streams, so their outputs and reports are bit-identical (asserted
    //! by the `stage_flat_equivalence` differential suite).

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use symbreak_congest::{
        BatchSimulator, ExecutionReport, KtLevel, Message, NodeAlgorithm, RoundContext, SyncConfig,
        SyncSimulator,
    };
    use symbreak_graphs::{Graph, IdAssignment, NodeId};

    /// Proposal of a candidate colour.
    pub const TAG_PROPOSE: u16 = 0x40;
    /// Announcement of a finalised colour.
    pub const TAG_FINAL: u16 = 0x41;

    /// Per-node specification of a list-coloring instance.
    #[derive(Debug, Clone)]
    pub struct ListColoringSpec {
        /// `palettes[v]` — the colour list of node `v`.
        pub palettes: Vec<Vec<u64>>,
        /// `active[v]` — the neighbours `v` exchanges messages with (its
        /// neighbours in the subgraph being coloured).
        pub active: Vec<Vec<NodeId>>,
        /// `participating[v]` — whether `v` is to be coloured in this run.
        pub participating: Vec<bool>,
    }

    impl ListColoringSpec {
        /// A spec that colours the whole graph with palette `{0, …, Δ}` —
        /// the classic (Δ+1)-coloring instance.
        pub fn delta_plus_one(graph: &Graph) -> Self {
            let palette: Vec<u64> = (0..=graph.max_degree() as u64).collect();
            ListColoringSpec {
                palettes: vec![palette; graph.num_nodes()],
                active: graph.nodes().map(|v| graph.neighbor_vec(v)).collect(),
                participating: vec![true; graph.num_nodes()],
            }
        }

        fn validate(&self, graph: &Graph) {
            assert_eq!(self.palettes.len(), graph.num_nodes());
            assert_eq!(self.active.len(), graph.num_nodes());
            assert_eq!(self.participating.len(), graph.num_nodes());
            for v in graph.nodes() {
                if self.participating[v.index()] {
                    let active_deg = self.active[v.index()]
                        .iter()
                        .filter(|u| self.participating[u.index()])
                        .count();
                    assert!(
                        self.palettes[v.index()].len() > active_deg,
                        "node {v} has palette of size {} but {} active participating neighbours; \
                         (deg+1)-list-coloring needs a strictly larger palette",
                        self.palettes[v.index()].len(),
                        active_deg
                    );
                }
            }
        }
    }

    struct Node {
        participating: bool,
        color: Option<u64>,
        palette: Vec<u64>,
        active: Vec<NodeId>,
        candidate: Option<u64>,
        rng: StdRng,
    }

    impl Node {
        fn remove_from_palette(&mut self, c: u64) {
            // Order-preserving removal: palettes are kept sorted ascending so
            // the nested and flat runtimes draw identical colours from
            // identical RNG streams (the flat bitset can only enumerate
            // colours in ascending order).
            if let Some(pos) = self.palette.iter().position(|&x| x == c) {
                self.palette.remove(pos);
            }
        }
        fn send_all(&self, ctx: &mut RoundContext<'_>, msg: &Message) {
            for i in 0..self.active.len() {
                ctx.send(self.active[i], *msg);
            }
        }
    }

    impl NodeAlgorithm for Node {
        fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
            if !self.participating {
                return;
            }
            if ctx.round() % 2 == 0 {
                // Start of a phase: first digest the FINAL announcements of
                // the previous phase, then propose a fresh candidate.
                for msg in inbox {
                    if msg.tag() == TAG_FINAL {
                        self.remove_from_palette(msg.values()[0]);
                    }
                }
                if self.color.is_none() {
                    assert!(
                        !self.palette.is_empty(),
                        "palette exhausted — the list-coloring precondition was violated"
                    );
                    let idx = self.rng.gen_range(0..self.palette.len());
                    let c = self.palette[idx];
                    self.candidate = Some(c);
                    self.send_all(ctx, &Message::tagged(TAG_PROPOSE).with_value(c));
                }
            } else if self.color.is_none() {
                // Decision: keep the candidate if no neighbour proposed the
                // same colour this phase (finalised colours were already
                // removed from the palette, so they cannot be the candidate).
                let c = self.candidate.expect("a candidate was proposed this phase");
                let conflict = inbox
                    .iter()
                    .any(|m| m.tag() == TAG_PROPOSE && m.values()[0] == c);
                if !conflict {
                    self.color = Some(c);
                    self.send_all(ctx, &Message::tagged(TAG_FINAL).with_value(c));
                }
                self.candidate = None;
            }
        }

        fn is_done(&self) -> bool {
            !self.participating || self.color.is_some()
        }

        fn output(&self) -> Option<u64> {
            self.color
        }
    }

    /// Runs Johansson's list-coloring according to `spec`.
    ///
    /// Returns per-node colours (participants only; non-participants are
    /// `None`) and the execution report.
    ///
    /// # Panics
    ///
    /// Panics if the spec violates the `(deg+1)`-list-coloring precondition
    /// (a participant with a palette not larger than its active degree) or if
    /// the run fails to terminate within the configured round limit.
    pub fn run(
        graph: &Graph,
        ids: &IdAssignment,
        level: KtLevel,
        spec: &ListColoringSpec,
        seed: u64,
        config: SyncConfig,
    ) -> (Vec<Option<u64>>, ExecutionReport) {
        spec.validate(graph);
        let sim = SyncSimulator::new(graph, ids, level);
        let mut report = sim.run(config, |init| {
            let i = init.node.index();
            Node {
                participating: spec.participating[i],
                color: None,
                palette: spec.palettes[i].clone(),
                active: spec.active[i].clone(),
                candidate: None,
                rng: StdRng::seed_from_u64(seed ^ 0x517cc1b727220a95u64.wrapping_mul(i as u64 + 1)),
            }
        });
        assert!(
            report.completed,
            "Johansson list-coloring did not terminate"
        );
        let colors = std::mem::take(&mut report.outputs);
        (colors, report)
    }

    /// Flat specification of a list-coloring instance: bitset palettes plus
    /// one CSR arena of active lists — two allocations where the nested
    /// [`ListColoringSpec`] holds `2n` nested `Vec`s.
    #[derive(Debug, Clone)]
    pub struct FlatListColoring {
        participating: Vec<bool>,
        palettes: super::palette::PaletteBitsets,
        active: symbreak_graphs::AdjacencyArena,
    }

    impl FlatListColoring {
        /// The classic (Δ+1)-coloring instance, built in a single counting
        /// pass: one full-palette template row blitted per node and the
        /// graph's own CSR rows as active lists.
        pub fn delta_plus_one(graph: &Graph) -> Self {
            let n = graph.num_nodes();
            let domain = graph.max_degree() as u64 + 1;
            let template = super::palette::full_row(domain);
            let mut palettes = super::palette::PaletteBitsets::new(n, domain);
            for v in 0..n {
                palettes.set_row(v, &template, domain as u32);
            }
            FlatListColoring {
                participating: vec![true; n],
                palettes,
                active: symbreak_graphs::AdjacencyArena::from_filtered(graph, |_, _| true),
            }
        }

        /// Flattens a nested spec (used by the differential suite and the
        /// bench baseline interleave).
        ///
        /// # Panics
        ///
        /// Panics when the nested spec violates the `(deg+1)`-list-coloring
        /// precondition. Palette lists must be sorted ascending and
        /// duplicate-free for flat/nested runs to be bit-identical (all the
        /// workspace's builders produce such lists); this is checked in
        /// debug builds.
        pub fn from_spec(graph: &Graph, spec: &ListColoringSpec) -> Self {
            spec.validate(graph);
            debug_assert!(spec
                .palettes
                .iter()
                .all(|list| list.windows(2).all(|w| w[0] < w[1])));
            FlatListColoring {
                participating: spec.participating.clone(),
                palettes: super::palette::PaletteBitsets::from_lists(&spec.palettes),
                active: symbreak_graphs::AdjacencyArena::from_rows(&spec.active),
            }
        }
    }

    struct FlatNode<'s> {
        participating: bool,
        color: Option<u64>,
        palette: super::palette::NodePalette,
        active: &'s [NodeId],
        candidate: Option<u64>,
        rng: StdRng,
    }

    impl FlatNode<'_> {
        fn send_all(&self, ctx: &mut RoundContext<'_>, msg: &Message) {
            for &u in self.active {
                ctx.send(u, *msg);
            }
        }
    }

    impl NodeAlgorithm for FlatNode<'_> {
        fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
            if !self.participating {
                return;
            }
            if ctx.round() % 2 == 0 {
                for msg in inbox {
                    if msg.tag() == TAG_FINAL {
                        self.palette.remove(msg.values()[0]);
                    }
                }
                if self.color.is_none() {
                    assert!(
                        !self.palette.is_empty(),
                        "palette exhausted — the list-coloring precondition was violated"
                    );
                    let idx = self.rng.gen_range(0..self.palette.len());
                    let c = self.palette.nth(idx);
                    self.candidate = Some(c);
                    self.send_all(ctx, &Message::tagged(TAG_PROPOSE).with_value(c));
                }
            } else if self.color.is_none() {
                let c = self.candidate.expect("a candidate was proposed this phase");
                let conflict = inbox
                    .iter()
                    .any(|m| m.tag() == TAG_PROPOSE && m.values()[0] == c);
                if !conflict {
                    self.color = Some(c);
                    self.send_all(ctx, &Message::tagged(TAG_FINAL).with_value(c));
                }
                self.candidate = None;
            }
        }

        fn is_done(&self) -> bool {
            !self.participating || self.color.is_some()
        }

        fn output(&self) -> Option<u64> {
            self.color
        }
    }

    /// Runs Johansson's list-coloring on the flat pipeline: the instance is
    /// borrowed into the nodes (per-node state is one small bitset), and the
    /// outputs are moved — not cloned — out of the report.
    ///
    /// Bit-identical to [`run`] on the equivalent nested spec.
    ///
    /// # Panics
    ///
    /// Panics if the run fails to terminate within the configured round
    /// limit or a participant exhausts its palette.
    pub fn run_flat(
        graph: &Graph,
        ids: &IdAssignment,
        level: KtLevel,
        instance: &FlatListColoring,
        seed: u64,
        config: SyncConfig,
    ) -> (Vec<Option<u64>>, ExecutionReport) {
        let sim = SyncSimulator::new(graph, ids, level);
        let mut report = sim.run(config, |init| {
            let i = init.node.index();
            FlatNode {
                participating: instance.participating[i],
                color: None,
                palette: super::palette::NodePalette::from_row(
                    instance.palettes.row(i),
                    instance.palettes.count(i),
                ),
                active: instance.active.row(init.node),
                candidate: None,
                rng: StdRng::seed_from_u64(seed ^ 0x517cc1b727220a95u64.wrapping_mul(i as u64 + 1)),
            }
        });
        assert!(
            report.completed,
            "Johansson list-coloring did not terminate"
        );
        let colors = std::mem::take(&mut report.outputs);
        (colors, report)
    }

    /// Runs one flat list-coloring execution per seed, in lockstep over one
    /// shared CSR ([`BatchSimulator`]). Lane `k` is bit-identical to
    /// [`run_flat`] with `seeds[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty or any lane fails to terminate.
    pub fn run_flat_batch(
        sim: &BatchSimulator<'_>,
        instance: &FlatListColoring,
        seeds: &[u64],
        config: SyncConfig,
    ) -> Vec<(Vec<Option<u64>>, ExecutionReport)> {
        let reports = sim.run_batch(config, seeds.len(), |k, init| {
            let i = init.node.index();
            FlatNode {
                participating: instance.participating[i],
                color: None,
                palette: super::palette::NodePalette::from_row(
                    instance.palettes.row(i),
                    instance.palettes.count(i),
                ),
                active: instance.active.row(init.node),
                candidate: None,
                rng: StdRng::seed_from_u64(
                    seeds[k] ^ 0x517cc1b727220a95u64.wrapping_mul(i as u64 + 1),
                ),
            }
        });
        reports
            .into_iter()
            .map(|mut report| {
                assert!(
                    report.completed,
                    "Johansson list-coloring did not terminate"
                );
                let colors = std::mem::take(&mut report.outputs);
                (colors, report)
            })
            .collect()
    }
}

pub mod baseline {
    //! The naive Θ(m)-message distributed (Δ+1)-coloring baseline: every node
    //! talks to *all* of its neighbours in every phase. This is the implicit
    //! Ω(m) coloring baseline of Figure 1 against which Algorithm 1 and
    //! Algorithm 2 are compared.

    use symbreak_congest::{BatchSimulator, ExecutionReport, KtLevel, SyncConfig};
    use symbreak_graphs::{Graph, IdAssignment};

    use super::johansson::{self, FlatListColoring, ListColoringSpec};

    /// Runs the baseline and returns `(colors, report)`. The flat pipeline
    /// is used (bit-identical to the nested one; see [`run_nested`]).
    pub fn run(
        graph: &Graph,
        ids: &IdAssignment,
        seed: u64,
        config: SyncConfig,
    ) -> (Vec<Option<u64>>, ExecutionReport) {
        let instance = FlatListColoring::delta_plus_one(graph);
        johansson::run_flat(graph, ids, KtLevel::KT1, &instance, seed, config)
    }

    /// One baseline execution per seed, batched over one shared CSR. Lane
    /// `k` is bit-identical to [`run`] with `seeds[k]`.
    ///
    /// # Panics
    ///
    /// Panics unless `sim` was built at [`KtLevel::KT1`] (the baseline's
    /// knowledge level).
    pub fn run_batch(
        sim: &BatchSimulator<'_>,
        seeds: &[u64],
        config: SyncConfig,
    ) -> Vec<(Vec<Option<u64>>, ExecutionReport)> {
        assert_eq!(sim.level(), KtLevel::KT1, "the baseline runs at KT-1");
        let instance = FlatListColoring::delta_plus_one(sim.graph());
        johansson::run_flat_batch(sim, &instance, seeds, config)
    }

    /// The baseline on the retained nested-`Vec` runtime (differential
    /// oracle and bench baseline).
    pub fn run_nested(
        graph: &Graph,
        ids: &IdAssignment,
        seed: u64,
        config: SyncConfig,
    ) -> (Vec<Option<u64>>, ExecutionReport) {
        let spec = ListColoringSpec::delta_plus_one(graph);
        johansson::run(graph, ids, KtLevel::KT1, &spec, seed, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use johansson::ListColoringSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symbreak_congest::{KtLevel, SyncConfig};
    use symbreak_graphs::{generators, IdAssignment, NodeId};

    #[test]
    fn verify_checks_propriety_and_bounds() {
        let g = generators::path(3);
        let good = vec![Some(0), Some(1), Some(0)];
        let bad = vec![Some(0), Some(0), Some(1)];
        let partial = vec![Some(0), None, Some(1)];
        assert!(verify::is_proper_coloring(&g, &good));
        assert!(!verify::is_proper_coloring(&g, &bad));
        assert!(!verify::is_proper_coloring(&g, &partial));
        assert!(verify::uses_colors_below(&good, 2));
        assert!(!verify::uses_colors_below(&good, 1));
        assert_eq!(verify::num_colors_used(&good), 2);
        assert!(verify::respects_lists(
            &good,
            &[vec![0], vec![1, 2], vec![0]]
        ));
        assert!(!verify::respects_lists(&good, &[vec![1], vec![1], vec![0]]));
    }

    #[test]
    fn greedy_coloring_is_proper_and_within_delta_plus_one() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let g = generators::gnp(40, 0.2, &mut rng);
            let colors = greedy::greedy_coloring(&g);
            assert!(verify::is_proper_coloring(&g, &colors));
            assert!(verify::uses_colors_below(
                &colors,
                g.max_degree() as u64 + 1
            ));
        }
    }

    #[test]
    fn johansson_colors_whole_graph_properly() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [15usize, 30, 60] {
            let g = generators::connected_gnp(n, 0.2, &mut rng);
            let ids = IdAssignment::identity(n);
            let spec = ListColoringSpec::delta_plus_one(&g);
            let (colors, report) =
                johansson::run(&g, &ids, KtLevel::KT1, &spec, 5, SyncConfig::default());
            assert!(verify::is_proper_coloring(&g, &colors), "n={n}");
            assert!(verify::uses_colors_below(
                &colors,
                g.max_degree() as u64 + 1
            ));
            assert!(report.completed);
        }
    }

    #[test]
    fn johansson_respects_restricted_palettes() {
        // Colour a cycle with per-node lists {10, 11, 12}.
        let g = generators::cycle(9);
        let ids = IdAssignment::identity(9);
        let lists: Vec<Vec<u64>> = vec![vec![10, 11, 12]; 9];
        let spec = ListColoringSpec {
            palettes: lists.clone(),
            active: g.nodes().map(|v| g.neighbor_vec(v)).collect(),
            participating: vec![true; 9],
        };
        let (colors, _) = johansson::run(&g, &ids, KtLevel::KT1, &spec, 9, SyncConfig::default());
        assert!(verify::is_proper_coloring(&g, &colors));
        assert!(verify::respects_lists(&colors, &lists));
    }

    #[test]
    fn johansson_only_colors_participants_and_only_uses_active_edges() {
        let g = generators::clique(10);
        let ids = IdAssignment::identity(10);
        // Only even nodes participate, and they only talk to even nodes.
        let participating: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let active: Vec<Vec<NodeId>> = g
            .nodes()
            .map(|v| {
                g.neighbors(v)
                    .filter(|u| participating[u.index()] && participating[v.index()])
                    .collect()
            })
            .collect();
        let palettes: Vec<Vec<u64>> = vec![(0..5).collect(); 10];
        let spec = ListColoringSpec {
            palettes,
            active,
            participating: participating.clone(),
        };
        let (colors, report) =
            johansson::run(&g, &ids, KtLevel::KT1, &spec, 3, SyncConfig::default());
        for v in g.nodes() {
            assert_eq!(colors[v.index()].is_some(), participating[v.index()]);
        }
        // The induced subgraph on the 5 even nodes is a K5: check propriety.
        for (_, u, v) in g.edges() {
            if participating[u.index()] && participating[v.index()] {
                assert_ne!(colors[u.index()], colors[v.index()]);
            }
        }
        // Only the 5·4 = 20 directed pairs among participants ever exchange
        // messages, and each exchanges O(1) per phase.
        assert!(report.messages <= 20 * 2 * report.rounds);
    }

    #[test]
    #[should_panic(expected = "strictly larger palette")]
    fn johansson_rejects_too_small_palettes() {
        let g = generators::clique(4);
        let ids = IdAssignment::identity(4);
        let spec = ListColoringSpec {
            palettes: vec![vec![0, 1]; 4],
            active: g.nodes().map(|v| g.neighbor_vec(v)).collect(),
            participating: vec![true; 4],
        };
        let _ = johansson::run(&g, &ids, KtLevel::KT1, &spec, 1, SyncConfig::default());
    }

    #[test]
    fn flat_johansson_is_bit_identical_to_nested() {
        let mut rng = StdRng::seed_from_u64(7);
        for (n, p, seed) in [(20usize, 0.3, 1u64), (40, 0.15, 2), (25, 0.6, 3)] {
            let g = generators::connected_gnp(n, p, &mut rng);
            let ids = IdAssignment::identity(n);
            let spec = ListColoringSpec::delta_plus_one(&g);
            let flat = johansson::FlatListColoring::from_spec(&g, &spec);
            let (nested_colors, nested_report) =
                johansson::run(&g, &ids, KtLevel::KT1, &spec, seed, SyncConfig::default());
            let (flat_colors, flat_report) =
                johansson::run_flat(&g, &ids, KtLevel::KT1, &flat, seed, SyncConfig::default());
            assert_eq!(flat_colors, nested_colors, "n={n} seed={seed}");
            assert_eq!(flat_report.messages, nested_report.messages);
            assert_eq!(flat_report.rounds, nested_report.rounds);
        }
    }

    #[test]
    fn flat_delta_plus_one_builder_matches_nested_builder() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::gnp(30, 0.2, &mut rng);
        let ids = IdAssignment::identity(30);
        let from_builder = johansson::FlatListColoring::delta_plus_one(&g);
        let from_spec =
            johansson::FlatListColoring::from_spec(&g, &ListColoringSpec::delta_plus_one(&g));
        let (a, _) = johansson::run_flat(
            &g,
            &ids,
            KtLevel::KT1,
            &from_builder,
            5,
            SyncConfig::default(),
        );
        let (b, _) =
            johansson::run_flat(&g, &ids, KtLevel::KT1, &from_spec, 5, SyncConfig::default());
        assert_eq!(a, b);
        assert!(verify::is_proper_coloring(&g, &a));
    }

    #[test]
    fn baseline_uses_order_m_messages() {
        let g = generators::clique(20);
        let ids = IdAssignment::identity(20);
        let (colors, report) = baseline::run(&g, &ids, 17, SyncConfig::default());
        assert!(verify::is_proper_coloring(&g, &colors));
        assert!(report.messages as usize >= g.num_edges());
    }

    #[test]
    fn coloring_on_edgeless_graph() {
        let g = generators::empty(4);
        let ids = IdAssignment::identity(4);
        let (colors, report) = baseline::run(&g, &ids, 1, SyncConfig::default());
        assert!(verify::is_proper_coloring(&g, &colors));
        assert_eq!(report.messages, 0);
    }
}
