//! Maximal-independent-set algorithms: verification, sequential greedy,
//! parallel randomized greedy and Luby's algorithm.

pub mod verify {
    //! MIS solution checkers.

    use symbreak_graphs::Graph;

    /// Whether `in_set` (indexed by node) is an independent set of `graph`.
    pub fn is_independent_set(graph: &Graph, in_set: &[bool]) -> bool {
        assert_eq!(
            in_set.len(),
            graph.num_nodes(),
            "one flag per node required"
        );
        graph
            .edges()
            .all(|(_, u, v)| !(in_set[u.index()] && in_set[v.index()]))
    }

    /// Whether `in_set` is maximal: every node outside the set has a
    /// neighbour inside it.
    pub fn is_maximal(graph: &Graph, in_set: &[bool]) -> bool {
        assert_eq!(
            in_set.len(),
            graph.num_nodes(),
            "one flag per node required"
        );
        graph
            .nodes()
            .all(|v| in_set[v.index()] || graph.neighbors(v).any(|u| in_set[u.index()]))
    }

    /// Whether `in_set` is a maximal independent set.
    pub fn is_mis(graph: &Graph, in_set: &[bool]) -> bool {
        is_independent_set(graph, in_set) && is_maximal(graph, in_set)
    }

    /// Converts simulator outputs (`Some(1)` = in MIS) to membership flags.
    ///
    /// # Panics
    ///
    /// Panics if any node produced no output.
    pub fn outputs_to_membership(outputs: &[Option<u64>]) -> Vec<bool> {
        outputs
            .iter()
            .map(|o| o.expect("every node must decide") == 1)
            .collect()
    }
}

pub mod greedy {
    //! Sequential (randomized) greedy MIS — the reference implementation that
    //! the parallel variant must agree with (Blelloch, Fineman, Shun).

    use rand::Rng;
    use symbreak_graphs::{Graph, NodeId};

    /// Greedy MIS processing nodes in the order given by `ranks` (ascending;
    /// ties broken by node index). A node joins iff none of its already
    /// processed neighbours joined.
    pub fn greedy_mis_by_rank(graph: &Graph, ranks: &[u64]) -> Vec<bool> {
        assert_eq!(ranks.len(), graph.num_nodes(), "one rank per node required");
        let mut order: Vec<NodeId> = graph.nodes().collect();
        order.sort_by_key(|&v| (ranks[v.index()], v));
        let mut in_set = vec![false; graph.num_nodes()];
        for &v in &order {
            if !graph.neighbors(v).any(|u| in_set[u.index()]) {
                in_set[v.index()] = true;
            }
        }
        in_set
    }

    /// Randomized greedy MIS: uniformly random processing order.
    pub fn randomized_greedy_mis<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> Vec<bool> {
        let ranks: Vec<u64> = (0..graph.num_nodes()).map(|_| rng.gen()).collect();
        greedy_mis_by_rank(graph, &ranks)
    }

    /// Greedy MIS restricted to the sub-universe `members`: nodes outside
    /// `members` never join and do not block anyone. This is "running the
    /// sequential randomized greedy algorithm for |S| iterations" in Step 2
    /// of Algorithm 3.
    pub fn greedy_mis_on_subset(graph: &Graph, members: &[bool], ranks: &[u64]) -> Vec<bool> {
        assert_eq!(members.len(), graph.num_nodes());
        assert_eq!(ranks.len(), graph.num_nodes());
        let mut order: Vec<NodeId> = graph.nodes().filter(|v| members[v.index()]).collect();
        order.sort_by_key(|&v| (ranks[v.index()], v));
        let mut in_set = vec![false; graph.num_nodes()];
        for &v in &order {
            if !graph.neighbors(v).any(|u| in_set[u.index()]) {
                in_set[v.index()] = true;
            }
        }
        in_set
    }
}

pub mod parallel_greedy {
    //! Parallel rank-based greedy MIS as a CONGEST automaton.
    //!
    //! Each participating node holds a rank; in every phase, an undecided
    //! node whose rank is a local minimum among its undecided participating
    //! neighbours joins the MIS and announces it. This computes exactly the
    //! same MIS as the sequential greedy algorithm on the same ranks
    //! (Blelloch et al.), and finishes in `O(log n)` phases w.h.p.
    //! (Fischer–Noever).

    use rand::Rng;
    use symbreak_congest::async_sim::{AsyncConfig, AsyncReport, AsyncSimulator};
    use symbreak_congest::{
        run_synchronized, BatchSimulator, CheckpointConfig, ExecutionReport, FaultPlan, KtLevel,
        Message, NodeAlgorithm, NodeInit, NoopObserver, PersistState, RoundContext, RoundObserver,
        SyncConfig, SyncSimulator,
    };
    use symbreak_graphs::{AdjacencyArena, Graph, IdAssignment, NodeId};

    const TAG_RANK: u16 = 0x20;
    const TAG_JOIN: u16 = 0x21;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum State {
        Undecided,
        In,
        Out,
        NotParticipating,
    }

    /// The automaton is generic over its active-list storage so the nested
    /// path (per-node `Vec` clones) and the flat path (borrowed CSR arena
    /// rows) run the exact same code.
    struct Node<L> {
        state: State,
        rank: u64,
        active: L,
    }

    impl<L: AsRef<[NodeId]>> NodeAlgorithm for Node<L> {
        fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
            if self.state == State::NotParticipating {
                return;
            }
            if ctx.round() % 2 == 0 {
                // Process JOIN announcements from the previous phase, then
                // (if still undecided) announce our rank.
                if self.state == State::Undecided && inbox.iter().any(|m| m.tag() == TAG_JOIN) {
                    self.state = State::Out;
                }
                if self.state == State::Undecided {
                    let msg = Message::tagged(TAG_RANK).with_value(self.rank);
                    for &u in self.active.as_ref() {
                        ctx.send(u, msg);
                    }
                }
            } else if self.state == State::Undecided {
                let min_neighbor_rank = inbox
                    .iter()
                    .filter(|m| m.tag() == TAG_RANK)
                    .map(|m| m.values()[0])
                    .min();
                let is_local_min = match min_neighbor_rank {
                    None => true,
                    Some(r) => self.rank < r,
                };
                if is_local_min {
                    self.state = State::In;
                    let msg = Message::tagged(TAG_JOIN);
                    for &u in self.active.as_ref() {
                        ctx.send(u, msg);
                    }
                }
            }
        }

        fn is_done(&self) -> bool {
            self.state != State::Undecided
        }

        fn output(&self) -> Option<u64> {
            match self.state {
                State::In => Some(1),
                State::Out | State::NotParticipating => Some(0),
                State::Undecided => None,
            }
        }
    }

    impl<L: AsRef<[NodeId]>> PersistState for Node<L> {
        fn encode_state(&self, out: &mut Vec<u64>) {
            // Rank and active list are factory-derived; only the decision
            // state distinguishes this node from a factory-fresh one.
            out.push(match self.state {
                State::Undecided => 0,
                State::In => 1,
                State::Out => 2,
                State::NotParticipating => 3,
            });
        }

        fn decode_state(&mut self, words: &[u64]) -> bool {
            let &[disc] = words else { return false };
            self.state = match disc {
                0 => State::Undecided,
                1 => State::In,
                2 => State::Out,
                3 => State::NotParticipating,
                _ => return false,
            };
            true
        }
    }

    /// The deterministic whole-graph factory shared by the checkpointed
    /// entry points: every node participates and talks to all neighbours.
    fn whole_graph_factory<'a>(
        graph: &Graph,
        ranks: &'a [u64],
    ) -> impl FnMut(NodeInit<'_>) -> Node<Vec<NodeId>> + 'a {
        let active: Vec<Vec<NodeId>> = graph.nodes().map(|v| graph.neighbor_vec(v)).collect();
        move |init| {
            let i = init.node.index();
            Node {
                state: State::Undecided,
                rank: ranks[i],
                active: active[i].clone(),
            }
        }
    }

    /// Runs whole-graph parallel greedy MIS through the checkpointed loop
    /// ([`SyncSimulator::run_checkpointed`]), snapshotting every
    /// `checkpoint.every` rounds. Unlike [`run_on_whole_graph`], the report
    /// is returned even when the round budget ran out (`completed ==
    /// false`) — that is the "killed" half of a kill-and-resume cycle.
    ///
    /// # Errors
    ///
    /// I/O errors writing the checkpoint log.
    pub fn run_checkpointed(
        graph: &Graph,
        ids: &IdAssignment,
        ranks: &[u64],
        config: SyncConfig,
        checkpoint: &CheckpointConfig,
    ) -> std::io::Result<ExecutionReport> {
        run_checkpointed_observed(graph, ids, ranks, config, checkpoint, &mut NoopObserver)
    }

    /// [`run_checkpointed`] with a [`RoundObserver`] (e.g. a trace
    /// recorder) attached.
    ///
    /// # Errors
    ///
    /// I/O errors writing the checkpoint log.
    pub fn run_checkpointed_observed<O: RoundObserver>(
        graph: &Graph,
        ids: &IdAssignment,
        ranks: &[u64],
        config: SyncConfig,
        checkpoint: &CheckpointConfig,
        observer: &mut O,
    ) -> std::io::Result<ExecutionReport> {
        assert_eq!(ranks.len(), graph.num_nodes());
        let sim = SyncSimulator::new(graph, ids, KtLevel::KT1);
        sim.run_checkpointed_observed(
            config,
            checkpoint,
            whole_graph_factory(graph, ranks),
            observer,
        )
    }

    /// Resumes an interrupted [`run_checkpointed`] run from the latest
    /// valid checkpoint ([`SyncSimulator::resume_from`]); the completed
    /// resumed run is bit-identical to an uninterrupted one.
    ///
    /// # Errors
    ///
    /// As [`SyncSimulator::resume_from`].
    pub fn resume(
        graph: &Graph,
        ids: &IdAssignment,
        ranks: &[u64],
        config: SyncConfig,
        checkpoint: &CheckpointConfig,
    ) -> std::io::Result<ExecutionReport> {
        resume_observed(graph, ids, ranks, config, checkpoint, &mut NoopObserver)
    }

    /// [`resume`] with a [`RoundObserver`] attached (pair with a recovered
    /// trace recorder to continue an interrupted recording).
    ///
    /// # Errors
    ///
    /// As [`SyncSimulator::resume_from`].
    pub fn resume_observed<O: RoundObserver>(
        graph: &Graph,
        ids: &IdAssignment,
        ranks: &[u64],
        config: SyncConfig,
        checkpoint: &CheckpointConfig,
        observer: &mut O,
    ) -> std::io::Result<ExecutionReport> {
        assert_eq!(ranks.len(), graph.num_nodes());
        let sim = SyncSimulator::new(graph, ids, KtLevel::KT1);
        sim.resume_from_observed(
            config,
            checkpoint,
            whole_graph_factory(graph, ranks),
            observer,
        )
    }

    /// Runs parallel greedy MIS over the participating nodes.
    ///
    /// * `participating[v]` — whether `v` takes part (e.g. membership in the
    ///   sampled set `S` of Algorithm 3); non-participants output 0.
    /// * `ranks[v]` — the node's rank (must be distinct among participants).
    /// * `active[v]` — the participating neighbours of `v` it communicates
    ///   with (normally its participating neighbours in `graph`).
    ///
    /// Returns the per-node MIS membership and the execution report.
    ///
    /// The nested lists are flattened into one CSR arena and run through
    /// [`run_arena`] — the former duplicate nested runtime folded into the
    /// arena one (the automaton is generic over its active-list storage, so
    /// the outputs are unchanged). [`super::luby::run_restricted_nested`] is
    /// the one genuinely nested stage runtime retained as a differential
    /// oracle.
    pub fn run(
        graph: &Graph,
        ids: &IdAssignment,
        level: KtLevel,
        participating: &[bool],
        ranks: &[u64],
        active: &[Vec<NodeId>],
        config: SyncConfig,
    ) -> (Vec<bool>, ExecutionReport) {
        assert_eq!(active.len(), graph.num_nodes());
        let arena = AdjacencyArena::from_rows(active);
        run_arena(graph, ids, level, participating, ranks, &arena, config)
    }

    /// Like [`run`], with the active lists in one flat CSR arena instead of
    /// nested `Vec`s: each node borrows its arena row, so stage setup is two
    /// allocations total and per-node initialisation clones nothing.
    /// Bit-identical to [`run`] on equivalent lists.
    pub fn run_arena(
        graph: &Graph,
        ids: &IdAssignment,
        level: KtLevel,
        participating: &[bool],
        ranks: &[u64],
        active: &AdjacencyArena,
        config: SyncConfig,
    ) -> (Vec<bool>, ExecutionReport) {
        assert_eq!(participating.len(), graph.num_nodes());
        assert_eq!(ranks.len(), graph.num_nodes());
        assert_eq!(active.num_nodes(), graph.num_nodes());
        let sim = SyncSimulator::new(graph, ids, level);
        let report = sim.run(config, |init| {
            let i = init.node.index();
            Node {
                state: if participating[i] {
                    State::Undecided
                } else {
                    State::NotParticipating
                },
                rank: ranks[i],
                active: active.row(init.node),
            }
        });
        assert!(report.completed, "parallel greedy MIS did not terminate");
        let membership = report
            .outputs
            .iter()
            .map(|o| o.expect("participants decided") == 1)
            .collect();
        (membership, report)
    }

    /// One lane of a batched parallel-greedy run: the per-execution inputs
    /// of [`run_arena`], borrowed.
    #[derive(Debug, Clone, Copy)]
    pub struct MisLaneSpec<'a> {
        /// Per-node participation flags.
        pub participating: &'a [bool],
        /// Per-node ranks (distinct among participants).
        pub ranks: &'a [u64],
        /// Per-node active lists.
        pub active: &'a AdjacencyArena,
    }

    /// Runs one parallel-greedy execution per lane spec, in lockstep over
    /// one shared CSR. Lane `k` is bit-identical to [`run_arena`] on
    /// `lanes[k]`'s inputs.
    pub fn run_arena_batch(
        sim: &BatchSimulator<'_>,
        lanes: &[MisLaneSpec<'_>],
        config: SyncConfig,
    ) -> Vec<(Vec<bool>, ExecutionReport)> {
        let n = sim.graph().num_nodes();
        for lane in lanes {
            assert_eq!(lane.participating.len(), n);
            assert_eq!(lane.ranks.len(), n);
            assert_eq!(lane.active.num_nodes(), n);
        }
        let reports = sim.run_batch(config, lanes.len(), |k, init| {
            let i = init.node.index();
            let lane = &lanes[k];
            Node {
                state: if lane.participating[i] {
                    State::Undecided
                } else {
                    State::NotParticipating
                },
                rank: lane.ranks[i],
                active: lane.active.row(init.node),
            }
        });
        reports
            .into_iter()
            .map(|report| {
                assert!(report.completed, "parallel greedy MIS did not terminate");
                let membership = report
                    .outputs
                    .iter()
                    .map(|o| o.expect("participants decided") == 1)
                    .collect();
                (membership, report)
            })
            .collect()
    }

    /// Convenience: run on all nodes of the graph with the given ranks; the
    /// active lists are the full neighbour lists.
    pub fn run_on_whole_graph(
        graph: &Graph,
        ids: &IdAssignment,
        ranks: &[u64],
        config: SyncConfig,
    ) -> (Vec<bool>, ExecutionReport) {
        let participating = vec![true; graph.num_nodes()];
        let active: Vec<Vec<NodeId>> = graph.nodes().map(|v| graph.neighbor_vec(v)).collect();
        run(
            graph,
            ids,
            KtLevel::KT1,
            &participating,
            ranks,
            &active,
            config,
        )
    }

    /// Runs the whole-graph parallel greedy MIS on the **asynchronous**
    /// executor under a fault plan, via the α-synchronizer lockstep wrapper
    /// ([`symbreak_congest::Synchronized`]).
    ///
    /// The synchronous run is executed first to fix the round budget (and
    /// as the ground truth); the asynchronous replay then runs the same
    /// automata for exactly that many lockstep rounds. On benign,
    /// delay-only and duplicate/reorder schedules the asynchronous outputs
    /// equal the synchronous outputs; under loss or crashes the run stalls
    /// (`completed == false`) instead of emitting a wrong set.
    pub fn run_async<R: Rng + ?Sized>(
        graph: &Graph,
        ids: &IdAssignment,
        ranks: &[u64],
        sync_config: SyncConfig,
        async_config: AsyncConfig,
        plan: &FaultPlan,
        rng: &mut R,
    ) -> (ExecutionReport, AsyncReport) {
        let (_, sync_report) = run_on_whole_graph(graph, ids, ranks, sync_config);
        let active: Vec<Vec<NodeId>> = graph.nodes().map(|v| graph.neighbor_vec(v)).collect();
        let sim = AsyncSimulator::new(graph, ids, KtLevel::KT1);
        let report = run_synchronized(&sim, async_config, plan, sync_report.rounds, rng, |init| {
            let i = init.node.index();
            Node {
                state: State::Undecided,
                rank: ranks[i],
                active: active[i].clone(),
            }
        });
        (sync_report, report)
    }
}

pub mod luby {
    //! Luby's randomized MIS algorithm — the Õ(m)-message KT-1 baseline.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use symbreak_congest::async_sim::{AsyncConfig, AsyncReport, AsyncSimulator};
    use symbreak_congest::{
        run_synchronized, BatchSimulator, CheckpointConfig, ExecutionReport, FaultPlan, KtLevel,
        Message, NodeAlgorithm, NodeInit, NoopObserver, PersistState, RoundContext, RoundObserver,
        SyncConfig, SyncSimulator,
    };
    use symbreak_graphs::{AdjacencyArena, Graph, IdAssignment, NodeId};

    const TAG_VALUE: u16 = 0x30;
    const TAG_JOIN: u16 = 0x31;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum State {
        Undecided,
        In,
        Out,
        NotParticipating,
    }

    /// Generic over active-list storage; see `parallel_greedy::Node`.
    struct Node<L> {
        state: State,
        rng: StdRng,
        current: u64,
        active: L,
    }

    impl<L: AsRef<[NodeId]>> NodeAlgorithm for Node<L> {
        fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
            if self.state == State::NotParticipating {
                return;
            }
            if ctx.round() % 2 == 0 {
                if self.state == State::Undecided && inbox.iter().any(|m| m.tag() == TAG_JOIN) {
                    self.state = State::Out;
                }
                if self.state == State::Undecided {
                    self.current = self.rng.gen();
                    let msg = Message::tagged(TAG_VALUE).with_value(self.current);
                    for &u in self.active.as_ref() {
                        ctx.send(u, msg);
                    }
                }
            } else if self.state == State::Undecided {
                let max_neighbor = inbox
                    .iter()
                    .filter(|m| m.tag() == TAG_VALUE)
                    .map(|m| m.values()[0])
                    .max();
                let wins = match max_neighbor {
                    None => true,
                    Some(v) => self.current > v,
                };
                if wins {
                    self.state = State::In;
                    let msg = Message::tagged(TAG_JOIN);
                    for &u in self.active.as_ref() {
                        ctx.send(u, msg);
                    }
                }
            }
        }

        fn is_done(&self) -> bool {
            self.state != State::Undecided
        }

        fn output(&self) -> Option<u64> {
            match self.state {
                State::In => Some(1),
                State::Out | State::NotParticipating => Some(0),
                State::Undecided => None,
            }
        }
    }

    impl<L: AsRef<[NodeId]>> PersistState for Node<L> {
        fn encode_state(&self, out: &mut Vec<u64>) {
            // The RNG cursor is part of the state: a resumed node must
            // continue the exact same draw stream.
            out.push(match self.state {
                State::Undecided => 0,
                State::In => 1,
                State::Out => 2,
                State::NotParticipating => 3,
            });
            out.push(self.current);
            out.extend_from_slice(&self.rng.state());
        }

        fn decode_state(&mut self, words: &[u64]) -> bool {
            let &[disc, current, s0, s1, s2, s3] = words else {
                return false;
            };
            self.state = match disc {
                0 => State::Undecided,
                1 => State::In,
                2 => State::Out,
                3 => State::NotParticipating,
                _ => return false,
            };
            let s = [s0, s1, s2, s3];
            if s == [0; 4] {
                return false; // Not a reachable xoshiro256** state.
            }
            self.current = current;
            self.rng = StdRng::from_state(s);
            true
        }
    }

    /// The deterministic whole-graph factory shared by the checkpointed
    /// entry points (the [`run`] configuration: everyone participates).
    fn whole_graph_factory(
        graph: &Graph,
        seed: u64,
    ) -> impl FnMut(NodeInit<'_>) -> Node<Vec<NodeId>> {
        let active: Vec<Vec<NodeId>> = graph.nodes().map(|v| graph.neighbor_vec(v)).collect();
        move |init| {
            let i = init.node.index();
            Node {
                state: State::Undecided,
                rng: StdRng::seed_from_u64(
                    seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
                ),
                current: 0,
                active: active[i].clone(),
            }
        }
    }

    /// Runs whole-graph Luby through the checkpointed loop
    /// ([`SyncSimulator::run_checkpointed`]), snapshotting every
    /// `checkpoint.every` rounds — per-node RNG cursors included, so a
    /// resumed run continues the exact same random streams. Unlike [`run`],
    /// the report is returned even when the round budget ran out
    /// (`completed == false`) — the "killed" half of a kill-and-resume
    /// cycle.
    ///
    /// # Errors
    ///
    /// I/O errors writing the checkpoint log.
    pub fn run_checkpointed(
        graph: &Graph,
        ids: &IdAssignment,
        seed: u64,
        config: SyncConfig,
        checkpoint: &CheckpointConfig,
    ) -> std::io::Result<ExecutionReport> {
        run_checkpointed_observed(graph, ids, seed, config, checkpoint, &mut NoopObserver)
    }

    /// [`run_checkpointed`] with a [`RoundObserver`] (e.g. a trace
    /// recorder) attached.
    ///
    /// # Errors
    ///
    /// I/O errors writing the checkpoint log.
    pub fn run_checkpointed_observed<O: RoundObserver>(
        graph: &Graph,
        ids: &IdAssignment,
        seed: u64,
        config: SyncConfig,
        checkpoint: &CheckpointConfig,
        observer: &mut O,
    ) -> std::io::Result<ExecutionReport> {
        let sim = SyncSimulator::new(graph, ids, KtLevel::KT1);
        sim.run_checkpointed_observed(
            config,
            checkpoint,
            whole_graph_factory(graph, seed),
            observer,
        )
    }

    /// Resumes an interrupted [`run_checkpointed`] run from the latest
    /// valid checkpoint ([`SyncSimulator::resume_from`]); the completed
    /// resumed run is bit-identical to an uninterrupted one.
    ///
    /// # Errors
    ///
    /// As [`SyncSimulator::resume_from`].
    pub fn resume(
        graph: &Graph,
        ids: &IdAssignment,
        seed: u64,
        config: SyncConfig,
        checkpoint: &CheckpointConfig,
    ) -> std::io::Result<ExecutionReport> {
        resume_observed(graph, ids, seed, config, checkpoint, &mut NoopObserver)
    }

    /// [`resume`] with a [`RoundObserver`] attached (pair with a recovered
    /// trace recorder to continue an interrupted recording).
    ///
    /// # Errors
    ///
    /// As [`SyncSimulator::resume_from`].
    pub fn resume_observed<O: RoundObserver>(
        graph: &Graph,
        ids: &IdAssignment,
        seed: u64,
        config: SyncConfig,
        checkpoint: &CheckpointConfig,
        observer: &mut O,
    ) -> std::io::Result<ExecutionReport> {
        let sim = SyncSimulator::new(graph, ids, KtLevel::KT1);
        sim.resume_from_observed(
            config,
            checkpoint,
            whole_graph_factory(graph, seed),
            observer,
        )
    }

    /// Runs Luby's algorithm restricted to the nodes with
    /// `participating[v] = true`, communicating over the `active[v]` lists.
    ///
    /// The nested lists are flattened into one CSR arena and run through
    /// [`run_restricted_arena`] — the former duplicate nested runtime folded
    /// into the arena one (the automaton is generic over its active-list
    /// storage, so the outputs are unchanged). The genuinely nested runtime
    /// survives as [`run_restricted_nested`], the one retained differential
    /// oracle.
    pub fn run_restricted(
        graph: &Graph,
        ids: &IdAssignment,
        level: KtLevel,
        participating: &[bool],
        active: &[Vec<NodeId>],
        seed: u64,
        config: SyncConfig,
    ) -> (Vec<bool>, ExecutionReport) {
        assert_eq!(active.len(), graph.num_nodes());
        let arena = AdjacencyArena::from_rows(active);
        run_restricted_arena(graph, ids, level, participating, &arena, seed, config)
    }

    /// The retained **nested** stage runtime: per-node `Vec` active lists
    /// cloned into each automaton, exactly the pre-fold [`run_restricted`]
    /// body. Kept as the one classic-MIS differential oracle — Algorithm 3's
    /// `StagePipeline::Nested` runs its Luby stage through it, and the
    /// `stage_flat_equivalence` suite asserts that path stays bit-identical
    /// to [`run_restricted_arena`] on equivalent lists.
    pub fn run_restricted_nested(
        graph: &Graph,
        ids: &IdAssignment,
        level: KtLevel,
        participating: &[bool],
        active: &[Vec<NodeId>],
        seed: u64,
        config: SyncConfig,
    ) -> (Vec<bool>, ExecutionReport) {
        assert_eq!(participating.len(), graph.num_nodes());
        assert_eq!(active.len(), graph.num_nodes());
        let sim = SyncSimulator::new(graph, ids, level);
        let report = sim.run(config, |init| {
            let i = init.node.index();
            Node {
                state: if participating[i] {
                    State::Undecided
                } else {
                    State::NotParticipating
                },
                rng: StdRng::seed_from_u64(
                    seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
                ),
                current: 0,
                active: active[i].clone(),
            }
        });
        assert!(report.completed, "Luby's algorithm did not terminate");
        let membership = report
            .outputs
            .iter()
            .map(|o| o.expect("all nodes decided") == 1)
            .collect();
        (membership, report)
    }

    /// Like [`run_restricted`], with the active lists in one flat CSR arena:
    /// each node borrows its arena row instead of cloning a `Vec`.
    /// Bit-identical to [`run_restricted`] on equivalent lists.
    pub fn run_restricted_arena(
        graph: &Graph,
        ids: &IdAssignment,
        level: KtLevel,
        participating: &[bool],
        active: &AdjacencyArena,
        seed: u64,
        config: SyncConfig,
    ) -> (Vec<bool>, ExecutionReport) {
        assert_eq!(participating.len(), graph.num_nodes());
        assert_eq!(active.num_nodes(), graph.num_nodes());
        let sim = SyncSimulator::new(graph, ids, level);
        let report = sim.run(config, |init| {
            let i = init.node.index();
            Node {
                state: if participating[i] {
                    State::Undecided
                } else {
                    State::NotParticipating
                },
                rng: StdRng::seed_from_u64(
                    seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
                ),
                current: 0,
                active: active.row(init.node),
            }
        });
        assert!(report.completed, "Luby's algorithm did not terminate");
        let membership = report
            .outputs
            .iter()
            .map(|o| o.expect("all nodes decided") == 1)
            .collect();
        (membership, report)
    }

    /// One lane of a batched Luby run: the per-execution inputs of
    /// [`run_restricted_arena`], borrowed.
    #[derive(Debug, Clone, Copy)]
    pub struct LubyLaneSpec<'a> {
        /// Per-node participation flags.
        pub participating: &'a [bool],
        /// Per-node active lists.
        pub active: &'a AdjacencyArena,
        /// The lane's seed.
        pub seed: u64,
    }

    /// Runs one Luby execution per lane spec, in lockstep over one shared
    /// CSR. Lane `k` is bit-identical to [`run_restricted_arena`] on
    /// `lanes[k]`'s inputs.
    pub fn run_restricted_arena_batch(
        sim: &BatchSimulator<'_>,
        lanes: &[LubyLaneSpec<'_>],
        config: SyncConfig,
    ) -> Vec<(Vec<bool>, ExecutionReport)> {
        let n = sim.graph().num_nodes();
        for lane in lanes {
            assert_eq!(lane.participating.len(), n);
            assert_eq!(lane.active.num_nodes(), n);
        }
        let reports = sim.run_batch(config, lanes.len(), |k, init| {
            let i = init.node.index();
            let lane = &lanes[k];
            Node {
                state: if lane.participating[i] {
                    State::Undecided
                } else {
                    State::NotParticipating
                },
                rng: StdRng::seed_from_u64(
                    lane.seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
                ),
                current: 0,
                active: lane.active.row(init.node),
            }
        });
        reports
            .into_iter()
            .map(|report| {
                assert!(report.completed, "Luby's algorithm did not terminate");
                let membership = report
                    .outputs
                    .iter()
                    .map(|o| o.expect("all nodes decided") == 1)
                    .collect();
                (membership, report)
            })
            .collect()
    }

    /// One whole-graph Luby execution per seed, batched over one shared CSR
    /// (the batched Figure-1 MIS baseline). Lane `k` is bit-identical to
    /// [`run`] with `seeds[k]` — the automaton is generic over its
    /// active-list storage, so the borrowed arena rows here step exactly
    /// like [`run`]'s cloned `Vec`s.
    ///
    /// # Panics
    ///
    /// Panics unless `sim` was built at [`KtLevel::KT1`].
    pub fn run_batch(
        sim: &BatchSimulator<'_>,
        seeds: &[u64],
        config: SyncConfig,
    ) -> Vec<(Vec<bool>, ExecutionReport)> {
        assert_eq!(sim.level(), KtLevel::KT1, "the baseline runs at KT-1");
        let participating = vec![true; sim.graph().num_nodes()];
        let active = AdjacencyArena::from_filtered(sim.graph(), |_, _| true);
        let lanes: Vec<LubyLaneSpec<'_>> = seeds
            .iter()
            .map(|&seed| LubyLaneSpec {
                participating: &participating,
                active: &active,
                seed,
            })
            .collect();
        run_restricted_arena_batch(sim, &lanes, config)
    }

    /// Runs Luby's algorithm on the whole graph (the Figure-1 MIS baseline).
    pub fn run(
        graph: &Graph,
        ids: &IdAssignment,
        seed: u64,
        config: SyncConfig,
    ) -> (Vec<bool>, ExecutionReport) {
        let participating = vec![true; graph.num_nodes()];
        let active: Vec<Vec<NodeId>> = graph.nodes().map(|v| graph.neighbor_vec(v)).collect();
        run_restricted(
            graph,
            ids,
            KtLevel::KT1,
            &participating,
            &active,
            seed,
            config,
        )
    }

    /// Runs whole-graph Luby on the **asynchronous** executor under a fault
    /// plan, via the α-synchronizer lockstep wrapper
    /// ([`symbreak_congest::Synchronized`]).
    ///
    /// The synchronous baseline runs first to fix the round budget (and as
    /// ground truth); the asynchronous replay then runs the same per-node
    /// RNG schedules for exactly that many lockstep rounds. On benign,
    /// delay-only and duplicate/reorder schedules the outputs equal the
    /// synchronous outputs; loss or crashes stall the run instead of
    /// producing a wrong set.
    pub fn run_async<R: Rng + ?Sized>(
        graph: &Graph,
        ids: &IdAssignment,
        seed: u64,
        sync_config: SyncConfig,
        async_config: AsyncConfig,
        plan: &FaultPlan,
        rng: &mut R,
    ) -> (ExecutionReport, AsyncReport) {
        let (_, sync_report) = run(graph, ids, seed, sync_config);
        let active: Vec<Vec<NodeId>> = graph.nodes().map(|v| graph.neighbor_vec(v)).collect();
        let sim = AsyncSimulator::new(graph, ids, KtLevel::KT1);
        let report = run_synchronized(&sim, async_config, plan, sync_report.rounds, rng, |init| {
            let i = init.node.index();
            Node {
                state: State::Undecided,
                rng: StdRng::seed_from_u64(
                    seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
                ),
                current: 0,
                active: active[i].clone(),
            }
        });
        (sync_report, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symbreak_congest::SyncConfig;
    use symbreak_graphs::{generators, IdAssignment, NodeId};

    #[test]
    fn verify_detects_non_independence_and_non_maximality() {
        let g = generators::path(3);
        assert!(verify::is_mis(&g, &[true, false, true]));
        assert!(verify::is_mis(&g, &[false, true, false]));
        assert!(!verify::is_independent_set(&g, &[true, true, false]));
        assert!(!verify::is_maximal(&g, &[true, false, false]));
        assert!(!verify::is_mis(&g, &[false, false, false]));
    }

    #[test]
    fn greedy_mis_is_valid_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..5 {
            let g = generators::gnp(40, 0.15, &mut rng);
            let mis = greedy::randomized_greedy_mis(&g, &mut rng);
            assert!(verify::is_mis(&g, &mis));
        }
    }

    #[test]
    fn greedy_rank_order_determines_output() {
        let g = generators::path(3);
        // Rank order 1 < 0 < 2: node 1 joins first, blocking 0 and 2? No:
        // node 2 is not adjacent to 1? It is (path 0-1-2). So MIS = {1}.
        let mis = greedy::greedy_mis_by_rank(&g, &[5, 1, 9]);
        assert_eq!(mis, vec![false, true, false]);
    }

    #[test]
    fn greedy_on_subset_only_selects_members() {
        let g = generators::clique(6);
        let members = vec![true, false, true, false, true, false];
        let ranks = vec![3, 0, 1, 0, 2, 0];
        let mis = greedy::greedy_mis_on_subset(&g, &members, &ranks);
        // In a clique only the best-ranked member joins.
        assert_eq!(mis.iter().filter(|&&b| b).count(), 1);
        assert!(mis[2]);
        for v in [1usize, 3, 5] {
            assert!(!mis[v]);
        }
    }

    #[test]
    fn parallel_greedy_matches_sequential_greedy() {
        let mut rng = StdRng::seed_from_u64(33);
        for trial in 0..5 {
            let g = generators::connected_gnp(30, 0.2, &mut rng);
            let ids = IdAssignment::identity(30);
            let ranks: Vec<u64> = (0..30)
                .map(|i| (i as u64 * 7919 + trial) % 1000 + 1)
                .collect();
            let sequential = greedy::greedy_mis_by_rank(&g, &ranks);
            let (parallel, report) =
                parallel_greedy::run_on_whole_graph(&g, &ids, &ranks, SyncConfig::default());
            assert_eq!(parallel, sequential, "trial {trial}");
            assert!(verify::is_mis(&g, &parallel));
            assert!(report.messages > 0);
        }
    }

    #[test]
    fn parallel_greedy_respects_participation() {
        let g = generators::clique(8);
        let ids = IdAssignment::identity(8);
        let participating: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        let ranks: Vec<u64> = (0..8).map(|i| 100 - i as u64).collect();
        let active: Vec<Vec<NodeId>> = g
            .nodes()
            .map(|v| {
                g.neighbors(v)
                    .filter(|u| participating[u.index()])
                    .collect()
            })
            .collect();
        let (mis, _) = parallel_greedy::run(
            &g,
            &ids,
            symbreak_congest::KtLevel::KT1,
            &participating,
            &ranks,
            &active,
            SyncConfig::default(),
        );
        // Non-participants never join; exactly one participant joins (clique).
        assert!(mis.iter().zip(&participating).all(|(&m, &p)| p || !m));
        assert_eq!(mis.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn luby_computes_a_valid_mis() {
        let mut rng = StdRng::seed_from_u64(44);
        for n in [10usize, 25, 50] {
            let g = generators::connected_gnp(n, 0.2, &mut rng);
            let ids = IdAssignment::identity(n);
            let (mis, report) = luby::run(&g, &ids, 7, SyncConfig::default());
            assert!(verify::is_mis(&g, &mis), "n={n}");
            assert!(report.completed);
        }
    }

    #[test]
    fn luby_message_count_scales_with_edges() {
        // The baseline sends Θ(m) messages per phase — on a clique this is
        // far more than n^1.5, which is exactly why the paper's algorithms
        // avoid it.
        let g = generators::clique(40);
        let ids = IdAssignment::identity(40);
        let (mis, report) = luby::run(&g, &ids, 11, SyncConfig::default());
        assert!(verify::is_mis(&g, &mis));
        assert!(report.messages as usize >= g.num_edges());
    }

    #[test]
    fn luby_on_edgeless_graph_selects_everyone() {
        let g = generators::empty(5);
        let ids = IdAssignment::identity(5);
        let (mis, _) = luby::run(&g, &ids, 3, SyncConfig::default());
        assert_eq!(mis, vec![true; 5]);
    }

    #[test]
    fn luby_kill_and_resume_matches_uninterrupted_run() {
        use symbreak_congest::CheckpointConfig;
        let mut rng = StdRng::seed_from_u64(55);
        let g = generators::connected_gnp(30, 0.15, &mut rng);
        let ids = IdAssignment::identity(30);
        let (mis, baseline) = luby::run(&g, &ids, 9, SyncConfig::default());
        let dir = std::env::temp_dir().join(format!("sbck-mis-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = CheckpointConfig::new(dir.join("luby.sbck")).with_every(2);
        // Kill after the first boundary, then resume: Luby's per-node RNG
        // cursors must continue the exact same draw streams.
        let partial =
            luby::run_checkpointed(&g, &ids, 9, SyncConfig::default().with_max_rounds(2), &ckpt)
                .unwrap();
        assert!(!partial.completed);
        let resumed = luby::resume(&g, &ids, 9, SyncConfig::default(), &ckpt).unwrap();
        assert_eq!(resumed, baseline);
        assert_eq!(verify::outputs_to_membership(&resumed.outputs), mis);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn outputs_to_membership_maps_correctly() {
        let outputs = vec![Some(1), Some(0), Some(1)];
        assert_eq!(
            verify::outputs_to_membership(&outputs),
            vec![true, false, true]
        );
    }
}
