//! Classic symmetry-breaking algorithms and Ω(m)-message baselines.
//!
//! These are the well-known building blocks the paper composes and compares
//! against:
//!
//! * [`mis::luby`] — Luby's randomized MIS (the Õ(m)-message KT-1 baseline in
//!   Figure 1).
//! * [`mis::greedy`] — sequential randomized greedy MIS, and
//!   [`mis::parallel_greedy`] — its parallel, rank-based CONGEST counterpart
//!   (Blelloch et al. / Fischer–Noever), used by Step 2 of Algorithm 3.
//! * [`coloring::johansson`] — Johansson's randomized (deg+1)-list-coloring,
//!   used inside Algorithm 1 on each part `B_i` and on the leftover set `L`.
//! * [`coloring::baseline`] — the naive Θ(m)-message distributed
//!   (Δ+1)-coloring baseline.
//! * [`coloring::verify`] / [`mis::verify`] — solution checkers used by every
//!   test and experiment.
//!
//! All distributed algorithms are implemented as [`symbreak_congest::NodeAlgorithm`]
//! automata and executed by the metered CONGEST simulator, so their message
//! and round counts are measured, not estimated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod mis;
