//! Regression suite for the sharded-rebuild bug: the round engine used to
//! construct a fresh `ShardedGraph` (ghost tables included) on **every**
//! `SyncSimulator::run` call, so a multi-stage Algorithm 1 run paid
//! ghost-table construction once per level stage. Algorithm 1 now builds
//! the sharded view once per run (`SyncConfig::prebuild_sharded` +
//! `SyncSimulator::with_sharded_graph`) and drives every stage through the
//! one simulator — asserted here via the process-wide
//! `ShardedGraph::constructions` counter.
//!
//! This file must stay a **single `#[test]`**: the counter is global, so
//! any concurrently running test that shards a graph would race the exact
//! count. For the same reason the ambient `CONGEST_SHARDS` variable is
//! cleared up front — with it set, every auxiliary simulation inside
//! Algorithm 1 (danner convergecasts, broadcasts) would legitimately shard
//! its own carrier graph and blur the count.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_classic::coloring::verify;
use symbreak_congest::SHARDS_ENV;
use symbreak_core::{alg1_coloring, Alg1Config, StagePipeline};
use symbreak_graphs::sharded::ShardedGraph;
use symbreak_graphs::{generators, IdAssignment, IdSpace};

#[test]
fn multi_stage_alg1_run_shards_the_graph_exactly_once() {
    std::env::remove_var(SHARDS_ENV);

    // Dense enough that at least one partition level runs before the final
    // stage — a genuinely multi-stage run.
    let mut rng = StdRng::seed_from_u64(5);
    let g = generators::connected_gnp(120, 0.9, &mut rng);
    let ids = IdAssignment::random(&g, IdSpace::CUBIC, &mut rng);

    for pipeline in [StagePipeline::Flat, StagePipeline::Nested] {
        let config = Alg1Config {
            pipeline,
            threads: 1,
            shards: 3,
            ..Alg1Config::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let before = ShardedGraph::constructions();
        let out = alg1_coloring::run(&g, &ids, config, &mut rng).unwrap();
        let built = ShardedGraph::constructions() - before;

        // The run really was multi-stage: at least one level stage plus the
        // final stage went through the simulator.
        let coloring_stages = out
            .costs
            .phases()
            .filter(|(label, _)| label.contains("coloring"))
            .count();
        assert!(
            out.levels_used >= 1 && coloring_stages >= 2,
            "{pipeline:?}: expected a multi-stage run, got {} level(s) / {} stage(s)",
            out.levels_used,
            coloring_stages
        );
        assert!(verify::is_proper_coloring(&g, &out.colors));
        assert_eq!(
            built, 1,
            "{pipeline:?}: {coloring_stages} stages constructed the ShardedGraph {built} times"
        );
    }

    // And the cached sharded view must not change behaviour: a sharded run
    // is bit-identical to an unsharded one, phase by phase.
    sharded_stages_match_unsharded_stages_bit_for_bit();
}

fn sharded_stages_match_unsharded_stages_bit_for_bit() {
    let mut rng = StdRng::seed_from_u64(11);
    let g = generators::connected_gnp(90, 0.5, &mut rng);
    let ids = IdAssignment::random(&g, IdSpace::CUBIC, &mut rng);

    let run = |shards: usize| {
        let mut rng = StdRng::seed_from_u64(12);
        alg1_coloring::run(
            &g,
            &ids,
            Alg1Config {
                threads: 1,
                shards,
                ..Alg1Config::default()
            },
            &mut rng,
        )
        .unwrap()
    };
    let plain = run(0);
    let sharded = run(4);
    assert_eq!(plain.colors, sharded.colors);
    assert_eq!(plain.levels_used, sharded.levels_used);
    let p: Vec<_> = plain.costs.phases().collect();
    let s: Vec<_> = sharded.costs.phases().collect();
    assert_eq!(p, s, "per-phase costs must be shard-count invariant");
}
