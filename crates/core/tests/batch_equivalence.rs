//! Differential suite for the batched multi-execution engine: lane `k` of a
//! batched run must be **bit-identical** to a sequential run with seed
//! `seeds[k]` — same colors/MIS membership, same per-phase message and round
//! counts — across graph families (cycle, clique, power-law), algorithms
//! (1, 2, 3 and the classic Θ(m) baselines), lane counts {1, 3, 8}, stepping
//! threads {1, 4} and graph shards {1, 3}.
//!
//! This also pins down *lane independence*: batching any subset of seeds
//! must not perturb any lane, even when lanes diverge structurally (Alg1
//! lanes break out of the level loop at different levels).

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_classic::{coloring, mis};
use symbreak_congest::{BatchSimulator, CostAccount, KtLevel, SyncConfig};
use symbreak_core::{alg1_coloring, alg2_coloring, alg3_mis, Alg1Config, Alg2Config, Alg3Config};
use symbreak_graphs::{generators, Graph, IdAssignment, IdSpace};

const LANE_COUNTS: [usize; 3] = [1, 3, 8];
const THREAD_COUNTS: [usize; 2] = [1, 4];
const SHARD_COUNTS: [usize; 2] = [1, 3];
const SEED_BASE: u64 = 40;

fn instances() -> Vec<(String, Graph, IdAssignment)> {
    let mut rng = StdRng::seed_from_u64(7);
    let cyc = generators::cycle(40);
    let cyc_ids = IdAssignment::random(&cyc, IdSpace::CUBIC, &mut rng);
    let clique = generators::clique(20);
    let clique_ids = IdAssignment::random(&clique, IdSpace::CUBIC, &mut rng);
    let pl = generators::power_law(80, 3, &mut rng);
    let pl_ids = IdAssignment::random(&pl, IdSpace::CUBIC, &mut rng);
    vec![
        ("cycle40".into(), cyc, cyc_ids),
        ("clique20".into(), clique, clique_ids),
        ("power_law80".into(), pl, pl_ids),
    ]
}

fn seeds(lanes: usize) -> Vec<u64> {
    (0..lanes as u64).map(|k| SEED_BASE + k).collect()
}

/// Phase-by-phase cost comparison — stronger than totals: a phase that
/// shifted work into another phase would be caught.
fn assert_costs_identical(label: &str, batched: &CostAccount, sequential: &CostAccount) {
    let b: Vec<_> = batched.phases().collect();
    let s: Vec<_> = sequential.phases().collect();
    assert_eq!(b.len(), s.len(), "{label}: phase count");
    for ((bl, bc), (sl, sc)) in b.iter().zip(&s) {
        assert_eq!(bl, sl, "{label}: phase label");
        assert_eq!(bc, sc, "{label}: cost of phase {bl}");
    }
}

#[test]
fn alg1_lanes_match_sequential_across_threads_and_shards() {
    for (name, g, ids) in instances() {
        // The sequential oracle: one outcome per seed, computed once (Alg1
        // outputs are thread/shard invariant, so one baseline serves every
        // engine configuration).
        let oracle: Vec<_> = seeds(8)
            .iter()
            .map(|&s| {
                let mut rng = StdRng::seed_from_u64(s);
                alg1_coloring::run(&g, &ids, Alg1Config::default(), &mut rng).unwrap()
            })
            .collect();
        for threads in THREAD_COUNTS {
            for shards in SHARD_COUNTS {
                for lanes in LANE_COUNTS {
                    let config = Alg1Config {
                        threads,
                        shards,
                        ..Alg1Config::default()
                    };
                    let outs = alg1_coloring::run_batch(&g, &ids, config, &seeds(lanes)).unwrap();
                    assert_eq!(outs.len(), lanes);
                    for (k, out) in outs.iter().enumerate() {
                        let label = format!(
                            "alg1 {name} threads={threads} shards={shards} lane {k}/{lanes}"
                        );
                        assert_eq!(out.colors, oracle[k].colors, "{label}");
                        assert_eq!(out.levels_used, oracle[k].levels_used, "{label}");
                        assert_eq!(out.max_degree, oracle[k].max_degree, "{label}");
                        assert_costs_identical(&label, &out.costs, &oracle[k].costs);
                    }
                }
            }
        }
    }
}

#[test]
fn alg2_lanes_match_sequential_across_threads() {
    for (name, g, ids) in instances() {
        let oracle: Vec<_> = seeds(8)
            .iter()
            .map(|&s| {
                let mut rng = StdRng::seed_from_u64(s);
                alg2_coloring::run(&g, &ids, Alg2Config::default(), &mut rng).unwrap()
            })
            .collect();
        for threads in THREAD_COUNTS {
            for lanes in LANE_COUNTS {
                let config = Alg2Config {
                    threads,
                    ..Alg2Config::default()
                };
                let outs = alg2_coloring::run_batch(&g, &ids, config, &seeds(lanes)).unwrap();
                assert_eq!(outs.len(), lanes);
                for (k, out) in outs.iter().enumerate() {
                    let label = format!("alg2 {name} threads={threads} lane {k}/{lanes}");
                    assert_eq!(out.colors, oracle[k].colors, "{label}");
                    assert_eq!(out.palette_size, oracle[k].palette_size, "{label}");
                    assert_costs_identical(&label, &out.costs, &oracle[k].costs);
                }
            }
        }
    }
}

#[test]
fn alg3_lanes_match_sequential_across_threads() {
    for (name, g, ids) in instances() {
        let oracle: Vec<_> = seeds(8)
            .iter()
            .map(|&s| {
                let mut rng = StdRng::seed_from_u64(s);
                alg3_mis::run(&g, &ids, Alg3Config::default(), &mut rng).unwrap()
            })
            .collect();
        for threads in THREAD_COUNTS {
            for lanes in LANE_COUNTS {
                let config = Alg3Config {
                    threads,
                    ..Alg3Config::default()
                };
                let outs = alg3_mis::run_batch(&g, &ids, config, &seeds(lanes)).unwrap();
                assert_eq!(outs.len(), lanes);
                for (k, out) in outs.iter().enumerate() {
                    let label = format!("alg3 {name} threads={threads} lane {k}/{lanes}");
                    assert_eq!(out.in_mis, oracle[k].in_mis, "{label}");
                    assert_eq!(out.sampled, oracle[k].sampled, "{label}");
                    assert_eq!(
                        out.remnant_max_degree, oracle[k].remnant_max_degree,
                        "{label}"
                    );
                    assert_costs_identical(&label, &out.costs, &oracle[k].costs);
                }
            }
        }
    }
}

#[test]
fn classic_baseline_lanes_match_sequential_reports() {
    // The classic Θ(m) baselines compare whole ExecutionReports (rounds,
    // messages, max message width, outputs), across the engine matrix.
    for (name, g, ids) in instances() {
        let luby_oracle: Vec<_> = seeds(8)
            .iter()
            .map(|&s| mis::luby::run(&g, &ids, s, SyncConfig::default()))
            .collect();
        let baseline_oracle: Vec<_> = seeds(8)
            .iter()
            .map(|&s| coloring::baseline::run(&g, &ids, s, SyncConfig::default()))
            .collect();
        let sim = BatchSimulator::new(&g, &ids, KtLevel::KT1);
        for threads in THREAD_COUNTS {
            for shards in SHARD_COUNTS {
                let config = SyncConfig::default()
                    .with_threads(threads)
                    .with_shards(shards);
                for lanes in LANE_COUNTS {
                    let luby = mis::luby::run_batch(&sim, &seeds(lanes), config);
                    let baseline = coloring::baseline::run_batch(&sim, &seeds(lanes), config);
                    assert_eq!(luby.len(), lanes);
                    assert_eq!(baseline.len(), lanes);
                    for k in 0..lanes {
                        let label =
                            format!("{name} threads={threads} shards={shards} lane {k}/{lanes}");
                        assert_eq!(luby[k].0, luby_oracle[k].0, "luby MIS {label}");
                        assert_eq!(luby[k].1, luby_oracle[k].1, "luby report {label}");
                        assert_eq!(
                            baseline[k].0, baseline_oracle[k].0,
                            "baseline colors {label}"
                        );
                        assert_eq!(
                            baseline[k].1, baseline_oracle[k].1,
                            "baseline report {label}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn batching_a_subset_of_lanes_does_not_perturb_any_lane() {
    // Lane independence: the same seed must produce the same outcome no
    // matter which other seeds share the batch.
    let (_, g, ids) = instances().remove(2);
    let full = alg1_coloring::run_batch(&g, &ids, Alg1Config::default(), &seeds(8)).unwrap();
    let pair = alg1_coloring::run_batch(
        &g,
        &ids,
        Alg1Config::default(),
        &[SEED_BASE + 2, SEED_BASE + 6],
    )
    .unwrap();
    assert_eq!(pair[0].colors, full[2].colors);
    assert_eq!(pair[1].colors, full[6].colors);
    assert_costs_identical("subset lane 2", &pair[0].costs, &full[2].costs);
    assert_costs_identical("subset lane 6", &pair[1].costs, &full[6].costs);
}
