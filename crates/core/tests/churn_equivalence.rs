//! Differential churn harness: incremental repair vs. from-scratch truth.
//!
//! Every cell of the grid — graph family × stream seed × engine thread
//! count — opens a [`ChurnSession`], computes an initial colouring and MIS,
//! then drives a seed-reproducible [`ChurnStream`] through the overlay.
//! After **every** batch the suite asserts, against a fresh CSR built from
//! scratch on the mutated edge list:
//!
//! * repaired colourings (Johansson *and* query-stage drivers) are proper
//!   colourings of the current graph, and repaired sets (Luby *and*
//!   parallel-greedy drivers) are maximal independent sets;
//! * the overlay's merged adjacency — neighbour rows, two-hop rows, degrees
//!   and edge count — is **bit-identical** to the fresh build;
//! * a [`QueryPlan`] built from the overlay is entry-for-entry identical to
//!   one built on the fresh CSR, and answers every `targets` query
//!   identically under a non-trivial partition history;
//! * at compaction boundaries, the compacted base CSR equals the fresh
//!   build by full structural equality (offsets, targets **and** edge
//!   numbering), and repairs keep tracking across the boundary.
//!
//! Cells are labelled with their parameters, so a failure pins the exact
//! `(family, seed, threads, step)` to replay. `CONGEST_CHURN_SEED` replays
//! the whole grid under a different randomness universe.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_classic::coloring::verify::is_proper_coloring;
use symbreak_classic::mis::verify::is_mis;
use symbreak_congest::SyncConfig;
use symbreak_core::partition::ChangPartition;
use symbreak_core::query_coloring::QueryPlan;
use symbreak_core::repair::{ChurnSession, ColoringRepairDriver, MisRepairDriver};
use symbreak_graphs::generators::{self, ChurnStream};
use symbreak_graphs::{Graph, GraphBuilder, IdAssignment, IdSpace};
use symbreak_ktrand::SharedRandomness;

/// Env knob: replays the whole grid under a different base seed.
const CHURN_SEED_ENV: &str = "CONGEST_CHURN_SEED";

fn churn_seed_from_env(default: u64) -> u64 {
    match std::env::var(CHURN_SEED_ENV) {
        Ok(raw) => raw.trim().parse().unwrap_or(default),
        Err(_) => default,
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The graph families of the grid (≥ 3, per the acceptance criteria).
fn family_graph(family: &str, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    match family {
        "gnp" => generators::connected_gnp(42, 0.12, &mut rng),
        "power_law" => generators::power_law(48, 3, &mut rng),
        "small_world" => generators::small_world(40, 4, 0.2, &mut rng),
        other => panic!("unknown family {other}"),
    }
}

/// Fresh CSR built from scratch on the overlay's current edge list — the
/// from-scratch truth every per-batch assertion compares against.
fn scratch_build(session: &ChurnSession) -> Graph {
    let mut builder = GraphBuilder::new(session.overlay().num_nodes());
    builder.add_edges(session.overlay().edge_list());
    builder.build()
}

/// Asserts the overlay's merged adjacency is bit-identical to the fresh
/// CSR, and that an overlay-built [`QueryPlan`] matches a fresh-CSR one
/// entry for entry and answer for answer.
fn assert_overlay_matches_fresh(session: &ChurnSession, fresh: &Graph, cell: &str) {
    let overlay = session.overlay();
    let ids = session.ids();
    assert_eq!(overlay.num_edges(), fresh.num_edges(), "{cell} edge count");
    for v in fresh.nodes() {
        assert_eq!(
            overlay.neighbor_vec(v),
            fresh.neighbor_vec(v),
            "{cell} neighbour row of {v}"
        );
        assert_eq!(overlay.degree(v), fresh.degree(v), "{cell} degree of {v}");
        assert_eq!(
            overlay.two_hop_neighbors(v),
            fresh.two_hop_neighbors(v),
            "{cell} two-hop row of {v}"
        );
    }
    // QueryPlan differential: same neighbour table, same query answers under
    // a non-trivial partition history.
    let shared = SharedRandomness::from_seed(0xB1A5 ^ fresh.num_edges() as u64, 4096);
    let delta = fresh.max_degree().max(1);
    let history = vec![
        ChangPartition::compute(&shared, 0, fresh.num_nodes(), delta),
        ChangPartition::compute(&shared, 1, fresh.num_nodes(), delta),
    ];
    let from_overlay = QueryPlan::from_overlay(overlay, ids, history.clone());
    let from_fresh = QueryPlan::new(fresh, ids, history);
    assert_eq!(
        from_overlay.history_len(),
        from_fresh.history_len(),
        "{cell}"
    );
    for v in fresh.nodes() {
        assert_eq!(
            from_overlay.neighbor_entries(v),
            from_fresh.neighbor_entries(v),
            "{cell} plan row of {v}"
        );
        for c in 0..6u64 {
            assert_eq!(
                from_overlay.targets(v, c),
                from_fresh.targets(v, c),
                "{cell} targets({v}, {c})"
            );
        }
    }
}

fn run_cell(family: &str, graph_seed: u64, threads: usize) {
    let cell = format!("family={family} seed={graph_seed:#x} threads={threads}");
    let graph = family_graph(family, graph_seed);
    let mut rng = StdRng::seed_from_u64(graph_seed ^ 0x1D5);
    let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
    let config = SyncConfig::default().with_threads(threads);
    let mut session = ChurnSession::new(graph.clone(), ids, config);

    let (mut colors_johansson, _) = session.recompute_coloring(graph_seed ^ 0xC01);
    let mut colors_query = colors_johansson.clone();
    let (mut mis_luby, _) = session.recompute_mis(graph_seed ^ 0x3A5);
    let mut mis_greedy = mis_luby.clone();

    let mut stream = ChurnStream::new(&graph, graph_seed ^ 0x5EED);
    for step in 0..10u64 {
        let batch = stream.next_batch(2, 2);
        session.apply(&batch);
        let seed = splitmix64(graph_seed ^ step);
        session.repair_coloring(
            &batch,
            &mut colors_johansson,
            ColoringRepairDriver::Johansson,
            seed,
        );
        session.repair_coloring(
            &batch,
            &mut colors_query,
            ColoringRepairDriver::QueryStage,
            seed ^ 1,
        );
        session.repair_mis(&batch, &mut mis_luby, MisRepairDriver::Luby, seed ^ 2);
        session.repair_mis(&batch, &mut mis_greedy, MisRepairDriver::Greedy, seed ^ 3);

        let fresh = scratch_build(&session);
        assert!(
            is_proper_coloring(&fresh, &colors_johansson),
            "{cell} step={step}: Johansson repair broke the colouring"
        );
        assert!(
            is_proper_coloring(&fresh, &colors_query),
            "{cell} step={step}: query-stage repair broke the colouring"
        );
        assert!(
            is_mis(&fresh, &mis_luby),
            "{cell} step={step}: Luby repair broke the MIS"
        );
        assert!(
            is_mis(&fresh, &mis_greedy),
            "{cell} step={step}: greedy repair broke the MIS"
        );
        assert_overlay_matches_fresh(&session, &fresh, &format!("{cell} step={step}"));

        // Compaction boundaries: the rebuilt base CSR must equal the fresh
        // build *structurally* (offsets, targets, edge numbering), and the
        // repairs must keep tracking across the boundary (the loop's next
        // iterations run against the compacted base).
        if step == 4 || step == 7 {
            let generation_before = session.overlay().generation();
            let compacted = session.compact().clone();
            assert_eq!(compacted, fresh, "{cell} step={step}: compaction drifted");
            assert!(
                session.overlay().generation() > generation_before,
                "{cell} step={step}: compaction must bump the generation"
            );
            assert!(!session.overlay().is_dirty(), "{cell} step={step}");
        }
    }
}

#[test]
fn churn_repair_matches_scratch_on_gnp() {
    let base = churn_seed_from_env(0xD1FF_0001);
    for i in 0..3u64 {
        for &threads in &[1usize, 4] {
            run_cell("gnp", splitmix64(base ^ i), threads);
        }
    }
}

#[test]
fn churn_repair_matches_scratch_on_power_law() {
    let base = churn_seed_from_env(0xD1FF_0002);
    for i in 0..3u64 {
        for &threads in &[1usize, 4] {
            run_cell("power_law", splitmix64(base ^ i), threads);
        }
    }
}

#[test]
fn churn_repair_matches_scratch_on_small_world() {
    let base = churn_seed_from_env(0xD1FF_0003);
    for i in 0..3u64 {
        for &threads in &[1usize, 4] {
            run_cell("small_world", splitmix64(base ^ i), threads);
        }
    }
}

#[test]
fn churn_repair_replays_bit_exactly_from_its_cell_seed() {
    // The per-cell replay contract: running one cell twice from the same
    // seed produces identical outputs. (The repaired vectors are a function
    // of the cell parameters only — asserted here by running the full cell
    // body twice and comparing the final colourings/sets.)
    fn final_outputs(seed: u64) -> (Vec<Option<u64>>, Vec<bool>) {
        let graph = family_graph("gnp", seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1D5);
        let ids = IdAssignment::random(&graph, IdSpace::CUBIC, &mut rng);
        let mut session = ChurnSession::new(graph.clone(), ids, SyncConfig::default());
        let (mut colors, _) = session.recompute_coloring(seed ^ 0xC01);
        let (mut in_set, _) = session.recompute_mis(seed ^ 0x3A5);
        let mut stream = ChurnStream::new(&graph, seed ^ 0x5EED);
        for step in 0..6u64 {
            let batch = stream.next_batch(2, 2);
            session.apply(&batch);
            let s = splitmix64(seed ^ step);
            session.repair_coloring(&batch, &mut colors, ColoringRepairDriver::Johansson, s);
            session.repair_mis(&batch, &mut in_set, MisRepairDriver::Luby, s ^ 2);
        }
        (colors, in_set)
    }
    let seed = churn_seed_from_env(0x5E_91A7);
    assert_eq!(final_outputs(seed), final_outputs(seed));
}
