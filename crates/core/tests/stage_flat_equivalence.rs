//! Differential suite for the flat stage pipeline: the arena/bitset runtime
//! (`StagePipeline::Flat`) must produce **bit-identical** colours/MIS
//! membership, per-phase message counts and round counts to the retained
//! nested-`Vec` runtime (`StagePipeline::Nested`) — across Algorithms 1/2/3,
//! multiple seeds and graph families, and at 1 and 4 stepping threads
//! (`Alg*Config::threads`, the in-process equivalent of `CONGEST_THREADS`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_congest::CostAccount;
use symbreak_core::{
    alg1_coloring, alg2_coloring, alg3_mis, Alg1Config, Alg2Config, Alg3Config, StagePipeline,
};
use symbreak_graphs::{generators, Graph, IdAssignment, IdSpace};

const THREAD_COUNTS: [usize; 2] = [1, 4];

fn instances(seed: u64) -> Vec<(String, Graph, IdAssignment)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let gnp = generators::connected_gnp(90, 0.3, &mut rng);
    let gnp_ids = IdAssignment::random(&gnp, IdSpace::CUBIC, &mut rng);
    let dense = generators::connected_gnp(60, 0.8, &mut rng);
    let dense_ids = IdAssignment::random(&dense, IdSpace::CUBIC, &mut rng);
    let pl = generators::power_law(120, 3, &mut rng);
    let pl_ids = IdAssignment::random(&pl, IdSpace::CUBIC, &mut rng);
    vec![
        (format!("gnp90@{seed}"), gnp, gnp_ids),
        (format!("dense60@{seed}"), dense, dense_ids),
        (format!("power_law120@{seed}"), pl, pl_ids),
    ]
}

/// Phase-by-phase comparison: labels, simulated/charged messages and rounds
/// must all agree (this is stronger than comparing totals — a phase that
/// shifted work to another phase would be caught).
fn assert_costs_identical(label: &str, flat: &CostAccount, nested: &CostAccount) {
    let f: Vec<_> = flat.phases().collect();
    let n: Vec<_> = nested.phases().collect();
    assert_eq!(
        f.len(),
        n.len(),
        "{label}: phase count {} vs {}",
        f.len(),
        n.len()
    );
    for ((fl, fc), (nl, nc)) in f.iter().zip(&n) {
        assert_eq!(fl, nl, "{label}: phase label");
        assert_eq!(fc, nc, "{label}: cost of phase {fl}");
    }
}

#[test]
fn alg1_flat_and_nested_pipelines_are_bit_identical() {
    for seed in [3u64, 17] {
        for (name, g, ids) in instances(seed) {
            for threads in THREAD_COUNTS {
                let base = Alg1Config {
                    threads,
                    ..Alg1Config::default()
                };
                let mut rng = StdRng::seed_from_u64(seed + 1000);
                let flat = alg1_coloring::run(
                    &g,
                    &ids,
                    Alg1Config {
                        pipeline: StagePipeline::Flat,
                        ..base
                    },
                    &mut rng,
                )
                .unwrap();
                let mut rng = StdRng::seed_from_u64(seed + 1000);
                let nested = alg1_coloring::run(
                    &g,
                    &ids,
                    Alg1Config {
                        pipeline: StagePipeline::Nested,
                        ..base
                    },
                    &mut rng,
                )
                .unwrap();
                let label = format!("alg1 {name} threads={threads}");
                assert_eq!(flat.colors, nested.colors, "{label}");
                assert_eq!(flat.levels_used, nested.levels_used, "{label}");
                assert_eq!(flat.max_degree, nested.max_degree, "{label}");
                assert_costs_identical(&label, &flat.costs, &nested.costs);
            }
        }
    }
}

#[test]
fn alg1_reports_are_thread_count_invariant_per_pipeline() {
    // `threads` must never change outputs — for either pipeline.
    let (name, g, ids) = instances(5).remove(0);
    for pipeline in [StagePipeline::Flat, StagePipeline::Nested] {
        let mut rng = StdRng::seed_from_u64(99);
        let one = alg1_coloring::run(
            &g,
            &ids,
            Alg1Config {
                pipeline,
                threads: 1,
                ..Alg1Config::default()
            },
            &mut rng,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let four = alg1_coloring::run(
            &g,
            &ids,
            Alg1Config {
                pipeline,
                threads: 4,
                ..Alg1Config::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(one.colors, four.colors, "{name} {pipeline:?}");
        assert_costs_identical(&format!("{name} {pipeline:?}"), &one.costs, &four.costs);
    }
}

#[test]
fn alg2_flat_and_nested_pipelines_are_bit_identical() {
    for seed in [7u64, 23] {
        for (name, g, ids) in instances(seed) {
            for threads in THREAD_COUNTS {
                let mut rng = StdRng::seed_from_u64(seed + 2000);
                let flat = alg2_coloring::run(
                    &g,
                    &ids,
                    Alg2Config {
                        pipeline: StagePipeline::Flat,
                        threads,
                        ..Alg2Config::default()
                    },
                    &mut rng,
                )
                .unwrap();
                let mut rng = StdRng::seed_from_u64(seed + 2000);
                let nested = alg2_coloring::run(
                    &g,
                    &ids,
                    Alg2Config {
                        pipeline: StagePipeline::Nested,
                        threads,
                        ..Alg2Config::default()
                    },
                    &mut rng,
                )
                .unwrap();
                let label = format!("alg2 {name} threads={threads}");
                assert_eq!(flat.colors, nested.colors, "{label}");
                assert_eq!(flat.palette_size, nested.palette_size, "{label}");
                assert_costs_identical(&label, &flat.costs, &nested.costs);
            }
        }
    }
}

#[test]
fn alg2_run_phases_variants_agree() {
    use symbreak_ktrand::SharedRandomness;
    let mut rng = StdRng::seed_from_u64(31);
    let g = generators::connected_gnp(70, 0.4, &mut rng);
    let ids = IdAssignment::random(&g, IdSpace::CUBIC, &mut rng);
    let shared = SharedRandomness::from_seed(0xfeed, 1 << 14);
    let palette_size = g.max_degree() as u64 * 3 / 2 + 1;
    let (flat_colors, flat_report) = alg2_coloring::run_phases(&g, &ids, &shared, palette_size, 64);
    let (nested_colors, nested_report) =
        alg2_coloring::run_phases_nested(&g, &ids, &shared, palette_size, 64);
    assert_eq!(flat_colors, nested_colors);
    assert_eq!(flat_report.messages, nested_report.messages);
    assert_eq!(flat_report.rounds, nested_report.rounds);
}

#[test]
fn alg3_flat_and_nested_pipelines_are_bit_identical() {
    for seed in [11u64, 29] {
        for (name, g, ids) in instances(seed) {
            for threads in THREAD_COUNTS {
                let mut rng = StdRng::seed_from_u64(seed + 3000);
                let flat = alg3_mis::run(
                    &g,
                    &ids,
                    Alg3Config {
                        pipeline: StagePipeline::Flat,
                        threads,
                        ..Alg3Config::default()
                    },
                    &mut rng,
                )
                .unwrap();
                let mut rng = StdRng::seed_from_u64(seed + 3000);
                let nested = alg3_mis::run(
                    &g,
                    &ids,
                    Alg3Config {
                        pipeline: StagePipeline::Nested,
                        threads,
                        ..Alg3Config::default()
                    },
                    &mut rng,
                )
                .unwrap();
                let label = format!("alg3 {name} threads={threads}");
                assert_eq!(flat.in_mis, nested.in_mis, "{label}");
                assert_eq!(flat.sampled, nested.sampled, "{label}");
                assert_eq!(
                    flat.remnant_max_degree, nested.remnant_max_degree,
                    "{label}"
                );
                assert_costs_identical(&label, &flat.costs, &nested.costs);
            }
        }
    }
}

#[test]
fn classic_coloring_flat_and_nested_runtimes_are_bit_identical() {
    use symbreak_classic::coloring::{baseline, verify};
    use symbreak_congest::SyncConfig;
    for seed in [2u64, 13] {
        for (name, g, ids) in instances(seed) {
            for threads in THREAD_COUNTS {
                let config = SyncConfig::default().with_threads(threads);
                let (flat_colors, flat_report) = baseline::run(&g, &ids, seed, config);
                let (nested_colors, nested_report) = baseline::run_nested(&g, &ids, seed, config);
                let label = format!("classic {name} threads={threads}");
                assert_eq!(flat_colors, nested_colors, "{label}");
                assert_eq!(flat_report.messages, nested_report.messages, "{label}");
                assert_eq!(flat_report.rounds, nested_report.rounds, "{label}");
                assert!(verify::is_proper_coloring(&g, &flat_colors), "{label}");
            }
        }
    }
}
