//! Algorithm 2: (1+ε)Δ-coloring in KT-1 CONGEST with Õ(n/ε²) messages
//! (Theorem 3.8).
//!
//! Every phase `i`, an uncoloured node picks the candidate colour
//! `c = h_i(ID_v)` where `h_i` is a Θ(log n)-wise independent hash function
//! derived from the shared random bits. Because every neighbour's ID is
//! known (KT-1) and the hash functions are shared, the node can compute
//! *locally* which neighbours could possibly hold or propose `c` — namely
//! those `u` with `h_j(ID_u) = c` for some phase `j ≤ i` — and it checks the
//! colour with exactly those `O(log² n / ε)` neighbours (Lemma 3.7) instead
//! of all `deg(v)` of them. Ties within a phase are broken towards the
//! smaller ID.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symbreak_congest::async_sim::{AsyncConfig, AsyncReport, AsyncSimulator};
use symbreak_congest::{
    run_synchronized, BatchSimulator, CostAccount, ExecutionReport, FaultPlan, KtLevel, Message,
    NodeAlgorithm, RoundContext, SyncConfig, SyncSimulator,
};
use symbreak_danner::{ops, setup};
use symbreak_graphs::{properties, Graph, IdAssignment, NodeId};
use symbreak_ktrand::{tail, KWiseHash, SharedRandomness};

use crate::error::CoreError;
use crate::stage_flat::StagePipeline;

const TAG_QUERY: u16 = 0x60;
const TAG_RESPONSE: u16 = 0x61;

/// Configuration of Algorithm 2.
#[derive(Debug, Clone, Copy)]
pub struct Alg2Config {
    /// The slack ε > 0 of the (1+ε)Δ palette.
    pub epsilon: f64,
    /// Danner parameter δ used for the shared-randomness setup (the paper
    /// uses δ = 0, i.e. an Õ(n)-edge danner).
    pub delta: f64,
    /// Safety factor on the `O(log n / ε)` phase budget.
    pub phase_budget_factor: f64,
    /// Which phase runtime to use (outputs are bit-identical either way;
    /// `Nested` is the retained per-node-allocation baseline).
    pub pipeline: StagePipeline,
    /// Worker threads for the simulated phases (`0` = automatic).
    pub threads: usize,
}

impl Default for Alg2Config {
    fn default() -> Self {
        Alg2Config {
            epsilon: 0.5,
            delta: 0.0,
            phase_budget_factor: 12.0,
            pipeline: StagePipeline::Flat,
            threads: 0,
        }
    }
}

/// Outcome of Algorithm 2.
#[derive(Debug, Clone)]
pub struct Alg2Outcome {
    /// Per-node colours from `{0, …, palette_size − 1}`.
    pub colors: Vec<Option<u64>>,
    /// Message/round costs phase by phase.
    pub costs: CostAccount,
    /// The palette size `⌈(1+ε)Δ⌉` (at least `Δ + 1`).
    pub palette_size: u64,
    /// The global maximum degree Δ.
    pub max_degree: u64,
}

/// The retained nested-baseline automaton: every node clones the shared
/// randomness, collects its own `Vec` of neighbour IDs and derives every
/// phase hash privately (n copies of identical `O(log n)`-coefficient
/// derivations).
struct Alg2Node {
    own_id: u64,
    color: Option<u64>,
    neighbor_ids: Vec<(NodeId, u64)>,
    shared: SharedRandomness,
    palette_size: u64,
    independence: usize,
    hashes: Vec<KWiseHash>,
    phase: usize,
    max_phases: usize,
    candidate: Option<u64>,
}

impl Alg2Node {
    fn hash_for_phase(&mut self, j: usize) -> &KWiseHash {
        while self.hashes.len() <= j {
            let h = self.shared.indexed_hash_fn(
                "alg2.phase",
                self.hashes.len(),
                self.independence,
                self.palette_size,
            );
            self.hashes.push(h);
        }
        &self.hashes[j]
    }

    fn respond(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message], phase: usize) {
        // Make sure the current phase hash exists before borrowing.
        let _ = self.hash_for_phase(phase);
        for msg in inbox {
            if msg.tag() != TAG_QUERY {
                continue;
            }
            let c = msg.values()[0];
            let sender_id = msg.ids()[0];
            let Some(sender) = ctx.knowledge().known_node_with_id(sender_id) else {
                continue;
            };
            let proposes_c_with_priority = self.color.is_none()
                && self.hashes[phase].eval(self.own_id) == c
                && self.own_id < sender_id;
            let taken = u64::from(self.color == Some(c) || proposes_c_with_priority);
            ctx.send(
                sender,
                Message::tagged(TAG_RESPONSE)
                    .with_value(c)
                    .with_value(taken),
            );
        }
    }
}

impl NodeAlgorithm for Alg2Node {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        let phase = (ctx.round() / 3) as usize;
        match ctx.round() % 3 {
            0 => {
                if self.color.is_none() && self.phase < self.max_phases {
                    let own_id = self.own_id;
                    let c = self.hash_for_phase(phase).eval(own_id);
                    self.candidate = Some(c);
                    // Query exactly the neighbours that could hold or propose c.
                    let mut targets = Vec::new();
                    for &(u, uid) in &self.neighbor_ids {
                        let could = (0..=phase).any(|j| self.hashes[j].eval(uid) == c);
                        if could {
                            targets.push(u);
                        }
                    }
                    let query = Message::tagged(TAG_QUERY)
                        .with_value(c)
                        .with_id(self.own_id);
                    for u in targets {
                        ctx.send(u, query);
                    }
                }
            }
            1 => {
                self.respond(ctx, inbox, phase);
            }
            _ => {
                if let Some(c) = self.candidate.take() {
                    let blocked = inbox.iter().any(|m| {
                        m.tag() == TAG_RESPONSE && m.values()[0] == c && m.values()[1] == 1
                    });
                    if !blocked {
                        self.color = Some(c);
                    }
                    self.phase += 1;
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.color.is_some() || self.phase >= self.max_phases
    }

    fn output(&self) -> Option<u64> {
        self.color
    }
}

/// The flat automaton: the phase hashes (identical at every node — they are
/// pure functions of the shared randomness) are derived once by the caller
/// and borrowed, and each node borrows its row of one flat neighbour-ID
/// arena. Message behaviour is bit-identical to [`Alg2Node`].
struct FlatAlg2Node<'a> {
    own_id: u64,
    color: Option<u64>,
    neighbor_ids: &'a [(NodeId, u64)],
    hashes: &'a [KWiseHash],
    phase: usize,
    max_phases: usize,
    candidate: Option<u64>,
}

impl FlatAlg2Node<'_> {
    fn respond(&self, ctx: &mut RoundContext<'_>, inbox: &[Message], phase: usize) {
        for msg in inbox {
            if msg.tag() != TAG_QUERY {
                continue;
            }
            let c = msg.values()[0];
            let sender_id = msg.ids()[0];
            let Some(sender) = ctx.knowledge().known_node_with_id(sender_id) else {
                continue;
            };
            // `phase < max_phases` whenever queries are in flight: a query
            // in round 3p+1 was sent by a node whose phase counter equals p
            // and passed the `phase < max_phases` send gate.
            let proposes_c_with_priority = self.color.is_none()
                && self.hashes[phase].eval(self.own_id) == c
                && self.own_id < sender_id;
            let taken = u64::from(self.color == Some(c) || proposes_c_with_priority);
            ctx.send(
                sender,
                Message::tagged(TAG_RESPONSE)
                    .with_value(c)
                    .with_value(taken),
            );
        }
    }
}

impl NodeAlgorithm for FlatAlg2Node<'_> {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        let phase = (ctx.round() / 3) as usize;
        match ctx.round() % 3 {
            0 => {
                if self.color.is_none() && self.phase < self.max_phases {
                    let c = self.hashes[phase].eval(self.own_id);
                    self.candidate = Some(c);
                    let query = Message::tagged(TAG_QUERY)
                        .with_value(c)
                        .with_id(self.own_id);
                    for &(u, uid) in self.neighbor_ids {
                        let could = self.hashes[..=phase].iter().any(|h| h.eval(uid) == c);
                        if could {
                            ctx.send(u, query);
                        }
                    }
                }
            }
            1 => {
                self.respond(ctx, inbox, phase);
            }
            _ => {
                if let Some(c) = self.candidate.take() {
                    let blocked = inbox.iter().any(|m| {
                        m.tag() == TAG_RESPONSE && m.values()[0] == c && m.values()[1] == 1
                    });
                    if !blocked {
                        self.color = Some(c);
                    }
                    self.phase += 1;
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.color.is_some() || self.phase >= self.max_phases
    }

    fn output(&self) -> Option<u64> {
        self.color
    }
}

/// Runs the Algorithm 2 colouring phases given already-distributed shared
/// randomness and a known Δ. Exposed separately so ablations can reuse it.
/// Uses the flat runtime; see [`run_phases_nested`] for the retained
/// baseline (bit-identical outputs).
pub fn run_phases(
    graph: &Graph,
    ids: &IdAssignment,
    shared: &SharedRandomness,
    palette_size: u64,
    max_phases: usize,
) -> (Vec<Option<u64>>, ExecutionReport) {
    run_phases_config(
        graph,
        ids,
        shared,
        palette_size,
        max_phases,
        SyncConfig::default(),
        StagePipeline::Flat,
    )
}

/// [`run_phases`] on the retained nested baseline.
pub fn run_phases_nested(
    graph: &Graph,
    ids: &IdAssignment,
    shared: &SharedRandomness,
    palette_size: u64,
    max_phases: usize,
) -> (Vec<Option<u64>>, ExecutionReport) {
    run_phases_config(
        graph,
        ids,
        shared,
        palette_size,
        max_phases,
        SyncConfig::default(),
        StagePipeline::Nested,
    )
}

fn run_phases_config(
    graph: &Graph,
    ids: &IdAssignment,
    shared: &SharedRandomness,
    palette_size: u64,
    max_phases: usize,
    config: SyncConfig,
    pipeline: StagePipeline,
) -> (Vec<Option<u64>>, ExecutionReport) {
    let n = graph.num_nodes();
    let independence = tail::log_n_independence(n);
    let sim = SyncSimulator::new(graph, ids, KtLevel::KT1);
    match pipeline {
        StagePipeline::Flat => {
            // Derive every phase hash once (on a throwaway clone so the
            // caller's bit-consumption accounting matches the nested path,
            // where each node derives from its own clone); the flat
            // neighbour-ID table is a history-free `QueryPlan`, whose CSR
            // rows are exactly the per-node `(address, ID)` slices needed.
            let scratch = shared.clone();
            let hashes: Vec<KWiseHash> = (0..max_phases)
                .map(|j| scratch.indexed_hash_fn("alg2.phase", j, independence, palette_size))
                .collect();
            let neighbor_table = crate::query_coloring::QueryPlan::new(graph, ids, Vec::new());
            let mut report = sim.run(config, |init| FlatAlg2Node {
                own_id: init.knowledge.own_id(),
                color: None,
                neighbor_ids: neighbor_table.neighbor_row(init.node),
                hashes: &hashes,
                phase: 0,
                max_phases,
                candidate: None,
            });
            assert!(report.completed, "Algorithm 2 phases did not quiesce");
            let colors = std::mem::take(&mut report.outputs);
            (colors, report)
        }
        StagePipeline::Nested => {
            let mut report = sim.run(config, |init| Alg2Node {
                own_id: init.knowledge.own_id(),
                color: None,
                neighbor_ids: init.knowledge.neighbor_ids(),
                shared: shared.clone(),
                palette_size,
                independence,
                hashes: Vec::new(),
                phase: 0,
                max_phases,
                candidate: None,
            });
            assert!(report.completed, "Algorithm 2 phases did not quiesce");
            let colors = std::mem::take(&mut report.outputs);
            (colors, report)
        }
    }
}

/// Runs the Algorithm 2 colouring phases on the **asynchronous** executor
/// under a fault plan, via the α-synchronizer lockstep wrapper
/// ([`symbreak_congest::Synchronized`]).
///
/// The synchronous (nested-pipeline) run executes first to fix the
/// lockstep round budget and as ground truth; the returned triple is
/// `(synchronous colours, synchronous report, asynchronous report)`. All
/// per-node randomness comes from `shared`, so the asynchronous replay
/// consumes identical hash schedules: on benign, delay-only and
/// duplicate/reorder fault schedules its outputs equal the synchronous
/// colours, while loss or crashes stall the run (`completed == false`)
/// instead of emitting a conflicting colouring.
#[allow(clippy::too_many_arguments)]
pub fn run_phases_async<R: Rng + ?Sized>(
    graph: &Graph,
    ids: &IdAssignment,
    shared: &SharedRandomness,
    palette_size: u64,
    max_phases: usize,
    async_config: AsyncConfig,
    fault_plan: &FaultPlan,
    rng: &mut R,
) -> (Vec<Option<u64>>, ExecutionReport, AsyncReport) {
    let (colors, sync_report) = run_phases_nested(graph, ids, shared, palette_size, max_phases);
    let n = graph.num_nodes();
    let independence = tail::log_n_independence(n);
    let sim = AsyncSimulator::new(graph, ids, KtLevel::KT1);
    let report = run_synchronized(
        &sim,
        async_config,
        fault_plan,
        sync_report.rounds,
        rng,
        |init| Alg2Node {
            own_id: init.knowledge.own_id(),
            color: None,
            neighbor_ids: init.knowledge.neighbor_ids(),
            shared: shared.clone(),
            palette_size,
            independence,
            hashes: Vec::new(),
            phase: 0,
            max_phases,
            candidate: None,
        },
    );
    (colors, sync_report, report)
}

/// [`run_phases`], batched: lane `k` runs the colour-trial phases with
/// `shared[k]` over the [`BatchSimulator`]'s shared CSR, bit-identical to
/// [`run_phases`] with the same randomness. The flat automaton has no
/// per-node RNG — all per-lane variation enters through the lane's shared
/// randomness (and hence its derived phase hashes); the history-free
/// neighbour table is lane-invariant and built once.
///
/// # Panics
///
/// Panics if `shared` is empty, the simulator is not KT-1, or any lane fails
/// to quiesce within the round limit.
pub fn run_phases_batch_on(
    sim: &BatchSimulator<'_>,
    shared: &[SharedRandomness],
    palette_size: u64,
    max_phases: usize,
    config: SyncConfig,
) -> Vec<(Vec<Option<u64>>, ExecutionReport)> {
    assert!(!shared.is_empty(), "batched phases need at least one lane");
    assert_eq!(sim.level(), KtLevel::KT1, "Algorithm 2 runs in KT-1");
    let n = sim.graph().num_nodes();
    let independence = tail::log_n_independence(n);
    let lane_hashes: Vec<Vec<KWiseHash>> = shared
        .iter()
        .map(|s| {
            let scratch = s.clone();
            (0..max_phases)
                .map(|j| scratch.indexed_hash_fn("alg2.phase", j, independence, palette_size))
                .collect()
        })
        .collect();
    let neighbor_table = crate::query_coloring::QueryPlan::new(sim.graph(), sim.ids(), Vec::new());
    let reports = sim.run_batch(config, shared.len(), |k, init| FlatAlg2Node {
        own_id: init.knowledge.own_id(),
        color: None,
        neighbor_ids: neighbor_table.neighbor_row(init.node),
        hashes: &lane_hashes[k],
        phase: 0,
        max_phases,
        candidate: None,
    });
    reports
        .into_iter()
        .map(|mut report| {
            assert!(report.completed, "Algorithm 2 phases did not quiesce");
            let colors = std::mem::take(&mut report.outputs);
            (colors, report)
        })
        .collect()
}

/// Runs Algorithm 2 once per seed, advancing the colour-trial phases of all
/// lanes in lockstep over one shared CSR. Lane `k` is **bit-identical**
/// (colours, per-phase cost account) to [`run`] with
/// `StdRng::seed_from_u64(seeds[k])` — the seed-independent setup (danner,
/// leader, broadcast tree, Δ casts) is computed once and shared by every
/// lane, the per-lane seed words travel in one batched broadcast, and the
/// single phases stage is batched.
///
/// # Errors
///
/// Same conditions as [`run`]; the first failing lane fails the whole batch.
pub fn run_batch(
    graph: &Graph,
    ids: &IdAssignment,
    config: Alg2Config,
    seeds: &[u64],
) -> Result<Vec<Alg2Outcome>, CoreError> {
    if config.epsilon <= 0.0 || config.epsilon.is_nan() {
        return Err(CoreError::InvalidParameter {
            name: "epsilon",
            message: format!("epsilon = {} must be positive", config.epsilon),
        });
    }
    if seeds.is_empty() {
        return Ok(Vec::new());
    }
    let n = graph.num_nodes();
    if n == 0 {
        return Ok(seeds
            .iter()
            .map(|_| Alg2Outcome {
                colors: Vec::new(),
                costs: CostAccount::new(),
                palette_size: 1,
                max_degree: 0,
            })
            .collect());
    }
    if !properties::is_connected(graph) {
        return Err(CoreError::Disconnected);
    }
    let log_n = (n.max(2) as f64).log2();
    let seed_bits = ((log_n.powi(3) / config.epsilon).ceil() as usize).max(64);
    let degrees: Vec<u64> = graph.nodes().map(|v| graph.degree(v) as u64).collect();

    // Shared setup plan: the danner, the leader and the broadcast tree are
    // pure functions of `(graph, ids, δ)` — one plan serves every lane. Each
    // lane draws its own seed words (exactly the sequential draw) and one
    // lockstep broadcast distributes all lanes' words over the danner; the
    // Δ convergecast/broadcast are lane-invariant and run once, with their
    // reports charged to every lane.
    let plan = setup::SetupPlan::new(graph, ids, config.delta)?;
    let carrier = plan.carrier();
    let tree = plan.tree();
    let lane_words: Vec<Vec<u64>> = seeds
        .iter()
        .map(|&seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            plan.draw_words(seed_bits, &mut rng)
        })
        .collect();
    let word_reports = ops::broadcast_words_batch(carrier, ids, tree, &lane_words);
    let (max_degree, delta_up) = ops::convergecast_max(carrier, ids, tree, &degrees);
    let delta_down = ops::broadcast_words(carrier, ids, tree, &[max_degree]);

    let mut shareds: Vec<SharedRandomness> = Vec::with_capacity(seeds.len());
    let mut costs: Vec<CostAccount> = Vec::with_capacity(seeds.len());
    for (words, word_report) in lane_words.iter().zip(&word_reports) {
        let mut setup_costs = plan.base_costs();
        setup_costs.charge_report("seed broadcast over danner (simulated)", word_report);
        let mut lane_costs = CostAccount::new();
        lane_costs.absorb("setup", &setup_costs);
        lane_costs.charge_report("Δ convergecast", &delta_up);
        lane_costs.charge_report("Δ broadcast", &delta_down);
        shareds.push(SharedRandomness::from_seed(words[0], seed_bits));
        costs.push(lane_costs);
    }

    let palette_size = (((1.0 + config.epsilon) * max_degree as f64).ceil() as u64)
        .max(max_degree + 1)
        .max(1);
    let max_phases =
        ((config.phase_budget_factor * log_n / config.epsilon.min(1.0)).ceil() as usize).max(8);

    let sim = BatchSimulator::new(graph, ids, KtLevel::KT1);
    let results = run_phases_batch_on(
        &sim,
        &shareds,
        palette_size,
        max_phases,
        SyncConfig::default().with_threads(config.threads),
    );

    results
        .into_iter()
        .zip(costs)
        .map(|((colors, report), mut lane_costs)| {
            lane_costs.charge_report("colour trial phases", &report);
            if colors.iter().any(Option::is_none) {
                return Err(CoreError::DidNotConverge {
                    stage: "(1+ε)Δ colour trials",
                });
            }
            Ok(Alg2Outcome {
                colors,
                costs: lane_costs,
                palette_size,
                max_degree,
            })
        })
        .collect()
}

/// Runs Algorithm 2 end to end on a connected graph.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `ε ≤ 0`,
/// [`CoreError::Disconnected`] for disconnected inputs, and
/// [`CoreError::DidNotConverge`] if some node stays uncoloured after the
/// phase budget.
pub fn run<R: Rng + ?Sized>(
    graph: &Graph,
    ids: &IdAssignment,
    config: Alg2Config,
    rng: &mut R,
) -> Result<Alg2Outcome, CoreError> {
    if config.epsilon <= 0.0 || config.epsilon.is_nan() {
        return Err(CoreError::InvalidParameter {
            name: "epsilon",
            message: format!("epsilon = {} must be positive", config.epsilon),
        });
    }
    let n = graph.num_nodes();
    if n == 0 {
        return Ok(Alg2Outcome {
            colors: Vec::new(),
            costs: CostAccount::new(),
            palette_size: 1,
            max_degree: 0,
        });
    }
    if !properties::is_connected(graph) {
        return Err(CoreError::Disconnected);
    }
    let log_n = (n.max(2) as f64).log2();
    let mut costs = CostAccount::new();

    // Shared randomness: (C/ε)·log³ n bits over an Õ(n)-edge danner.
    let seed_bits = ((log_n.powi(3) / config.epsilon).ceil() as usize).max(64);
    let setup_outcome = setup::try_shared_randomness(graph, ids, config.delta, seed_bits, rng)?;
    costs.absorb("setup", &setup_outcome.costs);
    let carrier = setup_outcome.danner.subgraph().clone();
    let tree = setup_outcome.tree;
    let shared = setup_outcome.shared;

    // Learn and redistribute Δ (real messages over the danner tree).
    let degrees: Vec<u64> = graph.nodes().map(|v| graph.degree(v) as u64).collect();
    let (max_degree, report) = ops::convergecast_max(&carrier, ids, &tree, &degrees);
    costs.charge_report("Δ convergecast", &report);
    let report = ops::broadcast_words(&carrier, ids, &tree, &[max_degree]);
    costs.charge_report("Δ broadcast", &report);

    let palette_size = (((1.0 + config.epsilon) * max_degree as f64).ceil() as u64)
        .max(max_degree + 1)
        .max(1);
    let max_phases =
        ((config.phase_budget_factor * log_n / config.epsilon.min(1.0)).ceil() as usize).max(8);

    let (colors, report) = run_phases_config(
        graph,
        ids,
        &shared,
        palette_size,
        max_phases,
        SyncConfig::default().with_threads(config.threads),
        config.pipeline,
    );
    costs.charge_report("colour trial phases", &report);

    if colors.iter().any(Option::is_none) {
        return Err(CoreError::DidNotConverge {
            stage: "(1+ε)Δ colour trials",
        });
    }
    Ok(Alg2Outcome {
        colors,
        costs,
        palette_size,
        max_degree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symbreak_classic::coloring::verify;
    use symbreak_graphs::{generators, IdSpace};

    fn instance(n: usize, p: f64, seed: u64) -> (Graph, IdAssignment) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::connected_gnp(n, p, &mut rng);
        let ids = IdAssignment::random(&g, IdSpace::CUBIC, &mut rng);
        (g, ids)
    }

    #[test]
    fn colors_properly_within_palette() {
        for (n, p, eps, seed) in [
            (50usize, 0.3, 0.5f64, 1u64),
            (80, 0.6, 1.0, 2),
            (60, 0.4, 0.25, 3),
        ] {
            let (g, ids) = instance(n, p, seed);
            let mut rng = StdRng::seed_from_u64(seed + 50);
            let config = Alg2Config {
                epsilon: eps,
                ..Alg2Config::default()
            };
            let out = run(&g, &ids, config, &mut rng).unwrap();
            assert!(
                verify::is_proper_coloring(&g, &out.colors),
                "n={n} eps={eps}"
            );
            assert!(verify::uses_colors_below(&out.colors, out.palette_size));
        }
    }

    #[test]
    fn message_cost_is_near_linear_in_n_on_dense_graphs() {
        let (g, ids) = instance(100, 0.8, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let out = run(&g, &ids, Alg2Config::default(), &mut rng).unwrap();
        assert!(verify::is_proper_coloring(&g, &out.colors));
        // The colour-trial phases themselves (excluding the charged danner
        // setup) should cost far less than m on a dense graph.
        let trial_messages: u64 = out
            .costs
            .phases()
            .filter(|(label, _)| label.contains("phases"))
            .map(|(_, c)| c.simulated_messages)
            .sum();
        assert!(
            trial_messages < g.num_edges() as u64,
            "trial messages {trial_messages} should be below m = {}",
            g.num_edges()
        );
    }

    #[test]
    fn batched_lanes_match_sequential_runs() {
        let (g, ids) = instance(70, 0.5, 17);
        let seeds = [31u64, 32, 33];
        let batch = run_batch(&g, &ids, Alg2Config::default(), &seeds).unwrap();
        assert_eq!(batch.len(), seeds.len());
        for (lane, &seed) in batch.iter().zip(&seeds) {
            let mut rng = StdRng::seed_from_u64(seed);
            let solo = run(&g, &ids, Alg2Config::default(), &mut rng).unwrap();
            assert_eq!(lane.colors, solo.colors, "seed {seed}");
            assert_eq!(lane.palette_size, solo.palette_size, "seed {seed}");
            assert_eq!(lane.costs, solo.costs, "seed {seed}");
        }
    }

    #[test]
    fn rejects_bad_epsilon_and_disconnected_graphs() {
        let (g, ids) = instance(20, 0.5, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let config = Alg2Config {
            epsilon: 0.0,
            ..Alg2Config::default()
        };
        assert!(matches!(
            run(&g, &ids, config, &mut rng).unwrap_err(),
            CoreError::InvalidParameter {
                name: "epsilon",
                ..
            }
        ));
        let g2 = generators::disjoint_union(&[generators::clique(3), generators::clique(3)]);
        let ids2 = IdAssignment::identity(6);
        assert_eq!(
            run(&g2, &ids2, Alg2Config::default(), &mut rng).unwrap_err(),
            CoreError::Disconnected
        );
    }

    #[test]
    fn handles_sparse_graphs_and_single_node() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::path(10);
        let ids = IdAssignment::identity(10);
        let out = run(&g, &ids, Alg2Config::default(), &mut rng).unwrap();
        assert!(verify::is_proper_coloring(&g, &out.colors));
        let g = generators::empty(1);
        let ids = IdAssignment::identity(1);
        let out = run(&g, &ids, Alg2Config::default(), &mut rng).unwrap();
        assert!(verify::is_proper_coloring(&g, &out.colors));
    }
}
