//! Algorithm 1: (Δ+1)-list-coloring in KT-1 CONGEST with Õ(n^1.5) messages
//! (Theorem 3.3), plus its asynchronous variant (Theorem 3.4).
//!
//! Pipeline (following Section 3.1):
//!
//! 1. Build a danner with δ = ½, elect a leader and broadcast `O(log² n)`
//!    random bits (charged construction + real broadcast, see
//!    `symbreak-danner`).
//! 2. Every node derives the Chang et al. vertex/palette partition from the
//!    shared bits and its neighbours' IDs — zero messages thanks to KT-1.
//! 3. Colour every bucket `B_i` in parallel with the conflict-aware
//!    Johansson stage (`PROPOSE`/`FINAL` over same-bucket edges plus queries
//!    towards previously coloured neighbours).
//! 4. Check `|E(G[L])|` by a convergecast over the danner tree; if it is
//!    still large, repeat the partition one level down (Lemma 3.2: O(1)
//!    levels w.h.p.).
//! 5. Colour the remaining nodes with a final conflict-aware stage.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symbreak_congest::{
    async_sim, BatchSimulator, CostAccount, KtLevel, PhaseCost, SyncConfig, SyncSimulator,
};
use symbreak_danner::{ops, setup};
use symbreak_graphs::{properties, Graph, IdAssignment, NodeId};
use symbreak_ktrand::SharedRandomness;

use crate::error::CoreError;
use crate::partition::{ChangPartition, Part};
use crate::query_coloring::{run_stage_on, QueryPlan, StageSpec};
use crate::stage_flat::{
    run_stage_flat_batch_lanes_on, run_stage_flat_on, FlatStageLane, FlatStageSpec, StagePipeline,
};

/// Configuration of Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct Alg1Config {
    /// Danner parameter δ (the paper uses ½).
    pub delta: f64,
    /// Maximum number of partition levels before the final stage (the paper
    /// shows O(1) levels suffice w.h.p.).
    pub max_levels: usize,
    /// The final stage is entered once the uncoloured subgraph has at most
    /// `edge_threshold_factor · n · log₂ n` edges.
    pub edge_threshold_factor: f64,
    /// Seed for the per-node private randomness of the coloring stages.
    pub stage_seed: u64,
    /// Which stage runtime to drive the coloring stages through (outputs are
    /// bit-identical either way; `Nested` is the retained baseline).
    pub pipeline: StagePipeline,
    /// Worker threads for the simulated stages (`0` = automatic, i.e. the
    /// `CONGEST_THREADS` environment variable or the CPU count).
    pub threads: usize,
    /// Graph shards for the simulated stages (`0` = automatic, i.e. the
    /// `CONGEST_SHARDS` environment variable or disabled). When sharding
    /// engages, the [`symbreak_graphs::sharded::ShardedGraph`] is built
    /// **once per run** and shared by every per-level stage through the one
    /// stage simulator (regression-tested in `tests/sharded_cache.rs`);
    /// results are bit-identical at any shard count.
    pub shards: usize,
}

impl Default for Alg1Config {
    fn default() -> Self {
        Alg1Config {
            delta: 0.5,
            max_levels: 3,
            edge_threshold_factor: 2.0,
            stage_seed: 0x1_5eed,
            pipeline: StagePipeline::Flat,
            threads: 0,
            shards: 0,
        }
    }
}

/// Outcome of a coloring run.
#[derive(Debug, Clone)]
pub struct ColoringOutcome {
    /// Per-node colours (always `Some` on success), drawn from `{0, …, Δ}`.
    pub colors: Vec<Option<u64>>,
    /// Message/round costs phase by phase.
    pub costs: CostAccount,
    /// Number of partition levels that were executed before the final stage.
    pub levels_used: usize,
    /// The global maximum degree Δ the palette was sized for.
    pub max_degree: u64,
}

/// Runs Algorithm 1 on a connected graph.
///
/// # Errors
///
/// Returns [`CoreError::Disconnected`] for disconnected inputs,
/// [`CoreError::InvalidParameter`] for δ outside `[0, 1]` and
/// [`CoreError::DidNotConverge`] if the final stage fails to colour every
/// node within its phase budget (which would indicate a bug rather than bad
/// luck — the budget is generous).
pub fn run<R: Rng + ?Sized>(
    graph: &Graph,
    ids: &IdAssignment,
    config: Alg1Config,
    rng: &mut R,
) -> Result<ColoringOutcome, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Ok(ColoringOutcome {
            colors: Vec::new(),
            costs: CostAccount::new(),
            levels_used: 0,
            max_degree: 0,
        });
    }
    if !properties::is_connected(graph) {
        return Err(CoreError::Disconnected);
    }
    let log_n = (n.max(2) as f64).log2();
    let mut costs = CostAccount::new();

    // Step 1: danner + leader + shared random bits (Θ(log² n) of them).
    let seed_bits = ((log_n * log_n).ceil() as usize).max(64);
    let setup_outcome = setup::try_shared_randomness(graph, ids, config.delta, seed_bits, rng)?;
    costs.absorb("setup", &setup_outcome.costs);
    let shared = setup_outcome.shared;
    let carrier = setup_outcome.danner.subgraph().clone();
    let tree = setup_outcome.tree;

    // Learn the global maximum degree Δ over the danner tree and broadcast it
    // back down (real messages).
    let degrees: Vec<u64> = graph.nodes().map(|v| graph.degree(v) as u64).collect();
    let (max_degree, report) = ops::convergecast_max(&carrier, ids, &tree, &degrees);
    costs.charge_report("Δ convergecast", &report);
    let report = ops::broadcast_words(&carrier, ids, &tree, &[max_degree]);
    costs.charge_report("Δ broadcast", &report);
    let palette_size = max_degree + 1;

    let mut colors: Vec<Option<u64>> = vec![None; n];
    // One query plan for the whole run: the flat Θ(m) neighbour table is
    // built once; each finished level's partition is appended in place
    // behind the `Arc` (the stage's clone has been dropped by then).
    let mut plan = Arc::new(QueryPlan::new(graph, ids, Vec::new()));
    let mut levels_used = 0;
    let phase_limit_buckets = (4.0 * log_n).ceil() as usize + 4;
    let edge_threshold = (config.edge_threshold_factor * n as f64 * log_n).ceil() as u64;
    let stage_config = SyncConfig::default()
        .with_threads(config.threads)
        .with_shards(config.shards);
    // One simulator for every coloring stage of the run. When sharded
    // stepping engages, the sharded view (shard slices + ghost tables) is
    // built here exactly once and reused by each per-level stage and the
    // final stage — stages used to rebuild it per `run` call.
    let prebuilt_sharded = stage_config.prebuild_sharded(graph);
    let mut stage_sim = SyncSimulator::new(graph, ids, KtLevel::KT1);
    if let Some(sharded) = prebuilt_sharded.as_ref() {
        stage_sim = stage_sim.with_sharded_graph(sharded);
    }

    for level in 0..config.max_levels {
        // Step 4 (and its level-0 analogue): measure the uncoloured subgraph
        // by a convergecast over the danner tree.
        let uncolored: Vec<bool> = colors.iter().map(Option::is_none).collect();
        let local_uncolored_deg: Vec<u64> = graph
            .nodes()
            .map(|v| {
                if uncolored[v.index()] {
                    graph.neighbors(v).filter(|u| uncolored[u.index()]).count() as u64
                } else {
                    0
                }
            })
            .collect();
        let (double_edges, report) =
            ops::convergecast_sum(&carrier, ids, &tree, &local_uncolored_deg);
        costs.charge_report(format!("|E(G[L])| check, level {level}"), &report);
        let uncolored_edges = double_edges / 2;
        let uncolored_max_deg = *local_uncolored_deg.iter().max().unwrap_or(&0);

        // Small enough (or too sparse for the partition to help): finish.
        if uncolored_edges <= edge_threshold
            || uncolored_max_deg * uncolored_max_deg <= (16.0 * log_n * log_n) as u64
        {
            break;
        }

        // Step 2: derive this level's partition from the shared randomness.
        let partition = ChangPartition::compute(&shared, level, n, uncolored_max_deg as usize);
        let parts = partition.parts_for(ids);

        // Step 3: colour all buckets in parallel with one stage.
        let seed = config.stage_seed.wrapping_add(level as u64);
        let (stage_colors, report) = match config.pipeline {
            StagePipeline::Flat => {
                let spec = FlatStageSpec::for_bucket_level(
                    graph,
                    &partition,
                    &parts,
                    &colors,
                    palette_size,
                    Arc::clone(&plan),
                    phase_limit_buckets,
                );
                run_stage_flat_on(&stage_sim, &spec, seed, stage_config)
            }
            StagePipeline::Nested => {
                let spec = nested_level_spec(
                    graph,
                    &partition,
                    &parts,
                    &colors,
                    palette_size,
                    Arc::clone(&plan),
                    phase_limit_buckets,
                );
                run_stage_on(&stage_sim, &spec, seed, stage_config)
            }
        };
        costs.charge_report(format!("bucket coloring, level {level}"), &report);
        colors = stage_colors;
        Arc::get_mut(&mut plan)
            .expect("stage spec dropped, plan uniquely held")
            .push_level(partition);
        levels_used += 1;
    }

    // Step 5: final stage on the remaining (sparse) uncoloured subgraph.
    if colors.iter().any(Option::is_none) {
        let phase_limit = (16.0 * log_n).ceil() as usize + 32;
        let seed = config.stage_seed.wrapping_add(0xffff);
        let (final_colors, report) = match config.pipeline {
            StagePipeline::Flat => {
                let spec = FlatStageSpec::for_final_stage(
                    graph,
                    &colors,
                    palette_size,
                    Arc::clone(&plan),
                    phase_limit,
                );
                run_stage_flat_on(&stage_sim, &spec, seed, stage_config)
            }
            StagePipeline::Nested => {
                let spec =
                    nested_final_spec(graph, &colors, palette_size, Arc::clone(&plan), phase_limit);
                run_stage_on(&stage_sim, &spec, seed, stage_config)
            }
        };
        costs.charge_report("final-stage coloring", &report);
        colors = final_colors;
    }

    if colors.iter().any(Option::is_none) {
        return Err(CoreError::DidNotConverge {
            stage: "final-stage coloring",
        });
    }

    Ok(ColoringOutcome {
        colors,
        costs,
        levels_used,
        max_degree,
    })
}

/// Runs Algorithm 1 once per seed, stepping the coloring stages of all lanes
/// in lockstep over one shared [`BatchSimulator`] CSR. Lane `k` is
/// **bit-identical** (colours, levels used, per-phase cost account) to
/// [`run`] with `StdRng::seed_from_u64(seeds[k])` and the same config on the
/// flat pipeline — the nested/flat choice in `config.pipeline` is ignored
/// here because the two pipelines are themselves bit-identical and only the
/// flat one has a batched runtime.
///
/// The setup is amortized across the batch: the danner, the leader and the
/// broadcast tree are pure functions of `(graph, ids, δ)` and are built
/// **once** ([`setup::SetupPlan`]); the Δ convergecast/broadcast are
/// lane-invariant and run once with their reports charged to every lane; and
/// the only genuinely per-lane setup — each lane's private seed words — is
/// distributed by one batched broadcast over the danner. The level loop then
/// advances all lanes together: each lane measures its own uncoloured
/// subgraph (one batched convergecast per level over the live lanes) and may
/// drop out of the loop at its own level, and every stage invocation batches
/// exactly the still-live lanes (lane subsets preserve per-lane
/// bit-identity).
///
/// # Errors
///
/// Same conditions as [`run`]; the first failing lane fails the whole batch.
pub fn run_batch(
    graph: &Graph,
    ids: &IdAssignment,
    config: Alg1Config,
    seeds: &[u64],
) -> Result<Vec<ColoringOutcome>, CoreError> {
    let n = graph.num_nodes();
    let lanes = seeds.len();
    if n == 0 {
        return Ok(seeds
            .iter()
            .map(|_| ColoringOutcome {
                colors: Vec::new(),
                costs: CostAccount::new(),
                levels_used: 0,
                max_degree: 0,
            })
            .collect());
    }
    if !properties::is_connected(graph) {
        return Err(CoreError::Disconnected);
    }
    let log_n = (n.max(2) as f64).log2();
    let seed_bits = ((log_n * log_n).ceil() as usize).max(64);

    // Shared setup plan (Steps 1a/1b): the danner, the leader and the
    // broadcast tree carry no private coins — one plan serves every lane.
    let plan = setup::SetupPlan::new(graph, ids, config.delta)?;
    let carrier = plan.carrier();
    let tree = plan.tree();

    // Step 1c, batched: each lane draws its own seed words (exactly the
    // sequential draw), then one lockstep broadcast distributes all lanes'
    // words over the danner — lane k's report is bit-identical to its
    // sequential broadcast.
    let lane_words: Vec<Vec<u64>> = seeds
        .iter()
        .map(|&seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            plan.draw_words(seed_bits, &mut rng)
        })
        .collect();
    let word_reports = ops::broadcast_words_batch(carrier, ids, tree, &lane_words);

    // Δ convergecast + broadcast are lane-invariant (degrees and tree carry
    // no coins): run once, charge every lane's account with the same report.
    let degrees: Vec<u64> = graph.nodes().map(|v| graph.degree(v) as u64).collect();
    let (max_degree, delta_up) = ops::convergecast_max(carrier, ids, tree, &degrees);
    let delta_down = ops::broadcast_words(carrier, ids, tree, &[max_degree]);

    let mut shareds: Vec<SharedRandomness> = Vec::with_capacity(lanes);
    let mut costs: Vec<CostAccount> = Vec::with_capacity(lanes);
    for (words, word_report) in lane_words.iter().zip(&word_reports) {
        let mut setup_costs = plan.base_costs();
        setup_costs.charge_report("seed broadcast over danner (simulated)", word_report);
        let mut lane_costs = CostAccount::new();
        lane_costs.absorb("setup", &setup_costs);
        lane_costs.charge_report("Δ convergecast", &delta_up);
        lane_costs.charge_report("Δ broadcast", &delta_down);
        shareds.push(SharedRandomness::from_seed(words[0], seed_bits));
        costs.push(lane_costs);
    }
    let palette_size = max_degree + 1;

    let mut colors: Vec<Vec<Option<u64>>> = vec![vec![None; n]; lanes];
    let mut plans: Vec<Arc<QueryPlan>> = (0..lanes)
        .map(|_| Arc::new(QueryPlan::new(graph, ids, Vec::new())))
        .collect();
    let mut levels_used = vec![0usize; lanes];
    let mut broken = vec![false; lanes];
    let phase_limit_buckets = (4.0 * log_n).ceil() as usize + 4;
    let edge_threshold = (config.edge_threshold_factor * n as f64 * log_n).ceil() as u64;
    let stage_config = SyncConfig::default()
        .with_threads(config.threads)
        .with_shards(config.shards);
    let prebuilt_sharded = stage_config.prebuild_sharded(graph);
    let mut stage_sim = BatchSimulator::new(graph, ids, KtLevel::KT1);
    if let Some(sharded) = prebuilt_sharded.as_ref() {
        stage_sim = stage_sim.with_sharded_graph(sharded);
    }

    for level in 0..config.max_levels {
        // Each live lane measures its own uncoloured subgraph — one batched
        // convergecast over the danner serves all live lanes — and decides
        // whether to leave the level loop; the lanes that stay compute their
        // level partitions.
        let live: Vec<usize> = (0..lanes).filter(|&k| !broken[k]).collect();
        if live.is_empty() {
            break;
        }
        let lane_degs: Vec<Vec<u64>> = live
            .iter()
            .map(|&k| {
                let uncolored: Vec<bool> = colors[k].iter().map(Option::is_none).collect();
                graph
                    .nodes()
                    .map(|v| {
                        if uncolored[v.index()] {
                            graph.neighbors(v).filter(|u| uncolored[u.index()]).count() as u64
                        } else {
                            0
                        }
                    })
                    .collect()
            })
            .collect();
        let measured = ops::convergecast_sum_batch(carrier, ids, tree, &lane_degs);
        let mut staying: Vec<(usize, ChangPartition)> = Vec::new();
        for ((&k, local_uncolored_deg), (double_edges, report)) in
            live.iter().zip(&lane_degs).zip(measured)
        {
            costs[k].charge_report(format!("|E(G[L])| check, level {level}"), &report);
            let uncolored_edges = double_edges / 2;
            let uncolored_max_deg = *local_uncolored_deg.iter().max().unwrap_or(&0);
            if uncolored_edges <= edge_threshold
                || uncolored_max_deg * uncolored_max_deg <= (16.0 * log_n * log_n) as u64
            {
                broken[k] = true;
                continue;
            }
            staying.push((
                k,
                ChangPartition::compute(&shareds[k], level, n, uncolored_max_deg as usize),
            ));
        }
        if staying.is_empty() {
            break;
        }

        // One batched stage over exactly the live lanes. The specs borrow
        // each lane's colour vector; they are dropped before write-back.
        let seed = config.stage_seed.wrapping_add(level as u64);
        let specs: Vec<FlatStageSpec<'_>> = staying
            .iter()
            .map(|(k, partition)| {
                let parts = partition.parts_for(ids);
                FlatStageSpec::for_bucket_level(
                    graph,
                    partition,
                    &parts,
                    &colors[*k],
                    palette_size,
                    Arc::clone(&plans[*k]),
                    phase_limit_buckets,
                )
            })
            .collect();
        let stage_lanes: Vec<FlatStageLane<'_, '_>> = specs
            .iter()
            .map(|spec| FlatStageLane { spec, seed })
            .collect();
        let results = run_stage_flat_batch_lanes_on(&stage_sim, &stage_lanes, stage_config);
        drop(stage_lanes);
        drop(specs);
        for ((k, partition), (stage_colors, report)) in staying.into_iter().zip(results) {
            costs[k].charge_report(format!("bucket coloring, level {level}"), &report);
            colors[k] = stage_colors;
            Arc::get_mut(&mut plans[k])
                .expect("stage spec dropped, plan uniquely held")
                .push_level(partition);
            levels_used[k] += 1;
        }
    }

    // Final stage, batched over the lanes that still have uncoloured nodes.
    let needs_final: Vec<usize> = (0..lanes)
        .filter(|&k| colors[k].iter().any(Option::is_none))
        .collect();
    if !needs_final.is_empty() {
        let phase_limit = (16.0 * log_n).ceil() as usize + 32;
        let seed = config.stage_seed.wrapping_add(0xffff);
        let specs: Vec<FlatStageSpec<'_>> = needs_final
            .iter()
            .map(|&k| {
                FlatStageSpec::for_final_stage(
                    graph,
                    &colors[k],
                    palette_size,
                    Arc::clone(&plans[k]),
                    phase_limit,
                )
            })
            .collect();
        let stage_lanes: Vec<FlatStageLane<'_, '_>> = specs
            .iter()
            .map(|spec| FlatStageLane { spec, seed })
            .collect();
        let results = run_stage_flat_batch_lanes_on(&stage_sim, &stage_lanes, stage_config);
        drop(stage_lanes);
        drop(specs);
        for (&k, (final_colors, report)) in needs_final.iter().zip(results) {
            costs[k].charge_report("final-stage coloring", &report);
            colors[k] = final_colors;
        }
    }

    if colors.iter().any(|lane| lane.iter().any(Option::is_none)) {
        return Err(CoreError::DidNotConverge {
            stage: "final-stage coloring",
        });
    }

    Ok(colors
        .into_iter()
        .zip(costs)
        .zip(levels_used)
        .map(|((colors, costs), levels_used)| ColoringOutcome {
            colors,
            costs,
            levels_used,
            max_degree,
        })
        .collect())
}

/// The retained nested-`Vec` builder for one bucket-coloring level — exactly
/// the PR-2-era stage setup (per-node palette recomputation and all), kept
/// as the baseline the flat pipeline's stage-setup speedup is measured
/// against (`BENCH_alg_coloring.json`) and as the differential oracle.
pub fn nested_level_spec(
    graph: &Graph,
    partition: &ChangPartition,
    parts: &[Part],
    colors: &[Option<u64>],
    palette_size: u64,
    plan: Arc<QueryPlan>,
    phase_limit: usize,
) -> StageSpec {
    let participating: Vec<bool> = graph
        .nodes()
        .map(|v| colors[v.index()].is_none() && matches!(parts[v.index()], Part::Bucket(_)))
        .collect();
    let palettes: Vec<Vec<u64>> = graph
        .nodes()
        .map(|v| match parts[v.index()] {
            Part::Bucket(b) if participating[v.index()] => {
                partition.palette_of_bucket(palette_size, b)
            }
            _ => Vec::new(),
        })
        .collect();
    let active: Vec<Vec<NodeId>> = graph
        .nodes()
        .map(|v| {
            if !participating[v.index()] {
                return Vec::new();
            }
            graph
                .neighbors(v)
                .filter(|u| participating[u.index()] && parts[u.index()] == parts[v.index()])
                .collect()
        })
        .collect();
    StageSpec {
        participating,
        palettes,
        active,
        existing_colors: colors.to_vec(),
        plan,
        phase_limit,
    }
}

/// The retained nested-`Vec` builder for the final stage (see
/// [`nested_level_spec`]).
pub fn nested_final_spec(
    graph: &Graph,
    colors: &[Option<u64>],
    palette_size: u64,
    plan: Arc<QueryPlan>,
    phase_limit: usize,
) -> StageSpec {
    let participating: Vec<bool> = colors.iter().map(Option::is_none).collect();
    let palettes: Vec<Vec<u64>> = graph
        .nodes()
        .map(|v| {
            if participating[v.index()] {
                (0..palette_size).collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    let active: Vec<Vec<NodeId>> = graph
        .nodes()
        .map(|v| {
            if !participating[v.index()] {
                return Vec::new();
            }
            graph
                .neighbors(v)
                .filter(|u| participating[u.index()])
                .collect()
        })
        .collect();
    StageSpec {
        participating,
        palettes,
        active,
        existing_colors: colors.to_vec(),
        plan,
        phase_limit,
    }
}

/// Runs the asynchronous variant of Algorithm 1 (Theorem 3.4).
///
/// The synchronous stages are executed unchanged (their outputs are
/// delay-insensitive); the cost account additionally charges the
/// asynchronous broadcast substrate of Theorem 1.3 instead of the danner
/// setup, and an α-synchronizer overhead of `2(T+1)·m_active` messages per
/// simulated stage (Theorem A.5), where `m_active` is the number of edges
/// the stage actually communicates over.
///
/// # Errors
///
/// Same conditions as [`run`].
pub fn run_async<R: Rng + ?Sized>(
    graph: &Graph,
    ids: &IdAssignment,
    config: Alg1Config,
    rng: &mut R,
) -> Result<ColoringOutcome, CoreError> {
    let sync = run(graph, ids, config, rng)?;
    let n = graph.num_nodes();
    if n == 0 {
        return Ok(sync);
    }
    let log_n = (n.max(2) as f64).log2();
    let seed_bits = ((log_n * log_n).ceil() as usize).max(64);

    let mut costs = CostAccount::new();
    // Replace the synchronous setup by the asynchronous substrate.
    let (_shared, async_setup_costs) = setup::async_shared_randomness(graph, ids, seed_bits, rng);
    costs.absorb("async-setup", &async_setup_costs);
    // Re-charge the simulated stages plus the synchronizer overhead. The
    // active edge count per stage is bounded by the messages the stage sent
    // (each active edge carries O(1) messages per round), so we use the
    // per-stage message count as the `m` of Theorem A.5's `2(T+1)m` bound.
    for (label, cost) in sync.costs.phases() {
        if label.starts_with("setup/") {
            continue;
        }
        costs.charge(label, cost);
        if cost.simulated_messages > 0 {
            let active_edges = cost.simulated_messages / cost.simulated_rounds.max(1) + 1;
            let overhead =
                async_sim::alpha_synchronizer_overhead(cost.simulated_rounds, active_edges);
            costs.charge(
                format!("{label} (α-synchronizer overhead)"),
                PhaseCost::charged(overhead, cost.simulated_rounds),
            );
        }
    }
    Ok(ColoringOutcome { costs, ..sync })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symbreak_classic::coloring::verify;
    use symbreak_graphs::{generators, IdSpace};

    fn instance(n: usize, p: f64, seed: u64) -> (Graph, IdAssignment) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::connected_gnp(n, p, &mut rng);
        let ids = IdAssignment::random(&g, IdSpace::CUBIC, &mut rng);
        (g, ids)
    }

    #[test]
    fn produces_a_proper_delta_plus_one_coloring() {
        for (n, p, seed) in [(40usize, 0.3, 1u64), (80, 0.5, 2), (60, 0.8, 3)] {
            let (g, ids) = instance(n, p, seed);
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let out = run(&g, &ids, Alg1Config::default(), &mut rng).unwrap();
            assert!(verify::is_proper_coloring(&g, &out.colors), "n={n} p={p}");
            assert!(verify::uses_colors_below(
                &out.colors,
                g.max_degree() as u64 + 1
            ));
            assert_eq!(out.max_degree as usize, g.max_degree());
        }
    }

    #[test]
    fn message_cost_is_far_below_baseline_on_dense_graphs() {
        let (g, ids) = instance(120, 0.9, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let out = run(&g, &ids, Alg1Config::default(), &mut rng).unwrap();
        assert!(verify::is_proper_coloring(&g, &out.colors));
        // The Θ(m)-message baseline sends at least one message per edge per
        // phase; Algorithm 1 should beat a single m even after charges.
        let m = g.num_edges() as u64;
        let log_n = (g.num_nodes() as f64).log2().ceil() as u64;
        assert!(
            out.costs.total_messages() < m * log_n,
            "Algorithm 1 used {} messages vs m·log n = {}",
            out.costs.total_messages(),
            m * log_n
        );
    }

    #[test]
    fn rejects_disconnected_inputs() {
        let g = generators::disjoint_union(&[generators::clique(4), generators::clique(4)]);
        let ids = IdAssignment::identity(8);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            run(&g, &ids, Alg1Config::default(), &mut rng).unwrap_err(),
            CoreError::Disconnected
        );
    }

    #[test]
    fn handles_small_and_degenerate_graphs() {
        let mut rng = StdRng::seed_from_u64(2);
        // Single node.
        let g = generators::empty(1);
        let ids = IdAssignment::identity(1);
        let out = run(&g, &ids, Alg1Config::default(), &mut rng).unwrap();
        assert!(verify::is_proper_coloring(&g, &out.colors));
        // A path (Δ = 2).
        let g = generators::path(7);
        let ids = IdAssignment::identity(7);
        let out = run(&g, &ids, Alg1Config::default(), &mut rng).unwrap();
        assert!(verify::is_proper_coloring(&g, &out.colors));
        assert!(verify::uses_colors_below(&out.colors, 3));
        // Empty graph.
        let g = generators::empty(0);
        let ids = IdAssignment::identity(0);
        let out = run(&g, &ids, Alg1Config::default(), &mut rng).unwrap();
        assert!(out.colors.is_empty());
    }

    #[test]
    fn batched_lanes_match_sequential_runs() {
        let (g, ids) = instance(60, 0.5, 21);
        let seeds = [5u64, 6, 7];
        let batch = run_batch(&g, &ids, Alg1Config::default(), &seeds).unwrap();
        assert_eq!(batch.len(), seeds.len());
        for (lane, &seed) in batch.iter().zip(&seeds) {
            let mut rng = StdRng::seed_from_u64(seed);
            let solo = run(&g, &ids, Alg1Config::default(), &mut rng).unwrap();
            assert_eq!(lane.colors, solo.colors, "seed {seed}");
            assert_eq!(lane.levels_used, solo.levels_used, "seed {seed}");
            assert_eq!(lane.max_degree, solo.max_degree, "seed {seed}");
            assert_eq!(lane.costs, solo.costs, "seed {seed}");
        }
    }

    #[test]
    fn invalid_delta_is_rejected() {
        let (g, ids) = instance(20, 0.5, 9);
        let mut rng = StdRng::seed_from_u64(9);
        let config = Alg1Config {
            delta: 1.5,
            ..Alg1Config::default()
        };
        assert!(matches!(
            run(&g, &ids, config, &mut rng).unwrap_err(),
            CoreError::InvalidParameter { .. }
        ));
    }

    #[test]
    fn async_variant_colors_properly_and_charges_more_messages() {
        let (g, ids) = instance(70, 0.6, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let sync = run(&g, &ids, Alg1Config::default(), &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let async_out = run_async(&g, &ids, Alg1Config::default(), &mut rng).unwrap();
        assert!(verify::is_proper_coloring(&g, &async_out.colors));
        assert!(async_out.costs.total_messages() >= sync.costs.simulated_messages());
    }
}
