//! Algorithm 3: MIS in KT-2 CONGEST with Õ(n^1.5) messages and Õ(√n) rounds
//! (Theorem 4.1).
//!
//! 1. Sample a set `S` of ≈ `c·√n` nodes with private coins.
//! 2. Run the parallel randomized greedy MIS on `G[S]` (after `S`-nodes
//!    announce their membership and rank to their neighbours), which is
//!    equivalent to `|S|` iterations of sequential randomized greedy and
//!    reduces the maximum degree of the remnant graph to `Õ(√n)`.
//! 3. Every `S`-node that joined the MIS informs its *two-hop* neighbourhood.
//!    Crucially it does so along locally computed depth-2 BFS trees: a
//!    1-hop neighbour `v` forwards the announcement to a 2-hop node `w` only
//!    if `v` is the minimum-ID common neighbour of the MIS node and `w` —
//!    which `v` can decide from its KT-2 knowledge — so each 2-hop node is
//!    informed O(1) times instead of once per common neighbour.
//! 4. Every node prunes itself/its edges using KT-2 knowledge (no messages).
//! 5. Luby's algorithm finishes the job on the sparse remnant graph.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symbreak_classic::mis::{luby, parallel_greedy};
use symbreak_congest::{
    BatchSimulator, CostAccount, KtLevel, Message, NodeAlgorithm, RoundContext, SyncConfig,
    SyncSimulator,
};
use symbreak_graphs::{AdjacencyArena, Graph, IdAssignment, NodeId};
use symbreak_ktrand::sampling;

use crate::error::CoreError;
use crate::stage_flat::StagePipeline;

const TAG_MEMBER: u16 = 0x70;
const TAG_JOIN: u16 = 0x71;
const TAG_JOIN_FWD: u16 = 0x72;

/// Configuration of Algorithm 3.
#[derive(Debug, Clone, Copy)]
pub struct Alg3Config {
    /// Sampling coefficient `c`: each node joins `S` with probability
    /// `min(1, c/√n)`.
    pub sample_coefficient: f64,
    /// Seed for the private per-node randomness of the Luby stage.
    pub luby_seed: u64,
    /// Which active-list representation the greedy-MIS and Luby stages use
    /// (outputs are bit-identical either way; `Nested` is the retained
    /// per-node `Vec<Vec<NodeId>>` baseline).
    pub pipeline: StagePipeline,
    /// Worker threads for the simulated stages (`0` = automatic).
    pub threads: usize,
}

impl Default for Alg3Config {
    fn default() -> Self {
        Alg3Config {
            sample_coefficient: 1.0,
            luby_seed: 0x3_5eed,
            pipeline: StagePipeline::Flat,
            threads: 0,
        }
    }
}

/// Outcome of Algorithm 3.
#[derive(Debug, Clone)]
pub struct MisOutcome {
    /// Per-node MIS membership.
    pub in_mis: Vec<bool>,
    /// Message/round costs phase by phase (all simulated; Algorithm 3 uses
    /// no charged substrate).
    pub costs: CostAccount,
    /// Size of the sampled set `S`.
    pub sampled: usize,
    /// Maximum degree of the remnant graph handed to Luby's algorithm.
    pub remnant_max_degree: usize,
}

/// Stage A: sampled nodes announce `(membership, rank)` to all neighbours.
struct AnnounceNode {
    in_sample: bool,
    rank: u64,
    heard: u64,
}

impl NodeAlgorithm for AnnounceNode {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        self.heard += inbox.iter().filter(|m| m.tag() == TAG_MEMBER).count() as u64;
        if ctx.round() == 0 && self.in_sample {
            ctx.broadcast(&Message::tagged(TAG_MEMBER).with_value(self.rank));
        }
    }
    fn is_done(&self) -> bool {
        true
    }
    fn output(&self) -> Option<u64> {
        Some(self.heard)
    }
}

/// Stage C: MIS members of `S` inform their 2-hop neighbourhood along
/// KT-2-computed depth-2 BFS trees.
struct InformNode {
    in_mis_s: bool,
    informed: u64,
    /// Relays not yet sent: an edge may carry only one message per round
    /// (the `congest::audit` multiplicity check enforces this), so when one
    /// forwarder owes the same 2-hop target relays for several joiners they
    /// are spread over consecutive rounds.
    pending: Vec<(NodeId, u64)>,
}

impl NodeAlgorithm for InformNode {
    fn on_round(&mut self, ctx: &mut RoundContext<'_>, inbox: &[Message]) {
        self.informed += inbox
            .iter()
            .filter(|m| m.tag() == TAG_JOIN || m.tag() == TAG_JOIN_FWD)
            .count() as u64;
        if ctx.round() == 0 {
            if self.in_mis_s {
                ctx.broadcast(&Message::tagged(TAG_JOIN).with_id(ctx.own_id()));
            }
            return;
        }
        // Forwarding role: for every JOIN heard from a neighbour u, relay it
        // to exactly the 2-hop neighbours of u for which we are the
        // minimum-ID common neighbour (computable from KT-2 knowledge).
        let me = ctx.node();
        let my_id = ctx.own_id();
        let mut to_send: Vec<(NodeId, u64)> = Vec::new();
        for msg in inbox {
            if msg.tag() != TAG_JOIN {
                continue;
            }
            let uid = msg.ids()[0];
            let Some(u) = ctx.knowledge().known_node_with_id(uid) else {
                continue;
            };
            let u_neighbors = ctx.knowledge().neighbors_of(u);
            for &(w, _wid) in ctx.knowledge().neighbor_ids().iter() {
                if w == u || u_neighbors.contains(&w) {
                    continue; // w is u itself or a 1-hop neighbour of u.
                }
                // Common neighbours of u and w; we know N(w) because w is our
                // neighbour (KT-2).
                let w_neighbors = ctx.knowledge().neighbors_of(w);
                let min_common = u_neighbors
                    .iter()
                    .filter(|x| w_neighbors.contains(x))
                    .map(|&x| (ctx.knowledge().id_of(x), x))
                    .min();
                if let Some((_, best)) = min_common {
                    if best == me {
                        to_send.push((w, uid));
                    }
                }
            }
        }
        let _ = my_id;
        self.pending.extend(to_send);
        // Drain at most one relay per target edge per round; a node with
        // leftovers stays active (`is_done`) and continues next round.
        let mut sent_now: Vec<NodeId> = Vec::new();
        let mut rest = Vec::new();
        for (w, uid) in std::mem::take(&mut self.pending) {
            if sent_now.contains(&w) {
                rest.push((w, uid));
            } else {
                sent_now.push(w);
                ctx.send(w, Message::tagged(TAG_JOIN_FWD).with_id(uid));
            }
        }
        self.pending = rest;
    }
    fn is_done(&self) -> bool {
        self.pending.is_empty()
    }
    fn output(&self) -> Option<u64> {
        Some(self.informed)
    }
}

/// Runs Algorithm 3.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if the sampling coefficient is not
/// positive, and [`CoreError::DidNotConverge`] if a stage fails to terminate
/// (which would indicate a bug).
pub fn run<R: Rng + ?Sized>(
    graph: &Graph,
    ids: &IdAssignment,
    config: Alg3Config,
    rng: &mut R,
) -> Result<MisOutcome, CoreError> {
    if config.sample_coefficient <= 0.0 || config.sample_coefficient.is_nan() {
        return Err(CoreError::InvalidParameter {
            name: "sample_coefficient",
            message: format!("must be positive, got {}", config.sample_coefficient),
        });
    }
    let n = graph.num_nodes();
    if n == 0 {
        return Ok(MisOutcome {
            in_mis: Vec::new(),
            costs: CostAccount::new(),
            sampled: 0,
            remnant_max_degree: 0,
        });
    }
    let mut costs = CostAccount::new();
    let stage_config = SyncConfig::default().with_threads(config.threads);

    // Step 1: sample S and draw ranks with private coins.
    let p = (config.sample_coefficient / (n as f64).sqrt()).min(1.0);
    let sampled_indices = sampling::bernoulli_subset(n, p, rng);
    let mut in_sample = vec![false; n];
    for &i in &sampled_indices {
        in_sample[i] = true;
    }
    let ranks = sampling::random_ranks(n, rng);

    // Step 2a: S-nodes announce membership and rank to all neighbours.
    let sim = SyncSimulator::new(graph, ids, KtLevel::KT2);
    let report = sim.run(stage_config, |init| AnnounceNode {
        in_sample: in_sample[init.node.index()],
        rank: ranks[init.node.index()],
        heard: 0,
    });
    costs.charge_report("S announces membership + rank", &report);

    // Step 2b: parallel randomized greedy MIS on G[S]. The active lists are
    // the S-neighbours each node just learned about — on the flat pipeline
    // one CSR arena built in a single pass over the graph's rows, on the
    // nested baseline one Vec per node (flattened inside `run` since the
    // nested greedy runtime folded into the arena one; only Luby retains a
    // genuinely nested oracle, exercised in step 5).
    let (greedy_mis, report) = match config.pipeline {
        StagePipeline::Flat => {
            let s_neighbors = AdjacencyArena::from_filtered(graph, |v, u| {
                in_sample[v.index()] && in_sample[u.index()]
            });
            symbreak_classic::mis::parallel_greedy::run_arena(
                graph,
                ids,
                KtLevel::KT2,
                &in_sample,
                &ranks,
                &s_neighbors,
                stage_config,
            )
        }
        StagePipeline::Nested => {
            let s_neighbors: Vec<Vec<NodeId>> = graph
                .nodes()
                .map(|v| {
                    if in_sample[v.index()] {
                        graph
                            .neighbors(v)
                            .filter(|u| in_sample[u.index()])
                            .collect()
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            symbreak_classic::mis::parallel_greedy::run(
                graph,
                ids,
                KtLevel::KT2,
                &in_sample,
                &ranks,
                &s_neighbors,
                stage_config,
            )
        }
    };
    costs.charge_report("parallel greedy MIS on G[S]", &report);

    // Step 3: MIS members of S inform their 2-hop neighbourhoods.
    let sim = SyncSimulator::new(graph, ids, KtLevel::KT2);
    let report = sim.run(stage_config, |init| InformNode {
        in_mis_s: greedy_mis[init.node.index()],
        informed: 0,
        pending: Vec::new(),
    });
    costs.charge_report("inform 2-hop neighbourhoods (KT-2 BFS trees)", &report);

    // Step 4: pruning — mirror of each node's local computation: a node is
    // decided if it joined the MIS or has a 1-hop neighbour in it; an edge
    // survives only if both endpoints are undecided.
    let dominated: Vec<bool> = graph
        .nodes()
        .map(|v| greedy_mis[v.index()] || graph.neighbors(v).any(|u| greedy_mis[u.index()]))
        .collect();
    let undecided: Vec<bool> = graph.nodes().map(|v| !dominated[v.index()]).collect();

    // Step 5: Luby's algorithm on the remnant graph.
    let (remnant_max_degree, (luby_mis, report)) = match config.pipeline {
        StagePipeline::Flat => {
            let remnant = AdjacencyArena::from_filtered(graph, |v, u| {
                undecided[v.index()] && undecided[u.index()]
            });
            let max_deg = graph.nodes().map(|v| remnant.row_len(v)).max().unwrap_or(0);
            let out = symbreak_classic::mis::luby::run_restricted_arena(
                graph,
                ids,
                KtLevel::KT2,
                &undecided,
                &remnant,
                config.luby_seed,
                stage_config,
            );
            (max_deg, out)
        }
        StagePipeline::Nested => {
            let remnant_neighbors: Vec<Vec<NodeId>> = graph
                .nodes()
                .map(|v| {
                    if undecided[v.index()] {
                        graph
                            .neighbors(v)
                            .filter(|u| undecided[u.index()])
                            .collect()
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let max_deg = remnant_neighbors.iter().map(Vec::len).max().unwrap_or(0);
            let out = symbreak_classic::mis::luby::run_restricted_nested(
                graph,
                ids,
                KtLevel::KT2,
                &undecided,
                &remnant_neighbors,
                config.luby_seed,
                stage_config,
            );
            (max_deg, out)
        }
    };
    costs.charge_report("Luby on remnant graph", &report);

    let in_mis: Vec<bool> = graph
        .nodes()
        .map(|v| greedy_mis[v.index()] || luby_mis[v.index()])
        .collect();

    Ok(MisOutcome {
        in_mis,
        costs,
        sampled: sampled_indices.len(),
        remnant_max_degree,
    })
}

/// Runs Algorithm 3 once per seed, stepping all four simulated stages
/// (announce, greedy MIS on `G[S]`, 2-hop inform, Luby on the remnant) of
/// all lanes in lockstep over one shared KT-2 CSR. Lane `k` is
/// **bit-identical** (MIS, sampled count, remnant degree, per-phase cost
/// account) to [`run`] with `StdRng::seed_from_u64(seeds[k])` on the flat
/// pipeline — the nested/flat choice in `config.pipeline` is ignored here
/// because the two pipelines are themselves bit-identical and only the flat
/// one has a batched runtime. The per-lane sampling (step 1) and pruning
/// (step 4) are local computations and stay per-lane sequential.
///
/// # Errors
///
/// Same conditions as [`run`].
pub fn run_batch(
    graph: &Graph,
    ids: &IdAssignment,
    config: Alg3Config,
    seeds: &[u64],
) -> Result<Vec<MisOutcome>, CoreError> {
    if config.sample_coefficient <= 0.0 || config.sample_coefficient.is_nan() {
        return Err(CoreError::InvalidParameter {
            name: "sample_coefficient",
            message: format!("must be positive, got {}", config.sample_coefficient),
        });
    }
    let n = graph.num_nodes();
    let lanes = seeds.len();
    if n == 0 || lanes == 0 {
        return Ok(seeds
            .iter()
            .map(|_| MisOutcome {
                in_mis: Vec::new(),
                costs: CostAccount::new(),
                sampled: 0,
                remnant_max_degree: 0,
            })
            .collect());
    }
    let stage_config = SyncConfig::default().with_threads(config.threads);
    let mut costs: Vec<CostAccount> = (0..lanes).map(|_| CostAccount::new()).collect();

    // Step 1, per lane: sample S and draw ranks with lane k's private coins.
    let p = (config.sample_coefficient / (n as f64).sqrt()).min(1.0);
    let mut in_samples: Vec<Vec<bool>> = Vec::with_capacity(lanes);
    let mut all_ranks: Vec<Vec<u64>> = Vec::with_capacity(lanes);
    let mut sampled_counts: Vec<usize> = Vec::with_capacity(lanes);
    for &seed in seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let sampled_indices = sampling::bernoulli_subset(n, p, &mut rng);
        let mut in_sample = vec![false; n];
        for &i in &sampled_indices {
            in_sample[i] = true;
        }
        all_ranks.push(sampling::random_ranks(n, &mut rng));
        sampled_counts.push(sampled_indices.len());
        in_samples.push(in_sample);
    }

    let sim = BatchSimulator::new(graph, ids, KtLevel::KT2);

    // Step 2a, batched: S-nodes announce membership and rank.
    let reports = sim.run_batch(stage_config, lanes, |k, init| AnnounceNode {
        in_sample: in_samples[k][init.node.index()],
        rank: all_ranks[k][init.node.index()],
        heard: 0,
    });
    for (k, report) in reports.iter().enumerate() {
        costs[k].charge_report("S announces membership + rank", report);
    }

    // Step 2b, batched: parallel greedy MIS on each lane's G[S].
    let s_arenas: Vec<AdjacencyArena> = in_samples
        .iter()
        .map(|in_sample| {
            AdjacencyArena::from_filtered(graph, |v, u| {
                in_sample[v.index()] && in_sample[u.index()]
            })
        })
        .collect();
    let specs: Vec<parallel_greedy::MisLaneSpec<'_>> = (0..lanes)
        .map(|k| parallel_greedy::MisLaneSpec {
            participating: &in_samples[k],
            ranks: &all_ranks[k],
            active: &s_arenas[k],
        })
        .collect();
    let results = parallel_greedy::run_arena_batch(&sim, &specs, stage_config);
    drop(specs);
    let mut greedy: Vec<Vec<bool>> = Vec::with_capacity(lanes);
    for (k, (mis, report)) in results.into_iter().enumerate() {
        costs[k].charge_report("parallel greedy MIS on G[S]", &report);
        greedy.push(mis);
    }

    // Step 3, batched: MIS members of S inform their 2-hop neighbourhoods.
    let reports = sim.run_batch(stage_config, lanes, |k, init| InformNode {
        in_mis_s: greedy[k][init.node.index()],
        informed: 0,
        pending: Vec::new(),
    });
    for (k, report) in reports.iter().enumerate() {
        costs[k].charge_report("inform 2-hop neighbourhoods (KT-2 BFS trees)", report);
    }

    // Step 4, per lane: local pruning.
    let undecideds: Vec<Vec<bool>> = greedy
        .iter()
        .map(|gm| {
            graph
                .nodes()
                .map(|v| !(gm[v.index()] || graph.neighbors(v).any(|u| gm[u.index()])))
                .collect()
        })
        .collect();

    // Step 5, batched: Luby's algorithm on each lane's remnant graph.
    let remnants: Vec<AdjacencyArena> = undecideds
        .iter()
        .map(|und| AdjacencyArena::from_filtered(graph, |v, u| und[v.index()] && und[u.index()]))
        .collect();
    let remnant_max_degrees: Vec<usize> = remnants
        .iter()
        .map(|r| graph.nodes().map(|v| r.row_len(v)).max().unwrap_or(0))
        .collect();
    let luby_specs: Vec<luby::LubyLaneSpec<'_>> = (0..lanes)
        .map(|k| luby::LubyLaneSpec {
            participating: &undecideds[k],
            active: &remnants[k],
            seed: config.luby_seed,
        })
        .collect();
    let results = luby::run_restricted_arena_batch(&sim, &luby_specs, stage_config);
    drop(luby_specs);

    Ok(results
        .into_iter()
        .enumerate()
        .map(|(k, (luby_mis, report))| {
            costs[k].charge_report("Luby on remnant graph", &report);
            let in_mis: Vec<bool> = graph
                .nodes()
                .map(|v| greedy[k][v.index()] || luby_mis[v.index()])
                .collect();
            MisOutcome {
                in_mis,
                costs: std::mem::take(&mut costs[k]),
                sampled: sampled_counts[k],
                remnant_max_degree: remnant_max_degrees[k],
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symbreak_classic::mis::verify;
    use symbreak_graphs::{generators, IdSpace};

    fn instance(n: usize, p: f64, seed: u64) -> (Graph, IdAssignment) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, p, &mut rng);
        let ids = IdAssignment::random(&g, IdSpace::CUBIC, &mut rng);
        (g, ids)
    }

    #[test]
    fn computes_a_valid_mis_on_random_graphs() {
        for (n, p, seed) in [
            (40usize, 0.2, 1u64),
            (80, 0.5, 2),
            (60, 0.9, 3),
            (50, 0.05, 4),
        ] {
            let (g, ids) = instance(n, p, seed);
            let mut rng = StdRng::seed_from_u64(seed + 10);
            let out = run(&g, &ids, Alg3Config::default(), &mut rng).unwrap();
            assert!(verify::is_mis(&g, &out.in_mis), "n={n} p={p}");
            assert!(
                out.costs.charged_messages() == 0,
                "Algorithm 3 charges nothing"
            );
        }
    }

    #[test]
    fn remnant_degree_is_small_on_dense_graphs() {
        let (g, ids) = instance(150, 0.6, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let config = Alg3Config {
            sample_coefficient: 2.0,
            ..Alg3Config::default()
        };
        let out = run(&g, &ids, config, &mut rng).unwrap();
        assert!(verify::is_mis(&g, &out.in_mis));
        // Lemma 1 of [21]: remnant max degree = O((n log n)/|S|) = Õ(√n).
        let n = g.num_nodes() as f64;
        let bound = 4.0 * n.sqrt() * n.ln();
        assert!(
            (out.remnant_max_degree as f64) < bound,
            "remnant Δ = {} exceeds Õ(√n) bound {bound}",
            out.remnant_max_degree
        );
        assert!(out.sampled > 0);
    }

    #[test]
    fn message_cost_is_far_below_luby_baseline_on_dense_graphs() {
        let (g, ids) = instance(150, 0.8, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let out = run(&g, &ids, Alg3Config::default(), &mut rng).unwrap();
        assert!(verify::is_mis(&g, &out.in_mis));
        let (baseline_mis, baseline_report) =
            symbreak_classic::mis::luby::run(&g, &ids, 99, SyncConfig::default());
        assert!(verify::is_mis(&g, &baseline_mis));
        assert!(
            out.costs.total_messages() < baseline_report.messages,
            "Algorithm 3 used {} messages, Luby used {}",
            out.costs.total_messages(),
            baseline_report.messages
        );
    }

    #[test]
    fn batched_lanes_match_sequential_runs() {
        let (g, ids) = instance(80, 0.4, 19);
        let seeds = [41u64, 42, 43];
        let batch = run_batch(&g, &ids, Alg3Config::default(), &seeds).unwrap();
        assert_eq!(batch.len(), seeds.len());
        for (lane, &seed) in batch.iter().zip(&seeds) {
            let mut rng = StdRng::seed_from_u64(seed);
            let solo = run(&g, &ids, Alg3Config::default(), &mut rng).unwrap();
            assert_eq!(lane.in_mis, solo.in_mis, "seed {seed}");
            assert_eq!(lane.sampled, solo.sampled, "seed {seed}");
            assert_eq!(
                lane.remnant_max_degree, solo.remnant_max_degree,
                "seed {seed}"
            );
            assert_eq!(lane.costs, solo.costs, "seed {seed}");
        }
    }

    #[test]
    fn works_on_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        // Empty graph: everyone is in the MIS.
        let g = generators::empty(6);
        let ids = IdAssignment::identity(6);
        let out = run(&g, &ids, Alg3Config::default(), &mut rng).unwrap();
        assert_eq!(out.in_mis, vec![true; 6]);
        // Clique: exactly one node in the MIS.
        let g = generators::clique(9);
        let ids = IdAssignment::identity(9);
        let out = run(&g, &ids, Alg3Config::default(), &mut rng).unwrap();
        assert!(verify::is_mis(&g, &out.in_mis));
        assert_eq!(out.in_mis.iter().filter(|&&b| b).count(), 1);
        // Zero nodes.
        let g = generators::empty(0);
        let ids = IdAssignment::identity(0);
        let out = run(&g, &ids, Alg3Config::default(), &mut rng).unwrap();
        assert!(out.in_mis.is_empty());
    }

    #[test]
    fn rejects_non_positive_sampling_coefficient() {
        let (g, ids) = instance(10, 0.5, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let config = Alg3Config {
            sample_coefficient: 0.0,
            ..Alg3Config::default()
        };
        assert!(matches!(
            run(&g, &ids, config, &mut rng).unwrap_err(),
            CoreError::InvalidParameter { .. }
        ));
    }
}
