//! Ready-made experiment drivers used by the benches, examples and
//! EXPERIMENTS.md: each function runs one algorithm (or baseline) on one
//! instance and returns a [`MeasurementRow`] for the Figure-1 comparison.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symbreak_classic::{coloring, mis};
use symbreak_congest::async_sim::AsyncConfig;
use symbreak_congest::{BatchSimulator, CostAccount, FaultPlan, KtLevel, PhaseCost, SyncConfig};
use symbreak_graphs::{Graph, IdAssignment};

use crate::report::MeasurementRow;
use crate::{alg1_coloring, alg2_coloring, alg3_mis};
use crate::{Alg1Config, Alg2Config, Alg3Config};

/// Runs Algorithm 1 and returns its measurement row.
///
/// # Panics
///
/// Panics if the algorithm reports an error (the experiment drivers expect
/// connected, well-formed instances).
pub fn measure_alg1(graph: &Graph, ids: &IdAssignment, seed: u64) -> MeasurementRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let out = alg1_coloring::run(graph, ids, Alg1Config::default(), &mut rng)
        .expect("Algorithm 1 failed on a benchmark instance");
    let valid = coloring::verify::is_proper_coloring(graph, &out.colors)
        && coloring::verify::uses_colors_below(&out.colors, graph.max_degree() as u64 + 1);
    MeasurementRow::new("Alg1 (Δ+1)-coloring KT-1", graph, &out.costs, valid)
}

/// Runs the asynchronous variant of Algorithm 1 (Theorem 3.4).
///
/// # Panics
///
/// Panics if the algorithm reports an error.
pub fn measure_alg1_async(graph: &Graph, ids: &IdAssignment, seed: u64) -> MeasurementRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let out = alg1_coloring::run_async(graph, ids, Alg1Config::default(), &mut rng)
        .expect("asynchronous Algorithm 1 failed on a benchmark instance");
    let valid = coloring::verify::is_proper_coloring(graph, &out.colors);
    MeasurementRow::new("Alg1 async (Δ+1)-coloring KT-1", graph, &out.costs, valid)
}

/// Runs Algorithm 2 with the given ε and returns its measurement row.
///
/// # Panics
///
/// Panics if the algorithm reports an error.
pub fn measure_alg2(graph: &Graph, ids: &IdAssignment, epsilon: f64, seed: u64) -> MeasurementRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = Alg2Config {
        epsilon,
        ..Alg2Config::default()
    };
    let out = alg2_coloring::run(graph, ids, config, &mut rng)
        .expect("Algorithm 2 failed on a benchmark instance");
    let valid = coloring::verify::is_proper_coloring(graph, &out.colors)
        && coloring::verify::uses_colors_below(&out.colors, out.palette_size);
    MeasurementRow::new(
        format!("Alg2 (1+{epsilon})Δ-coloring KT-1"),
        graph,
        &out.costs,
        valid,
    )
}

/// Runs Algorithm 3 (KT-2 MIS) and returns its measurement row.
///
/// # Panics
///
/// Panics if the algorithm reports an error.
pub fn measure_alg3(graph: &Graph, ids: &IdAssignment, seed: u64) -> MeasurementRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let out = alg3_mis::run(graph, ids, Alg3Config::default(), &mut rng)
        .expect("Algorithm 3 failed on a benchmark instance");
    let valid = mis::verify::is_mis(graph, &out.in_mis);
    MeasurementRow::new("Alg3 MIS KT-2", graph, &out.costs, valid)
}

/// Runs Luby's MIS — the Õ(m)-message KT-1 baseline of Figure 1.
pub fn measure_luby_baseline(graph: &Graph, ids: &IdAssignment, seed: u64) -> MeasurementRow {
    let (in_mis, report) = mis::luby::run(graph, ids, seed, SyncConfig::default());
    let valid = mis::verify::is_mis(graph, &in_mis);
    let mut costs = CostAccount::new();
    costs.charge_report("luby", &report);
    MeasurementRow::new("Luby MIS baseline (Θ(m))", graph, &costs, valid)
}

/// Runs Luby's MIS through the α-synchronizer under a fault plan and
/// returns a row carrying the run's [`symbreak_congest::FaultStats`] —
/// including the re-join counters (`rejoin_pulses`, `replayed`) when the
/// plan revives a crashed node with retained state.
///
/// The row's `rounds` column records the asynchronous completion *time*
/// (the natural round analogue of the α-synchronized executor), and
/// `valid` requires both completion and the output being an MIS — a
/// stalled run is reported, not hidden.
pub fn measure_luby_faulty(
    graph: &Graph,
    ids: &IdAssignment,
    seed: u64,
    async_config: AsyncConfig,
    plan: &FaultPlan,
) -> MeasurementRow {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17);
    let (_, report) = mis::luby::run_async(
        graph,
        ids,
        seed,
        SyncConfig::default(),
        async_config,
        plan,
        &mut rng,
    );
    let in_mis: Vec<bool> = report.outputs.iter().map(|o| *o == Some(1)).collect();
    let valid = report.completed && mis::verify::is_mis(graph, &in_mis);
    let mut costs = CostAccount::new();
    costs.charge(
        "luby-synchronized",
        PhaseCost::simulated(report.messages, report.time),
    );
    MeasurementRow::new("Luby MIS α-synchronized", graph, &costs, valid).with_faults(report.faults)
}

/// Runs the naive Θ(m)-message distributed (Δ+1)-coloring baseline.
pub fn measure_coloring_baseline(graph: &Graph, ids: &IdAssignment, seed: u64) -> MeasurementRow {
    let (colors, report) = coloring::baseline::run(graph, ids, seed, SyncConfig::default());
    let valid = coloring::verify::is_proper_coloring(graph, &colors);
    let mut costs = CostAccount::new();
    costs.charge_report("baseline", &report);
    MeasurementRow::new("Johansson coloring baseline (Θ(m))", graph, &costs, valid)
}

/// [`measure_alg1`], batched: one row per seed, all lanes advanced in
/// lockstep over one shared CSR. Row `k` equals `measure_alg1(graph, ids,
/// seeds[k])`.
///
/// # Panics
///
/// Panics if any lane reports an error.
pub fn measure_alg1_batch(graph: &Graph, ids: &IdAssignment, seeds: &[u64]) -> Vec<MeasurementRow> {
    let outs = alg1_coloring::run_batch(graph, ids, Alg1Config::default(), seeds)
        .expect("Algorithm 1 failed on a benchmark instance");
    outs.iter()
        .map(|out| {
            let valid = coloring::verify::is_proper_coloring(graph, &out.colors)
                && coloring::verify::uses_colors_below(&out.colors, graph.max_degree() as u64 + 1);
            MeasurementRow::new("Alg1 (Δ+1)-coloring KT-1", graph, &out.costs, valid)
        })
        .collect()
}

/// [`measure_alg2`], batched: row `k` equals `measure_alg2(graph, ids,
/// epsilon, seeds[k])`.
///
/// # Panics
///
/// Panics if any lane reports an error.
pub fn measure_alg2_batch(
    graph: &Graph,
    ids: &IdAssignment,
    epsilon: f64,
    seeds: &[u64],
) -> Vec<MeasurementRow> {
    let config = Alg2Config {
        epsilon,
        ..Alg2Config::default()
    };
    let outs = alg2_coloring::run_batch(graph, ids, config, seeds)
        .expect("Algorithm 2 failed on a benchmark instance");
    outs.iter()
        .map(|out| {
            let valid = coloring::verify::is_proper_coloring(graph, &out.colors)
                && coloring::verify::uses_colors_below(&out.colors, out.palette_size);
            MeasurementRow::new(
                format!("Alg2 (1+{epsilon})Δ-coloring KT-1"),
                graph,
                &out.costs,
                valid,
            )
        })
        .collect()
}

/// [`measure_alg3`], batched: row `k` equals `measure_alg3(graph, ids,
/// seeds[k])`.
///
/// # Panics
///
/// Panics if any lane reports an error.
pub fn measure_alg3_batch(graph: &Graph, ids: &IdAssignment, seeds: &[u64]) -> Vec<MeasurementRow> {
    let outs = alg3_mis::run_batch(graph, ids, Alg3Config::default(), seeds)
        .expect("Algorithm 3 failed on a benchmark instance");
    outs.iter()
        .map(|out| {
            let valid = mis::verify::is_mis(graph, &out.in_mis);
            MeasurementRow::new("Alg3 MIS KT-2", graph, &out.costs, valid)
        })
        .collect()
}

/// [`measure_luby_baseline`], batched: row `k` equals
/// `measure_luby_baseline(graph, ids, seeds[k])`.
pub fn measure_luby_baseline_batch(
    graph: &Graph,
    ids: &IdAssignment,
    seeds: &[u64],
) -> Vec<MeasurementRow> {
    let sim = BatchSimulator::new(graph, ids, KtLevel::KT1);
    mis::luby::run_batch(&sim, seeds, SyncConfig::default())
        .into_iter()
        .map(|(in_mis, report)| {
            let valid = mis::verify::is_mis(graph, &in_mis);
            let mut costs = CostAccount::new();
            costs.charge_report("luby", &report);
            MeasurementRow::new("Luby MIS baseline (Θ(m))", graph, &costs, valid)
        })
        .collect()
}

/// [`measure_coloring_baseline`], batched: row `k` equals
/// `measure_coloring_baseline(graph, ids, seeds[k])`.
pub fn measure_coloring_baseline_batch(
    graph: &Graph,
    ids: &IdAssignment,
    seeds: &[u64],
) -> Vec<MeasurementRow> {
    let sim = BatchSimulator::new(graph, ids, KtLevel::KT1);
    coloring::baseline::run_batch(&sim, seeds, SyncConfig::default())
        .into_iter()
        .map(|(colors, report)| {
            let valid = coloring::verify::is_proper_coloring(graph, &colors);
            let mut costs = CostAccount::new();
            costs.charge_report("baseline", &report);
            MeasurementRow::new("Johansson coloring baseline (Θ(m))", graph, &costs, valid)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbreak_graphs::{generators, IdSpace};

    fn instance(n: usize, p: f64, seed: u64) -> (Graph, IdAssignment) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::connected_gnp(n, p, &mut rng);
        let ids = IdAssignment::random(&g, IdSpace::CUBIC, &mut rng);
        (g, ids)
    }

    #[test]
    fn all_measurements_report_valid_outputs() {
        let (g, ids) = instance(60, 0.5, 3);
        let rows = vec![
            measure_alg1(&g, &ids, 1),
            measure_alg2(&g, &ids, 0.5, 2),
            measure_alg3(&g, &ids, 3),
            measure_luby_baseline(&g, &ids, 4),
            measure_coloring_baseline(&g, &ids, 5),
        ];
        for row in &rows {
            assert!(row.valid, "{} produced an invalid output", row.algorithm);
            assert_eq!(row.n, 60);
            assert_eq!(row.m, g.num_edges());
        }
    }

    #[test]
    fn faulty_measurement_surfaces_rejoin_accounting() {
        use symbreak_congest::{CrashFault, Recovery};

        let (g, ids) = instance(20, 0.3, 7);
        let config = AsyncConfig {
            max_delay: 5,
            max_time: 20_000,
            message_bit_limit: 512,
        };

        let clean = measure_luby_faulty(&g, &ids, 1, config, &FaultPlan::default());
        assert!(clean.valid, "fault-free lockstep run must complete");
        assert_eq!(clean.faults, Some(symbreak_congest::FaultStats::default()));
        assert_eq!(clean.fault_cell(), "0/0/0/0/0");

        // Crash a node early and hand it back with retained state deep in
        // quiescence: the re-join protocol must finish the run, and the
        // row must account for the pulses and replayed traffic.
        let plan = FaultPlan::default().with_crash(CrashFault {
            node: symbreak_graphs::NodeId(0),
            at: 2,
            recovery: Some((1_000, Recovery::Retain)),
        });
        let row = measure_luby_faulty(&g, &ids, 1, config, &plan);
        assert!(row.valid, "retained re-join must complete with a valid MIS");
        let stats = row.faults.expect("faulty rows carry stats");
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.recoveries, 1);
        assert!(stats.rejoin_pulses > 0, "revival must broadcast REJOIN");
        assert!(stats.replayed > 0, "neighbours must replay buffered rounds");
        assert!(row.total_messages() > clean.total_messages());
    }

    #[test]
    fn batched_measurements_match_sequential_rows() {
        let (g, ids) = instance(50, 0.4, 13);
        let seeds = [21u64, 22];
        assert_eq!(
            measure_alg1_batch(&g, &ids, &seeds),
            seeds
                .iter()
                .map(|&s| measure_alg1(&g, &ids, s))
                .collect::<Vec<_>>()
        );
        assert_eq!(
            measure_alg2_batch(&g, &ids, 0.5, &seeds),
            seeds
                .iter()
                .map(|&s| measure_alg2(&g, &ids, 0.5, s))
                .collect::<Vec<_>>()
        );
        assert_eq!(
            measure_alg3_batch(&g, &ids, &seeds),
            seeds
                .iter()
                .map(|&s| measure_alg3(&g, &ids, s))
                .collect::<Vec<_>>()
        );
        assert_eq!(
            measure_luby_baseline_batch(&g, &ids, &seeds),
            seeds
                .iter()
                .map(|&s| measure_luby_baseline(&g, &ids, s))
                .collect::<Vec<_>>()
        );
        assert_eq!(
            measure_coloring_baseline_batch(&g, &ids, &seeds),
            seeds
                .iter()
                .map(|&s| measure_coloring_baseline(&g, &ids, s))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn paper_algorithms_beat_baselines_on_dense_graphs() {
        let (g, ids) = instance(130, 0.85, 9);
        let alg1 = measure_alg1(&g, &ids, 1);
        let alg3 = measure_alg3(&g, &ids, 2);
        let luby = measure_luby_baseline(&g, &ids, 3);
        let base_col = measure_coloring_baseline(&g, &ids, 4);
        assert!(alg1.total_messages() < base_col.total_messages());
        assert!(alg3.total_messages() < luby.total_messages());
    }
}
